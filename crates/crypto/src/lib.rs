//! `wn-crypto` — from-scratch cryptographic primitives for the Wi-Fi
//! security generations described in §5 of the source text.
//!
//! Everything here is implemented directly from the published
//! algorithms, with no external crypto dependencies, and validated
//! against public test vectors where they exist (FIPS-197 for AES,
//! RFC 2202 for HMAC-SHA1, RFC 6070 for PBKDF2, the classic RC4 and
//! CRC-32 vectors):
//!
//! - [`mod@crc32`] — IEEE CRC-32, used both as the 802.11 frame check
//!   sequence (FCS) and as WEP's (in)famous ICV.
//! - [`rc4`] — the RC4 stream cipher underlying WEP and TKIP.
//! - [`aes`] — AES-128/192/256 block cipher (FIPS-197), the mandatory
//!   cipher of WPA2.
//! - [`ccm`] — CCM authenticated encryption (RFC 3610), the mode CCMP
//!   wraps around AES.
//! - [`sha1`] / [`hmac`] / [`pbkdf2`] — the hash stack used to derive
//!   the WPA/WPA2 pairwise master key from a passphrase.
//! - [`michael`] — TKIP's Michael message integrity code.
//! - [`tkip`] — TKIP per-packet key mixing (structurally faithful
//!   two-phase mixing; see module docs for the one substitution made).
//!
//! # Security note
//!
//! These implementations exist to *simulate and demonstrate* the
//! security properties (and failures) the text describes — e.g. WEP
//! keystream reuse and CRC malleability. They are not hardened against
//! side channels and must not be used to protect real traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ccm;
pub mod crc32;
pub mod hmac;
pub mod michael;
pub mod pbkdf2;
pub mod rc4;
pub mod sha1;
pub mod tkip;

pub use aes::Aes;
pub use crc32::crc32;
pub use rc4::Rc4;
pub use sha1::Sha1;
