//! Seed → scenario mapping.
//!
//! A [`Scenario`] is plain data: everything the runner needs to build
//! and drive one world, and everything the shrinker needs to produce
//! smaller candidates. [`ScenarioGen`] draws one from a seed with the
//! workspace's own deterministic [`Rng`], so the same seed always
//! yields the same scenario on every platform and thread count.

use wn_phy::modulation::PhyStandard;
use wn_sim::Rng;

/// One generated test case.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The seed that produced it (also seeds the world's own RNGs).
    pub seed: u64,
    /// Which world it drives, with all parameters.
    pub kind: ScenarioKind,
}

/// The world a scenario exercises.
#[derive(Clone, Debug)]
pub enum ScenarioKind {
    /// Flat 802.11 IBSS: senders flooding a sink over DCF.
    Wlan(WlanScenario),
    /// Infrastructure ESS: APs + STAs, association/roaming/power save.
    Ess(EssScenario),
    /// Bluetooth piconet or scatternet.
    Bluetooth(BtScenario),
    /// ZigBee star or mesh.
    Zigbee(ZigbeeScenario),
    /// WiMAX base station with scheduled service classes.
    Wman(WmanScenario),
}

/// Flat-WLAN parameters: a ring of senders around a sink at station 0.
#[derive(Clone, Debug)]
pub struct WlanScenario {
    /// Total stations including the sink (≥ 2).
    pub stations: usize,
    /// Ring radius around the sink (m).
    pub radius_m: f64,
    /// PHY generation.
    pub standard: PhyStandard,
    /// MSDU payload bytes.
    pub payload: usize,
    /// Frames injected per sender.
    pub frames_per_sender: u32,
    /// Injection period per sender (µs).
    pub interval_us: u64,
    /// Virtual run length (ms).
    pub duration_ms: u64,
    /// RTS/CTS threshold (bytes; `usize::MAX` disables).
    pub rts_threshold: usize,
    /// Fragmentation threshold (bytes; `usize::MAX` disables).
    pub frag_threshold: usize,
    /// Transmit queue limit (MSDUs).
    pub queue_limit: usize,
    /// Short retry limit.
    pub retry_limit_short: u32,
    /// Long retry limit.
    pub retry_limit_long: u32,
    /// CWmin override.
    pub cw_min_override: Option<u32>,
    /// CWmax override.
    pub cw_max_override: Option<u32>,
    /// ARF rate adaptation on/off.
    pub arf: bool,
    /// Fault toggle: park the sink on another channel so every data
    /// frame times out and walks the full retry ladder.
    pub deaf_sink: bool,
    /// Fault toggle: arm [`wn_mac80211::sim::MacConfig`]'s
    /// `failpoint_retry_overrun`, the deliberate off-by-one the retry
    /// oracle must catch (oracle self-test only).
    pub failpoint_retry_overrun: bool,
}

impl WlanScenario {
    /// `true` when every sender has an identical offered load and
    /// distance, so DCF fairness bounds apply.
    pub fn symmetric(&self) -> bool {
        !self.deaf_sink && !self.failpoint_retry_overrun
    }
}

/// Infrastructure ESS parameters.
#[derive(Clone, Debug)]
pub struct EssScenario {
    /// Access points (1–2, on channels 1 and 6).
    pub aps: usize,
    /// Stations; element `i` is `true` when STA `i` runs power save.
    pub sta_power_save: Vec<bool>,
    /// Walk STA 0 from the first AP toward the last.
    pub walker: bool,
    /// Distance between APs (m).
    pub ap_spacing_m: f64,
    /// Walking speed (m/s).
    pub walk_speed_mps: f64,
    /// Virtual run length (s).
    pub duration_s: u64,
}

/// Bluetooth parameters. Device indices refer to the deterministic
/// build order in the runner: piconet `[master, slaves…]`, scatternet
/// `[master A, master B, bridge, slaves A…, slaves B…]`.
#[derive(Clone, Debug)]
pub struct BtScenario {
    /// Two piconets sharing a bridge slave instead of one piconet.
    pub scatternet: bool,
    /// Slaves in (the first) piconet.
    pub slaves_a: usize,
    /// Slaves in the second piconet (scatternet only).
    pub slaves_b: usize,
    /// `(src index, dst index, bytes)` application transfers; pairs
    /// without a route simply stay queued (conservation still holds).
    pub transfers: Vec<(usize, usize, usize)>,
    /// Virtual run length (ms).
    pub duration_ms: u64,
}

impl BtScenario {
    /// Number of devices the runner will create.
    pub fn device_count(&self) -> usize {
        if self.scatternet {
            3 + self.slaves_a + self.slaves_b
        } else {
            1 + self.slaves_a
        }
    }
}

/// ZigBee topology choice.
#[derive(Clone, Debug)]
pub enum ZigbeeTopology {
    /// Coordinator + `n` ring nodes.
    Star {
        /// Ring nodes around the coordinator.
        n: usize,
        /// Ring radius (m).
        radius_m: f64,
    },
    /// FFD mesh grid.
    Mesh {
        /// Grid columns.
        cols: usize,
        /// Grid rows.
        rows: usize,
        /// Grid spacing (m).
        spacing_m: f64,
    },
}

impl ZigbeeTopology {
    /// Number of nodes the runner will create.
    pub fn node_count(&self) -> usize {
        match *self {
            ZigbeeTopology::Star { n, .. } => n + 1,
            ZigbeeTopology::Mesh { cols, rows, .. } => cols * rows,
        }
    }
}

/// ZigBee parameters.
#[derive(Clone, Debug)]
pub struct ZigbeeScenario {
    /// Star or mesh layout.
    pub topology: ZigbeeTopology,
    /// `(src node, dst node, bytes, at_ms)` offered packets.
    pub sends: Vec<(usize, usize, usize, u64)>,
    /// Virtual run length (ms).
    pub duration_ms: u64,
}

/// One WiMAX subscriber.
#[derive(Clone, Debug)]
pub struct WmanSub {
    /// Distance from the base station (m).
    pub dist_m: f64,
    /// Behind an obstruction (NLOS penalty).
    pub obstructed: bool,
    /// Scheduling class index into `[Ugs, Rtps, Nrtps, BestEffort]`.
    pub class: usize,
    /// Reserved rate (bps).
    pub reserved_bps: f64,
    /// Downlink bytes offered every 100 ms.
    pub dl_offer: usize,
    /// Uplink bytes offered every 100 ms (0 = none).
    pub ul_offer: usize,
}

/// WiMAX parameters.
#[derive(Clone, Debug)]
pub struct WmanScenario {
    /// Subscribers (some may be refused admission when out of range;
    /// their offers are then skipped).
    pub subs: Vec<WmanSub>,
    /// Downlink share of each frame (0–1).
    pub dl_ratio: f64,
    /// Per-subscriber downlink queue limit (bytes).
    pub queue_limit_bytes: usize,
    /// Virtual run length (ms).
    pub duration_ms: u64,
}

impl Scenario {
    /// Stable short tag for digests and progress lines.
    pub fn kind_tag(&self) -> &'static str {
        match self.kind {
            ScenarioKind::Wlan(_) => "wlan",
            ScenarioKind::Ess(_) => "ess",
            ScenarioKind::Bluetooth(_) => "bt",
            ScenarioKind::Zigbee(_) => "zigbee",
            ScenarioKind::Wman(_) => "wman",
        }
    }

    /// One-line human summary (for fuzz output and shrink reports).
    pub fn summary(&self) -> String {
        match &self.kind {
            ScenarioKind::Wlan(w) => format!(
                "wlan seed={} stations={} frames={}x{} payload={} dur={}ms rts={} frag={} \
                 queue={} retry={}/{}{}{}",
                self.seed,
                w.stations,
                w.stations - 1,
                w.frames_per_sender,
                w.payload,
                w.duration_ms,
                threshold(w.rts_threshold),
                threshold(w.frag_threshold),
                w.queue_limit,
                w.retry_limit_short,
                w.retry_limit_long,
                if w.deaf_sink { " deaf-sink" } else { "" },
                if w.failpoint_retry_overrun {
                    " failpoint"
                } else {
                    ""
                },
            ),
            ScenarioKind::Ess(e) => format!(
                "ess seed={} aps={} stas={} walker={} dur={}s",
                self.seed,
                e.aps,
                e.sta_power_save.len(),
                e.walker,
                e.duration_s
            ),
            ScenarioKind::Bluetooth(b) => format!(
                "bt seed={} devices={} scatternet={} transfers={} dur={}ms",
                self.seed,
                b.device_count(),
                b.scatternet,
                b.transfers.len(),
                b.duration_ms
            ),
            ScenarioKind::Zigbee(z) => format!(
                "zigbee seed={} nodes={} sends={} dur={}ms",
                self.seed,
                z.topology.node_count(),
                z.sends.len(),
                z.duration_ms
            ),
            ScenarioKind::Wman(w) => format!(
                "wman seed={} subs={} dl_ratio={:.2} dur={}ms",
                self.seed,
                w.subs.len(),
                w.dl_ratio,
                w.duration_ms
            ),
        }
    }
}

fn threshold(v: usize) -> String {
    if v == usize::MAX {
        "off".to_string()
    } else {
        v.to_string()
    }
}

/// Deterministic seed → [`Scenario`] generator.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioGen {
    /// Arm the MAC retry fail-point in every generated WLAN scenario.
    /// This is the oracle self-test switch: with it on, the retry
    /// oracle must catch (and the shrinker minimise) the planted
    /// off-by-one. Normal fuzzing leaves it off.
    pub inject_retry_overrun: bool,
}

impl ScenarioGen {
    /// A generator with the retry fail-point armed.
    pub fn with_retry_overrun() -> Self {
        ScenarioGen {
            inject_retry_overrun: true,
        }
    }

    /// Draws the scenario for `seed`.
    pub fn scenario(&self, seed: u64) -> Scenario {
        // Decorrelate from the worlds' own seeding (they fork off the
        // raw seed) without losing determinism.
        let mut rng = Rng::new(seed ^ 0xC0FF_EE00_5EED_FACE);
        let kind = match rng.below(100) {
            0..=44 => ScenarioKind::Wlan(self.wlan(&mut rng)),
            45..=59 => ScenarioKind::Ess(Self::ess(&mut rng)),
            60..=74 => ScenarioKind::Bluetooth(Self::bluetooth(&mut rng)),
            75..=89 => ScenarioKind::Zigbee(Self::zigbee(&mut rng)),
            _ => ScenarioKind::Wman(Self::wman(&mut rng)),
        };
        Scenario { seed, kind }
    }

    fn wlan(&self, rng: &mut Rng) -> WlanScenario {
        let standard = *rng.choose(&[
            PhyStandard::Dot11b,
            PhyStandard::Dot11a,
            PhyStandard::Dot11g,
            PhyStandard::Dot11n,
        ]);
        let cw_min_override = if rng.chance(0.15) {
            Some(*rng.choose(&[7u32, 15, 31]))
        } else {
            None
        };
        let cw_max_override = if rng.chance(0.15) {
            Some(*rng.choose(&[127u32, 255, 1023]))
        } else {
            None
        };
        WlanScenario {
            stations: 2 + rng.below(7) as usize,
            radius_m: rng.f64_range(5.0, 15.0),
            standard,
            payload: 100 + rng.below(1300) as usize,
            frames_per_sender: 8 + rng.below(32) as u32,
            interval_us: 500 + rng.below(3500),
            duration_ms: 40 + rng.below(80),
            rts_threshold: if rng.chance(0.4) {
                200 + rng.below(800) as usize
            } else {
                usize::MAX
            },
            frag_threshold: if rng.chance(0.3) {
                256 + rng.below(768) as usize
            } else {
                usize::MAX
            },
            queue_limit: 4 + rng.below(61) as usize,
            retry_limit_short: 3 + rng.below(6) as u32,
            retry_limit_long: 2 + rng.below(5) as u32,
            cw_min_override,
            cw_max_override,
            arf: rng.chance(0.7),
            deaf_sink: rng.chance(0.12),
            failpoint_retry_overrun: self.inject_retry_overrun,
        }
    }

    fn ess(rng: &mut Rng) -> EssScenario {
        let aps = 1 + rng.below(2) as usize;
        let stas = 1 + rng.below(3) as usize;
        let sta_power_save = (0..stas).map(|_| rng.chance(0.4)).collect();
        EssScenario {
            aps,
            sta_power_save,
            walker: aps == 2 && rng.chance(0.7),
            ap_spacing_m: rng.f64_range(120.0, 180.0),
            walk_speed_mps: rng.f64_range(5.0, 10.0),
            duration_s: 3 + rng.below(3),
        }
    }

    fn bluetooth(rng: &mut Rng) -> BtScenario {
        let scatternet = rng.chance(0.35);
        let slaves_a = 1 + rng.below(5) as usize;
        let slaves_b = if scatternet {
            1 + rng.below(5) as usize
        } else {
            0
        };
        let devices = if scatternet {
            3 + slaves_a + slaves_b
        } else {
            1 + slaves_a
        };
        let transfers = (0..1 + rng.below(6))
            .map(|_| {
                let src = rng.below(devices as u64) as usize;
                let mut dst = rng.below(devices as u64) as usize;
                if dst == src {
                    dst = (dst + 1) % devices;
                }
                (src, dst, 5_000 + rng.below(55_000) as usize)
            })
            .collect();
        BtScenario {
            scatternet,
            slaves_a,
            slaves_b,
            transfers,
            duration_ms: 400 + rng.below(800),
        }
    }

    fn zigbee(rng: &mut Rng) -> ZigbeeScenario {
        let topology = if rng.chance(0.5) {
            ZigbeeTopology::Star {
                n: 3 + rng.below(8) as usize,
                radius_m: rng.f64_range(5.0, 9.0),
            }
        } else {
            ZigbeeTopology::Mesh {
                cols: 2 + rng.below(3) as usize,
                rows: 2 + rng.below(3) as usize,
                spacing_m: rng.f64_range(5.0, 9.0),
            }
        };
        let nodes = topology.node_count();
        let duration_ms = 800 + rng.below(1200);
        let sends = (0..5 + rng.below(20))
            .map(|_| {
                let src = rng.below(nodes as u64) as usize;
                let mut dst = rng.below(nodes as u64) as usize;
                if dst == src {
                    dst = (dst + 1) % nodes;
                }
                (
                    src,
                    dst,
                    20 + rng.below(180) as usize,
                    rng.below(duration_ms / 2),
                )
            })
            .collect();
        ZigbeeScenario {
            topology,
            sends,
            duration_ms,
        }
    }

    fn wman(rng: &mut Rng) -> WmanScenario {
        let subs = (0..1 + rng.below(4))
            .map(|_| {
                let class = rng.below(4) as usize;
                WmanSub {
                    dist_m: rng.f64_range(1_000.0, 12_000.0),
                    obstructed: rng.chance(0.2),
                    class,
                    reserved_bps: if class == 3 {
                        0.0
                    } else {
                        rng.f64_range(0.5e6, 3e6)
                    },
                    dl_offer: 20_000 + rng.below(180_000) as usize,
                    ul_offer: if rng.chance(0.5) {
                        10_000 + rng.below(70_000) as usize
                    } else {
                        0
                    },
                }
            })
            .collect();
        WmanScenario {
            subs,
            dl_ratio: rng.f64_range(0.4, 0.7),
            queue_limit_bytes: 200_000 + rng.below(800_000) as usize,
            duration_ms: 300 + rng.below(400),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let g = ScenarioGen::default();
        for seed in 0..64 {
            let a = g.scenario(seed);
            let b = g.scenario(seed);
            assert_eq!(a.summary(), b.summary());
        }
    }

    #[test]
    fn seeds_cover_every_world() {
        let g = ScenarioGen::default();
        let mut tags = std::collections::BTreeSet::new();
        for seed in 0..200 {
            tags.insert(g.scenario(seed).kind_tag());
        }
        assert_eq!(
            tags.into_iter().collect::<Vec<_>>(),
            vec!["bt", "ess", "wlan", "wman", "zigbee"]
        );
    }

    #[test]
    fn retry_overrun_generator_arms_the_failpoint() {
        let g = ScenarioGen::with_retry_overrun();
        let armed = (0..50).any(|seed| match g.scenario(seed).kind {
            ScenarioKind::Wlan(ref w) => w.failpoint_retry_overrun,
            _ => false,
        });
        assert!(armed);
    }
}
