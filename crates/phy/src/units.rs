//! Physical units: power in dBm/dB, frequency, and data rate.
//!
//! Keeping these as distinct newtypes prevents the classic link-budget
//! bug of adding two absolute powers as if they were gains.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// Absolute power referenced to one milliwatt, in decibels (dBm).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(pub f64);

/// A relative power ratio in decibels (gain or loss).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(pub f64);

impl Dbm {
    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates from linear milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not positive.
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(mw > 0.0, "power must be positive, got {mw} mW");
        Dbm(10.0 * mw.log10())
    }

    /// The raw dBm value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Db {
    /// A zero-gain constant.
    pub const ZERO: Db = Db(0.0);

    /// Converts to a linear ratio.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates from a linear ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    pub fn from_linear(ratio: f64) -> Self {
        assert!(ratio > 0.0, "ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }

    /// The raw dB value.
    pub fn value(self) -> f64 {
        self.0
    }
}

// dBm + dB = dBm (apply gain); dBm - dB = dBm (apply loss);
// dBm - dBm = dB (ratio); dB + dB = dB (cascade).

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

impl fmt::Debug for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

/// Sums a set of absolute powers in the linear domain.
///
/// Interference powers must be added in milliwatts, never in dB — this
/// helper makes the right thing the easy thing.
pub fn sum_powers(powers: &[Dbm]) -> Option<Dbm> {
    if powers.is_empty() {
        return None;
    }
    let total_mw: f64 = powers.iter().map(|p| p.to_milliwatts()).sum();
    Some(Dbm::from_milliwatts(total_mw))
}

/// Frequency in hertz.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Hertz(pub f64);

impl Hertz {
    /// Creates from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Creates from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Value in hertz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Value in megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Value in gigahertz.
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Free-space wavelength in metres.
    pub fn wavelength_m(self) -> f64 {
        299_792_458.0 / self.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} GHz", self.ghz())
        } else if self.0 >= 1e6 {
            write!(f, "{:.1} MHz", self.mhz())
        } else {
            write!(f, "{:.0} Hz", self.0)
        }
    }
}

/// Data rate in bits per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct DataRate(pub f64);

impl DataRate {
    /// Creates from kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        DataRate(kbps * 1e3)
    }

    /// Creates from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        DataRate(mbps * 1e6)
    }

    /// Creates from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        DataRate(gbps * 1e9)
    }

    /// Value in bits per second.
    pub fn bps(self) -> f64 {
        self.0
    }

    /// Value in megabits per second.
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Seconds needed to transmit `bits` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive.
    pub fn time_for_bits(self, bits: u64) -> f64 {
        assert!(self.0 > 0.0, "rate must be positive");
        bits as f64 / self.0
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.1} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.1} kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0} bps", self.0)
        }
    }
}

/// Thermal noise floor: −174 dBm/Hz + 10·log₁₀(bandwidth) + noise figure.
pub fn thermal_noise(bandwidth: Hertz, noise_figure: Db) -> Dbm {
    Dbm(-174.0 + 10.0 * bandwidth.hz().log10()) + noise_figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_mw_roundtrip() {
        assert!((Dbm(0.0).to_milliwatts() - 1.0).abs() < 1e-12);
        assert!((Dbm(20.0).to_milliwatts() - 100.0).abs() < 1e-9);
        assert!((Dbm::from_milliwatts(100.0).value() - 20.0).abs() < 1e-9);
        assert!((Dbm(-30.0).to_milliwatts() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn db_linear_roundtrip() {
        assert!((Db(3.0103).to_linear() - 2.0).abs() < 1e-4);
        assert!((Db::from_linear(1000.0).value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unit_arithmetic() {
        let tx = Dbm(20.0);
        let loss = Db(80.0);
        let rx = tx - loss;
        assert!((rx.value() - (-60.0)).abs() < 1e-12);
        let snr = rx - Dbm(-90.0);
        assert!((snr.value() - 30.0).abs() < 1e-12);
        assert_eq!((Db(3.0) + Db(4.0)).value(), 7.0);
        assert_eq!((-Db(5.0)).value(), -5.0);
    }

    #[test]
    fn sum_powers_linear_domain() {
        // Two equal powers sum to +3.01 dB, not +something-in-dB.
        let total = sum_powers(&[Dbm(-60.0), Dbm(-60.0)]).unwrap();
        assert!((total.value() - (-56.9897)).abs() < 1e-3, "{total}");
        assert!(sum_powers(&[]).is_none());
    }

    #[test]
    fn wavelength_at_2_4ghz() {
        let wl = Hertz::from_ghz(2.4).wavelength_m();
        assert!((wl - 0.12491).abs() < 1e-4, "{wl}");
    }

    #[test]
    fn thermal_noise_for_20mhz() {
        // -174 + 10log10(20e6) ≈ -101 dBm, +7 dB NF ≈ -94 dBm.
        let n = thermal_noise(Hertz::from_mhz(20.0), Db(7.0));
        assert!((n.value() - (-93.99)).abs() < 0.1, "{n}");
    }

    #[test]
    fn data_rate_timing() {
        let r = DataRate::from_mbps(54.0);
        let t = r.time_for_bits(12_000);
        assert!((t - 2.2222e-4).abs() < 1e-8);
    }

    #[test]
    fn displays() {
        assert_eq!(DataRate::from_gbps(1.3).to_string(), "1.30 Gbps");
        assert_eq!(DataRate::from_kbps(720.0).to_string(), "720.0 kbps");
        assert_eq!(Hertz::from_ghz(5.0).to_string(), "5.000 GHz");
        assert_eq!(Dbm(15.0).to_string(), "15.0 dBm");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_power_rejected() {
        let _ = Dbm::from_milliwatts(-1.0);
    }
}
