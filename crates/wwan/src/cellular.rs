//! Cellular networks (§2.4).
//!
//! Geometry, trunking and the generation ladder:
//!
//! - A hexagonal [`CellGrid`] with base stations at cell centres; the
//!   serving cell is the strongest received, and a mobile crossing a
//!   cell boundary hands off.
//! - [`ReuseCluster`] — the classic N ∈ {1, 3, 4, 7, 12} reuse patterns
//!   with their co-channel reuse distance `D = R·√(3N)` and worst-case
//!   downlink SIR, "frequency reuse at much smaller distances".
//! - Erlang-B trunking ([`erlang_b_blocking`]) for voice capacity.
//! - The [`Generation`] data-rate ladder exactly as the text gives it:
//!   1G 2.4 kbps … 4G 1 Gbps, "5G … expected by year 2020".

use wn_phy::geom::Point;
use wn_phy::units::DataRate;

/// Cellular generations with the text's headline rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Generation {
    /// Analog voice, "up to 2.4 kbps".
    G1,
    /// GSM digital, "up to 64 Kbps".
    G2,
    /// 2G + GPRS, "up to 144 Kbps".
    G2_5,
    /// UMTS, "up to 2 Mbps".
    G3,
    /// HSDPA, "up to 14 Mbps".
    G3_5,
    /// LTE-class, "up to 1 Gbps".
    G4,
}

impl Generation {
    /// All generations in order.
    pub const ALL: [Generation; 6] = [
        Generation::G1,
        Generation::G2,
        Generation::G2_5,
        Generation::G3,
        Generation::G3_5,
        Generation::G4,
    ];

    /// The text's peak data rate for this generation.
    pub fn peak_rate(self) -> DataRate {
        match self {
            Generation::G1 => DataRate::from_kbps(2.4),
            Generation::G2 => DataRate::from_kbps(64.0),
            Generation::G2_5 => DataRate::from_kbps(144.0),
            Generation::G3 => DataRate::from_mbps(2.0),
            Generation::G3_5 => DataRate::from_mbps(14.0),
            Generation::G4 => DataRate::from_gbps(1.0),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Generation::G1 => "1G",
            Generation::G2 => "2G",
            Generation::G2_5 => "2.5G",
            Generation::G3 => "3G",
            Generation::G3_5 => "3.5G",
            Generation::G4 => "4G",
        }
    }

    /// Year of (approximate) introduction, per the text's narrative.
    pub fn year(self) -> u16 {
        match self {
            Generation::G1 => 1981,
            Generation::G2 => 1992,
            Generation::G2_5 => 1997,
            Generation::G3 => 2000,
            Generation::G3_5 => 2006,
            Generation::G4 => 2010,
        }
    }

    /// The text's forward-looking note: "The 5G generation is expected
    /// by year 2020" — returned as (name, expected year, projected peak
    /// rate) since it post-dates the text itself.
    pub fn next_expected() -> (&'static str, u16, DataRate) {
        ("5G", 2020, DataRate::from_gbps(10.0))
    }
}

/// A frequency-reuse cluster size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseCluster(pub u32);

impl ReuseCluster {
    /// Valid cluster sizes satisfy N = i² + ij + j².
    pub fn is_valid(n: u32) -> bool {
        for i in 0..=8u32 {
            for j in 0..=8u32 {
                if i * i + i * j + j * j == n && n > 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Creates a cluster, checking validity.
    pub fn new(n: u32) -> Option<Self> {
        Self::is_valid(n).then_some(ReuseCluster(n))
    }

    /// Co-channel reuse ratio `D/R = √(3N)`.
    pub fn reuse_ratio(self) -> f64 {
        (3.0 * self.0 as f64).sqrt()
    }

    /// Worst-case downlink SIR (linear) with 6 first-tier co-channel
    /// interferers and path-loss exponent `gamma`:
    /// `SIR ≈ (D/R)^γ / 6`.
    pub fn downlink_sir_linear(self, gamma: f64) -> f64 {
        self.reuse_ratio().powf(gamma) / 6.0
    }

    /// Worst-case downlink SIR in dB.
    pub fn downlink_sir_db(self, gamma: f64) -> f64 {
        10.0 * self.downlink_sir_linear(gamma).log10()
    }

    /// Channels per cell given a total channel pool.
    pub fn channels_per_cell(self, total_channels: u32) -> u32 {
        total_channels / self.0
    }
}

/// Erlang-B blocking probability for `channels` servers offered
/// `erlangs` of traffic (iterative, numerically stable).
pub fn erlang_b_blocking(channels: u32, erlangs: f64) -> f64 {
    let mut b = 1.0;
    for k in 1..=channels {
        b = erlangs * b / (k as f64 + erlangs * b);
    }
    b
}

/// Offered load (erlangs) supportable at a target blocking probability
/// — inverse Erlang-B by bisection.
pub fn erlang_b_capacity(channels: u32, target_blocking: f64) -> f64 {
    let (mut lo, mut hi) = (0.0, channels as f64 * 4.0 + 10.0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if erlang_b_blocking(channels, mid) > target_blocking {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// A hexagonal cell grid; base stations at centres, radius `r`.
#[derive(Clone, Debug)]
pub struct CellGrid {
    sites: Vec<Point>,
    /// Cell radius (centre to vertex), metres.
    pub radius_m: f64,
}

impl CellGrid {
    /// Builds `rings` rings of hexagonal cells around a centre site.
    pub fn hex(rings: u32, radius_m: f64) -> Self {
        let mut sites = vec![Point::new(0.0, 0.0)];
        // Axial hex coordinates → cartesian with centre spacing √3·R.
        let spacing = radius_m * 3f64.sqrt();
        for ring in 1..=rings as i32 {
            let mut q = ring;
            let mut r = 0i32;
            let dirs = [(-1, 1), (-1, 0), (0, -1), (1, -1), (1, 0), (0, 1)];
            for &(dq, dr) in &dirs {
                for _ in 0..ring {
                    let x = spacing * (q as f64 + r as f64 / 2.0);
                    let y = spacing * (r as f64 * 3f64.sqrt() / 2.0);
                    sites.push(Point::new(x, y));
                    q += dq;
                    r += dr;
                }
            }
        }
        CellGrid { sites, radius_m }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Site positions.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// The serving cell for a mobile at `p` (nearest site = strongest
    /// under any monotone path loss).
    pub fn serving_cell(&self, p: Point) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &s) in self.sites.iter().enumerate() {
            let d = s.distance_to(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Drive test: walk `from`→`to` in `steps` and record the handoff
    /// sequence (serving-cell changes).
    pub fn drive_test(&self, from: Point, to: Point, steps: usize) -> Vec<usize> {
        let mut seq = Vec::new();
        for k in 0..=steps {
            let p = from.lerp(to, k as f64 / steps as f64);
            let c = self.serving_cell(p);
            if seq.last() != Some(&c) {
                seq.push(c);
            }
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_ladder_matches_text() {
        assert_eq!(Generation::G1.peak_rate().bps(), 2_400.0);
        assert_eq!(Generation::G2.peak_rate().bps(), 64_000.0);
        assert_eq!(Generation::G2_5.peak_rate().bps(), 144_000.0);
        assert_eq!(Generation::G3.peak_rate().mbps(), 2.0);
        assert_eq!(Generation::G3_5.peak_rate().mbps(), 14.0);
        assert_eq!(Generation::G4.peak_rate().bps(), 1e9);
        // Strictly increasing across generations.
        for w in Generation::ALL.windows(2) {
            assert!(w[1].peak_rate().bps() > w[0].peak_rate().bps());
            assert!(w[1].year() > w[0].year());
        }
    }

    #[test]
    fn five_g_expected_2020_and_faster_than_4g() {
        let (name, year, rate) = Generation::next_expected();
        assert_eq!(name, "5G");
        assert_eq!(year, 2020, "the text: 'expected by year 2020'");
        assert!(rate.bps() > Generation::G4.peak_rate().bps());
    }

    #[test]
    fn valid_cluster_sizes() {
        for n in [1u32, 3, 4, 7, 9, 12, 13] {
            assert!(ReuseCluster::is_valid(n), "{n} should be valid");
        }
        for n in [2u32, 5, 6, 8, 10, 11] {
            assert!(!ReuseCluster::is_valid(n), "{n} should be invalid");
        }
        assert!(ReuseCluster::new(7).is_some());
        assert!(ReuseCluster::new(5).is_none());
    }

    #[test]
    fn reuse_seven_sir_reference() {
        // Classic textbook result: N=7, γ=4 → SIR ≈ 18.7 dB.
        let c = ReuseCluster::new(7).unwrap();
        assert!((c.reuse_ratio() - 4.583).abs() < 1e-3);
        let sir = c.downlink_sir_db(4.0);
        assert!((sir - 18.66).abs() < 0.1, "sir = {sir}");
    }

    #[test]
    fn larger_clusters_trade_capacity_for_sir() {
        let n3 = ReuseCluster::new(3).unwrap();
        let n7 = ReuseCluster::new(7).unwrap();
        assert!(n7.downlink_sir_db(4.0) > n3.downlink_sir_db(4.0));
        assert!(n7.channels_per_cell(420) < n3.channels_per_cell(420));
        assert_eq!(n7.channels_per_cell(420), 60);
        assert_eq!(n3.channels_per_cell(420), 140);
    }

    #[test]
    fn erlang_b_reference_values() {
        // Classic table entries: 10 channels @ 2% blocking ≈ 5.08 E.
        let b = erlang_b_blocking(10, 5.084);
        assert!((b - 0.02).abs() < 0.001, "b = {b}");
        // 1 channel, 1 erlang → B = 1/2.
        assert!((erlang_b_blocking(1, 1.0) - 0.5).abs() < 1e-12);
        // No traffic → no blocking.
        assert!(erlang_b_blocking(10, 0.0) < 1e-12);
    }

    #[test]
    fn erlang_b_capacity_inverse() {
        let e = erlang_b_capacity(10, 0.02);
        assert!((e - 5.084).abs() < 0.01, "e = {e}");
        // More channels → superlinear capacity (trunking efficiency).
        let e20 = erlang_b_capacity(20, 0.02);
        assert!(e20 > 2.0 * e, "trunking gain missing: {e20} vs {e}");
    }

    #[test]
    fn hex_grid_counts() {
        assert_eq!(CellGrid::hex(0, 1000.0).len(), 1);
        assert_eq!(CellGrid::hex(1, 1000.0).len(), 7);
        assert_eq!(CellGrid::hex(2, 1000.0).len(), 19);
        assert_eq!(CellGrid::hex(3, 1000.0).len(), 37);
    }

    #[test]
    fn neighbour_spacing_is_sqrt3_r() {
        let g = CellGrid::hex(1, 1000.0);
        let d = g.sites()[0].distance_to(g.sites()[1]);
        assert!((d - 1000.0 * 3f64.sqrt()).abs() < 1e-6, "d = {d}");
    }

    #[test]
    fn serving_cell_is_nearest() {
        let g = CellGrid::hex(2, 1000.0);
        assert_eq!(g.serving_cell(Point::new(0.0, 0.0)), 0);
        for (i, &s) in g.sites().iter().enumerate() {
            assert_eq!(g.serving_cell(s), i, "site {i} serves itself");
        }
    }

    #[test]
    fn drive_test_hands_off_across_cells() {
        let g = CellGrid::hex(3, 1000.0);
        // Drive straight through several cells.
        let seq = g.drive_test(Point::new(-5000.0, 10.0), Point::new(5000.0, 10.0), 1000);
        assert!(seq.len() >= 3, "expected multiple handoffs, got {seq:?}");
        // No immediate ping-pong in a straight-line drive.
        for w in seq.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        // Passes through (or near) the centre cell.
        assert!(seq.contains(&0), "{seq:?}");
    }

    #[test]
    fn stationary_mobile_never_hands_off() {
        let g = CellGrid::hex(2, 500.0);
        let seq = g.drive_test(Point::new(100.0, 50.0), Point::new(100.0, 50.0), 10);
        assert_eq!(seq.len(), 1);
    }
}
