//! `wn-wwan` — wide-area networks (§2.4): cellular telephony and
//! satellites.
//!
//! - [`cellular`] — "the coverage area is divided into cells … The
//!   system seeks to make efficient use of available channels by using
//!   low-power transmitters to allow frequency reuse at much smaller
//!   distances": hex-grid geometry, reuse clusters and co-channel
//!   interference, Erlang-B trunking, the 1G→4G data-rate ladder, and
//!   a drive-test handoff simulation.
//! - [`satellite`] — "Due to its high altitude, satellite transmissions
//!   can cover a wide area over the surface of the earth": GEO
//!   geometry, the bent-pipe transponder ("amplified and then
//!   rebroadcast on a different frequency"), and the latency/throughput
//!   trade-off of Fig. 1.8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellular;
pub mod satellite;

pub use cellular::{CellGrid, Generation, ReuseCluster};
pub use satellite::{GeoSatellite, Transponder};
