//! Ultra-wideband (§2.1, Fig. 1.5).
//!
//! "UWB transmissions transmit information by generating radio energy
//! at specific time intervals and occupying a large bandwidth …
//! enabling pulse-position or time modulation. … UWB has a data
//! transfer over 110 Mbps up to 480 Mbps at distances up to few
//! meters."
//!
//! Two models live here:
//!
//! 1. A **spectral** model for Fig. 1.5 — total power spread across
//!    7.5 GHz at the regulatory −41.3 dBm/MHz PSD cap versus a
//!    narrowband signal concentrating power in tens of MHz.
//! 2. A **link** model — pulse-position modulation rate ladder
//!    (480/200/110 Mbps, the WiMedia bands) versus distance.

use wn_phy::modulation::Modulation;
use wn_phy::units::{DataRate, Db, Dbm, Hertz};

/// FCC Part 15 UWB PSD limit: −41.3 dBm/MHz.
pub const PSD_LIMIT_DBM_PER_MHZ: f64 = -41.3;

/// US allocation: 3.1–10.6 GHz (§2.1).
pub const US_BAND: (f64, f64) = (3.1e9, 10.6e9);

/// Europe low band: 3.4–4.8 GHz.
pub const EU_LOW_BAND: (f64, f64) = (3.4e9, 4.8e9);

/// Europe high band: 6–8.5 GHz.
pub const EU_HIGH_BAND: (f64, f64) = (6.0e9, 8.5e9);

/// A (possibly ultra-) wideband emission described spectrally.
#[derive(Clone, Copy, Debug)]
pub struct Emission {
    /// Occupied bandwidth.
    pub bandwidth: Hertz,
    /// Power spectral density.
    pub psd_dbm_per_mhz: f64,
}

impl Emission {
    /// A UWB emission across `band` at the regulatory PSD cap.
    pub fn uwb(band: (f64, f64)) -> Emission {
        Emission {
            bandwidth: Hertz(band.1 - band.0),
            psd_dbm_per_mhz: PSD_LIMIT_DBM_PER_MHZ,
        }
    }

    /// A narrowband emission of `total_power` over `bandwidth`.
    pub fn narrowband(total_power: Dbm, bandwidth: Hertz) -> Emission {
        let mhz = bandwidth.hz() / 1e6;
        Emission {
            bandwidth,
            psd_dbm_per_mhz: total_power.value() - 10.0 * mhz.log10(),
        }
    }

    /// Total radiated power (integrated PSD).
    pub fn total_power(&self) -> Dbm {
        let mhz = self.bandwidth.hz() / 1e6;
        Dbm(self.psd_dbm_per_mhz + 10.0 * mhz.log10())
    }

    /// Fractional bandwidth against a centre frequency — the formal
    /// UWB criterion is > 0.2 (or > 500 MHz absolute).
    pub fn fractional_bandwidth(&self, center: Hertz) -> f64 {
        self.bandwidth.hz() / center.hz()
    }

    /// `true` if this emission qualifies as UWB.
    pub fn is_uwb(&self, center: Hertz) -> bool {
        self.bandwidth.hz() > 500e6 || self.fractional_bandwidth(center) > 0.2
    }
}

/// The WiMedia-style UWB rate ladder vs distance.
///
/// "110 Mbps up to 480 Mbps at distances up to few meters": 480 Mbps
/// to ~2 m, 200 Mbps to ~4 m, 110 Mbps to ~10 m.
pub fn rate_at_distance(d_m: f64) -> Option<DataRate> {
    if d_m <= 2.0 {
        Some(DataRate::from_mbps(480.0))
    } else if d_m <= 4.0 {
        Some(DataRate::from_mbps(200.0))
    } else if d_m <= 10.0 {
        Some(DataRate::from_mbps(110.0))
    } else {
        None
    }
}

/// Bit error rate of the binary-PPM UWB link at a given SNR.
pub fn ppm_ber(snr: Db) -> f64 {
    Modulation::Ppm.ber(snr.to_linear())
}

/// Time (s) to move `bytes` over a UWB link at distance `d_m`,
/// including 20% protocol overhead; `None` when out of range.
///
/// This is the "movement of massive files at high data rates over
/// short distances" use case — e.g. wireless USB.
pub fn transfer_time_s(d_m: f64, bytes: u64) -> Option<f64> {
    let r = rate_at_distance(d_m)?;
    Some(bytes as f64 * 8.0 * 1.2 / r.bps())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uwb_psd_is_tiny_but_total_power_usable() {
        let e = Emission::uwb(US_BAND);
        // 7.5 GHz at −41.3 dBm/MHz integrates to ≈ −2.6 dBm (~0.55 mW).
        let p = e.total_power().value();
        assert!((p - (-2.55)).abs() < 0.3, "total {p} dBm");
    }

    #[test]
    fn narrowband_concentrates_power() {
        // 20 dBm Wi-Fi in 20 MHz: PSD ≈ +7 dBm/MHz — almost 50 dB above
        // the UWB cap, which is why UWB looks like noise (Fig. 1.5).
        let nb = Emission::narrowband(Dbm(20.0), Hertz::from_mhz(20.0));
        assert!(
            (nb.psd_dbm_per_mhz - 6.99).abs() < 0.1,
            "{}",
            nb.psd_dbm_per_mhz
        );
        let delta = nb.psd_dbm_per_mhz - PSD_LIMIT_DBM_PER_MHZ;
        assert!(delta > 45.0, "PSD gap {delta} dB");
        // Round-trips through total_power.
        assert!((nb.total_power().value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn uwb_criterion() {
        let us = Emission::uwb(US_BAND);
        assert!(us.is_uwb(Hertz::from_ghz(6.85)));
        assert!(us.fractional_bandwidth(Hertz::from_ghz(6.85)) > 1.0);
        let wifi = Emission::narrowband(Dbm(20.0), Hertz::from_mhz(20.0));
        assert!(!wifi.is_uwb(Hertz::from_ghz(2.4)));
    }

    #[test]
    fn eu_band_structure() {
        // "in Europe, the frequencies include two parts".
        let low = Emission::uwb(EU_LOW_BAND);
        let high = Emission::uwb(EU_HIGH_BAND);
        assert!((low.bandwidth.hz() - 1.4e9).abs() < 1e6);
        assert!((high.bandwidth.hz() - 2.5e9).abs() < 1e6);
        // Each is individually far smaller than the US allocation.
        let us = Emission::uwb(US_BAND);
        assert!(low.bandwidth.hz() + high.bandwidth.hz() < us.bandwidth.hz());
    }

    #[test]
    fn rate_ladder_matches_text() {
        assert_eq!(rate_at_distance(1.0).unwrap().mbps(), 480.0);
        assert_eq!(rate_at_distance(2.0).unwrap().mbps(), 480.0);
        assert_eq!(rate_at_distance(3.0).unwrap().mbps(), 200.0);
        assert_eq!(rate_at_distance(8.0).unwrap().mbps(), 110.0);
        assert!(rate_at_distance(12.0).is_none());
    }

    #[test]
    fn hd_movie_transfers_in_seconds_at_close_range() {
        // The "audio and video delivery in home networking" use case:
        // a 1-GB file at 1 m takes ~20 s; at 8 m it takes ~4× longer.
        let close = transfer_time_s(1.0, 1_000_000_000).unwrap();
        assert!((close - 20.0).abs() < 1.0, "{close}");
        let far = transfer_time_s(8.0, 1_000_000_000).unwrap();
        assert!(far / close > 4.0);
        assert!(transfer_time_s(20.0, 1).is_none());
    }

    #[test]
    fn ppm_ber_decreases_with_snr() {
        assert!(ppm_ber(Db(0.0)) > ppm_ber(Db(10.0)));
        assert!(ppm_ber(Db(10.0)) > ppm_ber(Db(20.0)));
        assert!(ppm_ber(Db(20.0)) < 1e-3);
    }
}
