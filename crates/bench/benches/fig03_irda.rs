//! FIG-2 — regenerates the IrDA rate-vs-distance/cone curves; times a
//! link negotiation sweep.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_2_irda;
use wn_phy::geom::Point;
use wn_wpan::irda::{negotiate, IrPort};

fn main() {
    let (fig, report) = fig_2_irda();
    print_figure(&fig);
    print_report(&report);

    let tx = IrPort::aimed_at(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
    bench("fig03/negotiate_sweep", || {
        let mut total = 0.0;
        for i in 1..=100 {
            let d = i as f64 / 100.0 * 1.2;
            if let Ok(r) = negotiate(&tx, Point::new(d, 0.0)) {
                total += r.bps();
            }
        }
        black_box(total)
    });
}
