//! ZigBee networks (§2.1, Fig. 1.4).
//!
//! "Two different device types can participate in a ZigBee network:
//! Full-function devices (FFD) and reduced-function devices (RFD). …
//! ZigBee supports three different topologies: star, mesh, and cluster
//! tree." RFDs "only intended for applications that are extremely
//! simple" may attach only as leaves; any FFD can route.
//!
//! The model is a store-and-forward event simulation at the 802.15.4
//! 2.4 GHz rate of 250 kbps, with per-hop CSMA backoff, bounded queues
//! and per-topology routing (direct-to-coordinator, BFS mesh routes, or
//! strict tree routes).

use std::collections::VecDeque;

use wn_phy::geom::Point;
use wn_sim::metrics::{MetricsRegistry, MetricsSnapshot};
use wn_sim::trace::{DropReason, Level, Trace, TraceEvent};
use wn_sim::{Rng, Scheduler, SimDuration, SimTime, World};

/// 802.15.4 at 2.4 GHz: 250 kbps (§2.1).
pub const RATE_BPS: f64 = 250_000.0;

/// Maximum MAC payload per 802.15.4 frame (127 B PSDU minus overhead).
pub const FRAME_PAYLOAD: usize = 102;

/// Device roles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// Full-function device — "can operate … serving as a WPAN
    /// coordinator, coordinator or device"; may route.
    Ffd,
    /// Reduced-function device — leaf only.
    Rfd,
}

/// The three Fig. 1.4 topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// All devices talk to the single WPAN coordinator.
    Star,
    /// "any device can communicate with any other device as long as
    /// they are in range" — multi-hop over FFDs.
    Mesh,
    /// Mesh special case routed strictly along a tree of FFDs.
    ClusterTree,
}

/// Node id.
pub type NodeId = usize;

/// Errors building a ZigBee network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZigbeeError {
    /// RFDs cannot route or act as parents.
    RfdCannotRoute(NodeId),
    /// Node index unknown.
    BadIndex,
    /// The coordinator must be an FFD.
    CoordinatorMustBeFfd,
}

impl std::fmt::Display for ZigbeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZigbeeError::RfdCannotRoute(n) => write!(f, "RFD {n} cannot act as a router/parent"),
            ZigbeeError::BadIndex => write!(f, "unknown node"),
            ZigbeeError::CoordinatorMustBeFfd => write!(f, "the WPAN coordinator must be an FFD"),
        }
    }
}

impl std::error::Error for ZigbeeError {}

struct Node {
    pos: Point,
    role: NodeRole,
    parent: Option<NodeId>,
    queue: VecDeque<Packet>,
    busy: bool,
    delivered: u64,
    dropped: u64,
}

#[derive(Clone, Debug)]
struct Packet {
    dst: NodeId,
    bytes: usize,
    hops: u32,
    born: SimTime,
}

/// Measured outcomes of a run.
#[derive(Clone, Debug, Default)]
pub struct ZigbeeStats {
    /// Packets delivered end-to-end.
    pub delivered: u64,
    /// Packets dropped (no route, queue overflow, hop limit).
    pub dropped: u64,
    /// Sum of hop counts over delivered packets.
    pub hop_sum: u64,
    /// Sum of end-to-end latencies (seconds) over delivered packets.
    pub latency_sum_s: f64,
    /// Payload bytes delivered.
    pub bytes: u64,
}

impl ZigbeeStats {
    /// Delivery ratio given the offered count.
    pub fn delivery_ratio(&self, offered: u64) -> f64 {
        if offered == 0 {
            return 1.0;
        }
        self.delivered as f64 / offered as f64
    }

    /// Mean hops over delivered packets.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.hop_sum as f64 / self.delivered as f64
    }

    /// Mean end-to-end latency (s).
    pub fn mean_latency_s(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.latency_sum_s / self.delivered as f64
    }
}

/// A ZigBee network world.
pub struct ZigbeeNetwork {
    nodes: Vec<Node>,
    topology: Topology,
    coordinator: NodeId,
    /// Radio range between neighbours, metres (text: ~10 m).
    pub range_m: f64,
    /// Queue depth per node.
    pub queue_limit: usize,
    /// TTL in hops.
    pub hop_limit: u32,
    rng: Rng,
    /// Aggregate statistics.
    pub stats: ZigbeeStats,
    offered: u64,
    /// Typed event trace (joins at Info, hops/drops at Debug/Warn).
    pub trace: Trace,
}

/// Events: a node finishes its backoff+transmission and forwards the
/// head-of-queue packet one hop.
pub enum ZigbeeEvent {
    /// `node` completes service of its head packet.
    ServiceDone {
        /// The serving node.
        node: NodeId,
    },
    /// Inject a packet.
    Send {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Payload size.
        bytes: usize,
    },
}

impl ZigbeeNetwork {
    /// Creates a network with the given topology; node 0 is the
    /// coordinator (added via [`ZigbeeNetwork::add_node`], must be FFD).
    pub fn new(topology: Topology, seed: u64) -> Self {
        ZigbeeNetwork {
            nodes: Vec::new(),
            topology,
            coordinator: 0,
            range_m: 10.0,
            queue_limit: 16,
            hop_limit: 16,
            rng: Rng::new(seed),
            stats: ZigbeeStats::default(),
            offered: 0,
            trace: Trace::new(4096),
        }
    }

    /// Adds a node. The first node is the WPAN coordinator.
    pub fn add_node(&mut self, pos: Point, role: NodeRole) -> Result<NodeId, ZigbeeError> {
        if self.nodes.is_empty() && role != NodeRole::Ffd {
            return Err(ZigbeeError::CoordinatorMustBeFfd);
        }
        self.nodes.push(Node {
            pos,
            role,
            parent: None,
            queue: VecDeque::new(),
            busy: false,
            delivered: 0,
            dropped: 0,
        });
        Ok(self.nodes.len() - 1)
    }

    /// Sets a tree parent (cluster-tree topology). The parent must be
    /// an FFD: "a RFD may connect to a cluster-tree network as a leaf
    /// node at the end of a branch."
    pub fn set_parent(&mut self, child: NodeId, parent: NodeId) -> Result<(), ZigbeeError> {
        if child >= self.nodes.len() || parent >= self.nodes.len() {
            return Err(ZigbeeError::BadIndex);
        }
        if self.nodes[parent].role != NodeRole::Ffd {
            return Err(ZigbeeError::RfdCannotRoute(parent));
        }
        self.nodes[child].parent = Some(parent);
        self.trace.event(
            SimTime::ZERO,
            Level::Info,
            "zb",
            TraceEvent::Join {
                station: child as u32,
                parent: parent as u32,
            },
        );
        Ok(())
    }

    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[a].pos.distance_to(self.nodes[b].pos) <= self.range_m
    }

    /// Next hop under the configured topology.
    fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        if at == dst {
            return None;
        }
        match self.topology {
            Topology::Star => {
                // Everything relays through the coordinator.
                if at == self.coordinator {
                    self.in_range(at, dst).then_some(dst)
                } else if self.in_range(at, self.coordinator) {
                    Some(self.coordinator)
                } else {
                    None
                }
            }
            Topology::Mesh => {
                // BFS over in-range FFD links (RFDs only as endpoints).
                let n = self.nodes.len();
                let mut prev = vec![usize::MAX; n];
                let mut seen = vec![false; n];
                let mut q = VecDeque::from([at]);
                seen[at] = true;
                while let Some(u) = q.pop_front() {
                    if u == dst {
                        let mut cur = dst;
                        while prev[cur] != at {
                            cur = prev[cur];
                            if cur == usize::MAX {
                                return None;
                            }
                        }
                        return Some(cur);
                    }
                    // Only FFDs forward; an RFD may originate (u == at)
                    // or terminate (v == dst) but never relay.
                    if u != at && self.nodes[u].role == NodeRole::Rfd {
                        continue;
                    }
                    for v in 0..n {
                        if v != u && !seen[v] && self.in_range(u, v) {
                            seen[v] = true;
                            prev[v] = u;
                            q.push_back(v);
                        }
                    }
                }
                None
            }
            Topology::ClusterTree => {
                // Up toward the root until the destination is in our
                // subtree, then down — here simplified: up to the
                // coordinator, then down the parent chain reversed.
                let anc = |mut x: NodeId| -> Vec<NodeId> {
                    let mut path = vec![x];
                    while let Some(p) = self.nodes[x].parent {
                        path.push(p);
                        x = p;
                        if path.len() > self.nodes.len() {
                            break;
                        }
                    }
                    path
                };
                let up = anc(at);
                let down = anc(dst);
                // Find the lowest common ancestor.
                let lca = up.iter().find(|a| down.contains(a)).copied()?;
                if at == lca {
                    // Step down toward dst: the node just below lca on
                    // dst's ancestor path.
                    let i = down.iter().position(|&x| x == lca)?;
                    if i == 0 {
                        None
                    } else {
                        Some(down[i - 1])
                    }
                } else {
                    self.nodes[at].parent
                }
            }
        }
    }

    fn start_service_if_idle(&mut self, node: NodeId, sched: &mut Scheduler<ZigbeeEvent>) {
        if self.nodes[node].busy || self.nodes[node].queue.is_empty() {
            return;
        }
        self.nodes[node].busy = true;
        let bytes = self.nodes[node].queue[0].bytes.min(FRAME_PAYLOAD);
        // CSMA-CA backoff: uniform over [0.32, 4.8] ms plus airtime.
        let backoff_s = self.rng.f64_range(0.000_32, 0.004_8);
        let airtime_s = (bytes + 25) as f64 * 8.0 / RATE_BPS;
        sched.schedule_in(
            SimDuration::from_secs_f64(backoff_s + airtime_s),
            ZigbeeEvent::ServiceDone { node },
        );
    }

    /// Per-node delivered count.
    pub fn delivered_at(&self, node: NodeId) -> u64 {
        self.nodes[node].delivered
    }

    /// Offered packet count.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets currently resident in node queues. Closes the
    /// conservation ledger the fuzzer's oracle checks:
    /// `offered == delivered + dropped + queued_total`.
    pub fn queued_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.queue.len() as u64).sum()
    }

    /// Exports per-node delivery/drop counters and the aggregate
    /// statistics into a named snapshot at time `now`.
    pub fn metrics_snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let id = Some(i as u32);
            reg.counter("zb", "delivered", id).add(n.delivered);
            reg.counter("zb", "dropped", id).add(n.dropped);
        }
        reg.counter("zb", "offered", None).add(self.offered);
        reg.counter("zb", "delivered", None)
            .add(self.stats.delivered);
        reg.counter("zb", "dropped", None).add(self.stats.dropped);
        reg.counter("zb", "delivered_bytes", None)
            .add(self.stats.bytes);
        reg.counter("zb", "hop_sum", None).add(self.stats.hop_sum);
        reg.snapshot(now)
    }
}

impl World for ZigbeeNetwork {
    type Event = ZigbeeEvent;

    fn handle(&mut self, now: SimTime, ev: ZigbeeEvent, sched: &mut Scheduler<ZigbeeEvent>) {
        match ev {
            ZigbeeEvent::Send { src, dst, bytes } => {
                self.offered += 1;
                if self.nodes[src].queue.len() >= self.queue_limit {
                    self.nodes[src].dropped += 1;
                    self.stats.dropped += 1;
                    self.trace.event(
                        now,
                        Level::Warn,
                        "zb",
                        TraceEvent::Drop {
                            station: src as u32,
                            kind: wn_sim::trace::FrameKind::Data,
                            reason: DropReason::QueueFull,
                        },
                    );
                    return;
                }
                self.nodes[src].queue.push_back(Packet {
                    dst,
                    bytes,
                    hops: 0,
                    born: now,
                });
                self.start_service_if_idle(src, sched);
            }
            ZigbeeEvent::ServiceDone { node } => {
                self.nodes[node].busy = false;
                let Some(mut pkt) = self.nodes[node].queue.pop_front() else {
                    return;
                };
                pkt.hops += 1;
                match self.next_hop(node, pkt.dst) {
                    None => {
                        self.nodes[node].dropped += 1;
                        self.stats.dropped += 1;
                        self.trace.event(
                            now,
                            Level::Warn,
                            "zb",
                            TraceEvent::Drop {
                                station: node as u32,
                                kind: wn_sim::trace::FrameKind::Data,
                                reason: DropReason::NoRoute,
                            },
                        );
                    }
                    Some(hop) if hop == pkt.dst => {
                        self.nodes[pkt.dst].delivered += 1;
                        self.stats.delivered += 1;
                        self.stats.hop_sum += pkt.hops as u64;
                        self.stats.bytes += pkt.bytes as u64;
                        self.stats.latency_sum_s +=
                            now.saturating_duration_since(pkt.born).as_secs_f64();
                        self.trace.event(
                            now,
                            Level::Debug,
                            "zb",
                            TraceEvent::Deliver {
                                station: pkt.dst as u32,
                                bytes: pkt.bytes as u64,
                                hops: pkt.hops,
                            },
                        );
                    }
                    Some(hop) => {
                        if pkt.hops >= self.hop_limit
                            || self.nodes[hop].queue.len() >= self.queue_limit
                        {
                            self.nodes[node].dropped += 1;
                            self.stats.dropped += 1;
                            let reason = if pkt.hops >= self.hop_limit {
                                DropReason::HopLimit
                            } else {
                                DropReason::QueueFull
                            };
                            self.trace.event(
                                now,
                                Level::Warn,
                                "zb",
                                TraceEvent::Drop {
                                    station: node as u32,
                                    kind: wn_sim::trace::FrameKind::Data,
                                    reason,
                                },
                            );
                        } else {
                            self.trace.event(
                                now,
                                Level::Debug,
                                "zb",
                                TraceEvent::Forward {
                                    station: node as u32,
                                    dst: pkt.dst as u32,
                                    hops: pkt.hops,
                                },
                            );
                            self.nodes[hop].queue.push_back(pkt);
                            self.start_service_if_idle(hop, sched);
                        }
                    }
                }
                self.start_service_if_idle(node, sched);
            }
        }
    }
}

/// Builds the Fig. 1.4 star: coordinator at the centre, `n` devices on
/// a circle of `radius_m`.
pub fn star(n: usize, radius_m: f64, seed: u64) -> (ZigbeeNetwork, Vec<NodeId>) {
    let mut net = ZigbeeNetwork::new(Topology::Star, seed);
    net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd)
        .expect("coordinator");
    let mut ids = Vec::new();
    for i in 0..n {
        let a = i as f64 / n as f64 * std::f64::consts::TAU;
        let role = if i % 2 == 0 {
            NodeRole::Rfd
        } else {
            NodeRole::Ffd
        };
        ids.push(
            net.add_node(Point::new(radius_m * a.cos(), radius_m * a.sin()), role)
                .expect("node"),
        );
    }
    (net, ids)
}

/// Builds a mesh grid of FFDs spaced `spacing_m` apart.
pub fn mesh_grid(cols: usize, rows: usize, spacing_m: f64, seed: u64) -> ZigbeeNetwork {
    let mut net = ZigbeeNetwork::new(Topology::Mesh, seed);
    for r in 0..rows {
        for c in 0..cols {
            net.add_node(
                Point::new(c as f64 * spacing_m, r as f64 * spacing_m),
                NodeRole::Ffd,
            )
            .expect("node");
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use wn_sim::Simulation;

    fn run(net: ZigbeeNetwork, sends: &[(NodeId, NodeId, usize)], secs: u64) -> ZigbeeNetwork {
        let mut sim = Simulation::new(net);
        for (i, &(src, dst, bytes)) in sends.iter().enumerate() {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(i as u64),
                ZigbeeEvent::Send { src, dst, bytes },
            );
        }
        sim.run_until(SimTime::from_secs(secs));
        sim.into_world()
    }

    #[test]
    fn coordinator_must_be_ffd() {
        let mut net = ZigbeeNetwork::new(Topology::Star, 1);
        assert_eq!(
            net.add_node(Point::new(0.0, 0.0), NodeRole::Rfd),
            Err(ZigbeeError::CoordinatorMustBeFfd)
        );
    }

    #[test]
    fn star_routes_through_coordinator() {
        let (net, ids) = star(6, 8.0, 2);
        // Device→device goes via the hub: exactly 2 hops.
        let net = run(net, &[(ids[0], ids[3], 50)], 5);
        assert_eq!(net.stats.delivered, 1);
        assert_eq!(net.stats.mean_hops(), 2.0);
    }

    #[test]
    fn star_device_to_coordinator_one_hop() {
        let (net, ids) = star(4, 8.0, 3);
        let net = run(net, &[(ids[1], 0, 50)], 5);
        assert_eq!(net.stats.delivered, 1);
        assert_eq!(net.stats.mean_hops(), 1.0);
    }

    #[test]
    fn star_out_of_range_drops() {
        // A circle wider than the radio range: spokes cannot reach the hub.
        let (net, ids) = star(4, 25.0, 4);
        let net = run(net, &[(ids[0], 0, 50)], 5);
        assert_eq!(net.stats.delivered, 0);
        assert_eq!(net.stats.dropped, 1);
    }

    #[test]
    fn mesh_multi_hop_delivery() {
        // 5×1 line, 8 m spacing, 10 m range: corner-to-corner = 4 hops.
        let net = mesh_grid(5, 1, 8.0, 5);
        let net = run(net, &[(0, 4, 60)], 10);
        assert_eq!(net.stats.delivered, 1);
        assert_eq!(net.stats.mean_hops(), 4.0);
    }

    #[test]
    fn mesh_routes_around_via_grid() {
        let net = mesh_grid(4, 4, 8.0, 6);
        let net = run(net, &[(0, 15, 60)], 10);
        assert_eq!(net.stats.delivered, 1);
        // Manhattan-ish: 6 hops corner to corner on a 4×4 with
        // 8 m spacing (diagonal 11.3 m exceeds the 10 m range).
        assert_eq!(net.stats.mean_hops(), 6.0);
    }

    #[test]
    fn rfd_does_not_relay_in_mesh() {
        // A line where the middle node is an RFD: no route end-to-end.
        let mut net = ZigbeeNetwork::new(Topology::Mesh, 7);
        net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd).unwrap();
        net.add_node(Point::new(8.0, 0.0), NodeRole::Rfd).unwrap();
        net.add_node(Point::new(16.0, 0.0), NodeRole::Ffd).unwrap();
        let net = run(net, &[(0, 2, 40)], 5);
        assert_eq!(net.stats.delivered, 0, "RFD must not forward");
        // Replace the relay with an FFD and it works.
        let mut net2 = ZigbeeNetwork::new(Topology::Mesh, 7);
        net2.add_node(Point::new(0.0, 0.0), NodeRole::Ffd).unwrap();
        net2.add_node(Point::new(8.0, 0.0), NodeRole::Ffd).unwrap();
        net2.add_node(Point::new(16.0, 0.0), NodeRole::Ffd).unwrap();
        let net2 = run(net2, &[(0, 2, 40)], 5);
        assert_eq!(net2.stats.delivered, 1);
    }

    #[test]
    fn cluster_tree_routes_via_lca() {
        //        0 (coord)
        //       / \
        //      1   2
        //     /     \
        //    3(RFD)  4(RFD)
        let mut net = ZigbeeNetwork::new(Topology::ClusterTree, 8);
        net.range_m = 100.0;
        net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd).unwrap();
        net.add_node(Point::new(-5.0, 5.0), NodeRole::Ffd).unwrap();
        net.add_node(Point::new(5.0, 5.0), NodeRole::Ffd).unwrap();
        net.add_node(Point::new(-8.0, 10.0), NodeRole::Rfd).unwrap();
        net.add_node(Point::new(8.0, 10.0), NodeRole::Rfd).unwrap();
        net.set_parent(1, 0).unwrap();
        net.set_parent(2, 0).unwrap();
        net.set_parent(3, 1).unwrap();
        net.set_parent(4, 2).unwrap();
        let net = run(net, &[(3, 4, 30)], 5);
        assert_eq!(net.stats.delivered, 1);
        // 3→1→0→2→4 = 4 hops.
        assert_eq!(net.stats.mean_hops(), 4.0);
    }

    #[test]
    fn rfd_cannot_be_parent() {
        let mut net = ZigbeeNetwork::new(Topology::ClusterTree, 9);
        net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd).unwrap();
        net.add_node(Point::new(1.0, 0.0), NodeRole::Rfd).unwrap();
        net.add_node(Point::new(2.0, 0.0), NodeRole::Ffd).unwrap();
        assert_eq!(net.set_parent(2, 1), Err(ZigbeeError::RfdCannotRoute(1)));
    }

    #[test]
    fn throughput_bounded_by_250_kbps() {
        // Saturate one link and confirm the 250 kbps PHY cap bites.
        let mut net = ZigbeeNetwork::new(Topology::Star, 10);
        net.queue_limit = 10_000;
        net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd).unwrap();
        net.add_node(Point::new(5.0, 0.0), NodeRole::Ffd).unwrap();
        let sends: Vec<(NodeId, NodeId, usize)> =
            (0..3000).map(|_| (1usize, 0usize, FRAME_PAYLOAD)).collect();
        let net = run(net, &sends, 10);
        let kbps = net.stats.bytes as f64 * 8.0 / 10.0 / 1e3;
        assert!(
            kbps < 250.0,
            "throughput {kbps} must stay under the PHY rate"
        );
        assert!(kbps > 80.0, "but should achieve a decent fraction: {kbps}");
    }

    #[test]
    fn queue_overflow_counted() {
        let mut net = ZigbeeNetwork::new(Topology::Star, 11);
        net.queue_limit = 2;
        net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd).unwrap();
        net.add_node(Point::new(5.0, 0.0), NodeRole::Ffd).unwrap();
        let mut sim = Simulation::new(net);
        for _ in 0..20 {
            sim.scheduler_mut().schedule_at(
                SimTime::ZERO,
                ZigbeeEvent::Send {
                    src: 1,
                    dst: 0,
                    bytes: 50,
                },
            );
        }
        sim.run_until(SimTime::from_secs(5));
        let net = sim.into_world();
        assert!(net.stats.dropped >= 18, "dropped = {}", net.stats.dropped);
        assert_eq!(net.stats.delivered + net.stats.dropped, 20);
    }
}
