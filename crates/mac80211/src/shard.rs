//! Spatial interference shards: partitioning a deployment into
//! independently-advancing worlds (DESIGN.md §15).
//!
//! The conflict graph couples two stations when their channels
//! spectrally overlap **and** they are mutually relevant at RF level —
//! audible in either direction per the propagation model, or within
//! the caller's maximum interference range. Its connected components
//! are the *shards*: no MAC-level interaction can ever cross a shard
//! boundary, because cross-channel leakage with zero spectral overlap
//! is exactly zero (`leaked_power` returns `None`, not a small
//! number) and beyond-range co-channel stations never enter each
//! other's candidate lists.
//!
//! [`WlanWorld::shard_plan`](crate::sim::WlanWorld::shard_plan)
//! computes the partition; this module holds the plan type, the
//! coherence checks behind the `shard-coherence` oracle, and the
//! component-run harness that executes one simulation per shard —
//! serially straight to the horizon, or windowed on scoped threads
//! via [`wn_sim::run_shards_windowed`] — and digests the merged
//! output in shard order so the two executions can be compared
//! byte-for-byte.

use crate::sim::WlanWorld;
use wn_sim::stats::fnv1a;
use wn_sim::{run_shards_windowed, SimDuration, SimTime, Simulation};

/// Station index within a world (mirrors `sim::StationId`).
pub type StationId = usize;

/// Propagation speed, metres per nanosecond (vacuum light speed; the
/// same constant the medium uses for airtime propagation delay).
pub const METRES_PER_NANOSECOND: f64 = 0.299_792_458;

/// The propagation delay across `dist_m` metres, rounded **down** to
/// whole nanoseconds so it is a conservative (never optimistic) bound.
pub fn propagation_delay(dist_m: f64) -> SimDuration {
    SimDuration::from_nanos((dist_m / METRES_PER_NANOSECOND).floor() as u64)
}

/// A partition of a deployment's stations into interference shards.
///
/// Produced by [`WlanWorld::shard_plan`]; consumed by the component
/// builders in `wn-check`/`wn-core` (which construct one world per
/// shard) and re-validated by the `shard-coherence` oracle after
/// mobility patches.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Station → shard index.
    pub shard_of: Vec<usize>,
    /// Shard → member stations, ascending; shards are ordered by
    /// their smallest member id, so the partition (and everything
    /// merged in shard order) is deterministic.
    pub shards: Vec<Vec<StationId>>,
    /// The smallest propagation delay between any two stations in
    /// different shards (a lower bound computed from shard bounding
    /// boxes): the classic conservative-DES lookahead. `MAX` when
    /// there are fewer than two shards.
    pub lookahead: SimDuration,
    /// The co-channel coupling radius the plan was computed with
    /// (infinite when the caller passed `None`).
    pub max_interference_range_m: f64,
}

impl ShardPlan {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Stations covered by the plan.
    pub fn station_count(&self) -> usize {
        self.shard_of.len()
    }
}

/// A way the world can contradict a [`ShardPlan`]; `None` from the
/// checks below means coherent. Reported by the `shard-coherence`
/// oracle.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardIncoherence {
    /// Two coupled stations (overlapping channels, audible or within
    /// range) are assigned to different shards.
    CoupledAcrossShards {
        /// First station of the offending pair.
        a: StationId,
        /// Second station of the offending pair.
        b: StationId,
        /// Their distance, metres.
        dist_m: f64,
    },
    /// The plan's lookahead exceeds some cross-shard pair's actual
    /// propagation delay (the conservative bound would be violated).
    LookaheadExceedsDelay {
        /// First station of the offending pair.
        a: StationId,
        /// Second station of the offending pair.
        b: StationId,
        /// That pair's propagation delay.
        delay: SimDuration,
    },
    /// The world gained or lost stations since the plan was computed.
    StationCountChanged {
        /// Stations the plan covers.
        planned: usize,
        /// Stations the world holds now.
        actual: usize,
    },
}

impl std::fmt::Display for ShardIncoherence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardIncoherence::CoupledAcrossShards { a, b, dist_m } => write!(
                f,
                "coupled stations {a} and {b} ({dist_m:.1} m apart) straddle shards"
            ),
            ShardIncoherence::LookaheadExceedsDelay { a, b, delay } => write!(
                f,
                "plan lookahead exceeds the {delay} propagation delay of cross-shard pair ({a}, {b})"
            ),
            ShardIncoherence::StationCountChanged { planned, actual } => write!(
                f,
                "plan covers {planned} stations but the world holds {actual}"
            ),
        }
    }
}

/// The digested output of a component run: everything the
/// sharded-vs-serial differential contract compares.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardRunReport {
    /// Number of component worlds executed.
    pub shards: usize,
    /// Total events across all components.
    pub events: u64,
    /// Per-component event totals, in shard order.
    pub per_shard_events: Vec<u64>,
    /// FNV-1a over the per-shard trace JSONL, concatenated in shard
    /// order.
    pub trace_fnv: u64,
    /// FNV-1a over the per-shard metrics-snapshot JSONL, concatenated
    /// in shard order.
    pub metrics_fnv: u64,
}

/// Mixer for per-component RNG streams: component `k` of a plan seeds
/// its world with `base ^ (k · φ64)`, so component 0 keeps the base
/// seed (the bridge to the classic single-world engine) and every
/// further component gets an independent, reproducible stream.
pub fn component_seed(base: u64, k: usize) -> u64 {
    base ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Digests a slice of already-run component simulations into a
/// [`ShardRunReport`]: per-shard trace and metrics JSONL concatenated
/// in shard order, then FNV-1a'd. Public so callers that need
/// per-component observables (CITY-DCF extracts per-BSS counters) can
/// run the components themselves and still produce the exact digest
/// the differential contract compares.
pub fn digest_components(
    sims: &[Simulation<WlanWorld>],
    per_shard_events: Vec<u64>,
    horizon: SimTime,
    tag: &str,
) -> ShardRunReport {
    let mut trace_jsonl = String::new();
    let mut metrics_jsonl = String::new();
    for sim in sims {
        trace_jsonl.push_str(&sim.world().trace.to_jsonl(tag));
        metrics_jsonl.push_str(&sim.world().metrics_snapshot(horizon).to_jsonl(tag));
    }
    ShardRunReport {
        shards: sims.len(),
        events: per_shard_events.iter().sum(),
        trace_fnv: fnv1a(trace_jsonl.as_bytes()),
        metrics_fnv: fnv1a(metrics_jsonl.as_bytes()),
        per_shard_events,
    }
}

/// Runs `count` component worlds **serially**: each is built by
/// `build(k)` and advanced straight to `horizon` with a single
/// `run_until` call. This is the reference execution of the
/// differential contract.
pub fn run_components_serial<B>(
    count: usize,
    horizon: SimTime,
    tag: &str,
    build: B,
) -> ShardRunReport
where
    B: Fn(usize) -> Simulation<WlanWorld>,
{
    let mut sims: Vec<Simulation<WlanWorld>> = (0..count).map(&build).collect();
    let per_shard_events: Vec<u64> = sims.iter_mut().map(|s| s.run_until(horizon)).collect();
    digest_components(&sims, per_shard_events, horizon, tag)
}

/// Runs `count` component worlds under the **windowed shard
/// executor**: all components are built up front (in shard order,
/// deterministically), then advanced in lockstep `window`-sized steps
/// on up to `workers` scoped threads with a barrier between windows.
///
/// Worlds never exchange state, so the barrier discipline — and the
/// worker count — cannot change any component's event execution; the
/// differential harness verifies exactly that, byte for byte, against
/// [`run_components_serial`].
pub fn run_components_windowed<B>(
    count: usize,
    horizon: SimTime,
    window: SimDuration,
    workers: usize,
    tag: &str,
    build: B,
) -> ShardRunReport
where
    B: Fn(usize) -> Simulation<WlanWorld> + Sync,
{
    let mut sims: Vec<Simulation<WlanWorld>> = (0..count).map(&build).collect();
    let (per_shard_events, _msgs) =
        run_shards_windowed(&mut sims, workers, window, horizon, |sim, deadline| {
            sim.run_until(deadline)
        });
    digest_components(&sims, per_shard_events, horizon, tag)
}

/// Picks the executor window for a plan: the cross-shard lookahead,
/// batched up to at least `floor` (windows far smaller than the
/// horizon only add barrier crossings — safe in either case because
/// shards are *exactly* decoupled, see DESIGN.md §15), and clamped so
/// a single-shard or infinite-lookahead plan still advances in a
/// bounded number of windows.
pub fn executor_window(plan: &ShardPlan, horizon: SimTime, floor: SimDuration) -> SimDuration {
    let eighth = SimDuration::from_nanos((horizon.as_nanos() / 8).max(1));
    // Degenerate lookaheads — single shard, unbounded (MAX), or zero
    // (shards whose bounding boxes touch, e.g. a cross-channel shard
    // inside another's hull) — fall back to horizon/8: the window is
    // free to be anything because cross-shard coupling is exactly
    // zero, and 8 windows bound the barrier count.
    if plan.shard_count() < 2
        || plan.lookahead == SimDuration::MAX
        || plan.lookahead == SimDuration::ZERO
    {
        return eighth;
    }
    let mut w = plan.lookahead;
    if w < floor {
        let mult = floor.as_nanos().div_ceil(w.as_nanos());
        w = SimDuration::from_nanos(w.as_nanos().saturating_mul(mult));
    }
    w.min(eighth).max(SimDuration::from_nanos(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::FrameId;
    use crate::neighbors::NeighborCache;
    use crate::sim::{MacConfig, WlanWorld};
    use wn_sim::ShardMsg;

    /// Compile-time `Send` audit (ISSUE 8 satellite): the whole shard
    /// payload chain must stay `Send` so worlds can migrate onto
    /// executor threads. A reintroduced `Rc`/`RefCell` anywhere in
    /// these types fails this *at build time*.
    fn assert_send<T: Send>() {}

    #[test]
    fn shard_payload_types_are_send() {
        assert_send::<FrameId>();
        assert_send::<NeighborCache>();
        assert_send::<WlanWorld>();
        assert_send::<Simulation<WlanWorld>>();
        assert_send::<ShardMsg>();
        assert_send::<ShardPlan>();
        assert_send::<ShardRunReport>();
    }

    #[test]
    fn propagation_delay_rounds_down() {
        // 300 m ≈ 1000.69 ns of flight time → 1000 ns conservative.
        assert_eq!(propagation_delay(300.0), SimDuration::from_nanos(1000));
        assert_eq!(propagation_delay(0.0), SimDuration::ZERO);
    }

    #[test]
    fn executor_window_batches_lookahead_up_to_floor() {
        let plan = ShardPlan {
            shard_of: vec![0, 1],
            shards: vec![vec![0], vec![1]],
            lookahead: SimDuration::from_nanos(700),
            max_interference_range_m: 250.0,
        };
        let w = executor_window(
            &plan,
            SimTime::from_millis(100),
            SimDuration::from_micros(64),
        );
        // An integer multiple of the lookahead, at least the floor.
        assert_eq!(w.as_nanos() % 700, 0);
        assert!(w >= SimDuration::from_micros(64));
        // Single-shard plans fall back to horizon/8.
        let single = ShardPlan {
            shard_of: vec![0],
            shards: vec![vec![0]],
            lookahead: SimDuration::MAX,
            max_interference_range_m: f64::INFINITY,
        };
        let w1 = executor_window(
            &single,
            SimTime::from_millis(8),
            SimDuration::from_micros(64),
        );
        assert_eq!(w1, SimDuration::from_millis(1));
    }

    #[test]
    fn component_harness_serial_equals_windowed_on_empty_worlds() {
        let build = |k: usize| {
            let mut cfg = MacConfig::new(wn_phy::PhyStandard::Dot11b);
            cfg.seed = 0x5eed ^ k as u64;
            Simulation::new(WlanWorld::new(cfg))
        };
        let horizon = SimTime::from_millis(2);
        let serial = run_components_serial(3, horizon, "shard", build);
        for workers in [1, 2, 4] {
            let windowed = run_components_windowed(
                3,
                horizon,
                SimDuration::from_micros(64),
                workers,
                "shard",
                build,
            );
            assert_eq!(serial, windowed, "workers {workers}");
        }
    }
}
