//! Named metric registry.
//!
//! The instruments in [`crate::stats`] are plain values a world embeds
//! wherever it likes; nothing names them or gathers them for export. A
//! [`MetricsRegistry`] closes that gap: each instrument is registered
//! under a [`MetricKey`] — `(layer, name, station)` — and the whole
//! registry can be snapshot at any [`SimTime`] into a flat, sorted
//! [`MetricsSnapshot`] with a deterministic JSONL rendering.
//!
//! Worlds keep their hot-path counters as plain struct fields (a
//! `BTreeMap` lookup per frame would be wasteful) and *export* them into
//! a registry when asked — see `WlanWorld::metrics_snapshot` and its
//! siblings. Genuinely low-rate instruments can live in the registry
//! directly.
//!
//! Keys are `&'static str` on purpose: metric names are code, not data,
//! and static strings keep registration allocation-free. The map is a
//! `BTreeMap`, so iteration — and therefore every exported artifact —
//! is in stable `(layer, name, station)` order regardless of insertion
//! order or thread count.

use std::collections::BTreeMap;

use crate::json;
use crate::stats::{Counter, Histogram, Summary, TimeWeighted};
use crate::time::SimTime;

/// Identity of one instrument in a [`MetricsRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Protocol layer or subsystem, e.g. `"mac"`, `"net"`, `"wman"`.
    pub layer: &'static str,
    /// Instrument name, e.g. `"tx_frames"`, `"access_delay_us"`.
    pub name: &'static str,
    /// Station the instrument belongs to; `None` for world-level.
    pub station: Option<u32>,
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Summary(Summary),
    Histogram(Histogram),
    Gauge(TimeWeighted),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Summary(_) => "summary",
            Instrument::Histogram(_) => "histogram",
            Instrument::Gauge(_) => "gauge",
        }
    }
}

/// A named collection of statistics instruments.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    map: BTreeMap<MetricKey, Instrument>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns the counter under `(layer, name, station)`, registering
    /// it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different
    /// instrument kind.
    pub fn counter(
        &mut self,
        layer: &'static str,
        name: &'static str,
        station: Option<u32>,
    ) -> &mut Counter {
        let key = MetricKey {
            layer,
            name,
            station,
        };
        let slot = self
            .map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Counter::new()));
        match slot {
            Instrument::Counter(c) => c,
            other => panic!(
                "metric {layer}/{name} already registered as {}",
                other.kind()
            ),
        }
    }

    /// Returns the summary under `(layer, name, station)`, registering
    /// it on first use.
    ///
    /// # Panics
    ///
    /// Panics on instrument-kind mismatch, like [`MetricsRegistry::counter`].
    pub fn summary(
        &mut self,
        layer: &'static str,
        name: &'static str,
        station: Option<u32>,
    ) -> &mut Summary {
        let key = MetricKey {
            layer,
            name,
            station,
        };
        let slot = self
            .map
            .entry(key)
            .or_insert_with(|| Instrument::Summary(Summary::new()));
        match slot {
            Instrument::Summary(s) => s,
            other => panic!(
                "metric {layer}/{name} already registered as {}",
                other.kind()
            ),
        }
    }

    /// Returns the histogram under `(layer, name, station)`, registering
    /// it on first use.
    ///
    /// # Panics
    ///
    /// Panics on instrument-kind mismatch, like [`MetricsRegistry::counter`].
    pub fn histogram(
        &mut self,
        layer: &'static str,
        name: &'static str,
        station: Option<u32>,
    ) -> &mut Histogram {
        let key = MetricKey {
            layer,
            name,
            station,
        };
        let slot = self
            .map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Histogram::new()));
        match slot {
            Instrument::Histogram(h) => h,
            other => panic!(
                "metric {layer}/{name} already registered as {}",
                other.kind()
            ),
        }
    }

    /// Returns the time-weighted gauge under `(layer, name, station)`,
    /// registering it on first use with `start`/`initial`.
    ///
    /// # Panics
    ///
    /// Panics on instrument-kind mismatch, like [`MetricsRegistry::counter`].
    pub fn gauge(
        &mut self,
        layer: &'static str,
        name: &'static str,
        station: Option<u32>,
        start: SimTime,
        initial: f64,
    ) -> &mut TimeWeighted {
        let key = MetricKey {
            layer,
            name,
            station,
        };
        let slot = self
            .map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(TimeWeighted::new(start, initial)));
        match slot {
            Instrument::Gauge(g) => g,
            other => panic!(
                "metric {layer}/{name} already registered as {}",
                other.kind()
            ),
        }
    }

    /// Captures every instrument's state at virtual time `at`.
    ///
    /// Rows come out in `(layer, name, station)` order — the registry's
    /// `BTreeMap` order — so snapshots of equal registries are equal.
    pub fn snapshot(&self, at: SimTime) -> MetricsSnapshot {
        let rows = self
            .map
            .iter()
            .map(|(key, inst)| {
                let fields: Vec<(&'static str, f64)> = match inst {
                    Instrument::Counter(c) => vec![("value", c.get() as f64)],
                    Instrument::Summary(s) => vec![
                        ("n", s.count() as f64),
                        ("sum", s.sum()),
                        ("mean", s.mean()),
                        ("std_dev", s.std_dev()),
                        ("min", s.min().unwrap_or(0.0)),
                        ("max", s.max().unwrap_or(0.0)),
                    ],
                    Instrument::Histogram(h) => vec![
                        ("n", h.count() as f64),
                        ("mean", h.mean()),
                        ("p50", h.quantile(0.50).unwrap_or(0) as f64),
                        ("p99", h.quantile(0.99).unwrap_or(0) as f64),
                    ],
                    Instrument::Gauge(g) => vec![
                        ("current", g.current()),
                        ("max", g.max()),
                        ("time_avg", g.time_average(at)),
                    ],
                };
                MetricRow {
                    key: *key,
                    kind: inst.kind(),
                    fields,
                }
            })
            .collect();
        MetricsSnapshot { at, rows }
    }
}

/// One instrument's state inside a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Which instrument this row describes.
    pub key: MetricKey,
    /// Instrument kind: `"counter"`, `"summary"`, `"histogram"` or
    /// `"gauge"`.
    pub kind: &'static str,
    /// Flattened `(field, value)` pairs, in a fixed per-kind order.
    pub fields: Vec<(&'static str, f64)>,
}

/// A point-in-time capture of a [`MetricsRegistry`].
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Virtual time of the capture.
    pub at: SimTime,
    /// Rows in stable `(layer, name, station)` order.
    pub rows: Vec<MetricRow>,
}

impl MetricsSnapshot {
    /// Serialises the snapshot as one JSON object per line.
    ///
    /// `exp` tags each line with the experiment id, mirroring
    /// [`crate::trace::Trace::to_jsonl`]; key order and number
    /// formatting are fixed so equal snapshots are byte-identical.
    pub fn to_jsonl(&self, exp: &str) -> String {
        let mut out = String::with_capacity(self.rows.len() * 96);
        for row in &self.rows {
            out.push_str("{\"exp\":");
            json::push_str(&mut out, exp);
            out.push_str(",\"at_ns\":");
            out.push_str(&self.at.as_nanos().to_string());
            json::push_str_field(&mut out, "layer", row.key.layer);
            json::push_str_field(&mut out, "name", row.key.name);
            out.push_str(",\"station\":");
            match row.key.station {
                Some(s) => out.push_str(&s.to_string()),
                None => out.push_str("null"),
            }
            json::push_str_field(&mut out, "kind", row.kind);
            for (field, value) in &row.fields {
                json::push_f64_field(&mut out, field, *value);
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_reuses_instruments() {
        let mut reg = MetricsRegistry::new();
        reg.counter("mac", "tx_frames", Some(0)).incr();
        reg.counter("mac", "tx_frames", Some(0)).incr();
        reg.counter("mac", "tx_frames", Some(1)).incr();
        reg.summary("mac", "access_delay_us", None).record(120.0);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.counter("mac", "tx_frames", Some(0)).get(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("mac", "x", None).incr();
        let _ = reg.summary("mac", "x", None);
    }

    #[test]
    fn snapshot_rows_are_sorted_and_stable() {
        let mut reg = MetricsRegistry::new();
        // Insert out of order; snapshot must come out sorted.
        reg.counter("net", "assoc", Some(2)).incr();
        reg.counter("mac", "tx_frames", Some(1)).add(7);
        reg.counter("mac", "tx_frames", Some(0)).add(3);
        let snap = reg.snapshot(SimTime::from_millis(5));
        let keys: Vec<(&str, &str, Option<u32>)> = snap
            .rows
            .iter()
            .map(|r| (r.key.layer, r.key.name, r.key.station))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("mac", "tx_frames", Some(0)),
                ("mac", "tx_frames", Some(1)),
                ("net", "assoc", Some(2)),
            ]
        );
        let jsonl = snap.to_jsonl("TAB-9.9");
        assert_eq!(
            jsonl.lines().next().unwrap(),
            "{\"exp\":\"TAB-9.9\",\"at_ns\":5000000,\"layer\":\"mac\",\"name\":\"tx_frames\",\
             \"station\":0,\"kind\":\"counter\",\"value\":3}"
        );
        assert_eq!(jsonl.lines().count(), 3);
    }

    fn gauge_field(snap: &MetricsSnapshot, field: &str) -> f64 {
        let row = &snap.rows[0];
        assert_eq!(row.kind, "gauge");
        row.fields.iter().find(|(f, _)| *f == field).unwrap().1
    }

    #[test]
    fn gauge_snapshot_uses_capture_time() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("mac", "queue_depth", Some(0), SimTime::ZERO, 0.0)
            .set(SimTime::from_millis(10), 4.0);
        let snap = reg.snapshot(SimTime::from_millis(20));
        // 0 for 10 ms then 4 for 10 ms -> time average 2.
        let avg = gauge_field(&snap, "time_avg");
        assert!((avg - 2.0).abs() < 1e-9, "{avg}");
    }

    /// The end-of-run flush shape `report --metrics-json` produces:
    /// the snapshot deadline sits far past the gauge's last update, and
    /// the interval from that update to end-of-sim must be weighted at
    /// the *final* value. Accounting only up to last-update time would
    /// report 2.0 here (the 0–20 ms average) instead of 1.2.
    #[test]
    fn gauge_end_of_run_flush_accounts_tail_interval() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("mac", "queue_depth", Some(0), SimTime::ZERO, 0.0);
        g.set(SimTime::from_millis(10), 4.0);
        g.set(SimTime::from_millis(20), 1.0);
        let snap = reg.snapshot(SimTime::from_millis(100));
        // (0·10 + 4·10 + 1·80) / 100 = 1.2 — the 80 ms tail counts.
        let avg = gauge_field(&snap, "time_avg");
        assert!((avg - 1.2).abs() < 1e-9, "{avg}");
        assert_eq!(gauge_field(&snap, "current"), 1.0);
        assert_eq!(gauge_field(&snap, "max"), 4.0);
        // A later flush of the same registry weights the longer tail.
        let later = reg.snapshot(SimTime::from_millis(980));
        let avg = gauge_field(&later, "time_avg");
        assert!((avg - (40.0 + 960.0) / 980.0).abs() < 1e-9, "{avg}");
    }
}
