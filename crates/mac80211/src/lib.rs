//! `wn-mac80211` — the IEEE 802.11 MAC sublayer of §4.
//!
//! Three layers of machinery:
//!
//! 1. **Frame codec** ([`frame`], [`addr`]) — the nine-field MAC frame
//!    of Fig. 1.12, bit-exact, with a real CRC-32 FCS.
//! 2. **MAC mechanisms** ([`duration`], [`dedup`], [`arf`]) — NAV
//!    arithmetic, duplicate filtering, and ARF rate fallback.
//! 3. **The medium simulation** ([`sim`]) — DCF/CSMA-CA over a shared
//!    radio channel with hidden terminals, capture, fragmentation
//!    bursts, RTS/CTS protection and power-save hooks. Higher layers
//!    (the BSS/ESS architecture of §3, in `wn-net80211`) plug in via
//!    [`sim::UpperLayer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod arena;
pub mod arf;
pub mod dedup;
pub mod duration;
pub mod frame;
pub mod grid;
pub mod neighbors;
pub mod shard;
pub mod sim;

pub use addr::MacAddr;
pub use arena::{FrameArena, FrameId};
pub use frame::{DsBits, Frame, FrameControl, FrameType, SequenceControl, Subtype};
pub use sim::{
    boot, inject_at, neighbor_cache_default, qos_inject_at, set_neighbor_cache_default,
    AccessCategory, Command, MacConfig, MacEvent, StationId, UpperCtx, UpperLayer, WlanWorld,
};
