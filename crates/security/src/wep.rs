//! Wired Equivalent Privacy (§5.2).
//!
//! "WEP was ratified as a Wi-Fi security standard in September of
//! 1999. The first versions … restricted … to only 64-bit encryption.
//! When the restrictions were lifted, it was increased to 128-bit.
//! Despite the introduction of 256-bit WEP encryption, 128-bit remains
//! one of the most common implementations."
//!
//! The protocol exactly as deployed: a 24-bit public IV is prepended to
//! the secret key to seed RC4; integrity is a CRC-32 ICV encrypted
//! along with the payload. Both design choices are fatal — see
//! [`crate::attacks`].

use wn_crypto::{crc32, Rc4};

/// The three §5.2 key sizes (secret portion; the advertised size adds
/// the 24-bit IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WepKeySize {
    /// "64-bit" WEP: 40-bit secret.
    Wep64,
    /// "128-bit" WEP: 104-bit secret — "one of the most common".
    Wep128,
    /// "256-bit" WEP: 232-bit secret.
    Wep256,
}

impl WepKeySize {
    /// Secret key length in bytes.
    pub fn secret_len(self) -> usize {
        match self {
            WepKeySize::Wep64 => 5,
            WepKeySize::Wep128 => 13,
            WepKeySize::Wep256 => 29,
        }
    }

    /// The advertised key size in bits (secret + IV).
    pub fn advertised_bits(self) -> usize {
        (self.secret_len() + 3) * 8
    }
}

/// A WEP secret key.
#[derive(Clone, PartialEq, Eq)]
pub struct WepKey {
    secret: Vec<u8>,
}

impl std::fmt::Debug for WepKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WepKey({} bits)", (self.secret.len() + 3) * 8)
    }
}

/// Errors from WEP operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WepError {
    /// Key bytes did not match a supported size.
    BadKeyLength(usize),
    /// Ciphertext shorter than IV + key id + ICV.
    TooShort,
    /// The decrypted ICV did not match — corrupted or forged… in
    /// principle (see the bit-flip attack for why this check is weak).
    BadIcv,
}

impl std::fmt::Display for WepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WepError::BadKeyLength(n) => write!(f, "unsupported WEP key length {n}"),
            WepError::TooShort => write!(f, "WEP frame too short"),
            WepError::BadIcv => write!(f, "WEP ICV check failed"),
        }
    }
}

impl std::error::Error for WepError {}

impl WepKey {
    /// Creates a key from raw secret bytes (5, 13 or 29).
    pub fn new(secret: &[u8]) -> Result<Self, WepError> {
        match secret.len() {
            5 | 13 | 29 => Ok(WepKey {
                secret: secret.to_vec(),
            }),
            n => Err(WepError::BadKeyLength(n)),
        }
    }

    /// The key size class.
    pub fn size(&self) -> WepKeySize {
        match self.secret.len() {
            5 => WepKeySize::Wep64,
            13 => WepKeySize::Wep128,
            _ => WepKeySize::Wep256,
        }
    }

    /// The secret bytes (used by the key-recovery attack to verify).
    pub fn secret(&self) -> &[u8] {
        &self.secret
    }

    /// The RC4 seed for a given IV: `IV || secret` — the fatal
    /// construction (the IV is public and the per-packet key is
    /// related to the long-term secret).
    pub fn seed(&self, iv: [u8; 3]) -> Vec<u8> {
        let mut s = Vec::with_capacity(3 + self.secret.len());
        s.extend_from_slice(&iv);
        s.extend_from_slice(&self.secret);
        s
    }
}

/// An encrypted WEP frame body: IV (3) ‖ key-id (1) ‖ ciphertext ‖
/// encrypted ICV (4).
#[derive(Clone, Debug, PartialEq)]
pub struct WepFrame {
    /// The public, cleartext IV.
    pub iv: [u8; 3],
    /// Key slot (0–3); always 0 here.
    pub key_id: u8,
    /// Ciphertext of payload ‖ ICV.
    pub ciphertext: Vec<u8>,
}

impl WepFrame {
    /// Total over-the-air body length.
    pub fn wire_len(&self) -> usize {
        4 + self.ciphertext.len()
    }
}

/// Encrypts a payload under `key` with the chosen IV.
pub fn encrypt(key: &WepKey, iv: [u8; 3], plaintext: &[u8]) -> WepFrame {
    let mut buf = plaintext.to_vec();
    let icv = crc32(plaintext);
    buf.extend_from_slice(&icv.to_le_bytes());
    let mut rc4 = Rc4::new(&key.seed(iv));
    rc4.apply(&mut buf);
    WepFrame {
        iv,
        key_id: 0,
        ciphertext: buf,
    }
}

/// Decrypts and verifies a frame; returns the payload.
pub fn decrypt(key: &WepKey, frame: &WepFrame) -> Result<Vec<u8>, WepError> {
    if frame.ciphertext.len() < 4 {
        return Err(WepError::TooShort);
    }
    let mut buf = frame.ciphertext.clone();
    let mut rc4 = Rc4::new(&key.seed(frame.iv));
    rc4.apply(&mut buf);
    let (payload, icv_bytes) = buf.split_at(buf.len() - 4);
    let sent = u32::from_le_bytes(icv_bytes.try_into().expect("4 bytes"));
    if crc32(payload) != sent {
        return Err(WepError::BadIcv);
    }
    Ok(payload.to_vec())
}

/// A sequential IV generator — common in real devices and the reason
/// IV collisions were guaranteed: the space is only 2²⁴ ≈ 16.7 M, and
/// wraps "busy network" fast.
#[derive(Clone, Copy, Debug, Default)]
pub struct IvCounter(pub u32);

impl IvCounter {
    /// Next IV, wrapping at 2²⁴.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> [u8; 3] {
        let v = self.0;
        self.0 = (self.0 + 1) & 0x00FF_FFFF;
        [
            (v & 0xFF) as u8,
            ((v >> 8) & 0xFF) as u8,
            ((v >> 16) & 0xFF) as u8,
        ]
    }

    /// Packets until the IV space wraps (collision is then certain).
    pub fn packets_until_wrap(self) -> u32 {
        0x0100_0000 - self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key128() -> WepKey {
        WepKey::new(b"13-byte-key!!").unwrap()
    }

    #[test]
    fn key_sizes_match_text() {
        assert_eq!(WepKeySize::Wep64.advertised_bits(), 64);
        assert_eq!(WepKeySize::Wep128.advertised_bits(), 128);
        assert_eq!(WepKeySize::Wep256.advertised_bits(), 256);
        assert_eq!(WepKey::new(b"12345").unwrap().size(), WepKeySize::Wep64);
        assert_eq!(key128().size(), WepKeySize::Wep128);
        assert!(matches!(
            WepKey::new(b"bad"),
            Err(WepError::BadKeyLength(3))
        ));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = key128();
        let frame = encrypt(&key, [1, 2, 3], b"confidential association data");
        assert_ne!(&frame.ciphertext[..29], b"confidential association data");
        let back = decrypt(&key, &frame).unwrap();
        assert_eq!(back, b"confidential association data");
    }

    #[test]
    fn wrong_key_fails_icv() {
        let frame = encrypt(&key128(), [9, 9, 9], b"payload");
        let other = WepKey::new(b"other-13-key!").unwrap();
        assert_eq!(decrypt(&other, &frame), Err(WepError::BadIcv));
    }

    #[test]
    fn corruption_detected_by_icv() {
        let key = key128();
        let mut frame = encrypt(&key, [4, 5, 6], b"some frame body here");
        frame.ciphertext[3] ^= 0x01;
        assert_eq!(decrypt(&key, &frame), Err(WepError::BadIcv));
    }

    #[test]
    fn same_iv_same_keystream_the_fatal_property() {
        let key = key128();
        let a = encrypt(&key, [7, 7, 7], b"AAAAAAAAAA");
        let b = encrypt(&key, [7, 7, 7], b"BBBBBBBBBB");
        // c1 ⊕ c2 == p1 ⊕ p2 when IVs collide.
        for i in 0..10 {
            assert_eq!(a.ciphertext[i] ^ b.ciphertext[i], b'A' ^ b'B');
        }
        // Distinct IVs do not exhibit this.
        let c = encrypt(&key, [7, 7, 8], b"BBBBBBBBBB");
        let equal = (0..10)
            .filter(|&i| (a.ciphertext[i] ^ c.ciphertext[i]) == (b'A' ^ b'B'))
            .count();
        assert!(equal < 5);
    }

    #[test]
    fn iv_counter_wraps_at_24_bits() {
        let mut c = IvCounter(0x00FF_FFFF);
        assert_eq!(c.next(), [0xFF, 0xFF, 0xFF]);
        assert_eq!(c.next(), [0, 0, 0], "the 2^24 IV space wraps");
    }

    #[test]
    fn iv_space_exhausts_in_hours_at_line_rate_math() {
        // At ~5000 frames/s (saturated 802.11b), 2^24 IVs last under an
        // hour — the arithmetic behind guaranteed keystream reuse.
        let seconds = 0x0100_0000 as f64 / 5000.0;
        assert!(seconds < 3600.0, "{seconds}");
    }

    #[test]
    fn too_short_rejected() {
        let key = key128();
        let frame = WepFrame {
            iv: [0, 0, 0],
            key_id: 0,
            ciphertext: vec![1, 2, 3],
        };
        assert_eq!(decrypt(&key, &frame), Err(WepError::TooShort));
    }

    #[test]
    fn debug_never_prints_secret() {
        let key = WepKey::new(b"supersecret13") // 13 bytes.
            .unwrap();
        let s = format!("{key:?}");
        assert!(!s.contains("supersecret"));
    }
}
