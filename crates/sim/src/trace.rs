//! Bounded event tracing.
//!
//! A [`Trace`] is a ring buffer of timestamped records. Each record
//! carries a human-readable message and, when emitted through
//! [`Trace::event`], a typed [`TraceEvent`] that tests and exporters can
//! match on structurally instead of by substring. The buffer exists for
//! three reasons: interactive debugging of protocol exchanges (print the
//! last N MAC events), test assertions about *ordering* ("the CTS was
//! sent after the RTS", "no data frame preceded association"), and
//! machine-readable JSONL export ([`Trace::to_jsonl`]) for offline
//! analysis of campaign runs.
//!
//! # Eviction contract
//!
//! The buffer is bounded: once `capacity` records are retained, each new
//! record evicts the oldest and increments [`Trace::dropped`]. All query
//! methods operate on the *retained window only*. Ordering queries
//! ([`Trace::happened_before`], [`Trace::happened_before_events`])
//! **panic** when any record has been evicted, because the first
//! occurrence of either needle may have been lost and the answer would
//! be arbitrary. Use [`Trace::happened_before_retained`] when
//! window-relative ordering is genuinely what you want, or size the
//! buffer so nothing is evicted ([`Trace::new`] with a larger capacity).
//! [`Trace::lookup_containing`] reports eviction explicitly via
//! [`Lookup::Evicted`].
//!
//! # Process-global kill switch
//!
//! [`set_observability`] disables record retention process-wide so the
//! cost of the layer can be measured (`perfsuite` runs the campaign once
//! with tracing on and once with it off). Simulation results never
//! depend on trace contents, so toggling it cannot change figures.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::json;
use crate::time::SimTime;

static OBSERVABILITY: AtomicBool = AtomicBool::new(true);

/// Enables or disables all trace retention in this process.
///
/// Used by `perfsuite` to measure the overhead of the observability
/// layer. Defaults to enabled.
pub fn set_observability(enabled: bool) {
    OBSERVABILITY.store(enabled, Ordering::Relaxed);
}

/// `true` when trace retention is enabled (the default).
pub fn observability_enabled() -> bool {
    OBSERVABILITY.load(Ordering::Relaxed)
}

/// Importance of a trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume per-frame detail.
    Debug,
    /// Normal protocol milestones (association, handoff, crack success).
    Info,
    /// Abnormal but recoverable conditions (retry limit, CRC failure).
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// Frame class carried by tx/rx/drop events.
///
/// Mirrors the 802.11 subtype lattice but is protocol-agnostic: other
/// MACs map their frame classes onto the nearest variant (or
/// [`FrameKind::Other`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Association request.
    AssocReq,
    /// Association response.
    AssocResp,
    /// Reassociation request.
    ReassocReq,
    /// Reassociation response.
    ReassocResp,
    /// Probe request.
    ProbeReq,
    /// Probe response.
    ProbeResp,
    /// Beacon.
    Beacon,
    /// Announcement traffic indication message.
    Atim,
    /// Disassociation notice.
    Disassoc,
    /// Authentication frame.
    Auth,
    /// Deauthentication notice.
    Deauth,
    /// Power-save poll.
    PsPoll,
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// Acknowledgement.
    Ack,
    /// Data frame.
    Data,
    /// Data frame with empty body (power-management signalling).
    NullData,
    /// QoS data frame / A-MPDU aggregate (802.11e/n).
    QosData,
    /// Block Ack Request.
    BlockAckReq,
    /// Compressed Block Ack.
    BlockAck,
    /// Anything a particular MAC cannot map onto the variants above.
    Other,
}

/// Why a frame or MSDU was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Transmit queue was at its configured limit.
    QueueFull,
    /// Retry limit exhausted without an acknowledgement.
    RetryLimit,
    /// No route / next hop available.
    NoRoute,
    /// Lost to collision or channel error.
    Collision,
    /// Hop / TTL budget exhausted in a mesh.
    HopLimit,
}

/// A structured trace event.
///
/// Station identifiers are world-local indices (the same `usize` ids the
/// simulation worlds use, narrowed to `u32`). The enum deliberately
/// spans every protocol family in the workspace so one exporter and one
/// set of test helpers serve all crates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A frame was put on the air.
    Tx {
        /// Transmitting station.
        station: u32,
        /// Frame class.
        kind: FrameKind,
        /// On-air length in bytes.
        len: u32,
        /// PHY data rate in Mb/s.
        rate_mbps: f64,
    },
    /// A frame was received and accepted.
    Rx {
        /// Receiving station.
        station: u32,
        /// Frame class.
        kind: FrameKind,
        /// On-air length in bytes.
        len: u32,
        /// Received signal strength in dBm.
        rssi_dbm: f64,
    },
    /// A frame or MSDU was discarded.
    Drop {
        /// Station discarding the frame.
        station: u32,
        /// Frame class.
        kind: FrameKind,
        /// Why it was discarded.
        reason: DropReason,
    },
    /// Contention backoff armed.
    Backoff {
        /// Station deferring.
        station: u32,
        /// Slots drawn from the contention window.
        slots: u32,
        /// Current contention window size.
        cw: u32,
    },
    /// Virtual carrier-sense (NAV) reservation observed.
    Nav {
        /// Station honouring the reservation.
        station: u32,
        /// Reservation end, microseconds of virtual time.
        until_us: u64,
    },
    /// A transmission attempt is being retried.
    Retry {
        /// Retrying station.
        station: u32,
        /// Short retry counter after the increment.
        short: u32,
        /// Long retry counter after the increment.
        long: u32,
    },
    /// Final outcome of an MSDU handed to the MAC.
    TxOutcome {
        /// Originating station.
        station: u32,
        /// `true` on acknowledged delivery, `false` on failure.
        ok: bool,
    },
    /// Association (or reassociation) completed.
    Assoc {
        /// Station that associated (STA side) or granted (AP side).
        station: u32,
        /// Association identifier assigned by the AP.
        aid: u16,
    },
    /// Station moved to a different point of attachment.
    Handoff {
        /// Roaming station.
        station: u32,
    },
    /// Power-save state transition.
    PowerSave {
        /// Station changing state.
        station: u32,
        /// `true` when entering doze, `false` when waking.
        doze: bool,
    },
    /// A node joined a network/piconet under a parent/master.
    Join {
        /// Joining node.
        station: u32,
        /// Parent, coordinator or piconet master.
        parent: u32,
    },
    /// Piconet master polled a slave (TDD slot pair).
    Poll {
        /// Polling master.
        station: u32,
        /// Polled slave.
        peer: u32,
        /// Slot pairs exchanged.
        slots: u32,
    },
    /// Scheduler granted capacity to a subscriber for one frame.
    Grant {
        /// Subscriber station.
        station: u32,
        /// Bytes moved under the grant.
        bytes: u64,
        /// `true` for an uplink grant, `false` for downlink.
        uplink: bool,
    },
    /// End-to-end delivery in a multi-hop network.
    Deliver {
        /// Destination node.
        station: u32,
        /// Payload bytes delivered.
        bytes: u64,
        /// Hops traversed.
        hops: u32,
    },
    /// One forwarding hop in a multi-hop network.
    Forward {
        /// Node doing the forwarding.
        station: u32,
        /// Final destination node.
        dst: u32,
        /// Hops traversed so far.
        hops: u32,
    },
    /// Key-recovery progress in a security experiment.
    Crack {
        /// Attacking station.
        station: u32,
        /// Attack method label.
        method: &'static str,
        /// Whether the key was recovered.
        ok: bool,
    },
    /// EDCA per-access-category contention backoff armed (802.11e).
    EdcaBackoff {
        /// Station deferring.
        station: u32,
        /// Access category (0 = AC_VO … 3 = AC_BK).
        ac: u8,
        /// Slots drawn from the category's contention window.
        slots: u32,
        /// The category's current contention window size.
        cw: u32,
    },
    /// An A-MPDU aggregate was put on the air. Bit `k` of `bitmap` set
    /// means an MPDU with sequence number `ssn + k` rode the aggregate.
    AmpduTx {
        /// Transmitting station.
        station: u32,
        /// Access category of the aggregate.
        ac: u8,
        /// Starting sequence number of the block-ack window.
        ssn: u16,
        /// MPDU presence bitmap relative to `ssn`.
        bitmap: u64,
    },
    /// A block ack was processed by the originator. Bit `k` of `bitmap`
    /// set means the MPDU with sequence `ssn + k` was acknowledged and
    /// completed by this block ack (already-completed sequences are
    /// masked out, so each sequence number completes at most once).
    BlockAckRx {
        /// Originating (data-sending) station processing the BA.
        station: u32,
        /// Access category of the acknowledged aggregate.
        ac: u8,
        /// Starting sequence number of the block-ack window.
        ssn: u16,
        /// Acknowledged-MPDU bitmap relative to `ssn`.
        bitmap: u64,
    },
    /// An MPDU exhausted its retry budget and left the block-ack
    /// window unacknowledged.
    MpduDrop {
        /// Originating station dropping the MPDU.
        station: u32,
        /// Access category of the dropped MPDU.
        ac: u8,
        /// Sequence number of the dropped MPDU.
        seq: u16,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Tx {
                station,
                kind,
                len,
                rate_mbps,
            } => write!(f, "tx {kind:?} sta={station} len={len} rate={rate_mbps:.1}"),
            TraceEvent::Rx {
                station,
                kind,
                len,
                rssi_dbm,
            } => write!(f, "rx {kind:?} sta={station} len={len} rssi={rssi_dbm:.1}"),
            TraceEvent::Drop {
                station,
                kind,
                reason,
            } => write!(f, "drop {kind:?} sta={station} reason={reason:?}"),
            TraceEvent::Backoff { station, slots, cw } => {
                write!(f, "backoff sta={station} slots={slots} cw={cw}")
            }
            TraceEvent::Nav { station, until_us } => {
                write!(f, "nav sta={station} until={until_us}us")
            }
            TraceEvent::Retry {
                station,
                short,
                long,
            } => write!(f, "retry sta={station} short={short} long={long}"),
            TraceEvent::TxOutcome { station, ok } => {
                write!(f, "tx-outcome sta={station} ok={ok}")
            }
            TraceEvent::Assoc { station, aid } => write!(f, "assoc sta={station} aid={aid}"),
            TraceEvent::Handoff { station } => write!(f, "handoff sta={station}"),
            TraceEvent::PowerSave { station, doze } => {
                write!(f, "power-save sta={station} doze={doze}")
            }
            TraceEvent::Join { station, parent } => {
                write!(f, "join sta={station} parent={parent}")
            }
            TraceEvent::Poll {
                station,
                peer,
                slots,
            } => write!(f, "poll master={station} slave={peer} slots={slots}"),
            TraceEvent::Grant {
                station,
                bytes,
                uplink,
            } => write!(f, "grant ss={station} bytes={bytes} uplink={uplink}"),
            TraceEvent::Deliver {
                station,
                bytes,
                hops,
            } => write!(f, "deliver sta={station} bytes={bytes} hops={hops}"),
            TraceEvent::Forward { station, dst, hops } => {
                write!(f, "forward sta={station} dst={dst} hops={hops}")
            }
            TraceEvent::Crack {
                station,
                method,
                ok,
            } => write!(f, "crack sta={station} method={method} ok={ok}"),
            TraceEvent::EdcaBackoff {
                station,
                ac,
                slots,
                cw,
            } => write!(
                f,
                "edca-backoff sta={station} ac={ac} slots={slots} cw={cw}"
            ),
            TraceEvent::AmpduTx {
                station,
                ac,
                ssn,
                bitmap,
            } => write!(
                f,
                "ampdu-tx sta={station} ac={ac} ssn={ssn} bitmap={bitmap:#x}"
            ),
            TraceEvent::BlockAckRx {
                station,
                ac,
                ssn,
                bitmap,
            } => write!(
                f,
                "block-ack-rx sta={station} ac={ac} ssn={ssn} bitmap={bitmap:#x}"
            ),
            TraceEvent::MpduDrop { station, ac, seq } => {
                write!(f, "mpdu-drop sta={station} ac={ac} seq={seq}")
            }
        }
    }
}

impl TraceEvent {
    /// Stable discriminant used as the JSON `type` field.
    pub fn type_tag(&self) -> &'static str {
        match self {
            TraceEvent::Tx { .. } => "tx",
            TraceEvent::Rx { .. } => "rx",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::Nav { .. } => "nav",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::TxOutcome { .. } => "tx_outcome",
            TraceEvent::Assoc { .. } => "assoc",
            TraceEvent::Handoff { .. } => "handoff",
            TraceEvent::PowerSave { .. } => "power_save",
            TraceEvent::Join { .. } => "join",
            TraceEvent::Poll { .. } => "poll",
            TraceEvent::Grant { .. } => "grant",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Forward { .. } => "forward",
            TraceEvent::Crack { .. } => "crack",
            TraceEvent::EdcaBackoff { .. } => "edca_backoff",
            TraceEvent::AmpduTx { .. } => "ampdu_tx",
            TraceEvent::BlockAckRx { .. } => "block_ack_rx",
            TraceEvent::MpduDrop { .. } => "mpdu_drop",
        }
    }

    /// Station the event is attributed to.
    pub fn station(&self) -> u32 {
        match *self {
            TraceEvent::Tx { station, .. }
            | TraceEvent::Rx { station, .. }
            | TraceEvent::Drop { station, .. }
            | TraceEvent::Backoff { station, .. }
            | TraceEvent::Nav { station, .. }
            | TraceEvent::Retry { station, .. }
            | TraceEvent::TxOutcome { station, .. }
            | TraceEvent::Assoc { station, .. }
            | TraceEvent::Handoff { station }
            | TraceEvent::PowerSave { station, .. }
            | TraceEvent::Join { station, .. }
            | TraceEvent::Poll { station, .. }
            | TraceEvent::Grant { station, .. }
            | TraceEvent::Deliver { station, .. }
            | TraceEvent::Forward { station, .. }
            | TraceEvent::Crack { station, .. }
            | TraceEvent::EdcaBackoff { station, .. }
            | TraceEvent::AmpduTx { station, .. }
            | TraceEvent::BlockAckRx { station, .. }
            | TraceEvent::MpduDrop { station, .. } => station,
        }
    }

    /// Appends the event's JSON fields (starting with `"type"`) to `out`.
    fn write_json_fields(&self, out: &mut String) {
        out.push_str("\"type\":\"");
        out.push_str(self.type_tag());
        out.push('"');
        out.push_str(",\"station\":");
        out.push_str(&self.station().to_string());
        match *self {
            TraceEvent::Tx {
                kind,
                len,
                rate_mbps,
                ..
            } => {
                json::push_str_field(out, "kind", &format!("{kind:?}"));
                json::push_u64_field(out, "len", u64::from(len));
                json::push_f64_field(out, "rate_mbps", rate_mbps);
            }
            TraceEvent::Rx {
                kind,
                len,
                rssi_dbm,
                ..
            } => {
                json::push_str_field(out, "kind", &format!("{kind:?}"));
                json::push_u64_field(out, "len", u64::from(len));
                json::push_f64_field(out, "rssi_dbm", rssi_dbm);
            }
            TraceEvent::Drop { kind, reason, .. } => {
                json::push_str_field(out, "kind", &format!("{kind:?}"));
                json::push_str_field(out, "reason", &format!("{reason:?}"));
            }
            TraceEvent::Backoff { slots, cw, .. } => {
                json::push_u64_field(out, "slots", u64::from(slots));
                json::push_u64_field(out, "cw", u64::from(cw));
            }
            TraceEvent::Nav { until_us, .. } => {
                json::push_u64_field(out, "until_us", until_us);
            }
            TraceEvent::Retry { short, long, .. } => {
                json::push_u64_field(out, "short", u64::from(short));
                json::push_u64_field(out, "long", u64::from(long));
            }
            TraceEvent::TxOutcome { ok, .. } => {
                json::push_bool_field(out, "ok", ok);
            }
            TraceEvent::Assoc { aid, .. } => {
                json::push_u64_field(out, "aid", u64::from(aid));
            }
            TraceEvent::Handoff { .. } => {}
            TraceEvent::PowerSave { doze, .. } => {
                json::push_bool_field(out, "doze", doze);
            }
            TraceEvent::Join { parent, .. } => {
                json::push_u64_field(out, "parent", u64::from(parent));
            }
            TraceEvent::Poll { peer, slots, .. } => {
                json::push_u64_field(out, "peer", u64::from(peer));
                json::push_u64_field(out, "slots", u64::from(slots));
            }
            TraceEvent::Grant { bytes, uplink, .. } => {
                json::push_u64_field(out, "bytes", bytes);
                json::push_bool_field(out, "uplink", uplink);
            }
            TraceEvent::Deliver { bytes, hops, .. } => {
                json::push_u64_field(out, "bytes", bytes);
                json::push_u64_field(out, "hops", u64::from(hops));
            }
            TraceEvent::Forward { dst, hops, .. } => {
                json::push_u64_field(out, "dst", u64::from(dst));
                json::push_u64_field(out, "hops", u64::from(hops));
            }
            TraceEvent::Crack { method, ok, .. } => {
                json::push_str_field(out, "method", method);
                json::push_bool_field(out, "ok", ok);
            }
            TraceEvent::EdcaBackoff { ac, slots, cw, .. } => {
                json::push_u64_field(out, "ac", u64::from(ac));
                json::push_u64_field(out, "slots", u64::from(slots));
                json::push_u64_field(out, "cw", u64::from(cw));
            }
            TraceEvent::AmpduTx {
                ac, ssn, bitmap, ..
            }
            | TraceEvent::BlockAckRx {
                ac, ssn, bitmap, ..
            } => {
                json::push_u64_field(out, "ac", u64::from(ac));
                json::push_u64_field(out, "ssn", u64::from(ssn));
                json::push_u64_field(out, "bitmap", bitmap);
            }
            TraceEvent::MpduDrop { ac, seq, .. } => {
                json::push_u64_field(out, "ac", u64::from(ac));
                json::push_u64_field(out, "seq", u64::from(seq));
            }
        }
    }
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct Record {
    /// Virtual time of the record.
    pub at: SimTime,
    /// Importance.
    pub level: Level,
    /// Short category tag, e.g. `"mac"`, `"phy"`, `"sec"`.
    pub tag: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Structured payload when emitted through [`Trace::event`].
    pub event: Option<TraceEvent>,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:?} {}] {}",
            self.at, self.level, self.tag, self.message
        )
    }
}

/// Result of an eviction-aware lookup ([`Trace::lookup_containing`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Found at this index within the retained window.
    Found(usize),
    /// Not present, and nothing was ever evicted — a definitive miss.
    Absent,
    /// Not present in the retained window, but records were evicted, so
    /// a match may have been lost. The answer is unknowable.
    Evicted,
}

/// A bounded ring buffer of trace records.
#[derive(Clone, Debug)]
pub struct Trace {
    records: VecDeque<Record>,
    capacity: usize,
    min_level: Level,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Trace {
    /// Creates a trace retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            min_level: Level::Debug,
            dropped: 0,
        }
    }

    /// Sets the minimum level retained; lower-level records are ignored.
    pub fn set_min_level(&mut self, level: Level) {
        self.min_level = level;
    }

    fn push(&mut self, record: Record) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Appends a record, evicting the oldest when full.
    pub fn emit(&mut self, at: SimTime, level: Level, tag: &'static str, message: String) {
        if level < self.min_level || !observability_enabled() {
            return;
        }
        self.push(Record {
            at,
            level,
            tag,
            message,
            event: None,
        });
    }

    /// Appends a typed event, evicting the oldest record when full.
    ///
    /// The human-readable message is rendered from the event's `Display`
    /// impl — but only after the level filter and the process-global
    /// kill switch have passed, so filtered-out events cost no
    /// formatting or allocation.
    pub fn event(&mut self, at: SimTime, level: Level, tag: &'static str, event: TraceEvent) {
        if level < self.min_level || !observability_enabled() {
            return;
        }
        self.push(Record {
            at,
            level,
            tag,
            message: event.to_string(),
            event: Some(event),
        });
    }

    /// Convenience: emit at [`Level::Debug`].
    pub fn debug(&mut self, at: SimTime, tag: &'static str, message: impl Into<String>) {
        self.emit(at, Level::Debug, tag, message.into());
    }

    /// Convenience: emit at [`Level::Info`].
    pub fn info(&mut self, at: SimTime, tag: &'static str, message: impl Into<String>) {
        self.emit(at, Level::Info, tag, message.into());
    }

    /// Convenience: emit at [`Level::Warn`].
    pub fn warn(&mut self, at: SimTime, tag: &'static str, message: impl Into<String>) {
        self.emit(at, Level::Warn, tag, message.into());
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Typed events currently retained, oldest first, with timestamps.
    ///
    /// Records emitted through the string API are skipped.
    pub fn events(&self) -> impl Iterator<Item = (SimTime, &TraceEvent)> {
        self.records
            .iter()
            .filter_map(|r| r.event.as_ref().map(|e| (r.at, e)))
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Eviction-aware lookup of the first retained record whose message
    /// contains `needle`.
    ///
    /// Unlike [`Trace::position_containing`] this never panics: a miss
    /// is reported as [`Lookup::Absent`] when the buffer has never
    /// evicted (definitive) and as [`Lookup::Evicted`] when records have
    /// been lost (unknowable).
    pub fn lookup_containing(&self, needle: &str) -> Lookup {
        match self.records.iter().position(|r| r.message.contains(needle)) {
            Some(i) => Lookup::Found(i),
            None if self.dropped == 0 => Lookup::Absent,
            None => Lookup::Evicted,
        }
    }

    /// Index of the first retained record whose message contains
    /// `needle`.
    ///
    /// The index is relative to the retained window (what [`Trace::records`]
    /// iterates), not to the full emission history.
    ///
    /// # Panics
    ///
    /// Panics when `needle` is not found *and* records have been
    /// evicted: the match may have been lost, so `None` would be a lie.
    /// Use [`Trace::lookup_containing`] for a non-panicking,
    /// eviction-aware answer.
    pub fn position_containing(&self, needle: &str) -> Option<usize> {
        match self.lookup_containing(needle) {
            Lookup::Found(i) => Some(i),
            Lookup::Absent => None,
            Lookup::Evicted => panic!(
                "Trace::position_containing({needle:?}): no retained match, but {} record(s) \
                 were evicted — the answer is unknowable; use lookup_containing() or a larger \
                 trace capacity",
                self.dropped
            ),
        }
    }

    /// `true` if a record containing `a` precedes one containing `b`.
    ///
    /// The canonical ordering assertion for protocol tests.
    ///
    /// # Panics
    ///
    /// Panics when any record has been evicted, because the *first*
    /// occurrence of either needle may have been lost and the observed
    /// order of the survivors is not evidence of the true order. Use
    /// [`Trace::happened_before_retained`] for window-relative ordering,
    /// or a trace capacity large enough that nothing is evicted.
    pub fn happened_before(&self, a: &str, b: &str) -> bool {
        assert!(
            self.dropped == 0,
            "Trace::happened_before({a:?}, {b:?}): {} record(s) were evicted, so first \
             occurrences may be lost and the ordering is unknowable; use \
             happened_before_retained() or a larger trace capacity",
            self.dropped
        );
        self.happened_before_retained(a, b)
    }

    /// `true` if, *within the retained window*, a record containing `a`
    /// precedes one containing `b`.
    ///
    /// Unlike [`Trace::happened_before`] this does not panic on
    /// eviction; it answers the weaker, always-well-defined question
    /// about the surviving records.
    pub fn happened_before_retained(&self, a: &str, b: &str) -> bool {
        let ia = self.records.iter().position(|r| r.message.contains(a));
        let ib = self.records.iter().position(|r| r.message.contains(b));
        match (ia, ib) {
            (Some(ia), Some(ib)) => ia < ib,
            _ => false,
        }
    }

    /// `true` if an event matching `a` precedes one matching `b`.
    ///
    /// The typed counterpart of [`Trace::happened_before`]: predicates
    /// match on [`TraceEvent`] variants, so tests assert protocol
    /// orderings structurally instead of by substring.
    ///
    /// # Panics
    ///
    /// Panics when any record has been evicted, for the same reason as
    /// [`Trace::happened_before`].
    pub fn happened_before_events(
        &self,
        a: impl Fn(&TraceEvent) -> bool,
        b: impl Fn(&TraceEvent) -> bool,
    ) -> bool {
        assert!(
            self.dropped == 0,
            "Trace::happened_before_events: {} record(s) were evicted, so first occurrences \
             may be lost and the ordering is unknowable; use a larger trace capacity",
            self.dropped
        );
        let ia = self.events().position(|(_, e)| a(e));
        let ib = self.events().position(|(_, e)| b(e));
        match (ia, ib) {
            (Some(ia), Some(ib)) => ia < ib,
            _ => false,
        }
    }

    /// Counts retained records whose message contains `needle`.
    pub fn count_containing(&self, needle: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.message.contains(needle))
            .count()
    }

    /// Counts retained typed events matching `pred`.
    pub fn count_events(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events().filter(|(_, e)| pred(e)).count()
    }

    /// Typed events attributed to `station`, oldest first.
    ///
    /// The per-station view invariant oracles reason over: events
    /// whose [`TraceEvent::station`] does not match are skipped.
    pub fn events_for(&self, station: u32) -> impl Iterator<Item = (SimTime, &TraceEvent)> {
        self.events().filter(move |(_, e)| e.station() == station)
    }

    /// The most recent retained event strictly before `at` matching
    /// `pred`, if any.
    ///
    /// Oracles use this to find the *governing* event for a later
    /// observation — e.g. the NAV reservation in force when a station
    /// started transmitting.
    pub fn last_event_before(
        &self,
        at: SimTime,
        pred: impl Fn(&TraceEvent) -> bool,
    ) -> Option<(SimTime, &TraceEvent)> {
        self.events()
            .take_while(|&(t, _)| t < at)
            .filter(|(_, e)| pred(e))
            .last()
    }

    /// Serialises every retained record as one JSON object per line.
    ///
    /// `exp` tags each line with the experiment id so per-experiment
    /// dumps can be concatenated into one campaign artifact. Key order
    /// and number formatting are fixed, so equal traces produce
    /// byte-identical output.
    pub fn to_jsonl(&self, exp: &str) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            out.push_str("{\"exp\":");
            json::push_str(&mut out, exp);
            out.push_str(",\"at_ns\":");
            out.push_str(&r.at.as_nanos().to_string());
            out.push_str(",\"level\":\"");
            out.push_str(r.level.as_str());
            out.push_str("\",\"tag\":");
            json::push_str(&mut out, r.tag);
            out.push(',');
            match &r.event {
                Some(e) => e.write_json_fields(&mut out),
                None => {
                    out.push_str("\"type\":\"msg\",\"message\":");
                    json::push_str(&mut out, &r.message);
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn emits_and_reads_back() {
        let mut tr = Trace::new(10);
        tr.info(t(1), "mac", "rts sent");
        tr.info(t(2), "mac", "cts sent");
        assert_eq!(tr.len(), 2);
        let msgs: Vec<&str> = tr.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["rts sent", "cts sent"]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Trace::new(3);
        for i in 0..5 {
            tr.info(t(i), "x", format!("m{i}"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let msgs: Vec<&str> = tr.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn level_filter_drops_below_min() {
        let mut tr = Trace::new(10);
        tr.set_min_level(Level::Info);
        tr.debug(t(0), "x", "noise");
        tr.info(t(1), "x", "signal");
        tr.warn(t(2), "x", "alarm");
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn happened_before_orders_correctly() {
        let mut tr = Trace::new(10);
        tr.info(t(1), "mac", "rts to ap");
        tr.info(t(2), "mac", "cts from ap");
        tr.info(t(3), "mac", "data to ap");
        assert!(tr.happened_before("rts", "cts"));
        assert!(tr.happened_before("cts", "data"));
        assert!(!tr.happened_before("data", "rts"));
        assert!(!tr.happened_before("missing", "rts"));
    }

    #[test]
    fn count_containing_counts() {
        let mut tr = Trace::new(10);
        tr.info(t(1), "mac", "retry 1");
        tr.info(t(2), "mac", "retry 2");
        tr.info(t(3), "mac", "ack");
        assert_eq!(tr.count_containing("retry"), 2);
        assert_eq!(tr.count_containing("nak"), 0);
    }

    #[test]
    fn display_includes_time_and_tag() {
        let mut tr = Trace::new(4);
        tr.warn(t(5), "phy", "crc failure");
        let s = tr.records().next().unwrap().to_string();
        assert!(s.contains("phy"), "{s}");
        assert!(s.contains("crc failure"), "{s}");
        assert!(s.contains("5.000ms"), "{s}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Trace::new(0);
    }

    #[test]
    fn typed_events_round_trip() {
        let mut tr = Trace::new(10);
        tr.event(
            t(1),
            Level::Debug,
            "mac",
            TraceEvent::Tx {
                station: 3,
                kind: FrameKind::Rts,
                len: 20,
                rate_mbps: 6.0,
            },
        );
        tr.event(
            t(2),
            Level::Debug,
            "mac",
            TraceEvent::Tx {
                station: 0,
                kind: FrameKind::Cts,
                len: 14,
                rate_mbps: 6.0,
            },
        );
        assert_eq!(tr.events().count(), 2);
        assert!(tr.happened_before_events(
            |e| matches!(
                e,
                TraceEvent::Tx {
                    kind: FrameKind::Rts,
                    ..
                }
            ),
            |e| matches!(
                e,
                TraceEvent::Tx {
                    kind: FrameKind::Cts,
                    ..
                }
            ),
        ));
        assert_eq!(
            tr.count_events(|e| matches!(e, TraceEvent::Tx { station: 3, .. })),
            1
        );
        // The rendered message matches the Display impl.
        let first = tr.records().next().unwrap();
        assert_eq!(first.message, "tx Rts sta=3 len=20 rate=6.0");
    }

    #[test]
    fn events_for_and_last_event_before_query_by_station_and_time() {
        let mut tr = Trace::new(10);
        for (ms, sta, slots) in [(1u64, 0u32, 3u32), (2, 1, 7), (3, 0, 15)] {
            tr.event(
                t(ms),
                Level::Debug,
                "mac",
                TraceEvent::Backoff {
                    station: sta,
                    slots,
                    cw: 31,
                },
            );
        }
        assert_eq!(tr.events_for(0).count(), 2);
        assert_eq!(tr.events_for(1).count(), 1);
        assert_eq!(tr.events_for(9).count(), 0);
        // Strictly-before: the event at t=3 is excluded when at == t(3).
        let (when, ev) = tr
            .last_event_before(t(3), |e| e.station() == 0)
            .expect("governing event");
        assert_eq!(when, t(1));
        assert!(matches!(ev, TraceEvent::Backoff { slots: 3, .. }));
        assert!(tr.last_event_before(t(1), |_| true).is_none());
    }

    #[test]
    fn lookup_is_eviction_aware() {
        let mut tr = Trace::new(2);
        tr.info(t(0), "x", "alpha");
        assert_eq!(tr.lookup_containing("alpha"), Lookup::Found(0));
        assert_eq!(tr.lookup_containing("beta"), Lookup::Absent);
        tr.info(t(1), "x", "bravo");
        tr.info(t(2), "x", "charlie"); // evicts "alpha"
        assert_eq!(tr.dropped(), 1);
        assert_eq!(tr.lookup_containing("alpha"), Lookup::Evicted);
        assert_eq!(tr.lookup_containing("charlie"), Lookup::Found(1));
    }

    /// Regression: pre-fix, a miss after eviction silently returned
    /// `None`, so ordering assertions in long runs could pass or fail
    /// arbitrarily depending on buffer size.
    #[test]
    #[should_panic(expected = "unknowable")]
    fn position_containing_panics_on_evicted_miss() {
        let mut tr = Trace::new(2);
        tr.info(t(0), "x", "alpha");
        tr.info(t(1), "x", "bravo");
        tr.info(t(2), "x", "charlie"); // evicts "alpha"
        let _ = tr.position_containing("alpha");
    }

    /// Regression: pre-fix, `happened_before` silently returned `false`
    /// once the ring had evicted either needle's first occurrence.
    #[test]
    #[should_panic(expected = "unknowable")]
    fn happened_before_panics_after_eviction() {
        let mut tr = Trace::new(2);
        tr.info(t(0), "x", "rts");
        tr.info(t(1), "x", "cts");
        tr.info(t(2), "x", "data"); // evicts "rts"
        let _ = tr.happened_before("rts", "cts");
    }

    #[test]
    fn happened_before_retained_answers_window_question() {
        let mut tr = Trace::new(2);
        tr.info(t(0), "x", "rts");
        tr.info(t(1), "x", "cts");
        tr.info(t(2), "x", "data"); // evicts "rts"
        assert!(tr.happened_before_retained("cts", "data"));
        assert!(!tr.happened_before_retained("rts", "cts"));
    }

    #[test]
    fn jsonl_serialises_typed_and_string_records() {
        let mut tr = Trace::new(8);
        tr.event(
            t(1),
            Level::Debug,
            "mac",
            TraceEvent::Tx {
                station: 1,
                kind: FrameKind::Data,
                len: 1534,
                rate_mbps: 54.0,
            },
        );
        tr.warn(t(2), "phy", "crc \"failure\"\n".to_string());
        let jsonl = tr.to_jsonl("FIG-0.0");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"exp\":\"FIG-0.0\",\"at_ns\":1000000,\"level\":\"debug\",\"tag\":\"mac\",\
             \"type\":\"tx\",\"station\":1,\"kind\":\"Data\",\"len\":1534,\"rate_mbps\":54}"
        );
        assert_eq!(
            lines[1],
            "{\"exp\":\"FIG-0.0\",\"at_ns\":2000000,\"level\":\"warn\",\"tag\":\"phy\",\
             \"type\":\"msg\",\"message\":\"crc \\\"failure\\\"\\n\"}"
        );
    }
}
