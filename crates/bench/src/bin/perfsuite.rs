//! perfsuite — times the full experiment campaign serial vs parallel
//! and records throughput to `BENCH_campaign.json`.
//!
//! Run with: `cargo run --release -p wn-bench --bin perfsuite`
//!
//! The serial pass runs the campaign on one worker; the parallel pass
//! uses `--threads N` (default: detected parallelism / `WN_THREADS`).
//! Both passes produce byte-identical reports — the suite asserts this
//! — so the speedup is measured on genuinely equivalent work. Events
//! per second comes from the simulation kernel's global processed-event
//! counter, not wall-clock guesswork.
//!
//! A third pass re-runs the parallel campaign with the observability
//! kill switch off ([`wn_sim::set_observability`]) to measure what the
//! typed trace/metrics layer costs; figures never read the trace, so
//! this pass must also render byte-identically.
//!
//! A final pair of sections benchmarks the hot paths in isolation on
//! the SCALE-DCF saturation workload: `neighbors` times the cached
//! propagation path against the direct O(n) fan-out at 100 and 1000
//! stations (digests must match bit-for-bit), and `scheduler` races
//! the two queue back ends — the full simulation through each queue,
//! plus the recorded push/pop op stream of that run replayed
//! payload-free through each queue (the isolated queue-cost
//! comparison, since the full run is dominated by MAC/PHY compute).
//!
//! A `shards` section times the spatially-sharded executor on the
//! CITY-DCF flagship city (one interference shard per BSS): the serial
//! component composition against the windowed executor at 1, 2 and 4
//! workers. Digests must be byte-identical in every mode; the speedup
//! verdict is recorded only on multi-core hosts (a single-core box
//! degenerates windowed to serial, see DESIGN.md §15).
//!
//! A `qos` section races A-MPDU aggregation on vs off on the saturated
//! DENSE-OBSS flagship block: the same offered backlog through the
//! EDCA queues with the aggregation cap at the default 16 MPDUs and
//! clamped to 1 (one MPDU per TXOP). The offered load must match
//! exactly and the aggregated run must deliver at least as much — the
//! deterministic form of "aggregation amortises contention overhead".
//!
//! A `grid` section measures what the spatial hash grid buys on the
//! CITY-DCF flagship city (DESIGN.md §17): the sparse grid-backed
//! neighbor-cache build and shard plan against the dense O(n²)
//! equivalents, both live in the same process so the before/after
//! comparison is honest, plus a plan-only scaling row at the METRO-DCF
//! 100k+ flagship. The partitions must be identical and the plan must
//! re-validate coherent.
//!
//! `--section neighbors` (or `scheduler`, `arena`, `shards`, `qos`,
//! `grid`) runs just that section and prints its JSON object — the CI
//! smoke path, which wants the section's equivalence assertions
//! without the full campaign cost.

use std::time::Instant;

use wn_core::runner;
use wn_core::scenarios::{
    city_dcf_run, city_dcf_size, dense_obss_point_opts, metro_dcf_planning_world, metro_dcf_sweep,
    scale_dcf_op_log, scale_dcf_point, scale_dcf_point_opts, CITY_DCF_RANGE_M, DENSE_OBSS_MIX,
};
use wn_sim::{
    global_events_processed, replay_ops, set_observability, worker_count, SchedulerKind, SimTime,
    OP_POP,
};

struct Pass {
    threads: usize,
    wall_s: f64,
    events: u64,
    markdown: String,
}

fn run_pass(threads: usize) -> Pass {
    let ev0 = global_events_processed();
    let t0 = Instant::now();
    let markdown = runner::campaign_markdown(threads);
    let wall_s = t0.elapsed().as_secs_f64();
    Pass {
        threads,
        wall_s,
        events: global_events_processed() - ev0,
        markdown,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parallel_threads: Option<usize> = None;
    let mut out_path = String::from("BENCH_campaign.json");
    let mut section: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--section" => {
                i += 1;
                match args.get(i) {
                    Some(s) => section = Some(s.clone()),
                    None => {
                        eprintln!(
                            "--section needs a name (supported: neighbors, scheduler, arena, shards, qos, grid)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => {
                i += 1;
                parallel_threads = args.get(i).and_then(|v| v.parse().ok()).filter(|&n| n >= 1);
                if parallel_threads.is_none() {
                    eprintln!("--threads needs a count >= 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (supported: --threads N, --out PATH, --section NAME)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let parallel_threads = parallel_threads.unwrap_or_else(worker_count).max(1);

    // `--section NAME` runs one benchmark section in isolation — the CI
    // smoke path, which wants the section's equivalence assertions
    // without paying for the full campaign passes.
    if let Some(name) = section.as_deref() {
        let json = match name {
            "neighbors" => neighbors_section(),
            "scheduler" => scheduler_section(),
            "arena" => arena_section(),
            "shards" => shards_section(),
            "qos" => qos_section(),
            "grid" => grid_section(),
            other => {
                eprintln!(
                    "unknown section '{other}' (supported: neighbors, scheduler, arena, shards, qos, grid)"
                );
                std::process::exit(2);
            }
        };
        print!("{{\n{json}}}\n");
        return;
    }

    eprintln!("perfsuite: serial pass (1 thread)…");
    let serial = run_pass(1);
    eprintln!(
        "perfsuite: serial {:.2} s, {} events ({:.0} ev/s)",
        serial.wall_s,
        serial.events,
        serial.events as f64 / serial.wall_s
    );
    eprintln!("perfsuite: parallel pass ({parallel_threads} threads)…");
    let parallel = run_pass(parallel_threads);
    eprintln!(
        "perfsuite: parallel {:.2} s, {} events ({:.0} ev/s)",
        parallel.wall_s,
        parallel.events,
        parallel.events as f64 / parallel.wall_s
    );

    assert_eq!(
        serial.markdown, parallel.markdown,
        "campaign output must be byte-identical across thread counts"
    );
    assert_eq!(
        serial.events, parallel.events,
        "both passes must process the same simulated events"
    );

    eprintln!("perfsuite: tracing-off pass ({parallel_threads} threads)…");
    set_observability(false);
    let untraced = run_pass(parallel_threads);
    set_observability(true);
    eprintln!(
        "perfsuite: tracing-off {:.2} s, {} events ({:.0} ev/s)",
        untraced.wall_s,
        untraced.events,
        untraced.events as f64 / untraced.wall_s
    );
    assert_eq!(
        parallel.markdown, untraced.markdown,
        "figures must not depend on the trace (kill switch changed the output)"
    );
    // Overhead of the observability layer: >0 means tracing costs time.
    let tracing_overhead = parallel.wall_s / untraced.wall_s - 1.0;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A single-core host runs "parallel" on one worker by construction,
    // so serial/parallel wall clocks differ only by noise. Recording
    // that ratio as a speedup made healthy runs look like regressions
    // (speedup 0.95 on a 1-core box); skip the verdict instead.
    let (speedup_json, speedup_note) = if cores < 2 {
        (
            "\"speedup\": null,\n  \"speedup_verdict\": \"skipped: single-core host, parallel pass degenerates to serial\"".to_string(),
            "speedup n/a (1 core)".to_string(),
        )
    } else {
        let speedup = serial.wall_s / parallel.wall_s;
        (
            format!(
                "\"speedup\": {speedup:.2},\n  \"speedup_verdict\": \"parallel over serial campaign on {cores} cores\""
            ),
            format!("speedup {speedup:.2}x"),
        )
    };

    let neighbors = neighbors_section();
    let neighbors = neighbors.trim_end();
    let scheduler = scheduler_section();
    let scheduler = scheduler.trim_end();
    let arena = arena_section();
    let arena = arena.trim_end();
    let shards = shards_section();
    let shards = shards.trim_end();
    let qos = qos_section();
    let qos = qos.trim_end();
    let grid = grid_section();

    let json = format!(
        "{{\n  \"campaign\": \"EXPERIMENTS.md full regeneration\",\n  \"host_cores\": {cores},\n  \"identical_output\": true,\n  \"serial\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"parallel\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"tracing_off\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"tracing_overhead\": {:.3},\n  {speedup_json},\n{neighbors},\n{scheduler},\n{arena},\n{shards},\n{qos},\n{grid}}}\n",
        serial.threads,
        serial.wall_s,
        serial.events,
        serial.events as f64 / serial.wall_s,
        parallel.threads,
        parallel.wall_s,
        parallel.events,
        parallel.events as f64 / parallel.wall_s,
        untraced.threads,
        untraced.wall_s,
        untraced.events,
        untraced.events as f64 / untraced.wall_s,
        tracing_overhead,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perfsuite: cannot write '{out_path}': {e}");
        std::process::exit(2);
    }
    eprintln!("perfsuite: {speedup_note} on {cores} core(s) -> {out_path}");
    print!("{json}");
}

/// Benchmarks both scheduler back ends on the SCALE-DCF 1000-station
/// workload and returns the `"scheduler"` JSON object (indented two
/// spaces, trailing newline). Panics on any digest disagreement.
fn scheduler_section() -> String {
    const STATIONS: usize = 1000;
    const DURATION_MS: u64 = 200;
    const SEED: u64 = 42;

    // Full simulation through each queue: same events, same metrics
    // digest, wall-clock mostly MAC/PHY compute.
    let mut full = Vec::new();
    for kind in SchedulerKind::ALL {
        eprintln!(
            "perfsuite: SCALE-DCF n={STATIONS} dur={DURATION_MS}ms full sim on {}…",
            kind.label()
        );
        let t0 = Instant::now();
        let p = scale_dcf_point(STATIONS, DURATION_MS, SEED, kind);
        full.push((kind, t0.elapsed().as_secs_f64(), p));
    }
    let (heap_full, wheel_full) = (&full[0], &full[1]);
    assert_eq!(
        (heap_full.2.events, heap_full.2.metrics_fnv),
        (wheel_full.2.events, wheel_full.2.metrics_fnv),
        "scheduler back ends diverged on the full SCALE-DCF run"
    );

    // The isolated queue comparison: record the exact push/pop stream
    // of the same run, then replay it payload-free through each queue.
    let ops = scale_dcf_op_log(STATIONS, DURATION_MS, SEED);
    let pushes = ops.iter().filter(|&&o| o != OP_POP).count();
    let mut replay = Vec::new();
    for kind in SchedulerKind::ALL {
        let t0 = Instant::now();
        let (pops, fnv) = replay_ops(kind, &ops);
        let wall = t0.elapsed().as_secs_f64();
        eprintln!(
            "perfsuite: op-stream replay on {}: {pops} pops in {wall:.3} s ({:.0} ev/s)",
            kind.label(),
            pops as f64 / wall
        );
        replay.push((kind, wall, pops, fnv));
    }
    assert_eq!(
        (replay[0].2, replay[0].3),
        (replay[1].2, replay[1].3),
        "scheduler back ends popped the op stream in different orders"
    );

    let full_rate =
        |p: &(SchedulerKind, f64, wn_core::scenarios::ScaleDcfPoint)| p.2.events as f64 / p.1;
    let replay_rate = |r: &(SchedulerKind, f64, u64, u64)| r.2 as f64 / r.1;
    let full_speedup = full_rate(wheel_full) / full_rate(heap_full);
    let replay_speedup = replay_rate(&replay[1]) / replay_rate(&replay[0]);
    eprintln!(
        "perfsuite: timer wheel vs heap: {full_speedup:.2}x full sim, {replay_speedup:.2}x queue ops"
    );

    format!(
        "  \"scheduler\": {{\n    \"workload\": \"SCALE-DCF stations={STATIONS} duration_ms={DURATION_MS} seed={SEED}\",\n    \"full_sim\": {{\n      \"heap\": {{ \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0} }},\n      \"wheel\": {{ \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0} }},\n      \"metrics_fnv\": \"{:016x}\",\n      \"identical_output\": true,\n      \"wheel_speedup\": {:.2}\n    }},\n    \"queue_op_replay\": {{\n      \"note\": \"recorded push/pop stream of the same run replayed payload-free through each queue\",\n      \"ops\": {},\n      \"pushes\": {pushes},\n      \"heap\": {{ \"wall_s\": {:.3}, \"pops\": {}, \"events_per_s\": {:.0} }},\n      \"wheel\": {{ \"wall_s\": {:.3}, \"pops\": {}, \"events_per_s\": {:.0} }},\n      \"pop_order_fnv\": \"{:016x}\",\n      \"identical_pop_order\": true,\n      \"wheel_speedup\": {:.2}\n    }}\n  }}\n",
        heap_full.1,
        heap_full.2.events,
        full_rate(heap_full),
        wheel_full.1,
        wheel_full.2.events,
        full_rate(wheel_full),
        heap_full.2.metrics_fnv,
        full_speedup,
        ops.len(),
        replay[0].1,
        replay[0].2,
        replay_rate(&replay[0]),
        replay[1].1,
        replay[1].2,
        replay_rate(&replay[1]),
        replay[0].3,
        replay_speedup,
    )
}

/// Benchmarks the frame-arena hot path: the SCALE-DCF full simulation
/// on both scheduler back ends, reported against the recorded
/// `Rc<Frame>` baseline (the representation the arena replaced). The
/// baseline figures are the `scheduler.full_sim` numbers captured in
/// `BENCH_campaign.json` on this workload immediately before the
/// arena/SoA refactor — kept verbatim so the before/after comparison
/// survives regeneration. Panics if the back ends disagree on events
/// or metrics digest.
fn arena_section() -> String {
    const STATIONS: usize = 1000;
    const DURATION_MS: u64 = 200;
    const SEED: u64 = 42;
    // Pre-arena (Rc<Frame>, AoS station structs) events/s on this
    // machine class, from the PR5 BENCH_campaign.json.
    const BASELINE_HEAP_EV_S: f64 = 650_891.0;
    const BASELINE_WHEEL_EV_S: f64 = 801_143.0;

    let mut runs = Vec::new();
    for kind in SchedulerKind::ALL {
        eprintln!(
            "perfsuite: arena SCALE-DCF n={STATIONS} dur={DURATION_MS}ms on {}…",
            kind.label()
        );
        let t0 = Instant::now();
        let p = scale_dcf_point(STATIONS, DURATION_MS, SEED, kind);
        let wall = t0.elapsed().as_secs_f64();
        eprintln!(
            "perfsuite: arena on {}: {wall:.3} s ({:.0} ev/s)",
            kind.label(),
            p.events as f64 / wall
        );
        runs.push((kind, wall, p));
    }
    assert_eq!(
        (runs[0].2.events, runs[0].2.metrics_fnv),
        (runs[1].2.events, runs[1].2.metrics_fnv),
        "scheduler back ends diverged on the arena workload"
    );
    let heap_rate = runs[0].2.events as f64 / runs[0].1;
    let wheel_rate = runs[1].2.events as f64 / runs[1].1;
    eprintln!(
        "perfsuite: arena vs Rc<Frame> baseline: {:.2}x heap, {:.2}x wheel",
        heap_rate / BASELINE_HEAP_EV_S,
        wheel_rate / BASELINE_WHEEL_EV_S
    );

    format!(
        "  \"arena\": {{\n    \"workload\": \"SCALE-DCF stations={STATIONS} duration_ms={DURATION_MS} seed={SEED}, frame arena + SoA DCF state\",\n    \"before\": {{\n      \"note\": \"Rc<Frame> + AoS station structs, recorded before the arena refactor\",\n      \"heap_events_per_s\": {BASELINE_HEAP_EV_S:.0},\n      \"wheel_events_per_s\": {BASELINE_WHEEL_EV_S:.0}\n    }},\n    \"after\": {{\n      \"heap\": {{ \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {heap_rate:.0} }},\n      \"wheel\": {{ \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {wheel_rate:.0} }},\n      \"metrics_fnv\": \"{:016x}\",\n      \"identical_output\": true\n    }},\n    \"speedup_vs_baseline\": {{ \"heap\": {:.2}, \"wheel\": {:.2} }}\n  }}\n",
        runs[0].1,
        runs[0].2.events,
        runs[1].1,
        runs[1].2.events,
        runs[0].2.metrics_fnv,
        heap_rate / BASELINE_HEAP_EV_S,
        wheel_rate / BASELINE_WHEEL_EV_S,
    )
}

/// Benchmarks the windowed shard executor against the serial component
/// composition on the CITY-DCF flagship city and returns the
/// `"shards"` JSON object (indented two spaces, trailing newline).
/// Every mode must produce byte-identical trace and metrics digests —
/// that assertion always runs; the speedup number is recorded only
/// when the host has ≥2 cores (otherwise `null`, with a verdict string
/// saying why), mirroring the campaign-level speedup gate.
fn shards_section() -> String {
    const SEED: u64 = 42;
    const WORKERS: [usize; 3] = [1, 2, 4];
    let (rows, cols, senders, duration_ms) = city_dcf_size();
    let cells = rows * cols;
    let stations = cells * (senders + 1);

    eprintln!(
        "perfsuite: CITY-DCF {cells} cells / {stations} stations, {duration_ms}ms: serial composition…"
    );
    let t0 = Instant::now();
    let serial = city_dcf_run(rows, cols, senders, duration_ms, SEED, None);
    let serial_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "perfsuite: serial composition {serial_s:.3} s ({:.0} ev/s)",
        serial.events as f64 / serial_s
    );

    let mut windowed = Vec::new();
    for w in WORKERS {
        eprintln!("perfsuite: CITY-DCF windowed shard executor, {w} worker(s)…");
        let t0 = Instant::now();
        let r = city_dcf_run(rows, cols, senders, duration_ms, SEED, Some(w));
        let wall = t0.elapsed().as_secs_f64();
        eprintln!(
            "perfsuite: windowed x{w}: {wall:.3} s ({:.0} ev/s)",
            r.events as f64 / wall
        );
        assert_eq!(
            (r.events, r.trace_fnv, r.metrics_fnv),
            (serial.events, serial.trace_fnv, serial.metrics_fnv),
            "windowed shard executor at {w} worker(s) diverged from the serial composition"
        );
        windowed.push((w, wall, r));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let best = windowed
        .iter()
        .map(|(_, wall, _)| *wall)
        .fold(f64::INFINITY, f64::min);
    let speedup_json = if cores < 2 {
        "\"speedup\": null,\n    \"speedup_verdict\": \"skipped: single-core host, windowed executor degenerates to serial\"".to_string()
    } else {
        format!(
            "\"speedup\": {:.2},\n    \"speedup_verdict\": \"windowed best-of over serial on {cores} cores\"",
            serial_s / best
        )
    };

    let mut out = format!(
        "  \"shards\": {{\n    \"workload\": \"CITY-DCF rows={rows} cols={cols} senders_per_cell={senders} duration_ms={duration_ms} seed={SEED} ({cells} cells, {stations} stations, one shard per cell)\",\n    \"serial\": {{ \"wall_s\": {serial_s:.3}, \"events\": {}, \"events_per_s\": {:.0} }},\n",
        serial.events,
        serial.events as f64 / serial_s,
    );
    for (w, wall, r) in &windowed {
        out.push_str(&format!(
            "    \"windowed_w{w}\": {{ \"wall_s\": {wall:.3}, \"events_per_s\": {:.0} }},\n",
            r.events as f64 / wall,
        ));
    }
    out.push_str(&format!(
        "    \"trace_fnv\": \"{:016x}\",\n    \"metrics_fnv\": \"{:016x}\",\n    \"identical_output\": true,\n    {speedup_json}\n  }}\n",
        serial.trace_fnv, serial.metrics_fnv,
    ));
    out
}

/// Benchmarks A-MPDU aggregation on the saturated DENSE-OBSS flagship
/// block and returns the `"qos"` JSON object (indented two spaces,
/// trailing newline): the identical per-AC offered backlog pushed
/// through the EDCA queues with the aggregation cap at the default
/// (16 MPDUs per A-MPDU) and clamped to 1. Panics if the two runs
/// disagree on offered load or if turning aggregation on loses
/// goodput — both runs are fully deterministic, so the comparison is
/// stable across hosts.
fn qos_section() -> String {
    const ROWS: usize = 3;
    const COLS: usize = 3;
    const DURATION_MS: u64 = 120;
    const SEED: u64 = 42;
    const CAPS: [usize; 2] = [1, 16];

    let mut runs = Vec::new();
    for cap in CAPS {
        eprintln!("perfsuite: DENSE-OBSS {ROWS}x{COLS} dur={DURATION_MS}ms ampdu_max_mpdus={cap}…");
        let ev0 = global_events_processed();
        let t0 = Instant::now();
        let p = dense_obss_point_opts(ROWS, COLS, DURATION_MS, SEED, DENSE_OBSS_MIX, cap);
        let wall = t0.elapsed().as_secs_f64();
        let events = global_events_processed() - ev0;
        eprintln!(
            "perfsuite: ampdu={cap}: {wall:.3} s, {:.2} Mbps delivered ({:.0} ev/s)",
            p.aggregate_mbps,
            events as f64 / wall
        );
        runs.push((cap, wall, events, p));
    }
    let (no_agg, agg) = (&runs[0], &runs[1]);
    assert_eq!(
        no_agg.3.offered, agg.3.offered,
        "aggregation cap changed the offered backlog"
    );
    assert!(
        agg.3.completed >= no_agg.3.completed,
        "A-MPDU aggregation lost goodput on the saturated block: {} < {} MSDUs",
        agg.3.completed,
        no_agg.3.completed
    );
    let gain = agg.3.aggregate_mbps / no_agg.3.aggregate_mbps.max(f64::MIN_POSITIVE);
    eprintln!("perfsuite: A-MPDU aggregation: {gain:.2}x goodput vs one MPDU per TXOP");

    let mut out = format!(
        "  \"qos\": {{\n    \"workload\": \"DENSE-OBSS rows={ROWS} cols={COLS} duration_ms={DURATION_MS} seed={SEED}, EDCA queues, aggregation on vs off\",\n    \"offered_msdus\": {},\n",
        no_agg.3.offered,
    );
    for (cap, wall, events, p) in &runs {
        let label = if *cap == 1 { "no_aggregation" } else { "ampdu" };
        out.push_str(&format!(
            "    \"{label}\": {{ \"ampdu_max_mpdus\": {cap}, \"wall_s\": {wall:.3}, \"events\": {events}, \"completed_msdus\": {}, \"delivered_frac\": {:.3}, \"goodput_mbps\": {:.2}, \"vo_p50_us\": {}, \"be_p50_us\": {} }},\n",
            p.completed,
            p.delivered_frac(),
            p.aggregate_mbps,
            p.ac_p50_us[0],
            p.ac_p50_us[2],
        ));
    }
    out.push_str(&format!(
        "    \"identical_offered_load\": true,\n    \"aggregation_goodput_gain\": {gain:.2}\n  }}\n"
    ));
    out
}

/// Benchmarks the neighbor-cache hot path against the direct O(n)
/// propagation fan-out on SCALE-DCF at 100 and 1000 stations and
/// returns the `"neighbors"` JSON object (indented two spaces,
/// trailing newline). Panics unless the cached and direct runs
/// deliver the same event count and metrics digest at every size.
fn neighbors_section() -> String {
    const DURATION_MS: u64 = 200;
    const SEED: u64 = 42;
    const SIZES: [usize; 2] = [100, 1000];

    let mut rows = Vec::new();
    for stations in SIZES {
        let timed = |cache: bool| {
            let label = if cache { "cached" } else { "direct" };
            eprintln!("perfsuite: SCALE-DCF n={stations} dur={DURATION_MS}ms {label} propagation…");
            let t0 = Instant::now();
            let p = scale_dcf_point_opts(
                stations,
                DURATION_MS,
                SEED,
                SchedulerKind::BinaryHeap,
                cache,
            );
            let wall = t0.elapsed().as_secs_f64();
            eprintln!(
                "perfsuite: SCALE-DCF n={stations} {label}: {wall:.3} s ({:.0} ev/s)",
                p.events as f64 / wall
            );
            (wall, p)
        };
        let (cached_s, cached) = timed(true);
        let (direct_s, direct) = timed(false);
        assert_eq!(
            (cached.events, cached.metrics_fnv),
            (direct.events, direct.metrics_fnv),
            "neighbor cache diverged from the direct path on SCALE-DCF n={stations}"
        );
        let speedup = direct_s / cached_s;
        eprintln!("perfsuite: neighbor cache at n={stations}: {speedup:.2}x vs direct");
        rows.push((stations, cached_s, direct_s, cached, speedup));
    }

    let mut out = format!(
        "  \"neighbors\": {{\n    \"workload\": \"SCALE-DCF duration_ms={DURATION_MS} seed={SEED}, binary-heap scheduler, cached vs direct propagation\",\n"
    );
    for (i, (stations, cached_s, direct_s, p, speedup)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"n{stations}\": {{\n      \"cached\": {{ \"wall_s\": {cached_s:.3}, \"events_per_s\": {:.0} }},\n      \"direct\": {{ \"wall_s\": {direct_s:.3}, \"events_per_s\": {:.0} }},\n      \"events\": {},\n      \"metrics_fnv\": \"{:016x}\",\n      \"identical_output\": true,\n      \"cache_speedup\": {speedup:.2}\n    }}{sep}\n",
            p.events as f64 / cached_s,
            p.events as f64 / direct_s,
            p.events,
            p.metrics_fnv,
        ));
    }
    out.push_str("  }\n");
    out
}

/// Measures what the spatial hash grid buys on the CITY-DCF flagship
/// planning world (DESIGN.md §17) and returns the `"grid"` JSON object
/// (indented two spaces, trailing newline): the sparse grid-backed
/// neighbor-cache build and grid shard plan against the dense matrix
/// build and exhaustive O(n²) plan, measured live in the same process,
/// plus a plan-only scaling row at the METRO-DCF flagship (100k+
/// stations in release, where the dense paths are no longer feasible).
/// Panics unless both planners produce the identical partition and the
/// plan re-validates coherent; the speedup verdict is always recorded
/// (the section is single-threaded, so core count is irrelevant).
fn grid_section() -> String {
    const SEED: u64 = 42;
    let (rows, cols, senders, duration_ms) = city_dcf_size();
    let stations = rows * cols * (senders + 1);

    // Grid path: sparse 27-cell-neighborhood cache build + grid plan.
    let mut grid_world = metro_dcf_planning_world(rows, cols, senders, duration_ms, SEED);
    eprintln!("perfsuite: grid CITY-DCF n={stations}: sparse cache build…");
    let t0 = Instant::now();
    grid_world.prime_neighbor_cache(SimTime::ZERO);
    let grid_build_s = t0.elapsed().as_secs_f64();
    let (sparse, grid_stored) = grid_world
        .neighbor_cache_stats()
        .expect("planning world primes its neighbor cache");
    assert!(sparse, "grid world built a dense cache");
    let incoherent = grid_world.grid_incoherence(SimTime::ZERO);
    assert!(incoherent.is_empty(), "grid incoherent: {incoherent:?}");
    eprintln!("perfsuite: grid plan…");
    let t0 = Instant::now();
    let grid_plan = grid_world.shard_plan(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    let grid_plan_s = t0.elapsed().as_secs_f64();
    assert!(
        grid_world
            .shard_plan_incoherence(&grid_plan, SimTime::ZERO)
            .is_none(),
        "grid plan failed re-validation"
    );

    // Dense baseline, live: full n x n matrix build + exhaustive plan.
    let mut dense_world = metro_dcf_planning_world(rows, cols, senders, duration_ms, SEED);
    dense_world.set_grid_index(false);
    eprintln!("perfsuite: dense CITY-DCF n={stations}: full matrix build…");
    let t0 = Instant::now();
    dense_world.prime_neighbor_cache(SimTime::ZERO);
    let dense_build_s = t0.elapsed().as_secs_f64();
    let (dense_sparse, dense_stored) = dense_world
        .neighbor_cache_stats()
        .expect("planning world primes its neighbor cache");
    assert!(!dense_sparse, "grid-off world built a sparse cache");
    eprintln!("perfsuite: exhaustive plan…");
    let t0 = Instant::now();
    let dense_plan = dense_world.shard_plan_exhaustive(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    let dense_plan_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        grid_plan.shard_of, dense_plan.shard_of,
        "grid and exhaustive planners disagree on the partition"
    );
    assert_eq!(grid_plan.lookahead, dense_plan.lookahead);
    assert!(
        grid_stored <= dense_stored,
        "sparse rows store more pairs than the dense matrix"
    );

    let build_speedup = dense_build_s / grid_build_s.max(f64::MIN_POSITIVE);
    let plan_speedup = dense_plan_s / grid_plan_s.max(f64::MIN_POSITIVE);
    eprintln!(
        "perfsuite: grid at n={stations}: {build_speedup:.1}x build, {plan_speedup:.1}x plan, {grid_stored}/{dense_stored} stored pairs"
    );

    // The scaling row: plan-only at the METRO-DCF flagship, where the
    // dense matrix (tens of GB) and the O(n²) pair scan are no longer
    // an option. The grid planner is the only way to get a partition
    // at this size; the row records that it stays tractable.
    let (mrows, mcols, msenders, mduration) = *metro_dcf_sweep().last().expect("sweep non-empty");
    let metro_stations = mrows * mcols * (msenders + 1);
    eprintln!("perfsuite: METRO-DCF n={metro_stations}: grid plan-only scaling row…");
    let metro_world = metro_dcf_planning_world(mrows, mcols, msenders, mduration, SEED);
    let t0 = Instant::now();
    let metro_plan = metro_world.shard_plan(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    let metro_plan_s = t0.elapsed().as_secs_f64();
    assert!(
        metro_world
            .shard_plan_incoherence(&metro_plan, SimTime::ZERO)
            .is_none(),
        "metro grid plan failed re-validation"
    );
    eprintln!(
        "perfsuite: METRO-DCF n={metro_stations}: {} shards in {metro_plan_s:.3} s",
        metro_plan.shards.len()
    );

    format!(
        "  \"grid\": {{\n    \"workload\": \"CITY-DCF planning world rows={rows} cols={cols} senders_per_cell={senders} seed={SEED} ({stations} stations), grid vs dense, live in-process\",\n    \"cache_build\": {{\n      \"grid\": {{ \"wall_s\": {grid_build_s:.3}, \"stored_pairs\": {grid_stored} }},\n      \"dense\": {{ \"wall_s\": {dense_build_s:.3}, \"stored_pairs\": {dense_stored} }},\n      \"speedup\": {build_speedup:.2}\n    }},\n    \"shard_plan\": {{\n      \"grid\": {{ \"wall_s\": {grid_plan_s:.3} }},\n      \"exhaustive\": {{ \"wall_s\": {dense_plan_s:.3} }},\n      \"shards\": {},\n      \"identical_partition\": true,\n      \"speedup\": {plan_speedup:.2}\n    }},\n    \"metro_plan_only\": {{\n      \"note\": \"grid planner at the METRO-DCF flagship; the dense paths are infeasible at this size\",\n      \"stations\": {metro_stations},\n      \"shards\": {},\n      \"wall_s\": {metro_plan_s:.3}\n    }},\n    \"speedup_verdict\": \"grid over dense, single-threaded, measured live at n={stations}\"\n  }}\n",
        grid_plan.shards.len(),
        metro_plan.shards.len(),
    )
}
