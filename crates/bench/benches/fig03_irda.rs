//! FIG-2 — regenerates the IrDA rate-vs-distance/cone curves; times a
//! link negotiation sweep.

use criterion::{black_box, Criterion};
use wn_bench::{criterion_fast, print_figure, print_report};
use wn_core::scenarios::fig_2_irda;
use wn_phy::geom::Point;
use wn_wpan::irda::{negotiate, IrPort};

fn bench(c: &mut Criterion) {
    let (fig, report) = fig_2_irda();
    print_figure(&fig);
    print_report(&report);

    c.bench_function("fig03/negotiate_sweep", |b| {
        let tx = IrPort::aimed_at(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        b.iter(|| {
            let mut total = 0.0;
            for i in 1..=100 {
                let d = i as f64 / 100.0 * 1.2;
                if let Ok(r) = negotiate(&tx, Point::new(d, 0.0)) {
                    total += r.bps();
                }
            }
            black_box(total)
        })
    });
}

fn main() {
    let mut c = criterion_fast();
    bench(&mut c);
    c.final_summary();
}
