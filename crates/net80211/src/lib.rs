//! `wn-net80211` — the 802.11 logical architecture of §3.
//!
//! Everything the source text's architecture section defines is a
//! concrete type here:
//!
//! - [`ssid`] — the "32-character (maximum) alphanumeric key identifying
//!   the name of the wireless local area network".
//! - [`ie`] — the information-element bodies carried by management
//!   frames (SSID, TIM, association status/AID, authentication).
//! - [`ds`] — the distribution system: "the mechanism by which APs
//!   exchange frames with one another and with wired networks".
//! - [`ap`] — the access point: "a bridge between the wireless STAs and
//!   the existing network backbone", including power-save buffering.
//! - [`sta`] — the station state machine: scan → authenticate →
//!   associate → data transfer, with ESS roaming ("wireless clients can
//!   freely roam from one access point domain to another").
//! - [`builder`] — one-call construction of infrastructure BSSs, ESSs
//!   and ad hoc IBSSs (Figs. 1.9 / 1.10), plus mobility helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ap;
pub mod builder;
pub mod ds;
pub mod ie;
pub mod ssid;
pub mod sta;

pub use ap::{ApConfig, ApLogic, ApShared};
pub use builder::{EssBuilder, IbssBuilder, IbssNode, IbssShared};
pub use ds::{DistributionSystem, DsHandle};
pub use ssid::Ssid;
pub use sta::{StaConfig, StaLogic, StaShared, StaState};
