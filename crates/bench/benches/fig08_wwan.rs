//! FIG-1.8 — regenerates the satellite/cellular comparison and times
//! the drive-test handoff scan plus the Erlang-B solver.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_1_8_wwan;
use wn_phy::geom::Point;
use wn_wwan::cellular::{erlang_b_capacity, CellGrid};

fn main() {
    let (fig, report) = fig_1_8_wwan();
    print_figure(&fig);
    print_report(&report);

    let grid = CellGrid::hex(3, 1500.0);
    bench("fig08/drive_test_37_cells", || {
        black_box(grid.drive_test(Point::new(-8000.0, 100.0), Point::new(8000.0, 100.0), 2000))
    });

    bench("fig08/erlang_b_inverse", || {
        black_box(erlang_b_capacity(60, 0.02))
    });
}
