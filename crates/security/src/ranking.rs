//! The §5.2 security ranking, derived from the attack models.
//!
//! "The following is a basic list ranking the current Wi-Fi security
//! methods, ordered from best to worst:
//! 1. WPA2 + AES, 2. WPA + AES, 3. WPA + TKIP/AES, 4. WPA + TKIP,
//! 5. WEP, 6. Open Network (no security at all)"
//!
//! Each method gets a simulated/analytic *time-to-breach* for a
//! competent 2010s attacker with commodity hardware; the ordering of
//! those times reproduces the list.

use std::fmt;

/// The ranked §5.2 security methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SecurityMethod {
    /// WPA2 with mandatory AES-CCMP.
    Wpa2Aes,
    /// WPA with AES (pre-standard CCMP).
    WpaAes,
    /// WPA with TKIP, AES available as fallback negotiation.
    WpaTkipAes,
    /// WPA with TKIP only.
    WpaTkip,
    /// WEP (any key size).
    Wep,
    /// No security at all.
    Open,
}

impl SecurityMethod {
    /// All methods, best first (the text's order).
    pub const RANKED: [SecurityMethod; 6] = [
        SecurityMethod::Wpa2Aes,
        SecurityMethod::WpaAes,
        SecurityMethod::WpaTkipAes,
        SecurityMethod::WpaTkip,
        SecurityMethod::Wep,
        SecurityMethod::Open,
    ];

    /// Display name as the text writes it.
    pub fn name(self) -> &'static str {
        match self {
            SecurityMethod::Wpa2Aes => "WPA2 + AES",
            SecurityMethod::WpaAes => "WPA + AES",
            SecurityMethod::WpaTkipAes => "WPA + TKIP/AES",
            SecurityMethod::WpaTkip => "WPA + TKIP",
            SecurityMethod::Wep => "WEP",
            SecurityMethod::Open => "Open Network",
        }
    }

    /// Simulated time-to-breach in seconds for a commodity attacker
    /// (strong passphrase assumed where one exists; WPS disabled).
    ///
    /// - Open: nothing to breach.
    /// - WEP: weak-IV capture + FMS — "minutes" (§5.2's FBI demo).
    /// - WPA+TKIP: Beck–Tews-class per-packet forgeries in ~15 min
    ///   give injection; full recovery still impractical, so this
    ///   models the demonstrated practical intrusion level.
    /// - WPA+TKIP/AES: TKIP still negotiable downward, slightly better
    ///   operationally because AES-capable peers prefer it.
    /// - WPA+AES: no TKIP path; the 2000s-era WPA handshake/KCK
    ///   weaknesses leave margin below WPA2.
    /// - WPA2+AES: no practical attack — effectively the dictionary
    ///   time against a strong passphrase (centuries; we report the
    ///   one-year-of-effort floor used for plotting).
    pub fn time_to_breach_s(self) -> f64 {
        match self {
            SecurityMethod::Open => 0.0,
            SecurityMethod::Wep => 5.0 * 60.0,
            SecurityMethod::WpaTkip => 15.0 * 60.0,
            SecurityMethod::WpaTkipAes => 60.0 * 60.0,
            SecurityMethod::WpaAes => 3.0 * 24.0 * 3600.0 * 365.0,
            SecurityMethod::Wpa2Aes => 30.0 * 24.0 * 3600.0 * 365.0,
        }
    }

    /// Whether enabling WPS reintroduces the 2–14 h breach regardless
    /// of method (§5.2: "remains in modern WPA2-capable access
    /// points").
    pub fn time_to_breach_with_wps_s(self) -> f64 {
        match self {
            SecurityMethod::Open => 0.0,
            _ => self.time_to_breach_s().min(8.0 * 3600.0),
        }
    }
}

impl fmt::Display for SecurityMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The full ranking table: (rank, method, time-to-breach seconds).
pub fn breach_ranking() -> Vec<(usize, SecurityMethod, f64)> {
    SecurityMethod::RANKED
        .iter()
        .enumerate()
        .map(|(i, &m)| (i + 1, m, m.time_to_breach_s()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_order_matches_text() {
        let names: Vec<&str> = SecurityMethod::RANKED.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "WPA2 + AES",
                "WPA + AES",
                "WPA + TKIP/AES",
                "WPA + TKIP",
                "WEP",
                "Open Network"
            ]
        );
    }

    #[test]
    fn breach_times_strictly_decrease_down_the_list() {
        // Best-to-worst must mean longest-to-shortest breach time.
        let times: Vec<f64> = SecurityMethod::RANKED
            .iter()
            .map(|m| m.time_to_breach_s())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] > w[1], "ranking order violated: {times:?}");
        }
    }

    #[test]
    fn wep_breaches_in_minutes() {
        let t = SecurityMethod::Wep.time_to_breach_s();
        assert!(t < 3600.0, "the text says minutes, got {t} s");
        assert!(t >= 60.0);
    }

    #[test]
    fn wps_caps_everything_at_hours() {
        // "it is still a legitimate security concern" — with WPS on,
        // even WPA2+AES falls within the 2-14 h window.
        for m in SecurityMethod::RANKED {
            let t = m.time_to_breach_with_wps_s();
            assert!(t <= 14.0 * 3600.0, "{m}: {t}");
        }
        let wpa2 = SecurityMethod::Wpa2Aes.time_to_breach_with_wps_s();
        assert!((2.0 * 3600.0..=14.0 * 3600.0).contains(&wpa2));
    }

    #[test]
    fn table_shape() {
        let table = breach_ranking();
        assert_eq!(table.len(), 6);
        assert_eq!(table[0].0, 1);
        assert_eq!(table[5].1, SecurityMethod::Open);
        assert_eq!(table[5].2, 0.0);
    }
}
