//! Airtime and NAV (Duration field) arithmetic.
//!
//! §4.2: the Duration/ID field "indicates the remaining duration
//! needed to receive the next frame transmission". These helpers compute
//! frame airtimes from PHY rates and the NAV values for the
//! RTS→CTS→DATA→ACK and fragment-burst sequences.

use wn_phy::modulation::{MacTiming, PhyStandard, RateStep};
use wn_sim::SimDuration;

/// Length in bytes of an ACK/CTS control frame on the air.
pub const ACK_LEN: usize = 14;
/// Length in bytes of an RTS control frame on the air.
pub const RTS_LEN: usize = 20;
/// Length in bytes of a compressed BlockAck on the air: 16-byte
/// control header + 2-byte SSN + 8-byte bitmap + FCS.
pub const BLOCK_ACK_LEN: usize = 30;
/// Per-MPDU framing overhead inside an A-MPDU aggregate: the 4-byte
/// subframe delimiter (sequence number + length).
pub const AMPDU_DELIMITER_LEN: usize = 4;

/// Airtime of a frame of `wire_len` bytes at `rate`, including the PHY
/// preamble/PLCP overhead.
pub fn airtime(timing: &MacTiming, rate: RateStep, wire_len: usize) -> SimDuration {
    let payload = SimDuration::for_bits(wire_len as u64 * 8, rate.rate.bps());
    SimDuration::from_nanos((timing.preamble_us * 1_000.0) as u64) + payload
}

/// Airtime of an ACK sent at the standard's base rate.
pub fn ack_airtime(std: PhyStandard) -> SimDuration {
    airtime(&std.mac_timing(), std.base_rate(), ACK_LEN)
}

/// Airtime of a CTS at the base rate (same length as an ACK).
pub fn cts_airtime(std: PhyStandard) -> SimDuration {
    ack_airtime(std)
}

/// Airtime of an RTS at the base rate.
pub fn rts_airtime(std: PhyStandard) -> SimDuration {
    airtime(&std.mac_timing(), std.base_rate(), RTS_LEN)
}

/// SIFS as a [`SimDuration`].
pub fn sifs(std: PhyStandard) -> SimDuration {
    SimDuration::from_nanos((std.mac_timing().sifs_us * 1_000.0) as u64)
}

/// DIFS as a [`SimDuration`].
pub fn difs(std: PhyStandard) -> SimDuration {
    SimDuration::from_nanos((std.mac_timing().difs_us() * 1_000.0) as u64)
}

/// One slot as a [`SimDuration`].
pub fn slot(std: PhyStandard) -> SimDuration {
    SimDuration::from_nanos((std.mac_timing().slot_us * 1_000.0) as u64)
}

/// Clamps a duration to the 15-bit µs range of the Duration field.
fn to_duration_field(d: SimDuration) -> u16 {
    (d.as_micros_f64().ceil() as u64).min(0x7FFF) as u16
}

/// NAV value for a unicast data/management frame: SIFS + ACK, plus the
/// remainder of the fragment burst when more fragments follow.
pub fn data_duration(
    std: PhyStandard,
    more_fragments: bool,
    next_fragment_airtime: Option<SimDuration>,
) -> u16 {
    let mut d = sifs(std) + ack_airtime(std);
    if more_fragments {
        // Cover the next fragment and its ACK too (§4.2 More Fragments).
        d += sifs(std)
            + next_fragment_airtime.unwrap_or(SimDuration::ZERO)
            + sifs(std)
            + ack_airtime(std);
    }
    to_duration_field(d)
}

/// NAV value for an RTS: CTS + DATA + ACK + 3×SIFS.
pub fn rts_duration(std: PhyStandard, data_airtime: SimDuration) -> u16 {
    let d = sifs(std) + cts_airtime(std) + sifs(std) + data_airtime + sifs(std) + ack_airtime(std);
    to_duration_field(d)
}

/// NAV value for a CTS, derived from the RTS it answers:
/// `rts_duration − SIFS − CTS_airtime`.
pub fn cts_duration(std: PhyStandard, rts_duration_us: u16) -> u16 {
    let consumed = (sifs(std) + cts_airtime(std)).as_micros_f64().ceil() as u16;
    rts_duration_us.saturating_sub(consumed)
}

// ----- EDCA (802.11e) arbitration + TXOP arithmetic -----

/// Airtime of a compressed BlockAck at the base rate.
pub fn block_ack_airtime(std: PhyStandard) -> SimDuration {
    airtime(&std.mac_timing(), std.base_rate(), BLOCK_ACK_LEN)
}

/// AIFS for an access category: `SIFS + AIFSN × slot` (802.11e §9.2.10
/// equivalent). AIFSN ≥ 2 for stations; AIFSN = 2 with the legacy slot
/// count reproduces DIFS.
pub fn aifs(std: PhyStandard, aifsn: u8) -> SimDuration {
    sifs(std) + slot(std) * aifsn as u64
}

/// NAV value for a QoS data frame / A-MPDU aggregate: SIFS + BlockAck
/// (the implicit-BAR response this model uses).
pub fn ampdu_duration(std: PhyStandard) -> u16 {
    to_duration_field(sifs(std) + block_ack_airtime(std))
}

/// How many MPDUs of `mpdu_wire_len` bytes (delimiter included) fit in
/// a TXOP of `txop_us` microseconds at `rate`, counting the SIFS +
/// BlockAck response into the budget. Always at least 1 — a TXOP too
/// short for a single MPDU degenerates to one, never zero, so a
/// misconfigured limit cannot wedge a queue. A `txop_us` of 0 means
/// "no TXOP limit" and returns `usize::MAX`.
pub fn txop_mpdu_budget(
    std: PhyStandard,
    rate: RateStep,
    txop_us: u64,
    mpdu_wire_len: usize,
) -> usize {
    if txop_us == 0 {
        return usize::MAX;
    }
    let txop = SimDuration::from_micros(txop_us);
    let response = sifs(std) + block_ack_airtime(std);
    if txop <= response {
        return 1;
    }
    let data_budget = txop - response;
    // First MPDU pays the preamble; the rest ride the same PPDU.
    let timing = std.mac_timing();
    let first = airtime(&timing, rate, mpdu_wire_len);
    if first >= data_budget {
        return 1;
    }
    let per_extra = SimDuration::for_bits(mpdu_wire_len as u64 * 8, rate.rate.bps());
    let remaining = data_budget - first;
    let extra = if per_extra == SimDuration::ZERO {
        0
    } else {
        (remaining.as_nanos() / per_extra.as_nanos().max(1)) as usize
    };
    1 + extra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_includes_preamble() {
        let std = PhyStandard::Dot11b;
        let t = std.mac_timing();
        let base = std.base_rate();
        // 100 bytes at 1 Mbps = 800 µs, plus 192 µs preamble.
        let a = airtime(&t, base, 100);
        assert!((a.as_micros_f64() - 992.0).abs() < 1.0, "{a}");
    }

    #[test]
    fn ack_airtime_reasonable_for_g() {
        // ACK at 6 Mbps: 14 B = 18.7 µs + 20 µs preamble ≈ 39 µs.
        let a = ack_airtime(PhyStandard::Dot11g);
        assert!((a.as_micros_f64() - 38.7).abs() < 1.0, "{a}");
    }

    #[test]
    fn nav_ordering() {
        // RTS reserves the whole exchange, so its NAV exceeds a data
        // frame's NAV, which exceeds zero.
        let std = PhyStandard::Dot11g;
        let data_air = SimDuration::from_micros(300);
        let rts = rts_duration(std, data_air);
        let data = data_duration(std, false, None);
        assert!(rts > data, "rts={rts} data={data}");
        assert!(data > 0);
    }

    #[test]
    fn cts_duration_counts_down() {
        // Each stage of the exchange shortens the NAV by what has been
        // consumed — the countdown §4.2 describes.
        let std = PhyStandard::Dot11g;
        let rts = rts_duration(std, SimDuration::from_micros(300));
        let cts = cts_duration(std, rts);
        assert!(cts < rts);
        // Remaining after CTS: SIFS + DATA + SIFS + ACK ≈ rts − sifs − cts_air.
        let expect = rts - (sifs(std) + cts_airtime(std)).as_micros_f64().ceil() as u16;
        assert_eq!(cts, expect);
    }

    #[test]
    fn fragment_nav_extends_over_next_fragment() {
        let std = PhyStandard::Dot11g;
        let plain = data_duration(std, false, None);
        let frag = data_duration(std, true, Some(SimDuration::from_micros(200)));
        assert!(frag > plain + 200, "frag NAV must cover the next fragment");
    }

    #[test]
    fn duration_field_clamped_to_15_bits() {
        let std = PhyStandard::Dot11;
        // An absurdly long data frame at 1 Mbps.
        let d = rts_duration(std, SimDuration::from_millis(100));
        assert!(d <= 0x7FFF);
    }

    #[test]
    fn sifs_shorter_than_difs() {
        for s in PhyStandard::ALL {
            assert!(sifs(s) < difs(s), "{s:?}");
        }
    }

    #[test]
    fn aifs_reproduces_difs_at_aifsn_2_and_grows_per_slot() {
        // 802.11 DIFS = SIFS + 2×slot, so AIFSN=2 must equal DIFS on
        // every standard — the legacy-equivalence anchor of the EDCA
        // arbitration math.
        for s in PhyStandard::ALL {
            assert_eq!(aifs(s, 2), difs(s), "{s:?}");
            assert_eq!(aifs(s, 3) - aifs(s, 2), slot(s), "{s:?}");
            assert_eq!(aifs(s, 7) - aifs(s, 2), slot(s) * 5, "{s:?}");
        }
    }

    #[test]
    fn block_ack_airtime_exceeds_ack_airtime() {
        // A 30-byte BA always outlasts a 14-byte ACK at the same rate.
        for s in PhyStandard::ALL {
            assert!(block_ack_airtime(s) > ack_airtime(s), "{s:?}");
            assert!(ampdu_duration(s) > 0, "{s:?}");
        }
    }

    #[test]
    fn txop_budget_counts_mpdus_not_ppdus() {
        let std = PhyStandard::Dot11g;
        let rate = std.base_rate(); // 6 Mbps
                                    // A 1200-byte MPDU at 6 Mbps is 1.6 ms of payload plus 20 µs
                                    // preamble; SIFS+BA eat ~70 µs. In a 5 ms TXOP the first MPDU
                                    // pays the preamble and the rest pack back to back: 3 fit.
        let n = txop_mpdu_budget(std, rate, 5_000, 1200);
        assert_eq!(n, 3, "5 ms at 6 Mbps fits 3×1200 B MPDUs, got {n}");
        // Doubling the TXOP at least doubles the budget's payload room.
        assert!(txop_mpdu_budget(std, rate, 10_000, 1200) >= 2 * n - 1);
    }

    #[test]
    fn txop_budget_never_starves() {
        let std = PhyStandard::Dot11b;
        let rate = std.base_rate(); // 1 Mbps: one MPDU blows any short TXOP
        assert_eq!(txop_mpdu_budget(std, rate, 32, 1500), 1);
        assert_eq!(txop_mpdu_budget(std, rate, 1, 4), 1);
        // TXOP 0 = unlimited.
        assert_eq!(txop_mpdu_budget(std, rate, 0, 1500), usize::MAX);
    }

    #[test]
    fn txop_budget_monotone_in_txop_and_antitone_in_mpdu_len() {
        let std = PhyStandard::Dot11a;
        let rate = std.base_rate();
        let mut prev = 0;
        for txop_us in [500, 1_000, 2_000, 4_000, 8_000] {
            let n = txop_mpdu_budget(std, rate, txop_us, 400);
            assert!(n >= prev, "budget shrank as TXOP grew");
            prev = n;
        }
        let long = txop_mpdu_budget(std, rate, 4_000, 1600);
        let short = txop_mpdu_budget(std, rate, 4_000, 200);
        assert!(short >= long, "shorter MPDUs must pack at least as many");
    }
}
