//! Cross-crate integration tests: the full stack from crypto through
//! MAC to architecture, exercised together.

use wireless_networks::core::registry::Technology;
use wireless_networks::core::taxonomy::NetworkClass;
use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::sim::MacConfig;
use wireless_networks::net80211::builder::{send_app_data, EssBuilder, IbssBuilder};
use wireless_networks::net80211::ssid::Ssid;
use wireless_networks::net80211::sta::StaState;
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::security::handshake::{derive_ptk, run_handshake};
use wireless_networks::security::wpa2::CcmpSession;
use wireless_networks::sim::SimTime;

/// WPA2 end-to-end over the air: the 4-way handshake derives a PTK,
/// the application encrypts with CCMP, the ciphertext rides real data
/// frames through the DCF simulation via the AP, and the peer decrypts.
#[test]
fn wpa2_protected_payload_over_the_air() {
    let aa = MacAddr::access_point(0).bytes();
    let spa = MacAddr::station(0).bytes();
    let (ptk, hs) = run_handshake("Str0ng-Passphrase!", "SecureNet", aa, spa, [9; 32], [4; 32]);

    // Both ends derive the same keys from the public transcript + PMK.
    let pmk = wireless_networks::security::handshake::derive_pmk("Str0ng-Passphrase!", "SecureNet");
    let ptk2 = derive_ptk(&pmk, &hs.aa, &hs.spa, &hs.anonce, &hs.snonce);
    assert!(ptk == ptk2);

    // Build the infrastructure network.
    let ssid = Ssid::new("SecureNet").unwrap();
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = 77;
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(0.0, 0.0), 1)
        .sta(Point::new(6.0, 0.0))
        .sta(Point::new(-6.0, 0.0))
        .build();
    ess.sim.run_until(SimTime::from_secs(2));
    assert_eq!(
        ess.sta_shared[0].lock().expect("shared state lock").state,
        StaState::Associated
    );

    // STA0 encrypts for STA1 with the session TK and ships ciphertext.
    let mut tx = CcmpSession::new(ptk.tk, spa);
    let secret = b"the meeting is at noon";
    let pkt = tx.encrypt(b"hdr", secret);
    let mut wire = pkt.pn.to_be_bytes().to_vec();
    wire.extend_from_slice(&pkt.ciphertext);

    let sta0 = ess.sta_ids[0];
    let sh0 = ess.sta_shared[0].clone();
    send_app_data(
        &mut ess.sim,
        sta0,
        &sh0,
        MacAddr::station(1),
        wire,
        SimTime::from_millis(2100),
    );
    ess.sim.run_until(SimTime::from_secs(3));

    // STA1 receives the ciphertext through the AP and decrypts.
    let delivered = ess.sta_shared[1]
        .lock()
        .expect("shared state lock")
        .delivered
        .clone();
    assert_eq!(delivered.len(), 1);
    let body = &delivered[0].2;
    let pn = u64::from_be_bytes(body[..8].try_into().unwrap());
    let rx_pkt = wireless_networks::security::wpa2::CcmpPacket {
        pn,
        ciphertext: body[8..].to_vec(),
    };
    let mut rx = CcmpSession::new(ptk.tk, spa);
    assert_eq!(rx.decrypt(b"hdr", &rx_pkt).unwrap(), secret);
}

/// WPA/TKIP end-to-end over the air: per-packet keys and Michael MIC
/// protect payloads that ride the DCF simulation, and a replayed
/// capture is rejected by the receiver's TSC check.
#[test]
fn tkip_protected_payload_over_the_air() {
    use wireless_networks::security::wpa::{TkipError, TkipPacket, TkipSession};

    let aa = MacAddr::access_point(0).bytes();
    let spa = MacAddr::station(0).bytes();
    let (ptk, _hs) = run_handshake(
        "Sufficiently-Long-Pass",
        "TkipNet",
        aa,
        spa,
        [1; 32],
        [2; 32],
    );
    let da = MacAddr::station(1).bytes();

    let mut tx = TkipSession::new(ptk.tk, ptk.mic_tx, spa);
    let mut rx = TkipSession::new(ptk.tk, ptk.mic_tx, spa);

    let ssid = Ssid::new("TkipNet").unwrap();
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = 99;
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(0.0, 0.0), 1)
        .sta(Point::new(6.0, 0.0))
        .sta(Point::new(-6.0, 0.0))
        .build();
    ess.sim.run_until(SimTime::from_secs(2));

    // Two protected payloads cross the network.
    let sta0 = ess.sta_ids[0];
    let sh0 = ess.sta_shared[0].clone();
    for (k, msg) in [b"first secret".as_slice(), b"second secret".as_slice()]
        .iter()
        .enumerate()
    {
        let pkt = tx.encrypt(&da, &spa, msg).expect("countermeasures off");
        let mut wire = pkt.tsc.to_be_bytes().to_vec();
        wire.extend_from_slice(&pkt.ciphertext);
        send_app_data(
            &mut ess.sim,
            sta0,
            &sh0,
            MacAddr::station(1),
            wire,
            SimTime::from_millis(2100 + k as u64 * 50),
        );
    }
    ess.sim.run_until(SimTime::from_secs(3));

    let delivered = ess.sta_shared[1]
        .lock()
        .expect("shared state lock")
        .delivered
        .clone();
    assert_eq!(delivered.len(), 2);
    let mut plain = Vec::new();
    let mut packets = Vec::new();
    for (_, _, body) in &delivered {
        let tsc = u64::from_be_bytes(body[..8].try_into().unwrap());
        let pkt = TkipPacket {
            tsc,
            ciphertext: body[8..].to_vec(),
        };
        plain.push(rx.decrypt(&da, &spa, &pkt).expect("valid TKIP"));
        packets.push(pkt);
    }
    assert_eq!(plain[0], b"first secret");
    assert_eq!(plain[1], b"second secret");
    // An attacker replaying the captured first packet is refused.
    assert_eq!(rx.decrypt(&da, &spa, &packets[0]), Err(TkipError::Replay));
}

/// The same stations in ad hoc and infrastructure mode (§3.2): both
/// work, and the infrastructure run shows AP relay frames.
#[test]
fn both_architectures_carry_traffic() {
    let mut mac = MacConfig::new(PhyStandard::Dot11b);
    mac.seed = 3;

    let mut ibss = IbssBuilder::new(mac.clone())
        .node(Point::new(0.0, 0.0))
        .node(Point::new(15.0, 0.0))
        .build();
    let n0 = ibss.ids[0];
    let s0 = ibss.shared[0].clone();
    wireless_networks::net80211::builder::ibss_send(
        &mut ibss.sim,
        n0,
        &s0,
        MacAddr::station(1),
        b"adhoc".to_vec(),
        SimTime::from_millis(5),
    );
    ibss.sim.run_until(SimTime::from_secs(1));
    assert_eq!(
        ibss.shared[1]
            .lock()
            .expect("shared state lock")
            .delivered
            .len(),
        1
    );

    let ssid = Ssid::new("Infra").unwrap();
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(7.0, 3.0), 1)
        .sta(Point::new(0.0, 0.0))
        .sta(Point::new(15.0, 0.0))
        .build();
    ess.sim.run_until(SimTime::from_secs(2));
    let sta0 = ess.sta_ids[0];
    let sh0 = ess.sta_shared[0].clone();
    send_app_data(
        &mut ess.sim,
        sta0,
        &sh0,
        MacAddr::station(1),
        b"infra".to_vec(),
        SimTime::from_millis(2100),
    );
    ess.sim.run_until(SimTime::from_secs(3));
    assert_eq!(
        ess.sta_shared[1]
            .lock()
            .expect("shared state lock")
            .delivered
            .len(),
        1
    );
    assert!(
        ess.sim.world().stats(ess.ap_ids[0]).tx_frames > 0,
        "the AP relayed"
    );
}

/// Downlink from the wired LAN: a frame injected at the DS portal
/// reaches the wireless STA through its serving AP (§3.2: the AP
/// "convert[s] airwave data into wired Ethernet data" — and back).
#[test]
fn portal_injection_reaches_wireless_sta() {
    use wireless_networks::mac80211::sim::MacEvent;
    use wireless_networks::net80211::ap::TAG_DS;
    use wireless_networks::net80211::ds::DsFrame;

    let ssid = Ssid::new("Portal").unwrap();
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = 55;
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(0.0, 0.0), 1)
        .sta(Point::new(7.0, 0.0))
        .build();
    ess.sim.run_until(SimTime::from_secs(2));
    assert_eq!(
        ess.sta_shared[0].lock().expect("shared state lock").state,
        StaState::Associated
    );

    // A wired host pushes a frame into the distribution system.
    let wired_host = MacAddr([0x00, 0x50, 0x56, 0x01, 0x02, 0x03]);
    let target_ap = ess
        .ds
        .lock()
        .expect("shared state lock")
        .inject_from_portal(DsFrame {
            da: MacAddr::station(0),
            sa: wired_host,
            payload: b"web page bytes".to_vec(),
        })
        .expect("the STA is associated, so it has a serving AP");
    assert_eq!(target_ap, ess.ap_ids[0]);
    // The backbone interrupt wakes the AP's DS handler.
    ess.sim.scheduler_mut().schedule_at(
        SimTime::from_millis(2100),
        MacEvent::UpperTimer {
            station: target_ap,
            tag: TAG_DS,
        },
    );
    ess.sim.run_until(SimTime::from_secs(3));

    let delivered = ess.sta_shared[0]
        .lock()
        .expect("shared state lock")
        .delivered
        .clone();
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].1, wired_host, "SA preserved end to end");
    assert_eq!(delivered[0].2, b"web page bytes");
}

/// The registry's measured numbers stay consistent with the taxonomy.
#[test]
fn registry_and_taxonomy_agree() {
    for t in Technology::all() {
        let row = t.row();
        // A technology's measured range lands in (or below) its class.
        let class_of_range = NetworkClass::for_distance_m(row.measured_range_m.min(60_000.0));
        assert!(
            class_of_range <= row.class.max(NetworkClass::Wman),
            "{}: measured range {} m vs class {:?}",
            row.name,
            row.measured_range_m,
            row.class
        );
        assert!(row.measured_max_rate.bps() > 0.0);
    }
}

/// Full-stack determinism: two identical ESS runs produce identical
/// association histories and delivery logs.
#[test]
fn whole_stack_deterministic() {
    let run = || {
        let ssid = Ssid::new("Det").unwrap();
        let mut mac = MacConfig::new(PhyStandard::Dot11g);
        mac.seed = 1234;
        let mut ess = EssBuilder::new(mac, ssid)
            .ap(Point::new(0.0, 0.0), 1)
            .sta(Point::new(10.0, 0.0))
            .sta(Point::new(-10.0, 0.0))
            .build();
        ess.sim.run_until(SimTime::from_secs(2));
        let sta0 = ess.sta_ids[0];
        let sh0 = ess.sta_shared[0].clone();
        for k in 0..10 {
            send_app_data(
                &mut ess.sim,
                sta0,
                &sh0,
                MacAddr::station(1),
                vec![k as u8; 200],
                SimTime::from_millis(2000 + k * 17),
            );
        }
        ess.sim.run_until(SimTime::from_secs(4));
        let deliveries: Vec<(u64, Vec<u8>)> = ess.sta_shared[1]
            .lock()
            .expect("shared state lock")
            .delivered
            .iter()
            .map(|(t, _, b)| (t.as_nanos(), b.clone()))
            .collect();
        let assoc: Vec<u64> = ess.sta_shared[0]
            .lock()
            .expect("shared state lock")
            .assoc_events
            .iter()
            .map(|(t, _)| t.as_nanos())
            .collect();
        (deliveries, assoc, ess.sim.processed())
    };
    assert_eq!(run(), run());
}

/// The security stack protects the exact frame bytes the MAC produces:
/// WEP-encrypt a serialised frame body, corrupt it in "flight", and
/// confirm layered failures are distinguishable.
#[test]
fn wep_protected_frame_lifecycle() {
    use wireless_networks::mac80211::frame::{DsBits, Frame, SequenceControl};
    use wireless_networks::security::wep::{decrypt, encrypt, WepKey};

    let key = WepKey::new(b"integ");
    let key = match key {
        Ok(_) => WepKey::new(b"12345").unwrap(),
        Err(_) => WepKey::new(b"12345").unwrap(),
    };
    let mut frame = Frame::data(
        DsBits::ToAp,
        MacAddr::station(2),
        MacAddr::station(1),
        MacAddr::access_point(0),
        SequenceControl::default(),
        b"upper-layer payload".to_vec(),
    );
    // Encrypt the body, set the Protected bit (§4.2 WEP subfield).
    let wep = encrypt(&key, [1, 2, 3], &frame.body);
    let mut body = vec![wep.iv[0], wep.iv[1], wep.iv[2], wep.key_id];
    body.extend_from_slice(&wep.ciphertext);
    frame.body = body;
    frame.fc.protected = true;

    // Over the wire (FCS protects the whole MAC frame).
    let wire = frame.to_bytes();
    let parsed = Frame::from_bytes(&wire).expect("clean frame parses");
    assert!(parsed.fc.protected);

    // Receiver strips the WEP header and decrypts.
    let rx = wireless_networks::security::wep::WepFrame {
        iv: [parsed.body[0], parsed.body[1], parsed.body[2]],
        key_id: parsed.body[3],
        ciphertext: parsed.body[4..].to_vec(),
    };
    assert_eq!(decrypt(&key, &rx).unwrap(), b"upper-layer payload");

    // Channel corruption is caught by the FCS before WEP even runs.
    let mut corrupted = wire.clone();
    corrupted[30] ^= 0x40;
    assert!(Frame::from_bytes(&corrupted).is_err());
}
