//! Invariant oracles: pure functions from one run's [`Artifacts`] to
//! a list of violations.
//!
//! Each oracle states a property the engines must uphold in *every*
//! scenario the generator can draw, and each is careful about its own
//! soundness preconditions — NAV reasoning is skipped when channels
//! can change mid-run (a channel switch legitimately clears NAV),
//! count-based cross-checks are skipped when the trace ring evicted
//! records, and fairness bounds only apply to symmetric offered load.

use std::collections::HashMap;

use crate::run::Artifacts;
use wn_net80211::ap::MAX_AID;
use wn_sim::trace::{DropReason, FrameKind, TraceEvent};

/// One oracle failure, tied to the oracle that raised it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the oracle.
    pub oracle: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// A pluggable invariant checked after every run.
pub trait Invariant {
    /// Stable oracle name (shows up in violations and fuzz output).
    fn name(&self) -> &'static str;
    /// Checks the property; returns one violation per breach found.
    fn check(&self, art: &Artifacts) -> Vec<Violation>;
}

/// The full oracle set, in reporting order.
pub fn oracles() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(RetryBound),
        Box::new(CwBounds),
        Box::new(NavRespected),
        Box::new(FrameConservation),
        Box::new(FrameLedgerBalanced),
        Box::new(TraceMetricsConsistent),
        Box::new(NoDuplicateDelivery),
        Box::new(AssocLegal),
        Box::new(AirtimeFairness),
        Box::new(ZigbeeConservation),
        Box::new(BtConservation),
        Box::new(WmanGrantConservation),
        Box::new(ShardCoherence),
        Box::new(GridCoherence),
        Box::new(BlockAckConservation),
        Box::new(EdcaPriorityInversion),
    ]
}

fn v(oracle: &'static str, detail: String) -> Violation {
    Violation { oracle, detail }
}

/// Retry counters in `Retry` events never exceed the configured
/// limits. A counter *at* the limit is legal (the attempt that would
/// pass it is dropped instead of retried); above it, the MAC retried
/// once too often.
pub struct RetryBound;

impl Invariant for RetryBound {
    fn name(&self) -> &'static str {
        "retry-bound"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (t, e) in art.trace.events() {
            if let TraceEvent::Retry {
                station,
                short,
                long,
            } = *e
            {
                if short > w.retry_limit_short || long > w.retry_limit_long {
                    out.push(v(
                        self.name(),
                        format!(
                            "sta {station} retried past the limit at {t}: short {short}/{}, \
                             long {long}/{}",
                            w.retry_limit_short, w.retry_limit_long
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Every `Backoff` draw respects the configured contention window:
/// `cw_min <= cw <= cw_max` and `slots <= cw`.
pub struct CwBounds;

impl Invariant for CwBounds {
    fn name(&self) -> &'static str {
        "cw-bounds"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (t, e) in art.trace.events() {
            if let TraceEvent::Backoff { station, slots, cw } = *e {
                if cw < w.cw_min || cw > w.cw_max || slots > cw {
                    out.push(v(
                        self.name(),
                        format!(
                            "sta {station} drew {slots} slots from cw {cw} at {t} \
                             (bounds [{}, {}])",
                            w.cw_min, w.cw_max
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// A station that observed a NAV reservation does not *start* a
/// contention-won transmission before it expires.
///
/// Soundness carve-outs, straight from the DCF rules the MAC
/// implements: ACK/CTS responses ignore NAV (SIFS precedence);
/// SIFS-spaced continuations (fragment bursts, data after CTS) are
/// identified by the station's preceding own Tx and skipped — only
/// transmissions whose immediately-preceding activity is a `Backoff`
/// are contention-won; and a transmission within ~2 µs of the NAV
/// observation sits in the already-committed slot boundary the MAC
/// deliberately honours, so a 2 µs guard band applies. Scenarios where
/// channels change mid-run are excluded entirely (`nav_checkable`),
/// because a channel switch legitimately resets NAV without a trace
/// event.
pub struct NavRespected;

impl Invariant for NavRespected {
    fn name(&self) -> &'static str {
        "nav-respected"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        if !w.nav_checkable {
            return Vec::new();
        }
        const COMMITTED_NS: u64 = 2_000;
        const BOUNDARY_NS: u64 = 1_000;
        let mut out = Vec::new();
        // Per-station: the last contention-relevant activity and the
        // last observed reservation.
        let mut last_was_backoff: HashMap<u32, bool> = HashMap::new();
        let mut last_nav: HashMap<u32, (u64, u64)> = HashMap::new();
        for (t, e) in art.trace.events() {
            match *e {
                TraceEvent::Tx { station, kind, .. } => {
                    let contention_won = last_was_backoff.get(&station).copied().unwrap_or(false);
                    if contention_won && !matches!(kind, FrameKind::Ack | FrameKind::Cts) {
                        if let Some(&(nav_at_ns, until_us)) = last_nav.get(&station) {
                            let tx_ns = t.as_nanos();
                            let until_ns = until_us.saturating_mul(1_000);
                            if tx_ns + BOUNDARY_NS < until_ns && tx_ns > nav_at_ns + COMMITTED_NS {
                                out.push(v(
                                    self.name(),
                                    format!(
                                        "sta {station} transmitted {kind:?} at {t} inside \
                                         a NAV reservation running to {until_us}us"
                                    ),
                                ));
                            }
                        }
                    }
                    last_was_backoff.insert(station, false);
                }
                TraceEvent::Rx { station, .. } => {
                    last_was_backoff.insert(station, false);
                }
                TraceEvent::Backoff { station, .. } => {
                    last_was_backoff.insert(station, true);
                }
                TraceEvent::Nav { station, until_us } => {
                    last_nav.insert(station, (t.as_nanos(), until_us));
                }
                _ => {}
            }
        }
        out
    }
}

/// Frame conservation: every MSDU the MAC accepted is eventually
/// delivered, failed, dropped on overflow, or still pending — nothing
/// vanishes and nothing is double-counted.
pub struct FrameConservation;

impl Invariant for FrameConservation {
    fn name(&self) -> &'static str {
        "frame-conservation"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, s) in w.stats.iter().enumerate() {
            let accounted = s.tx_completions + s.tx_failures + s.queue_drops + w.pending[i];
            if s.queued != accounted {
                out.push(v(
                    self.name(),
                    format!(
                        "sta {i}: queued {} != completions {} + failures {} + drops {} + \
                         pending {}",
                        s.queued, s.tx_completions, s.tx_failures, s.queue_drops, w.pending[i]
                    ),
                ));
            }
        }
        out
    }
}

/// The frame arena's reference ledger balances at every sampled
/// instant: the sum of outstanding arena references equals the
/// references the world's holders account for (parked injections,
/// station queues, in-flight exchanges with their cached wire frames,
/// and transmission records). The runner samples the ledger at slice
/// boundaries *during* the run, not just at the end — a drained world
/// balances trivially, but a mid-run leak (an id dropped without
/// release, or a holder double-counted) splits the two sides while
/// traffic is in flight.
pub struct FrameLedgerBalanced;

impl Invariant for FrameLedgerBalanced {
    fn name(&self) -> &'static str {
        "frame-ledger"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, &(refs, held)) in w.ledger.iter().enumerate() {
            if refs != held {
                out.push(v(
                    self.name(),
                    format!(
                        "ledger sample {i}/{}: arena carries {refs} frame refs but \
                         holders account for {held}",
                        w.ledger.len()
                    ),
                ));
            }
        }
        out
    }
}

/// The interference-shard partition stays sound for the whole run:
/// the runner computes the deployment's shard plan at construction
/// time and re-validates it against the live world at every slice
/// boundary (`WlanWorld::shard_plan_incoherence`) — no coupled pair
/// straddling shards, every cross-shard pair's propagation delay at
/// least the plan lookahead, station set unchanged. Mobility patches
/// land between slices, so a partition invalidated by movement (or a
/// planner bug) surfaces here instead of silently desynchronizing a
/// sharded execution.
pub struct ShardCoherence;

impl Invariant for ShardCoherence {
    fn name(&self) -> &'static str {
        "shard-coherence"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        w.shard_coherence
            .iter()
            .map(|detail| v(self.name(), detail.clone()))
            .collect()
    }
}

/// The spatial grid index stays coherent for the whole run: at every
/// slice boundary the runner checks the grid's structural invariants
/// against the live position table (each station in exactly one cell,
/// the cell its position hashes to, membership sorted) and re-derives
/// every sparse neighbor-row entry from the link budget — including
/// the soundness claim that every pair the grid *omitted* is below
/// the carrier-sense floor (`WlanWorld::grid_incoherence`). A stale
/// cell after a mobility patch, or an audible pair the 27-cell
/// neighborhood missed, surfaces here instead of silently deafening a
/// station. Vacuous on dense (grid-off or anisotropic) worlds.
pub struct GridCoherence;

impl Invariant for GridCoherence {
    fn name(&self) -> &'static str {
        "grid-coherence"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        w.grid_coherence
            .iter()
            .map(|detail| v(self.name(), detail.clone()))
            .collect()
    }
}

/// The typed trace and the `MetricsRegistry` snapshot agree: per
/// station, `TxOutcome`/`Retry`/`Drop` event counts equal the
/// corresponding counters, and the counters equal the raw stats they
/// are snapshotted from. Skipped when the trace ring evicted records.
pub struct TraceMetricsConsistent;

impl Invariant for TraceMetricsConsistent {
    fn name(&self) -> &'static str {
        "trace-metrics"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        if art.trace.dropped() > 0 {
            return Vec::new();
        }
        let mut completions: HashMap<u32, u64> = HashMap::new();
        let mut failures: HashMap<u32, u64> = HashMap::new();
        let mut retries: HashMap<u32, u64> = HashMap::new();
        let mut overflow_drops: HashMap<u32, u64> = HashMap::new();
        for (_, e) in art.trace.events() {
            match *e {
                TraceEvent::TxOutcome { station, ok: true } => {
                    *completions.entry(station).or_default() += 1;
                }
                TraceEvent::TxOutcome { station, ok: false } => {
                    *failures.entry(station).or_default() += 1;
                }
                TraceEvent::Retry { station, .. } => {
                    *retries.entry(station).or_default() += 1;
                }
                TraceEvent::Drop {
                    station,
                    reason: DropReason::QueueFull,
                    ..
                } => {
                    *overflow_drops.entry(station).or_default() += 1;
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        type StatOf = fn(&super::run::WlanFacts, usize) -> u64;
        let checks: [(&'static str, &HashMap<u32, u64>, StatOf); 4] = [
            ("tx_completions", &completions, |w, i| {
                w.stats[i].tx_completions
            }),
            ("tx_failures", &failures, |w, i| w.stats[i].tx_failures),
            ("retries", &retries, |w, i| w.stats[i].retries),
            ("queue_drops", &overflow_drops, |w, i| {
                w.stats[i].queue_drops
            }),
        ];
        for i in 0..w.stats.len() {
            let sid = i as u32;
            for (name, trace_counts, stat) in &checks {
                let from_trace = trace_counts.get(&sid).copied().unwrap_or(0);
                let from_stats = stat(w, i);
                let from_metrics = w.counters.get(&(*name, sid)).copied().unwrap_or(0);
                if from_trace != from_metrics || from_stats != from_metrics {
                    out.push(v(
                        self.name(),
                        format!(
                            "sta {i} {name}: trace {from_trace}, stats {from_stats}, \
                             metrics {from_metrics}"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// No unicast data MSDU is delivered to an upper layer twice: the
/// dedup cache must swallow every retransmission whose original
/// already arrived. Keyed `(receiver, transmitter, sequence)`; sound
/// because sequence counters cannot wrap within a generated scenario.
pub struct NoDuplicateDelivery;

impl Invariant for NoDuplicateDelivery {
    fn name(&self) -> &'static str {
        "no-duplicate-delivery"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &(rx, tx, seq) in &w.delivered {
            if !seen.insert((rx, tx, seq)) {
                out.push(v(
                    self.name(),
                    format!("sta {rx} accepted seq {seq} from {tx:02x?} twice"),
                ));
            }
        }
        out
    }
}

/// Association state machines only take legal transitions: a station
/// never roams or changes power-save state before it has associated,
/// and every granted AID is within the standard's 1..=2007 range.
pub struct AssocLegal;

impl Invariant for AssocLegal {
    fn name(&self) -> &'static str {
        "assoc-legal"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        if art.wlan.is_none() {
            return Vec::new();
        }
        let mut associated: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (t, e) in art.trace.events() {
            match *e {
                TraceEvent::Assoc { station, aid } => {
                    if aid == 0 || aid > MAX_AID {
                        out.push(v(
                            self.name(),
                            format!("sta {station} granted illegal aid {aid} at {t}"),
                        ));
                    }
                    associated.insert(station);
                }
                TraceEvent::Handoff { station } if !associated.contains(&station) => {
                    out.push(v(
                        self.name(),
                        format!("sta {station} roamed at {t} without ever associating"),
                    ));
                }
                TraceEvent::PowerSave { station, doze } if !associated.contains(&station) => {
                    out.push(v(
                        self.name(),
                        format!(
                            "sta {station} changed power-save (doze={doze}) at {t} \
                             without ever associating"
                        ),
                    ));
                }
                _ => {}
            }
        }
        out
    }
}

/// Symmetric saturating senders get airtime shares of the same order:
/// DCF is long-run fair, so with identical offered load and identical
/// distances no sender's completion count may dwarf another's. The
/// bound is deliberately loose (8×) and gated on enough completions to
/// be statistically meaningful.
pub struct AirtimeFairness;

impl Invariant for AirtimeFairness {
    fn name(&self) -> &'static str {
        "airtime-fairness"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        if !w.symmetric || w.stats.len() < 3 {
            return Vec::new();
        }
        let senders: Vec<u64> = w.stats[1..].iter().map(|s| s.tx_completions).collect();
        let min = *senders.iter().min().expect("non-empty");
        let max = *senders.iter().max().expect("non-empty");
        if min < 20 {
            return Vec::new();
        }
        if max > min * 8 {
            return vec![v(
                self.name(),
                format!(
                    "symmetric senders finished between {min} and {max} MSDUs \
                     (ratio > 8x): {senders:?}"
                ),
            )];
        }
        Vec::new()
    }
}

/// ZigBee packet conservation: every offered packet is delivered,
/// dropped, or still queued — and no delivery exceeds the hop budget.
pub struct ZigbeeConservation;

impl Invariant for ZigbeeConservation {
    fn name(&self) -> &'static str {
        "zigbee-conservation"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(z) = &art.zigbee else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let accounted = z.delivered + z.dropped + z.queued;
        if z.offered != accounted {
            out.push(v(
                self.name(),
                format!(
                    "offered {} != delivered {} + dropped {} + queued {}",
                    z.offered, z.delivered, z.dropped, z.queued
                ),
            ));
        }
        for (t, e) in art.trace.events() {
            if let TraceEvent::Deliver { station, hops, .. } = *e {
                if u64::from(hops) > z.hop_limit {
                    out.push(v(
                        self.name(),
                        format!(
                            "delivery to node {station} at {t} took {hops} hops \
                             (budget {})",
                            z.hop_limit
                        ),
                    ));
                }
            }
        }
        if art.trace.dropped() == 0 {
            let deliver_events = art
                .trace
                .count_events(|e| matches!(e, TraceEvent::Deliver { .. }))
                as u64;
            if deliver_events != z.delivered {
                out.push(v(
                    self.name(),
                    format!(
                        "{} Deliver events but {} deliveries counted",
                        deliver_events, z.delivered
                    ),
                ));
            }
        }
        out
    }
}

/// Bluetooth byte conservation: application bytes injected equal bytes
/// delivered plus bytes still queued (including unroutable transfers,
/// which park rather than vanish).
pub struct BtConservation;

impl Invariant for BtConservation {
    fn name(&self) -> &'static str {
        "bt-conservation"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(b) = &art.bt else {
            return Vec::new();
        };
        if b.injected != b.delivered + b.pending {
            return vec![v(
                self.name(),
                format!(
                    "injected {} != delivered {} + pending {}",
                    b.injected, b.delivered, b.pending
                ),
            )];
        }
        Vec::new()
    }
}

/// Block-ack window conservation (QoS corpus): every MPDU sequence
/// number a station put on the air inside an A-MPDU is resolved
/// *exactly once* — acknowledged by a `BlockAckRx` bit or dropped with
/// an `MpduDrop` (retry budget exhausted) — never both, never twice,
/// and never resolved without a prior `AmpduTx` carrying it. A
/// sequence must not reappear in a later aggregate once resolved
/// (retransmission after completion), and the per-station totals must
/// close against the MAC counters: acknowledged sequences are exactly
/// `tx_completions`, dropped ones exactly `tx_failures`. Sequences
/// still in flight at the horizon are the tolerated tail (they sit in
/// `pending`, which the frame-conservation oracle already balances).
/// Sound because a generated scenario cannot wrap the 4096-sequence
/// space; skipped when the trace ring evicted records.
pub struct BlockAckConservation;

/// Per-sequence lifecycle inside one station+AC block-ack scoreboard.
#[derive(Clone, Copy, PartialEq)]
enum MpduState {
    InFlight,
    Acked,
    Dropped,
}

impl Invariant for BlockAckConservation {
    fn name(&self) -> &'static str {
        "block-ack-window"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        if !w.edca || art.trace.dropped() > 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        // (station, ac, seq) → lifecycle state.
        let mut board: HashMap<(u32, u8, u16), MpduState> = HashMap::new();
        let mut acked: HashMap<u32, u64> = HashMap::new();
        let mut dropped: HashMap<u32, u64> = HashMap::new();
        for (t, e) in art.trace.events() {
            match *e {
                TraceEvent::AmpduTx {
                    station,
                    ac,
                    ssn,
                    bitmap,
                } => {
                    for k in 0..64u16 {
                        if bitmap >> k & 1 == 0 {
                            continue;
                        }
                        let seq = ssn.wrapping_add(k) & 0x0FFF;
                        match board.insert((station, ac, seq), MpduState::InFlight) {
                            Some(MpduState::Acked) | Some(MpduState::Dropped) => out.push(v(
                                self.name(),
                                format!(
                                    "sta {station} ac {ac} retransmitted seq {seq} at {t} \
                                     after it was already resolved"
                                ),
                            )),
                            _ => {}
                        }
                    }
                }
                TraceEvent::BlockAckRx {
                    station,
                    ac,
                    ssn,
                    bitmap,
                } => {
                    for k in 0..64u16 {
                        if bitmap >> k & 1 == 0 {
                            continue;
                        }
                        let seq = ssn.wrapping_add(k) & 0x0FFF;
                        match board.insert((station, ac, seq), MpduState::Acked) {
                            Some(MpduState::InFlight) => {
                                *acked.entry(station).or_default() += 1;
                            }
                            prior => out.push(v(
                                self.name(),
                                format!(
                                    "sta {station} ac {ac} seq {seq} acknowledged at {t} \
                                     {}",
                                    if prior.is_none() {
                                        "without ever being transmitted"
                                    } else {
                                        "twice (or after being dropped)"
                                    }
                                ),
                            )),
                        }
                    }
                }
                TraceEvent::MpduDrop { station, ac, seq } => {
                    match board.insert((station, ac, seq), MpduState::Dropped) {
                        Some(MpduState::InFlight) => {
                            *dropped.entry(station).or_default() += 1;
                        }
                        prior => out.push(v(
                            self.name(),
                            format!(
                                "sta {station} ac {ac} seq {seq} dropped at {t} {}",
                                if prior.is_none() {
                                    "without ever being transmitted"
                                } else {
                                    "after it was already resolved"
                                }
                            ),
                        )),
                    }
                }
                _ => {}
            }
        }
        for (i, s) in w.stats.iter().enumerate() {
            let sid = i as u32;
            let a = acked.get(&sid).copied().unwrap_or(0);
            let d = dropped.get(&sid).copied().unwrap_or(0);
            if a != s.tx_completions {
                out.push(v(
                    self.name(),
                    format!(
                        "sta {i}: {a} block-acked MPDUs but {} completions counted",
                        s.tx_completions
                    ),
                ));
            }
            if d != s.tx_failures {
                out.push(v(
                    self.name(),
                    format!(
                        "sta {i}: {d} dropped MPDUs but {} failures counted",
                        s.tx_failures
                    ),
                ));
            }
        }
        out
    }
}

/// EDCA priority inversion (QoS corpus): in a fully drained run — no
/// MSDUs pending at the horizon and no queue overflows, so the per-AC
/// delay populations are complete rather than survivor-censored —
/// voice must not wait fundamentally longer than background. The bound
/// is deliberately loose (AC_VO median at most 2× AC_BK's, with a
/// sample-count gate on both categories); legitimate EDCA clears it
/// easily since AC_VO contends with AIFSN 2 and CW 3–7 against
/// AC_BK's AIFSN 7 and CW 15–1023, while the planted AIFSN-swap
/// fail-point (which hands AC_VO the background parameters and vice
/// versa) inverts the ladder far past 2× under contention.
pub struct EdcaPriorityInversion;

impl Invariant for EdcaPriorityInversion {
    fn name(&self) -> &'static str {
        "edca-priority"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wlan else {
            return Vec::new();
        };
        if !w.edca {
            return Vec::new();
        }
        // Censoring guard: a starved category completes only its
        // early, cheap frames, which *shrinks* its observed median —
        // comparing quantiles is only sound over complete populations.
        let drained =
            w.pending.iter().all(|&p| p == 0) && w.stats.iter().all(|s| s.queue_drops == 0);
        if !drained {
            return Vec::new();
        }
        const VO: usize = 0;
        const BK: usize = 3;
        const MIN_SAMPLES: u64 = 20;
        if w.ac_samples[VO] < MIN_SAMPLES || w.ac_samples[BK] < MIN_SAMPLES {
            return Vec::new();
        }
        let (Some(vo), Some(bk)) = (w.ac_p50_us[VO], w.ac_p50_us[BK]) else {
            return Vec::new();
        };
        if vo > bk.saturating_mul(2) {
            return vec![v(
                self.name(),
                format!(
                    "AC_VO median access delay {vo} µs exceeds 2x AC_BK's {bk} µs \
                     ({} vs {} samples) — the priority ladder is inverted",
                    w.ac_samples[VO], w.ac_samples[BK]
                ),
            )];
        }
        Vec::new()
    }
}

/// WiMAX grant conservation: the bytes moved under `Grant` trace
/// events exactly equal the delivered-byte counters, per subscriber
/// and direction. Skipped when the trace ring evicted records.
pub struct WmanGrantConservation;

impl Invariant for WmanGrantConservation {
    fn name(&self) -> &'static str {
        "wman-grants"
    }

    fn check(&self, art: &Artifacts) -> Vec<Violation> {
        let Some(w) = &art.wman else {
            return Vec::new();
        };
        if art.trace.dropped() > 0 {
            return Vec::new();
        }
        let mut dl: HashMap<u32, u64> = HashMap::new();
        let mut ul: HashMap<u32, u64> = HashMap::new();
        for (_, e) in art.trace.events() {
            if let TraceEvent::Grant {
                station,
                bytes,
                uplink,
            } = *e
            {
                let bucket = if uplink { &mut ul } else { &mut dl };
                *bucket.entry(station).or_default() += bytes;
            }
        }
        let mut out = Vec::new();
        for (ss, &delivered) in w.dl_delivered.iter().enumerate() {
            let granted = dl.get(&(ss as u32)).copied().unwrap_or(0);
            if granted != delivered {
                out.push(v(
                    self.name(),
                    format!("ss {ss} downlink: granted {granted} but delivered {delivered}"),
                ));
            }
        }
        for (ss, &delivered) in w.ul_delivered.iter().enumerate() {
            let granted = ul.get(&(ss as u32)).copied().unwrap_or(0);
            if granted != delivered {
                out.push(v(
                    self.name(),
                    format!("ss {ss} uplink: granted {granted} but delivered {delivered}"),
                ));
            }
        }
        out
    }
}
