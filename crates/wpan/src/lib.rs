//! `wn-wpan` — the §2.1 personal-area technologies.
//!
//! "These networks are characterized by low power demands and a low bit
//! rate. Such kind of networks rely on technologies such as
//! Bluetooth, IrDA, ZigBee or UWB."
//!
//! - [`bluetooth`] — piconets (master + up to 7 active slaves, TDD
//!   polling, ~720 kbps shared) and scatternets bridged by dual-role
//!   devices (Fig. 1.2).
//! - [`zigbee`] — FFD/RFD node roles and the star / mesh / cluster-tree
//!   topologies of Fig. 1.4, with multi-hop routing at 250 kbps.
//! - [`irda`] — the 1 m, <30° cone, point-to-point infrared link
//!   (Fig. 2), with rate negotiation from 9.6 kbps to 16 Mbps.
//! - [`uwb`] — pulse-position-modulated ultra-wideband: 110–480 Mbps
//!   over a few metres with very low spectral density (Fig. 1.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bluetooth;
pub mod irda;
pub mod uwb;
pub mod zigbee;
