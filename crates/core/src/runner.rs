//! The campaign runner: a registry of every experiment in the
//! reproduction, executed through the `wn-sim` worker pool.
//!
//! Each [`Experiment`] couples a stable id (the figure/table of the
//! source text it reproduces) with a zero-argument function that runs
//! the scenario — seeds baked in, so a campaign is reproducible by
//! construction — and renders its Markdown section. [`run_campaign`]
//! fans the registry across threads with [`wn_sim::par_map_with`];
//! because results come back in registry order and every scenario is
//! seed-deterministic, the assembled report is byte-identical for any
//! worker count.

use std::fmt::Write as _;

use crate::experiment::ExperimentReport;
use crate::scenarios;

/// The rendered result of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// The experiment id, e.g. `"FIG-1.6"`.
    pub id: &'static str,
    /// The Markdown section exactly as it appears in EXPERIMENTS.md.
    pub markdown: String,
    /// Whether every comparison and claim held.
    pub passed: bool,
}

/// An observability export: returns `(trace_jsonl, metrics_jsonl)`
/// from a compact instrumented run of the experiment's scenario.
pub type ObserveFn = fn() -> (String, String);

/// One registered experiment: id, summary, and how to run it.
pub struct Experiment {
    /// Stable id matching the section header ("FIG-1.13", "ABL-CW", …).
    pub id: &'static str,
    /// One-line summary (the report title).
    pub title: &'static str,
    run: fn() -> ExperimentOutput,
    /// Typed-trace/metrics export, where the scenario is instrumented.
    pub observe: Option<ObserveFn>,
}

impl Experiment {
    /// Runs the experiment, producing its rendered section.
    pub fn run(&self) -> ExperimentOutput {
        (self.run)()
    }
}

/// The trace and metrics JSONL of one instrumented experiment.
#[derive(Clone, Debug)]
pub struct ObservabilityOutput {
    /// The experiment id, e.g. `"FIG-1.6"`.
    pub id: &'static str,
    /// Typed trace events, one JSON object per line.
    pub trace_jsonl: String,
    /// Metrics snapshot rows, one JSON object per line.
    pub metrics_jsonl: String,
}

/// Renders the standard report section: `to_markdown()` plus the blank
/// line the report generator leaves between sections.
fn section(id: &'static str, report: ExperimentReport) -> ExperimentOutput {
    ExperimentOutput {
        id,
        passed: report.passed(),
        markdown: format!("{}\n", report.to_markdown()),
    }
}

fn run_fig_1_1() -> ExperimentOutput {
    let fig = scenarios::fig_1_1_classification();
    let mut md = String::new();
    let _ = writeln!(md, "### FIG-1.1 — classification scatter [PASS]\n");
    let _ = writeln!(md, "Measured (range, rate) per technology:\n");
    let _ = writeln!(md, "| technology | range [m] | peak rate [Mbps] |");
    let _ = writeln!(md, "|---|---|---|");
    for s in &fig.series {
        let (r, m) = s.points[0];
        let _ = writeln!(md, "| {} | {:.0} | {:.1} |", s.label, r, m);
    }
    let _ = writeln!(md);
    ExperimentOutput {
        id: "FIG-1.1",
        passed: true,
        markdown: md,
    }
}

fn run_fig_1_2() -> ExperimentOutput {
    section("FIG-1.2", scenarios::fig_1_2_bluetooth().1)
}

fn run_fig_2() -> ExperimentOutput {
    section("FIG-2", scenarios::fig_2_irda().1)
}

fn run_fig_1_4() -> ExperimentOutput {
    section("FIG-1.4", scenarios::fig_1_4_zigbee(42).1)
}

fn run_fig_1_5() -> ExperimentOutput {
    section("FIG-1.5", scenarios::fig_1_5_uwb().1)
}

fn run_fig_1_6() -> ExperimentOutput {
    section("FIG-1.6", scenarios::fig_1_6_wlan_home(42).1)
}

fn run_fig_1_7() -> ExperimentOutput {
    section("FIG-1.7", scenarios::fig_1_7_wimax().1)
}

fn run_fig_1_8() -> ExperimentOutput {
    section("FIG-1.8", scenarios::fig_1_8_wwan().1)
}

fn run_fig_1_9() -> ExperimentOutput {
    section("FIG-1.9", scenarios::fig_1_9_ibss_vs_bss(42).1)
}

fn run_fig_1_10() -> ExperimentOutput {
    let (outcome, r) = scenarios::fig_1_10_ess_roaming(5);
    let mut md = format!("{}\n", r.to_markdown());
    let _ = writeln!(
        md,
        "measured handoff gap: {:?} s; deliveries {}/{}\n",
        outcome.handoff_gap_s, outcome.delivered, outcome.offered
    );
    ExperimentOutput {
        id: "FIG-1.10",
        passed: r.passed(),
        markdown: md,
    }
}

fn run_fig_1_12() -> ExperimentOutput {
    section("FIG-1.12", scenarios::fig_1_12_frame_overhead().1)
}

fn run_fig_1_13() -> ExperimentOutput {
    section("FIG-1.13", scenarios::fig_1_13_phy_ladder().1)
}

fn run_sec_rank() -> ExperimentOutput {
    section("SEC-RANK", scenarios::sec_ranking().1)
}

fn run_adv_6() -> ExperimentOutput {
    section("ADV-6", scenarios::adv_tradeoffs(13).1)
}

fn run_abl_cw() -> ExperimentOutput {
    section("ABL-CW", scenarios::ablation_cw_sweep(17).1)
}

fn run_abl_capture() -> ExperimentOutput {
    section("ABL-CAPTURE", scenarios::ablation_capture(19).1)
}

fn run_abl_arf() -> ExperimentOutput {
    section("ABL-ARF", scenarios::ablation_arf(23).1)
}

fn run_abl_adj() -> ExperimentOutput {
    section("ABL-ADJ", scenarios::adjacent_channels(29).1)
}

fn run_abl_fading() -> ExperimentOutput {
    section("ABL-FADING", scenarios::fading_link(37).1)
}

fn run_energy() -> ExperimentOutput {
    section("ENERGY-2.1", scenarios::energy_budget().1)
}

fn run_tab_8_1() -> ExperimentOutput {
    section("TAB-8.1", scenarios::table_8_1())
}

fn run_scale_dcf() -> ExperimentOutput {
    let (points, r) = scenarios::scale_dcf(42);
    let mut md = format!("{}\n", r.to_markdown());
    let _ = writeln!(
        md,
        "| stations | horizon [ms] | per-station [kbps] | aggregate [Mbps] | Jain | p50 delay [ms] | p99 delay [ms] | events |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    for p in &points {
        let _ = writeln!(
            md,
            "| {} | {} | {:.1} | {:.2} | {:.4} | {} | {} | {} |",
            p.stations,
            p.duration_ms,
            p.per_station_kbps,
            p.aggregate_mbps,
            p.jain_fairness,
            p.access_delay_p50_us / 1_000,
            p.access_delay_p99_us / 1_000,
            p.events,
        );
    }
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Horizons scale with station count so the Jain index converges \
         (DCF is short-term unfair by design); the 500/1000-station tail \
         measures the collapse on a fixed horizon. Scheduler back-end \
         events/s on this workload: see `BENCH_campaign.json`.\n"
    );
    ExperimentOutput {
        id: "SCALE-DCF",
        passed: r.passed(),
        markdown: md,
    }
}

fn run_city_dcf() -> ExperimentOutput {
    let (points, r) = scenarios::city_dcf(42);
    let mut md = format!("{}\n", r.to_markdown());
    let _ = writeln!(
        md,
        "| cells | stations | senders/cell | horizon [ms] | shards | lookahead [ns] | per-sender [kbps] | aggregate [Mbps] | cross-BSS Jain | byte-identical |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|---|");
    for p in &points {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {:.1} | {:.2} | {:.4} | {} |",
            p.cells,
            p.stations,
            p.senders_per_cell,
            p.duration_ms,
            p.shards,
            p.lookahead.as_nanos(),
            p.per_station_kbps,
            p.aggregate_mbps,
            p.jain_cross_bss,
            if p.byte_identical() { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Each cell is an independent interference shard (channels 1/6/11, \
         200 m street grid); every row ran serially and under the windowed \
         shard executor at 1/2/4 workers with byte-identical trace and \
         metrics digests (DESIGN.md §15). Shard-executor wall-clock: see \
         `BENCH_campaign.json` (`shards` section).\n"
    );
    ExperimentOutput {
        id: "CITY-DCF",
        passed: r.passed(),
        markdown: md,
    }
}

fn run_metro_dcf() -> ExperimentOutput {
    let (points, r) = scenarios::metro_dcf(42);
    let mut md = format!("{}\n", r.to_markdown());
    // No wall-clock columns here: the report must render byte-identically
    // across passes and thread counts, so timings live only in
    // `BENCH_campaign.json` (`grid` section).
    let _ = writeln!(
        md,
        "| cells | stations | senders/cell | horizon [ms] | shards | sparse/dense pairs | byte-identical |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for p in &points {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} |",
            p.cells,
            p.stations,
            p.senders_per_cell,
            p.duration_ms,
            p.shards,
            p.stored_entries
                .map(|s| format!("{s}/{}", p.dense_entries()))
                .unwrap_or_else(|| "-".into()),
            if p.byte_identical() { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "The CITY-DCF street grid swept to 100k+ stations. Planning and \
         neighbor-cache construction run on the spatial hash grid \
         (O(n·k) 27-cell neighborhood scans instead of O(n²) pair \
         scans; DESIGN.md §17), and each point still runs serially and \
         under the windowed shard executor with byte-identical digests. \
         Grid-vs-exhaustive wall-clock: see `BENCH_campaign.json` \
         (`grid` section).\n"
    );
    ExperimentOutput {
        id: "METRO-DCF",
        passed: r.passed(),
        markdown: md,
    }
}

fn run_dense_obss() -> ExperimentOutput {
    let (points, r) = scenarios::dense_obss(42);
    let mut md = format!("{}\n", r.to_markdown());
    let _ = writeln!(
        md,
        "| grid | APs | max co-channel | horizon [ms] | VO p50/p99 [µs] | VI p50/p99 [µs] | BE p50/p99 [µs] | BK p50/p99 [µs] | class Jain | delivered |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|---|");
    for p in &points {
        let _ = writeln!(
            md,
            "| {}x{} | {} | {} | {} | {}/{} | {}/{} | {}/{} | {}/{} | {:.4} | {:.0}% |",
            p.grid.0,
            p.grid.1,
            p.aps,
            p.cochannel_max,
            p.duration_ms,
            p.ac_p50_us[0],
            p.ac_p99_us[0],
            p.ac_p50_us[1],
            p.ac_p99_us[1],
            p.ac_p50_us[2],
            p.ac_p99_us[2],
            p.ac_p50_us[3],
            p.ac_p99_us[3],
            p.jain_airtime_within_class,
            p.delivered_frac() * 100.0,
        );
    }
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Every AP offers the same fixed downlink rate through the four \
         EDCA queues (A-MPDU on), so densifying the block shrinks each \
         co-channel class's airtime share: latency climbs with density \
         while AC_VO keeps its priority margin over AC_BE and airtime \
         stays Jain-fair inside each class. The last row re-runs the \
         densest grid on a data-heavy traffic mix. Aggregation-on vs \
         -off throughput: see `BENCH_campaign.json` (`qos` section).\n"
    );
    ExperimentOutput {
        id: "DENSE-OBSS",
        passed: r.passed(),
        markdown: md,
    }
}

/// The full registry, in the order sections appear in EXPERIMENTS.md.
pub fn experiments() -> Vec<Experiment> {
    macro_rules! exp {
        ($id:literal, $title:literal, $f:ident) => {
            Experiment {
                id: $id,
                title: $title,
                run: $f,
                observe: None,
            }
        };
        ($id:literal, $title:literal, $f:ident, $obs:expr) => {
            Experiment {
                id: $id,
                title: $title,
                run: $f,
                observe: Some($obs),
            }
        };
    }
    vec![
        exp!("FIG-1.1", "Classification scatter", run_fig_1_1),
        exp!(
            "FIG-1.2",
            "Bluetooth piconets and scatternet",
            run_fig_1_2,
            scenarios::observe_fig_1_2 as ObserveFn
        ),
        exp!("FIG-2", "IrDA point-to-point link", run_fig_2),
        exp!(
            "FIG-1.4",
            "ZigBee star/mesh/cluster-tree",
            run_fig_1_4,
            || { scenarios::observe_fig_1_4(42) }
        ),
        exp!("FIG-1.5", "UWB power/bandwidth usage", run_fig_1_5),
        exp!("FIG-1.6", "Home WLAN throughput", run_fig_1_6, || {
            scenarios::observe_fig_1_6(42)
        }),
        exp!(
            "FIG-1.7",
            "WiMAX point-to-multipoint",
            run_fig_1_7,
            scenarios::observe_fig_1_7 as ObserveFn
        ),
        exp!("FIG-1.8", "Satellite and cellular networks", run_fig_1_8),
        exp!("FIG-1.9", "Independent vs infrastructure BSS", run_fig_1_9),
        exp!(
            "FIG-1.10",
            "ESS roaming (seamless handoff)",
            run_fig_1_10,
            || { scenarios::observe_fig_1_10(5) }
        ),
        exp!("FIG-1.12", "802.11 MAC frame format", run_fig_1_12),
        exp!("FIG-1.13", "802.11 PHY standards ladder", run_fig_1_13),
        exp!(
            "SEC-RANK",
            "Wi-Fi security methods, best to worst",
            run_sec_rank
        ),
        exp!("ADV-6", "Interference and coverage black spots", run_adv_6),
        exp!("ABL-CW", "Binary exponential backoff ablation", run_abl_cw),
        exp!(
            "ABL-CAPTURE",
            "SINR capture effect ablation",
            run_abl_capture
        ),
        exp!("ABL-ARF", "ARF rate-fallback ablation", run_abl_arf),
        exp!("ABL-ADJ", "Adjacent-channel interference", run_abl_adj),
        exp!("ABL-FADING", "Rate adaptation under fading", run_abl_fading),
        exp!("ENERGY-2.1", "WPAN low-power positioning", run_energy),
        exp!(
            "TAB-8.1",
            "Comparison of wireless network types",
            run_tab_8_1
        ),
        exp!(
            "SCALE-DCF",
            "DCF saturation collapse, 10 → 1000 stations",
            run_scale_dcf
        ),
        exp!(
            "CITY-DCF",
            "Spatially-sharded city, 108 BSSes on channels 1/6/11",
            run_city_dcf
        ),
        exp!(
            "METRO-DCF",
            "Grid-indexed metro, 10k -> 100k+ stations",
            run_metro_dcf
        ),
        exp!(
            "DENSE-OBSS",
            "EDCA/A-MPDU apartment block, overlapping BSSes",
            run_dense_obss
        ),
    ]
}

/// The fixed preamble of EXPERIMENTS.md.
pub fn header() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# EXPERIMENTS — paper vs measured\n");
    let _ = writeln!(
        out,
        "Regenerated by `cargo run -p wn-bench --bin report`. Every"
    );
    let _ = writeln!(
        out,
        "experiment id maps to a figure/table of the source text and a"
    );
    let _ = writeln!(
        out,
        "bench target in `crates/bench/benches/` (see DESIGN.md §5).\n"
    );
    let _ = writeln!(
        out,
        "The reproduction criterion is *shape*, not absolute numbers:"
    );
    let _ = writeln!(
        out,
        "who wins, by roughly what factor, where the cutoffs fall.\n"
    );
    out
}

/// Runs every experiment on `threads` workers, in registry order.
pub fn run_campaign(threads: usize) -> Vec<ExperimentOutput> {
    wn_sim::par_map_with(threads, experiments(), |e| e.run())
}

/// Runs the whole campaign and assembles EXPERIMENTS.md.
///
/// The output is byte-identical for every `threads` value: scenarios
/// are seed-deterministic and [`wn_sim::par_map_with`] returns results
/// in input (registry) order.
pub fn campaign_markdown(threads: usize) -> String {
    let mut out = header();
    for s in run_campaign(threads) {
        out.push_str(&s.markdown);
    }
    out
}

/// Runs only the experiments whose ids appear in `ids` (matched
/// case-insensitively), preserving registry order.
///
/// Returns an error naming the first unknown id.
pub fn run_selected(threads: usize, ids: &[String]) -> Result<Vec<ExperimentOutput>, String> {
    let all = experiments();
    for want in ids {
        if !all.iter().any(|e| e.id.eq_ignore_ascii_case(want)) {
            return Err(format!(
                "unknown experiment id '{want}' (try --list for the registry)"
            ));
        }
    }
    let picked: Vec<Experiment> = all
        .into_iter()
        .filter(|e| ids.iter().any(|w| e.id.eq_ignore_ascii_case(w)))
        .collect();
    Ok(wn_sim::par_map_with(threads, picked, |e| e.run()))
}

/// Runs the observability export of every instrumented experiment on
/// `threads` workers, in registry order.
///
/// Like [`run_campaign`], the output is byte-identical for every
/// `threads` value: each export is seed-deterministic and results come
/// back in input order.
pub fn run_observability(threads: usize) -> Vec<ObservabilityOutput> {
    let jobs: Vec<(&'static str, ObserveFn)> = experiments()
        .into_iter()
        .filter_map(|e| e.observe.map(|f| (e.id, f)))
        .collect();
    wn_sim::par_map_with(threads, jobs, |(id, f)| {
        let (trace_jsonl, metrics_jsonl) = f();
        ObservabilityOutput {
            id,
            trace_jsonl,
            metrics_jsonl,
        }
    })
}

/// Concatenates per-experiment trace JSONL in registry order.
pub fn observability_trace_jsonl(outputs: &[ObservabilityOutput]) -> String {
    outputs.iter().map(|o| o.trace_jsonl.as_str()).collect()
}

/// Concatenates per-experiment metrics JSONL in registry order.
pub fn observability_metrics_jsonl(outputs: &[ObservabilityOutput]) -> String {
    outputs.iter().map(|o| o.metrics_jsonl.as_str()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered_like_the_report() {
        let exps = experiments();
        assert_eq!(exps.len(), 25);
        let mut seen = std::collections::BTreeSet::new();
        for e in &exps {
            assert!(seen.insert(e.id), "duplicate id {}", e.id);
        }
        assert_eq!(exps[0].id, "FIG-1.1");
        assert_eq!(exps.last().unwrap().id, "DENSE-OBSS");
    }

    #[test]
    fn observability_covers_every_layer_and_is_nonempty() {
        let outs = run_observability(2);
        let ids: Vec<&str> = outs.iter().map(|o| o.id).collect();
        assert_eq!(
            ids,
            ["FIG-1.2", "FIG-1.4", "FIG-1.6", "FIG-1.7", "FIG-1.10"],
            "registry order, one per instrumented layer"
        );
        for o in &outs {
            assert!(
                !o.trace_jsonl.is_empty(),
                "{} exported no trace events",
                o.id
            );
            assert!(!o.metrics_jsonl.is_empty(), "{} exported no metrics", o.id);
            for line in o.trace_jsonl.lines().chain(o.metrics_jsonl.lines()) {
                assert!(
                    line.starts_with(&format!("{{\"exp\":\"{}\"", o.id)),
                    "line not tagged with {}: {line}",
                    o.id
                );
            }
        }
    }

    /// Every `report --metrics-json` export must snapshot at the
    /// scenario's end-of-run deadline, not at the last metric update —
    /// that deadline is what flushes a [`wn_sim::stats::TimeWeighted`]
    /// gauge's final interval (see
    /// `gauge_end_of_run_flush_accounts_tail_interval` in `wn-sim`).
    /// Pin it: each export stamps one single `at_ns`, and no trace
    /// event (i.e. no possible gauge update) comes after it.
    #[test]
    fn metrics_export_is_stamped_at_end_of_run() {
        fn field_u64(line: &str, key: &str) -> u64 {
            let pat = format!("\"{key}\":");
            let rest = &line[line.find(&pat).expect("field present") + pat.len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().expect("numeric field")
        }
        let outs = run_observability(1);
        assert!(!outs.is_empty());
        for o in &outs {
            let stamps: std::collections::BTreeSet<u64> = o
                .metrics_jsonl
                .lines()
                .map(|l| field_u64(l, "at_ns"))
                .collect();
            assert_eq!(stamps.len(), 1, "{}: one capture time per export", o.id);
            let snap_at = *stamps.iter().next().unwrap();
            let last_event = o
                .trace_jsonl
                .lines()
                .map(|l| field_u64(l, "at_ns"))
                .max()
                .unwrap_or(0);
            assert!(
                snap_at >= last_event,
                "{}: metrics stamped at {snap_at} ns but events ran to {last_event} ns — \
                 the snapshot must capture the end-of-run tail",
                o.id
            );
        }
    }

    #[test]
    fn unknown_id_is_rejected() {
        let err = run_selected(1, &["FIG-9.9".to_string()]).unwrap_err();
        assert!(err.contains("FIG-9.9"));
    }

    #[test]
    fn selection_preserves_registry_order() {
        let out =
            run_selected(2, &["FIG-1.13".to_string(), "FIG-1.5".to_string()]).expect("known ids");
        let ids: Vec<&str> = out.iter().map(|o| o.id).collect();
        assert_eq!(ids, ["FIG-1.5", "FIG-1.13"]);
    }
}
