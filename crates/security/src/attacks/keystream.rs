//! Keystream-reuse attacks on WEP (IV collisions).
//!
//! The IV is 24 bits and travels in clear. Once two frames share an IV
//! (guaranteed within hours on a busy network, instantly on devices
//! that reset the counter at power-up), the xor of the ciphertexts is
//! the xor of the plaintexts — and any *known* plaintext (DHCP, ARP,
//! the 0xAA SNAP header…) yields the keystream for that IV, which
//! decrypts every other frame using it. This is "a hacker can easily
//! listen to a network" made concrete.

use crate::wep::WepFrame;
use std::collections::HashMap;

/// An eavesdropper's dictionary of recovered keystreams, by IV.
#[derive(Clone, Debug, Default)]
pub struct KeystreamDictionary {
    streams: HashMap<[u8; 3], Vec<u8>>,
}

impl KeystreamDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recovers keystream from a frame whose plaintext is known
    /// (chosen-plaintext: make the victim fetch something, or exploit
    /// protocol constants). The ICV extends the known plaintext by its
    /// CRC, so the whole ciphertext length is recovered.
    pub fn learn_from_known_plaintext(&mut self, frame: &WepFrame, plaintext: &[u8]) {
        let mut known = plaintext.to_vec();
        known.extend_from_slice(&wn_crypto::crc32(plaintext).to_le_bytes());
        let n = known.len().min(frame.ciphertext.len());
        let stream: Vec<u8> = frame.ciphertext[..n]
            .iter()
            .zip(&known)
            .map(|(c, p)| c ^ p)
            .collect();
        let entry = self.streams.entry(frame.iv).or_default();
        if stream.len() > entry.len() {
            *entry = stream;
        }
    }

    /// Number of IVs with recovered keystream.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` when nothing has been recovered yet.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Attempts to decrypt a frame without the key.
    ///
    /// Succeeds whenever the frame's IV is in the dictionary and the
    /// recovered keystream is long enough. The trailing 4 bytes (ICV)
    /// are stripped.
    pub fn decrypt(&self, frame: &WepFrame) -> Option<Vec<u8>> {
        let stream = self.streams.get(&frame.iv)?;
        if stream.len() < frame.ciphertext.len() {
            return None;
        }
        let mut plain: Vec<u8> = frame
            .ciphertext
            .iter()
            .zip(stream)
            .map(|(c, k)| c ^ k)
            .collect();
        plain.truncate(plain.len() - 4);
        Some(plain)
    }

    /// Forges a *valid* frame for an IV with known keystream: WEP has
    /// no replay protection and the ICV is computable by anyone.
    pub fn forge(&self, iv: [u8; 3], payload: &[u8]) -> Option<WepFrame> {
        let stream = self.streams.get(&iv)?;
        let mut buf = payload.to_vec();
        buf.extend_from_slice(&wn_crypto::crc32(payload).to_le_bytes());
        if stream.len() < buf.len() {
            return None;
        }
        for (b, k) in buf.iter_mut().zip(stream) {
            *b ^= k;
        }
        Some(WepFrame {
            iv,
            key_id: 0,
            ciphertext: buf,
        })
    }
}

/// XORs two same-IV ciphertexts: the result is `p1 ⊕ p2`, on which
/// classical cribbing works. Returns `None` when IVs differ.
pub fn xor_of_plaintexts(a: &WepFrame, b: &WepFrame) -> Option<Vec<u8>> {
    if a.iv != b.iv {
        return None;
    }
    let n = a.ciphertext.len().min(b.ciphertext.len());
    Some((0..n).map(|i| a.ciphertext[i] ^ b.ciphertext[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wep::{decrypt, encrypt, WepKey};

    fn key() -> WepKey {
        WepKey::new(b"13-byte-key!!").unwrap()
    }

    #[test]
    fn known_plaintext_recovers_other_frames() {
        let key = key();
        let iv = [0x11, 0x22, 0x33];
        // The attacker tricks the victim into sending a known payload…
        let known = vec![b'K'; 32];
        let f1 = encrypt(&key, iv, &known);
        let mut dict = KeystreamDictionary::new();
        dict.learn_from_known_plaintext(&f1, &known);
        // …then decrypts a *secret* frame that reused the IV (same length).
        let secret = b"password=hunter2&session=9f8e7d6";
        assert_eq!(secret.len(), known.len()); // Same keystream coverage.
        let f2 = encrypt(&key, iv, secret);
        let plain = dict.decrypt(&f2).expect("IV is in the dictionary");
        assert_eq!(&plain, secret);
    }

    #[test]
    fn different_iv_not_decryptable() {
        let key = key();
        let mut dict = KeystreamDictionary::new();
        let f1 = encrypt(&key, [1, 1, 1], b"known text");
        dict.learn_from_known_plaintext(&f1, b"known text");
        let f2 = encrypt(&key, [2, 2, 2], b"other text");
        assert!(dict.decrypt(&f2).is_none());
    }

    #[test]
    fn short_keystream_insufficient() {
        let key = key();
        let mut dict = KeystreamDictionary::new();
        let f1 = encrypt(&key, [1, 1, 1], b"tiny");
        dict.learn_from_known_plaintext(&f1, b"tiny");
        let f2 = encrypt(&key, [1, 1, 1], b"a much longer secret message");
        assert!(dict.decrypt(&f2).is_none(), "keystream too short to cover");
    }

    #[test]
    fn forged_frame_accepted_by_receiver() {
        // The devastating part: the attacker *injects* valid traffic
        // without ever knowing the key.
        let key = key();
        let iv = [9, 8, 7];
        let known = b"broadcast ARP who-has 10.0.0.1";
        let f = encrypt(&key, iv, known);
        let mut dict = KeystreamDictionary::new();
        dict.learn_from_known_plaintext(&f, known);
        let forged = dict.forge(iv, b"evil injected frame body 0000").unwrap();
        let accepted = decrypt(&key, &forged).expect("receiver validates ICV fine");
        assert_eq!(&accepted, b"evil injected frame body 0000");
    }

    #[test]
    fn xor_of_plaintexts_leaks() {
        let key = key();
        let iv = [5, 5, 5];
        let a = encrypt(&key, iv, b"attack at dawn!!");
        let b = encrypt(&key, iv, b"attack at dusk!!");
        let x = xor_of_plaintexts(&a, &b).unwrap();
        // Positions where plaintexts agree xor to zero — structure leaks.
        assert_eq!(&x[..11], &[0u8; 11][..]);
        assert_ne!(x[11], 0); // 'a' ^ 'u'.
        assert!(xor_of_plaintexts(&a, &encrypt(&key, [5, 5, 6], b"x")).is_none());
    }
}
