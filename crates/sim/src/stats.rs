//! Measurement instruments for simulation experiments.
//!
//! These are the primitives the benchmark harness uses to regenerate the
//! paper's figures: monotone [`Counter`]s, streaming moments
//! ([`Summary`], Welford's algorithm), bounded-error [`Histogram`]s for
//! latency quantiles, [`TimeWeighted`] gauges for occupancy-style
//! metrics, and labelled [`Series`] for (x, y) figure data.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// FNV-1a over a byte string — the stable 64-bit fingerprint used for
/// trace/metrics digests in the fuzzer and the differential scheduler
/// tests. Not cryptographic; chosen for byte-stable, dependency-free
/// hashing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A monotone event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Streaming mean / variance / min / max via Welford's algorithm.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    ///
    /// Tracked as a true running sum, not reconstructed as
    /// `mean() * n` — the reconstruction compounds Welford rounding
    /// error into anything derived from the sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A log-spaced histogram with ~4.5% relative bin error.
///
/// Values are bucketed by `(exponent, 4-bit mantissa)` like HdrHistogram
/// with one significant hex digit; adequate for latency quantiles.
#[derive(Clone, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
    summary: Summary,
}

const MANTISSA_BITS: u32 = 4;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram covering all of `u64`.
    pub fn new() -> Self {
        Histogram {
            bins: vec![0; ((64 + 1) << MANTISSA_BITS) as usize],
            total: 0,
            summary: Summary::new(),
        }
    }

    fn index(value: u64) -> usize {
        if value < (1 << MANTISSA_BITS) {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let mantissa = (value >> (exp - MANTISSA_BITS)) & ((1 << MANTISSA_BITS) - 1);
        (((exp - MANTISSA_BITS + 1) as usize) << MANTISSA_BITS) + mantissa as usize
    }

    fn bin_floor(index: usize) -> u64 {
        if index < (1 << MANTISSA_BITS) {
            return index as u64;
        }
        let exp = (index >> MANTISSA_BITS) as u32 + MANTISSA_BITS - 1;
        let mantissa = (index & ((1 << MANTISSA_BITS) - 1)) as u64;
        (1 << exp) | (mantissa << (exp - MANTISSA_BITS))
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.bins[Self::index(value)] += 1;
        self.total += 1;
        self.summary.record(value as f64);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// The `q`-quantile (e.g. 0.5, 0.99), reported at the midpoint of
    /// the bin the rank falls in.
    ///
    /// The midpoint is the convention: a recorded value is uniformly
    /// anywhere inside its bin, so the midpoint is the unbiased point
    /// estimate. Reporting the bin *lower bound* (the old behaviour)
    /// systematically underestimated every quantile by up to a full
    /// bin width — ~6% with one significant hex digit — a bias no
    /// amount of sampling averages away. Values below
    /// 2^`MANTISSA_BITS` sit in exact unit-width bins and are
    /// returned exactly under either convention.
    ///
    /// Returns `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q}");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bin_mid(i));
            }
        }
        // `rank <= total` and the bins sum to `total`, so the scan
        // always lands inside a bin.
        unreachable!("quantile rank {rank} exceeds recorded total {}", self.total)
    }

    /// Midpoint of a bin. Every bin in the octave of exponent `exp`
    /// has the same width `2^(exp - MANTISSA_BITS)`; unit-width bins
    /// (everything below `2^MANTISSA_BITS`, plus the first octave)
    /// collapse to their exact value.
    fn bin_mid(index: usize) -> u64 {
        let lo = Self::bin_floor(index);
        if index < (1 << MANTISSA_BITS) {
            return lo;
        }
        let exp = (index >> MANTISSA_BITS) as u32 + MANTISSA_BITS - 1;
        lo + (1u64 << (exp - MANTISSA_BITS)) / 2
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }
}

/// A time-weighted gauge: integrates `value × dt` to give time averages.
///
/// Used for queue depths, channel occupancy, and station counts, where
/// the *time spent* at each level matters, not the number of updates.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeighted {
    /// Creates a gauge with the given initial value at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: start,
            weighted_sum: 0.0,
            start,
            max: initial,
        }
    }

    /// Sets the gauge to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.duration_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.value * dt;
        self.value = value;
        self.last_change = now;
        self.max = self.max.max(value);
    }

    /// Adds `delta` to the gauge at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current instantaneous value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The maximum value ever set.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-average over `[start, now]`; 0 over an empty interval.
    pub fn time_average(&self, now: SimTime) -> f64 {
        let span = now.duration_since(self.start).as_secs_f64();
        if span == 0.0 {
            return self.value;
        }
        let pending = self.value * now.duration_since(self.last_change).as_secs_f64();
        (self.weighted_sum + pending) / span
    }
}

/// A labelled (x, y) series — one curve of a figure.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Curve label, e.g. `"802.11g"` or `"mesh"`.
    pub label: String,
    /// The data points in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Largest y value, or `None` when empty.
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }

    /// The x of the first point where y drops below `threshold`, scanning
    /// left to right. Used to locate crossover/cutoff distances.
    pub fn first_x_below(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, y)| y < threshold)
            .map(|&(x, _)| x)
    }
}

/// A whole figure: several series plus axis labels, printable as an
/// aligned text table (the form the bench harness reports in).
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Figure title, e.g. `"Fig 1.13 — rate vs distance"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns a mutable handle to it.
    pub fn add_series(&mut self, label: impl Into<String>) -> &mut Series {
        self.series.push(Series::new(label));
        self.series.last_mut().expect("just pushed")
    }

    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>14}", s.label);
        }
        let _ = writeln!(out);
        // Collect the union of x values in first-seen order.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.iter().any(|&e| (e - x).abs() < 1e-12) {
                    xs.push(x);
                }
            }
        }
        for x in xs {
            let _ = write!(out, "{x:>14.3}");
            for s in &self.series {
                match s.points.iter().find(|&&(px, _)| (px - x).abs() < 1e-12) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {y:>14.3}");
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_matches_naive_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    /// Property (regression): `sum()` must equal left-to-right naive
    /// summation *exactly*, for arbitrary value streams. The pre-fix
    /// implementation reconstructed the sum as `mean * n`, which
    /// compounds Welford rounding error — e.g. many values of wildly
    /// different magnitude drift away from the naive sum.
    #[test]
    fn summary_sum_equals_naive_summation_exactly() {
        for seed in 0..32u64 {
            let mut rng = crate::Rng::new(0x5EED_0000 + seed);
            let n = 1 + (rng.next_u64() % 2000) as usize;
            let mut s = Summary::new();
            let mut naive = 0.0f64;
            for _ in 0..n {
                // Mix magnitudes from 1e-6 to 1e6 to stress cancellation.
                let exponent = (rng.next_u64() % 13) as i32 - 6;
                let x = (rng.f64() - 0.5) * 10f64.powi(exponent);
                s.record(x);
                naive += x;
            }
            assert_eq!(
                s.sum().to_bits(),
                naive.to_bits(),
                "seed {seed}: running sum must match naive summation bit-for-bit"
            );
        }
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        // Small values land in exact unit bins.
        assert_eq!(h.quantile(0.0625), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
    }

    #[test]
    fn histogram_quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1000);
        }
        // Midpoint reporting halves the worst-case bin error: the old
        // lower-bound convention needed a 7% tolerance here, the
        // midpoint stays within half a bin width (~3.2%).
        let p50 = h.quantile(0.5).unwrap() as f64;
        let exact = 5_000_000.0;
        assert!((p50 - exact).abs() / exact < 0.04, "p50={p50}");
        let p99 = h.quantile(0.99).unwrap() as f64;
        let exact99 = 9_900_000.0;
        assert!((p99 - exact99).abs() / exact99 < 0.04, "p99={p99}");
    }

    #[test]
    fn histogram_quantile_is_not_systematically_low() {
        // The lower-bound bug: with values spread across log-spaced
        // bins, *every* reported quantile sat at or below the exact
        // one. The midpoint must land above the exact quantile about
        // as often as below it across a sweep of q.
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1000);
        }
        let (mut above, mut below) = (0, 0);
        for k in 1..=99u64 {
            let q = k as f64 / 100.0;
            let exact = (10_000.0 * q).round() * 1000.0;
            let got = h.quantile(q).unwrap() as f64;
            if got > exact {
                above += 1;
            } else if got < exact {
                below += 1;
            }
        }
        assert!(
            above >= 20 && below >= 20,
            "one-sided quantiles: {above} above vs {below} below"
        );
    }

    #[test]
    fn histogram_median_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.median(), None);
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.median(), Some(7));
    }

    #[test]
    fn histogram_index_floor_consistent() {
        // Every value maps to a bin whose floor is <= the value and
        // whose next bin floor is > the value.
        for v in [0u64, 1, 15, 16, 17, 100, 1023, 1024, 123_456_789] {
            let i = Histogram::index(v);
            assert!(Histogram::bin_floor(i) <= v, "v={v} i={i}");
            assert!(Histogram::bin_floor(i + 1) > v, "v={v} i={i}");
        }
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
        g.set(SimTime::from_secs(1), 10.0); // 0 for 1 s
        g.set(SimTime::from_secs(3), 0.0); // 10 for 2 s
        let avg = g.time_average(SimTime::from_secs(4)); // 0 for 1 s
        assert!((avg - 5.0).abs() < 1e-12, "avg={avg}");
        assert_eq!(g.max(), 10.0);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn time_weighted_add_tracks_depth() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
        g.add(SimTime::from_secs(1), 2.0);
        g.add(SimTime::from_secs(2), -1.0);
        assert_eq!(g.current(), 1.0);
        assert_eq!(g.max(), 2.0);
    }

    #[test]
    fn series_helpers() {
        let mut s = Series::new("rate");
        s.push(10.0, 54.0);
        s.push(50.0, 36.0);
        s.push(100.0, 2.0);
        assert_eq!(s.y_max(), Some(54.0));
        assert_eq!(s.first_x_below(10.0), Some(100.0));
        assert_eq!(s.first_x_below(1.0), None);
    }

    #[test]
    fn figure_table_renders_all_series() {
        let mut f = Figure::new("test", "x", "y");
        f.add_series("a").push(1.0, 2.0);
        f.add_series("b").push(1.0, 3.0);
        let t = f.to_table();
        assert!(t.contains("# test"));
        assert!(t.contains('a') && t.contains('b'));
        assert!(t.contains("2.000") && t.contains("3.000"));
    }
}
