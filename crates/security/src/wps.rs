//! The Wi-Fi Protected Setup (WPS) PIN design flaw (§5.2).
//!
//! "the same vulnerability that is the biggest hole in the WPA armor,
//! the attack vector through the Wi-Fi Protected Setup (WPS), remains
//! in modern WPA2-capable access points. Although breaking into a
//! WPA/WPA2 secured network using this vulnerability requires anywhere
//! from 2-14 hours of sustained effort …"
//!
//! The flaw: the 8-digit PIN's last digit is a checksum, and the
//! protocol confirms the two 4-digit halves *independently*, so the
//! search space collapses from 10⁸ to 10⁴ + 10³ = 11 000 attempts.

/// Computes the WPS checksum digit over the first 7 digits.
pub fn checksum_digit(first7: u32) -> u32 {
    let mut accum = 0u32;
    let mut v = first7;
    while v > 0 {
        accum += 3 * (v % 10);
        v /= 10;
        accum += v % 10;
        v /= 10;
    }
    (10 - accum % 10) % 10
}

/// A full 8-digit WPS PIN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WpsPin(pub u32);

impl WpsPin {
    /// Builds a valid PIN from its first 7 digits.
    pub fn from_first7(first7: u32) -> Self {
        WpsPin(first7 * 10 + checksum_digit(first7))
    }

    /// The first half (digits 1–4).
    pub fn half1(self) -> u32 {
        self.0 / 10_000
    }

    /// The second half (digits 5–8, including the checksum).
    pub fn half2(self) -> u32 {
        self.0 % 10_000
    }

    /// `true` when the checksum digit is valid.
    pub fn is_valid(self) -> bool {
        checksum_digit(self.0 / 10) == self.0 % 10
    }
}

/// An AP-side WPS registrar: confirms each half independently — the
/// protocol flaw itself (M4/M6 responses leak per-half success).
#[derive(Clone, Copy, Debug)]
pub struct Registrar {
    pin: WpsPin,
}

impl Registrar {
    /// Creates a registrar with the given PIN.
    pub fn new(pin: WpsPin) -> Self {
        Registrar { pin }
    }

    /// M4 response: does the first half match?
    pub fn check_half1(&self, half1: u32) -> bool {
        self.pin.half1() == half1
    }

    /// M6 response: does the second half match? (Only reachable after
    /// a correct first half in the real protocol.)
    pub fn check_half2(&self, half2: u32) -> bool {
        self.pin.half2() == half2
    }
}

/// Result of the brute-force search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WpsAttackResult {
    /// The recovered PIN.
    pub pin: WpsPin,
    /// Protocol attempts used.
    pub attempts: u32,
}

/// Runs the Reaver-style split search: ≤10⁴ tries for half 1, then
/// ≤10³ for the 3 free digits of half 2 (the checksum pins the 4th).
pub fn brute_force(reg: &Registrar) -> WpsAttackResult {
    let mut attempts = 0;
    let mut half1 = 0;
    for h1 in 0..10_000 {
        attempts += 1;
        if reg.check_half1(h1) {
            half1 = h1;
            break;
        }
    }
    for h2_free in 0..1_000 {
        attempts += 1;
        // The last digit is forced by the checksum over the first 7.
        let first7 = half1 * 1_000 + h2_free;
        let pin = WpsPin::from_first7(first7);
        if reg.check_half2(pin.half2()) {
            return WpsAttackResult { pin, attempts };
        }
    }
    unreachable!("the PIN space is fully covered");
}

/// Expected wall-clock duration of the attack at `seconds_per_attempt`
/// (M1–M7 exchanges plus AP lockout throttling), for a worst-case and
/// average-case attempt count.
pub fn expected_duration_hours(seconds_per_attempt: f64) -> (f64, f64) {
    let worst = 11_000.0 * seconds_per_attempt / 3600.0;
    let average = 5_500.0 * seconds_per_attempt / 3600.0;
    (average, worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_reference_values() {
        // Known-valid WPS PINs: 12345670 is the canonical example.
        assert_eq!(checksum_digit(1234567), 0);
        assert!(WpsPin(12345670).is_valid());
        assert!(!WpsPin(12345671).is_valid());
    }

    #[test]
    fn from_first7_always_valid() {
        for f7 in [0u32, 1, 9999999, 5551212, 8391024] {
            assert!(WpsPin::from_first7(f7).is_valid(), "{f7}");
        }
    }

    #[test]
    fn halves_split_correctly() {
        let pin = WpsPin(12345670);
        assert_eq!(pin.half1(), 1234);
        assert_eq!(pin.half2(), 5670);
    }

    #[test]
    fn brute_force_recovers_any_pin() {
        for f7 in [0u32, 123, 9999999, 4815162] {
            let pin = WpsPin::from_first7(f7);
            let result = brute_force(&Registrar::new(pin));
            assert_eq!(result.pin, pin);
        }
    }

    #[test]
    fn attempts_bounded_by_11000() {
        // The collapse from 10^8 to ≤ 11 000 — the whole point.
        let worst = brute_force(&Registrar::new(WpsPin::from_first7(9_999_999)));
        assert!(worst.attempts <= 11_000, "{}", worst.attempts);
        let easy = brute_force(&Registrar::new(WpsPin::from_first7(0)));
        assert!(easy.attempts <= 1_001, "{}", easy.attempts);
    }

    #[test]
    fn duration_matches_texts_2_to_14_hours() {
        // At ~1.3–4.5 s/attempt (protocol + throttling), the average
        // and worst cases straddle the text's "2-14 hours".
        let (avg_fast, _) = expected_duration_hours(1.3);
        let (_, worst_slow) = expected_duration_hours(4.5);
        assert!((1.9..2.1).contains(&avg_fast), "{avg_fast}");
        assert!((13.0..14.5).contains(&worst_slow), "{worst_slow}");
    }
}
