//! Uniform spatial hash grid over station positions.
//!
//! Every position-driven scan in this crate used to be O(n) or O(n²):
//! [`crate::neighbors::NeighborCache::build`] filled an n×n matrix,
//! [`crate::sim::WlanWorld::shard_plan`] compared every pair, and a
//! mobility patch touched every row. The grid cuts each of those to the
//! stations that can possibly matter: with the cell edge at least the
//! maximum audible range (the distance at which the strongest radio
//! pair's received power falls below the carrier-sense floor), any two
//! stations whose cells differ by more than one index along any axis
//! are more than one cell edge apart and therefore inaudible by
//! construction. The 27-cell neighborhood (9 cells in the planar case
//! every scenario uses, ±1 in z for the general one) is thus a sound
//! overapproximation of audibility, and scans become O(n·k) where k is
//! the neighborhood population.
//!
//! Cells are keyed by `floor(coord / cell_m)` per axis, so a station
//! sitting exactly on a boundary lands deterministically in the
//! higher-index cell; membership lists stay sorted by station id so
//! every neighborhood query yields ids in ascending order — the same
//! visit order the exhaustive scans had, which the byte-identity
//! contracts depend on. The map itself is only ever *indexed*, never
//! iterated, in digest-bearing code: iteration order of a `HashMap` is
//! unspecified and must not leak into traces.

use std::collections::HashMap;

use crate::sim::StationId;
use wn_phy::geom::Point;

/// A cell address: `floor(coord / cell_m)` along x, y, z.
pub type CellKey = (i64, i64, i64);

/// Uniform spatial hash grid mapping cells to sorted station-id lists.
pub struct SpatialGrid {
    cell_m: f64,
    cells: HashMap<CellKey, Vec<StationId>>,
    /// Each station's current cell, so a move needs no old position.
    station_cell: Vec<CellKey>,
}

impl SpatialGrid {
    /// Builds the grid over `positions` with the given cell edge.
    ///
    /// The edge is clamped to at least one metre: propagation models
    /// clamp distances below 1 m anyway, and a degenerate zero-range
    /// deployment (carrier-sense floor above every receivable power)
    /// must still produce finitely many cells.
    pub fn build(cell_m: f64, positions: impl IntoIterator<Item = Point>) -> Self {
        let mut g = SpatialGrid {
            cell_m: cell_m.max(1.0),
            cells: HashMap::new(),
            station_cell: Vec::new(),
        };
        for p in positions {
            let id = g.station_cell.len();
            let key = g.cell_key(p);
            g.station_cell.push(key);
            // Build order is ascending id, so plain push keeps every
            // membership list sorted.
            g.cells.entry(key).or_default().push(id);
        }
        g
    }

    /// The cell edge in metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of stations indexed.
    pub fn station_count(&self) -> usize {
        self.station_cell.len()
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The cell a position falls in.
    pub fn cell_key(&self, p: Point) -> CellKey {
        (
            (p.x / self.cell_m).floor() as i64,
            (p.y / self.cell_m).floor() as i64,
            (p.z / self.cell_m).floor() as i64,
        )
    }

    /// The cell a station currently occupies.
    pub fn cell_of(&self, id: StationId) -> CellKey {
        self.station_cell[id]
    }

    /// Members of one cell, ascending by id (empty slice if the cell
    /// is unoccupied).
    pub fn cell_members(&self, key: CellKey) -> &[StationId] {
        self.cells.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Moves a station to a new position, updating cell membership.
    /// Returns `true` when the station actually changed cells.
    pub fn move_station(&mut self, id: StationId, to: Point) -> bool {
        let new_key = self.cell_key(to);
        let old_key = self.station_cell[id];
        if new_key == old_key {
            return false;
        }
        let old = self.cells.get_mut(&old_key).expect("station's cell exists");
        let pos = old.binary_search(&id).expect("station listed in its cell");
        old.remove(pos);
        if old.is_empty() {
            self.cells.remove(&old_key);
        }
        let new = self.cells.entry(new_key).or_default();
        let pos = new.binary_search(&id).expect_err("station not yet in cell");
        new.insert(pos, id);
        self.station_cell[id] = new_key;
        true
    }

    /// Appends every station in the 27-cell neighborhood of `key`
    /// (the cell itself and all adjacent cells, ±1 per axis) to `out`,
    /// then sorts the collected ids ascending. The querying station
    /// itself is included when it lives in the neighborhood.
    pub fn neighborhood_into(&self, key: CellKey, out: &mut Vec<StationId>) {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                for dz in -1..=1i64 {
                    if let Some(members) = self.cells.get(&(key.0 + dx, key.1 + dy, key.2 + dz)) {
                        out.extend_from_slice(members);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Structural self-check against the authoritative position table:
    /// every station's recorded cell matches its position, it appears
    /// exactly once in that cell's sorted list, and no list holds a
    /// stranger. `None` means coherent. The check behind the
    /// `grid-coherence` fuzz oracle.
    pub fn find_incoherence(&self, mut position: impl FnMut(StationId) -> Point) -> Option<String> {
        let mut listed = 0usize;
        for (key, members) in &self.cells {
            if members.is_empty() {
                return Some(format!("empty cell {key:?} retained"));
            }
            if !members.windows(2).all(|w| w[0] < w[1]) {
                return Some(format!("cell {key:?} membership not sorted: {members:?}"));
            }
            listed += members.len();
            for &m in members {
                if self.station_cell.get(m) != Some(key) {
                    return Some(format!(
                        "station {m} listed in {key:?} but recorded elsewhere"
                    ));
                }
            }
        }
        if listed != self.station_cell.len() {
            return Some(format!(
                "{} stations indexed but {listed} listed across cells",
                self.station_cell.len()
            ));
        }
        for (id, &key) in self.station_cell.iter().enumerate() {
            let expect = self.cell_key(position(id));
            if key != expect {
                return Some(format!(
                    "station {id} recorded in cell {key:?} but positioned in {expect:?}"
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of(cell: f64, pts: &[(f64, f64)]) -> SpatialGrid {
        SpatialGrid::build(cell, pts.iter().map(|&(x, y)| Point::new(x, y)))
    }

    #[test]
    fn boundary_positions_land_in_the_higher_cell() {
        // Exactly on a cell edge: floor(10/10) = 1, not 0 — and the
        // assignment is deterministic, not epsilon-dependent.
        let g = grid_of(
            10.0,
            &[(9.999, 0.0), (10.0, 0.0), (-10.0, 0.0), (-0.0, 0.0)],
        );
        assert_eq!(g.cell_of(0), (0, 0, 0));
        assert_eq!(g.cell_of(1), (1, 0, 0));
        assert_eq!(g.cell_of(2), (-1, 0, 0));
        assert_eq!(g.cell_of(3), (0, 0, 0), "negative zero is still zero");
        assert_eq!(g.cell_members((1, 0, 0)), &[1]);
    }

    #[test]
    fn neighborhood_is_sorted_and_covers_adjacent_cells_only() {
        let g = grid_of(
            10.0,
            &[
                (5.0, 5.0),
                (15.0, 5.0),
                (25.0, 5.0),
                (5.0, 15.0),
                (95.0, 95.0),
            ],
        );
        let mut out = Vec::new();
        g.neighborhood_into(g.cell_of(0), &mut out);
        // Cell (0,0) sees (1,0) and (0,1) but not (2,0) or the far one.
        assert_eq!(out, vec![0, 1, 3]);
        out.clear();
        g.neighborhood_into(g.cell_of(1), &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn degenerate_single_cell_and_clamped_edge() {
        // All stations in one cell; a sub-metre edge clamps to 1 m.
        let g = grid_of(0.001, &[(0.1, 0.2), (0.3, 0.4), (0.5, 0.6)]);
        assert_eq!(g.cell_m(), 1.0);
        assert_eq!(g.cell_count(), 1);
        let mut out = Vec::new();
        g.neighborhood_into(g.cell_of(2), &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn mobility_moves_between_cells_exactly_once() {
        let pts = [(5.0, 5.0), (15.0, 5.0)];
        let mut g = grid_of(10.0, &pts);
        let mut pos = [Point::new(5.0, 5.0), Point::new(15.0, 5.0)];
        assert!(g.find_incoherence(|i| pos[i]).is_none());

        // Crossing the boundary: leaves the old cell, joins the new,
        // appears in exactly one cell before and after.
        pos[0] = Point::new(10.0, 5.0);
        assert!(g.move_station(0, pos[0]));
        assert_eq!(g.cell_members((0, 0, 0)), &[] as &[StationId]);
        assert_eq!(g.cell_members((1, 0, 0)), &[0, 1]);
        assert!(g.find_incoherence(|i| pos[i]).is_none());

        // An intra-cell move touches nothing.
        pos[0] = Point::new(12.0, 5.0);
        assert!(!g.move_station(0, pos[0]));
        assert!(g.find_incoherence(|i| pos[i]).is_none());

        // A stale position table is caught.
        assert!(g.find_incoherence(|_| Point::new(500.0, 0.0)).is_some());
    }
}
