//! A generational slab of frame buffers.
//!
//! The MAC's hot path used to share frames as `Rc<Frame>`: one heap
//! allocation per control frame put on the air, refcount traffic on
//! every hand-off, and — decisively for the roadmap — `!Send` worlds,
//! because `Rc` pins the whole simulation to one thread. This arena
//! replaces pointers with copyable [`FrameId`]s: slots live in one
//! `Vec`, freed slots are recycled through a free list, and every slot
//! carries a generation counter so a stale id from before a slot was
//! recycled cannot silently alias the new occupant.
//!
//! Reference counting is explicit and cheap: [`FrameArena::insert`]
//! hands out a slot holding one reference, [`FrameArena::retain`] /
//! [`FrameArena::release`] move it between holders (transmission
//! records, a sender's cached wire frame, parked injection events),
//! and the slot returns to the free list when the last reference goes.
//! Misuse is caught where it is cheapest: generation checks are
//! `debug_assert!`s (the fuzzer and the test suite run with them; the
//! release hot path pays nothing), while use-after-free of an *empty*
//! slot still fails loudly in release via the `Option` unwrap.
//!
//! The id-not-pointer shape is the prerequisite for sharding a world
//! across threads (ROADMAP item 1): a `FrameId` is `Send + Copy`, and
//! the arena itself is plain owned data.

use crate::frame::Frame;

/// A copyable handle to a frame in a [`FrameArena`].
///
/// The generation distinguishes successive occupants of the same slot;
/// debug builds verify it on every access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FrameId {
    idx: u32,
    gen: u32,
}

impl FrameId {
    /// The slot index — stable for the lifetime of this id's frame.
    pub fn index(self) -> u32 {
        self.idx
    }
}

struct Slot {
    /// `None` only for freed slots and while the occupant is
    /// temporarily checked out via [`FrameArena::take`].
    frame: Option<Frame>,
    refs: u32,
    gen: u32,
}

/// The slab. See the module docs.
#[derive(Default)]
pub struct FrameArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl FrameArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        FrameArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    #[inline]
    fn check(&self, id: FrameId) {
        debug_assert!(
            (id.idx as usize) < self.slots.len(),
            "frame id {id:?} out of bounds"
        );
        debug_assert_eq!(
            self.slots[id.idx as usize].gen, id.gen,
            "stale frame id {id:?}: slot was recycled (use after release)"
        );
        debug_assert!(
            self.slots[id.idx as usize].refs > 0,
            "frame id {id:?} has no outstanding references"
        );
    }

    /// Stores `frame`, returning an id holding one reference.
    pub fn insert(&mut self, frame: Frame) -> FrameId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.frame.is_none() && slot.refs == 0);
            slot.frame = Some(frame);
            slot.refs = 1;
            FrameId { idx, gen: slot.gen }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                frame: Some(frame),
                refs: 1,
                gen: 0,
            });
            FrameId { idx, gen: 0 }
        }
    }

    /// Adds a reference for a new holder of `id`.
    pub fn retain(&mut self, id: FrameId) {
        self.check(id);
        self.slots[id.idx as usize].refs += 1;
    }

    /// Drops one reference; the slot is recycled when the last goes.
    pub fn release(&mut self, id: FrameId) {
        self.check(id);
        let slot = &mut self.slots[id.idx as usize];
        slot.refs -= 1;
        if slot.refs == 0 {
            slot.frame = None;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(id.idx);
            self.live -= 1;
        }
    }

    /// Borrows the frame under `id`.
    #[inline]
    pub fn get(&self, id: FrameId) -> &Frame {
        self.check(id);
        self.slots[id.idx as usize]
            .frame
            .as_ref()
            .expect("frame id points at an empty slot")
    }

    /// Mutably borrows the frame under `id`.
    #[inline]
    pub fn get_mut(&mut self, id: FrameId) -> &mut Frame {
        self.check(id);
        self.slots[id.idx as usize]
            .frame
            .as_mut()
            .expect("frame id points at an empty slot")
    }

    /// Checks the frame out of its slot, leaving the slot allocated.
    ///
    /// This is the borrow-splitting escape hatch for call chains that
    /// need `&Frame` and `&mut` world state at once (frame delivery
    /// fans out into arbitrary MAC mutations). Pair with
    /// [`FrameArena::restore`]; the id stays valid throughout, but
    /// [`FrameArena::get`] on it while checked out panics.
    pub fn take(&mut self, id: FrameId) -> Frame {
        self.check(id);
        self.slots[id.idx as usize]
            .frame
            .take()
            .expect("frame already checked out")
    }

    /// Returns a frame checked out via [`FrameArena::take`].
    pub fn restore(&mut self, id: FrameId, frame: Frame) {
        self.check(id);
        let slot = &mut self.slots[id.idx as usize];
        debug_assert!(slot.frame.is_none(), "restore over a present frame");
        slot.frame = Some(frame);
    }

    /// Removes a frame whose only reference is the caller's, freeing
    /// the slot. The move-out complement of [`FrameArena::release`]
    /// for hand-offs to the upper layer.
    pub fn remove(&mut self, id: FrameId) -> Frame {
        self.check(id);
        let slot = &mut self.slots[id.idx as usize];
        debug_assert_eq!(slot.refs, 1, "remove with other holders outstanding");
        let frame = slot.frame.take().expect("frame id points at an empty slot");
        slot.refs = 0;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
        frame
    }

    /// Number of occupied slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (occupied + recycled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sum of outstanding references across occupied slots — the
    /// left-hand side of the frame-conservation ledger the `wn-check`
    /// oracle balances against the world's holders.
    pub fn total_refs(&self) -> u64 {
        self.slots.iter().map(|s| u64::from(s.refs)).sum()
    }

    /// Outstanding references on one id (test/oracle hook).
    pub fn refs(&self, id: FrameId) -> u32 {
        self.check(id);
        self.slots[id.idx as usize].refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;

    fn frame(tag: u8) -> Frame {
        Frame::ack(MacAddr::station(u32::from(tag)))
    }

    #[test]
    fn insert_get_release_roundtrip() {
        let mut a = FrameArena::new();
        let id = a.insert(frame(1));
        assert_eq!(a.get(id).addr1, MacAddr::station(1));
        assert_eq!(a.live(), 1);
        assert_eq!(a.refs(id), 1);
        a.release(id);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn slots_are_reused_with_fresh_generations() {
        let mut a = FrameArena::new();
        let first = a.insert(frame(1));
        a.release(first);
        let second = a.insert(frame(2));
        // Same physical slot, different generation: the slab recycles
        // without growing, and the old id can never alias the new
        // occupant.
        assert_eq!(first.index(), second.index());
        assert_ne!(first, second);
        assert_eq!(a.capacity(), 1);
        assert_eq!(a.get(second).addr1, MacAddr::station(2));
    }

    #[test]
    fn retain_keeps_slot_until_last_release() {
        let mut a = FrameArena::new();
        let id = a.insert(frame(1));
        a.retain(id);
        assert_eq!(a.refs(id), 2);
        a.release(id);
        assert_eq!(a.live(), 1, "one holder left");
        assert_eq!(a.get(id).addr1, MacAddr::station(1));
        a.release(id);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn take_restore_leaves_slot_allocated() {
        let mut a = FrameArena::new();
        let id = a.insert(frame(3));
        let f = a.take(id);
        assert_eq!(f.addr1, MacAddr::station(3));
        assert_eq!(a.live(), 1);
        a.restore(id, f);
        assert_eq!(a.get(id).addr1, MacAddr::station(3));
    }

    #[test]
    fn remove_moves_frame_out_and_frees_slot() {
        let mut a = FrameArena::new();
        let id = a.insert(frame(4));
        let f = a.remove(id);
        assert_eq!(f.addr1, MacAddr::station(4));
        assert_eq!(a.live(), 0);
        assert_eq!(a.capacity(), 1);
    }

    #[test]
    fn total_refs_counts_every_holder() {
        let mut a = FrameArena::new();
        let x = a.insert(frame(1));
        let y = a.insert(frame(2));
        a.retain(x);
        assert_eq!(a.total_refs(), 3);
        a.release(x);
        a.release(y);
        assert_eq!(a.total_refs(), 1);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "generation checks are debug-only")]
    #[should_panic(expected = "stale frame id")]
    fn stale_id_after_recycle_is_caught() {
        let mut a = FrameArena::new();
        let first = a.insert(frame(1));
        a.release(first);
        let _second = a.insert(frame(2));
        // `first` now points at a recycled slot: using it is the
        // use-after-release bug the generation exists to catch.
        let _ = a.get(first);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "generation checks are debug-only")]
    #[should_panic(expected = "stale frame id")]
    fn released_id_is_rejected_before_reuse() {
        // Release bumps the generation even before the slot is reused,
        // so the very first touch of a dead id trips the stale check.
        let mut a = FrameArena::new();
        let id = a.insert(frame(1));
        a.release(id);
        let _ = a.get(id);
    }
}
