//! Small-scale fading (multipath).
//!
//! §6's "interference … could lead to poor communication" is not only
//! co-channel traffic: indoor links fade as reflections combine. This
//! module models block fading — the channel holds for one *coherence
//! time*, then redraws:
//!
//! - **Rayleigh** — no line of sight; received power is exponentially
//!   distributed (deep fades are common).
//! - **Rician(K)** — a dominant path plus scatter; larger K ⇒ shallower
//!   fades, K → ∞ approaches no fading.
//!
//! Fades are deterministic per `(link, time-block, seed)`, so runs are
//! reproducible and both directions of a link fade alike.

use crate::geom::Point;
use crate::units::Db;

/// A block-fading process over links.
#[derive(Clone, Copy, Debug)]
pub struct Fading {
    /// Rician K-factor (linear). 0 = Rayleigh.
    pub k_factor: f64,
    /// Coherence time in seconds: the fade redraws each block.
    pub coherence_time_s: f64,
    /// Scenario seed.
    pub seed: u64,
}

impl Fading {
    /// A Rayleigh (no-line-of-sight) process.
    pub fn rayleigh(coherence_time_s: f64, seed: u64) -> Self {
        Fading {
            k_factor: 0.0,
            coherence_time_s,
            seed,
        }
    }

    /// A Rician process with linear K-factor.
    pub fn rician(k_factor: f64, coherence_time_s: f64, seed: u64) -> Self {
        Fading {
            k_factor,
            coherence_time_s,
            seed,
        }
    }

    /// Two uniform draws hashed from (link, block).
    fn uniforms(&self, a: Point, b: Point, block: u64) -> (f64, f64) {
        let q = |v: f64| (v * 8.0).round() as i64 as u64;
        let mut h = self.seed ^ 0xFAD1_C0DE_u64;
        for part in [q(a.x + b.x), q(a.y + b.y), q(a.z + b.z), block] {
            h ^= part.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = h.rotate_left(29).wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        let u1 = ((h >> 32) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        let u2 = ((h & 0xFFFF_FFFF) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        (u1, u2)
    }

    /// The linear power gain of the fade on link `a`↔`b` at time `t_s`
    /// (mean 1.0 — fading redistributes power over time, it does not
    /// remove it on average).
    pub fn power_gain(&self, a: Point, b: Point, t_s: f64) -> f64 {
        let block = (t_s / self.coherence_time_s).floor().max(0.0) as u64;
        let (u1, u2) = self.uniforms(a, b, block);
        // Complex Gaussian scatter component + LOS component.
        // Scatter power 1/(K+1), LOS power K/(K+1).
        let r = (-u1.ln()).sqrt(); // Rayleigh envelope of unit-power scatter.
        let phase = std::f64::consts::TAU * u2;
        let k = self.k_factor.max(0.0);
        let los = (k / (k + 1.0)).sqrt();
        let scatter = (1.0 / (k + 1.0)).sqrt() * r;
        // |los + scatter·e^{jφ}|².
        let re = los + scatter * phase.cos();
        let im = scatter * phase.sin();
        re * re + im * im
    }

    /// The fade expressed in dB (negative = deep fade).
    pub fn fade_db(&self, a: Point, b: Point, t_s: f64) -> Db {
        Db(10.0 * self.power_gain(a, b, t_s).max(1e-12).log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> (Point, Point) {
        (Point::new(0.0, 0.0), Point::new(25.0, 10.0))
    }

    #[test]
    fn constant_within_coherence_block() {
        let f = Fading::rayleigh(0.01, 7);
        let (a, b) = link();
        let g1 = f.power_gain(a, b, 0.001);
        let g2 = f.power_gain(a, b, 0.009);
        assert_eq!(g1, g2, "same 10 ms block, same fade");
        let g3 = f.power_gain(a, b, 0.011);
        assert_ne!(g1, g3, "next block redraws");
    }

    #[test]
    fn reciprocal() {
        let f = Fading::rayleigh(0.01, 9);
        let (a, b) = link();
        assert_eq!(f.power_gain(a, b, 0.5), f.power_gain(b, a, 0.5));
    }

    #[test]
    fn rayleigh_mean_power_is_unity() {
        let f = Fading::rayleigh(0.001, 11);
        let (a, b) = link();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| f.power_gain(a, b, i as f64 * 0.001))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean power {mean}");
    }

    #[test]
    fn rayleigh_has_deep_fades() {
        // P(power < 0.1) = 1 − e^{−0.1} ≈ 9.5% for Rayleigh.
        let f = Fading::rayleigh(0.001, 13);
        let (a, b) = link();
        let n = 20_000;
        let deep = (0..n)
            .filter(|&i| f.power_gain(a, b, i as f64 * 0.001) < 0.1)
            .count();
        let frac = deep as f64 / n as f64;
        assert!((0.06..0.13).contains(&frac), "deep-fade fraction {frac}");
    }

    #[test]
    fn rician_suppresses_deep_fades() {
        let (a, b) = link();
        let n = 20_000;
        let deep = |k: f64| {
            let f = Fading::rician(k, 0.001, 17);
            (0..n)
                .filter(|&i| f.power_gain(a, b, i as f64 * 0.001) < 0.1)
                .count() as f64
                / n as f64
        };
        let k0 = deep(0.0);
        let k5 = deep(5.0);
        let k20 = deep(20.0);
        assert!(k5 < k0 / 2.0, "K=5 should halve deep fades: {k5} vs {k0}");
        assert!(k20 < k5, "more LOS, fewer fades: {k20} vs {k5}");
    }

    #[test]
    fn strong_rician_approaches_unity_gain() {
        let f = Fading::rician(1000.0, 0.001, 19);
        let (a, b) = link();
        for i in 0..100 {
            let g = f.power_gain(a, b, i as f64 * 0.001);
            assert!(
                (g - 1.0).abs() < 0.25,
                "K→∞ should pin the gain near 1: {g}"
            );
        }
    }

    #[test]
    fn fade_db_matches_linear() {
        let f = Fading::rayleigh(0.01, 21);
        let (a, b) = link();
        let g = f.power_gain(a, b, 0.02);
        let db = f.fade_db(a, b, 0.02).value();
        assert!((db - 10.0 * g.log10()).abs() < 1e-9);
    }

    #[test]
    fn different_links_fade_independently() {
        let f = Fading::rayleigh(0.01, 23);
        let a = Point::new(0.0, 0.0);
        let same_block_gains: Vec<f64> = (1..=20)
            .map(|i| f.power_gain(a, Point::new(i as f64 * 3.0, 0.0), 0.005))
            .collect();
        // f64 keys: dedup via bit patterns.
        let mut bits: Vec<u64> = same_block_gains.iter().map(|g| g.to_bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 20, "every link gets its own fade");
    }
}
