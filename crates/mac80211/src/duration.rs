//! Airtime and NAV (Duration field) arithmetic.
//!
//! §4.2: the Duration/ID field "indicates the remaining duration
//! needed to receive the next frame transmission". These helpers compute
//! frame airtimes from PHY rates and the NAV values for the
//! RTS→CTS→DATA→ACK and fragment-burst sequences.

use wn_phy::modulation::{MacTiming, PhyStandard, RateStep};
use wn_sim::SimDuration;

/// Length in bytes of an ACK/CTS control frame on the air.
pub const ACK_LEN: usize = 14;
/// Length in bytes of an RTS control frame on the air.
pub const RTS_LEN: usize = 20;

/// Airtime of a frame of `wire_len` bytes at `rate`, including the PHY
/// preamble/PLCP overhead.
pub fn airtime(timing: &MacTiming, rate: RateStep, wire_len: usize) -> SimDuration {
    let payload = SimDuration::for_bits(wire_len as u64 * 8, rate.rate.bps());
    SimDuration::from_nanos((timing.preamble_us * 1_000.0) as u64) + payload
}

/// Airtime of an ACK sent at the standard's base rate.
pub fn ack_airtime(std: PhyStandard) -> SimDuration {
    airtime(&std.mac_timing(), std.base_rate(), ACK_LEN)
}

/// Airtime of a CTS at the base rate (same length as an ACK).
pub fn cts_airtime(std: PhyStandard) -> SimDuration {
    ack_airtime(std)
}

/// Airtime of an RTS at the base rate.
pub fn rts_airtime(std: PhyStandard) -> SimDuration {
    airtime(&std.mac_timing(), std.base_rate(), RTS_LEN)
}

/// SIFS as a [`SimDuration`].
pub fn sifs(std: PhyStandard) -> SimDuration {
    SimDuration::from_nanos((std.mac_timing().sifs_us * 1_000.0) as u64)
}

/// DIFS as a [`SimDuration`].
pub fn difs(std: PhyStandard) -> SimDuration {
    SimDuration::from_nanos((std.mac_timing().difs_us() * 1_000.0) as u64)
}

/// One slot as a [`SimDuration`].
pub fn slot(std: PhyStandard) -> SimDuration {
    SimDuration::from_nanos((std.mac_timing().slot_us * 1_000.0) as u64)
}

/// Clamps a duration to the 15-bit µs range of the Duration field.
fn to_duration_field(d: SimDuration) -> u16 {
    (d.as_micros_f64().ceil() as u64).min(0x7FFF) as u16
}

/// NAV value for a unicast data/management frame: SIFS + ACK, plus the
/// remainder of the fragment burst when more fragments follow.
pub fn data_duration(
    std: PhyStandard,
    more_fragments: bool,
    next_fragment_airtime: Option<SimDuration>,
) -> u16 {
    let mut d = sifs(std) + ack_airtime(std);
    if more_fragments {
        // Cover the next fragment and its ACK too (§4.2 More Fragments).
        d += sifs(std)
            + next_fragment_airtime.unwrap_or(SimDuration::ZERO)
            + sifs(std)
            + ack_airtime(std);
    }
    to_duration_field(d)
}

/// NAV value for an RTS: CTS + DATA + ACK + 3×SIFS.
pub fn rts_duration(std: PhyStandard, data_airtime: SimDuration) -> u16 {
    let d = sifs(std) + cts_airtime(std) + sifs(std) + data_airtime + sifs(std) + ack_airtime(std);
    to_duration_field(d)
}

/// NAV value for a CTS, derived from the RTS it answers:
/// `rts_duration − SIFS − CTS_airtime`.
pub fn cts_duration(std: PhyStandard, rts_duration_us: u16) -> u16 {
    let consumed = (sifs(std) + cts_airtime(std)).as_micros_f64().ceil() as u16;
    rts_duration_us.saturating_sub(consumed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_includes_preamble() {
        let std = PhyStandard::Dot11b;
        let t = std.mac_timing();
        let base = std.base_rate();
        // 100 bytes at 1 Mbps = 800 µs, plus 192 µs preamble.
        let a = airtime(&t, base, 100);
        assert!((a.as_micros_f64() - 992.0).abs() < 1.0, "{a}");
    }

    #[test]
    fn ack_airtime_reasonable_for_g() {
        // ACK at 6 Mbps: 14 B = 18.7 µs + 20 µs preamble ≈ 39 µs.
        let a = ack_airtime(PhyStandard::Dot11g);
        assert!((a.as_micros_f64() - 38.7).abs() < 1.0, "{a}");
    }

    #[test]
    fn nav_ordering() {
        // RTS reserves the whole exchange, so its NAV exceeds a data
        // frame's NAV, which exceeds zero.
        let std = PhyStandard::Dot11g;
        let data_air = SimDuration::from_micros(300);
        let rts = rts_duration(std, data_air);
        let data = data_duration(std, false, None);
        assert!(rts > data, "rts={rts} data={data}");
        assert!(data > 0);
    }

    #[test]
    fn cts_duration_counts_down() {
        // Each stage of the exchange shortens the NAV by what has been
        // consumed — the countdown §4.2 describes.
        let std = PhyStandard::Dot11g;
        let rts = rts_duration(std, SimDuration::from_micros(300));
        let cts = cts_duration(std, rts);
        assert!(cts < rts);
        // Remaining after CTS: SIFS + DATA + SIFS + ACK ≈ rts − sifs − cts_air.
        let expect = rts - (sifs(std) + cts_airtime(std)).as_micros_f64().ceil() as u16;
        assert_eq!(cts, expect);
    }

    #[test]
    fn fragment_nav_extends_over_next_fragment() {
        let std = PhyStandard::Dot11g;
        let plain = data_duration(std, false, None);
        let frag = data_duration(std, true, Some(SimDuration::from_micros(200)));
        assert!(frag > plain + 200, "frag NAV must cover the next fragment");
    }

    #[test]
    fn duration_field_clamped_to_15_bits() {
        let std = PhyStandard::Dot11;
        // An absurdly long data frame at 1 Mbps.
        let d = rts_duration(std, SimDuration::from_millis(100));
        assert!(d <= 0x7FFF);
    }

    #[test]
    fn sifs_shorter_than_difs() {
        for s in PhyStandard::ALL {
            assert!(sifs(s) < difs(s), "{s:?}");
        }
    }
}
