//! Regenerates `EXPERIMENTS.md`: runs every registered experiment
//! through the `wn-core` campaign runner and writes the paper-vs-
//! measured record.
//!
//! Run with: `cargo run -p wn-bench --bin report > EXPERIMENTS.md`
//!
//! Flags:
//! - `--threads N` — worker count for the campaign pool (default: the
//!   `WN_THREADS` env var, else the machine's parallelism). Output is
//!   byte-identical for every N.
//! - `--only <id>` — run a single experiment (repeatable); sections
//!   come out in registry order, without the file preamble.
//! - `--trace-json PATH` — also write the typed trace events of every
//!   instrumented experiment as JSONL (registry order, byte-identical
//!   for any `--threads`).
//! - `--metrics-json PATH` — likewise for per-layer metric snapshots.
//! - `--no-neighbor-cache` — run every experiment on the direct O(n)
//!   propagation path instead of the neighbor cache. Output must stay
//!   byte-identical; CI diffs the two to hold the cache to its
//!   equivalence contract on the observe_* scenarios.
//! - `--list` — print the experiment registry and exit.

use wn_core::runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut trace_json: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--only" => {
                i += 1;
                let id = args.get(i).unwrap_or_else(|| {
                    eprintln!("--only needs an experiment id (see --list)");
                    std::process::exit(2);
                });
                only.push(id.clone());
            }
            "--threads" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a count >= 1");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "--trace-json" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--trace-json needs an output path");
                    std::process::exit(2);
                });
                trace_json = Some(path.clone());
            }
            "--metrics-json" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| {
                    eprintln!("--metrics-json needs an output path");
                    std::process::exit(2);
                });
                metrics_json = Some(path.clone());
            }
            "--no-neighbor-cache" => {
                wn_mac80211::set_neighbor_cache_default(false);
            }
            "--list" => {
                for e in runner::experiments() {
                    println!("{:12} {}", e.id, e.title);
                }
                return;
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (supported: --only <id>, --threads N, \
                     --trace-json PATH, --metrics-json PATH, --no-neighbor-cache, --list)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let threads = threads.unwrap_or_else(wn_sim::worker_count);

    if only.is_empty() {
        print!("{}", runner::campaign_markdown(threads));
    } else {
        match runner::run_selected(threads, &only) {
            Ok(outputs) => {
                for o in outputs {
                    print!("{}", o.markdown);
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    if trace_json.is_some() || metrics_json.is_some() {
        let outs = runner::run_observability(threads);
        if let Some(path) = trace_json {
            let body = runner::observability_trace_jsonl(&outs);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        if let Some(path) = metrics_json {
            let body = runner::observability_metrics_jsonl(&outs);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }
}
