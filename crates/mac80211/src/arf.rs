//! ARF (Auto Rate Fallback) rate adaptation.
//!
//! §2.2: an 802.11g link "will automatically back down from 54 Mbps
//! when the radio signal is weak or when interference is detected".
//! ARF is the classic mechanism: step down after consecutive failures,
//! probe a higher rate after a run of successes. Maintained per
//! neighbour, since link quality is per-link.

use std::collections::HashMap;
use std::sync::Arc;

use crate::addr::MacAddr;
use wn_phy::modulation::{PhyStandard, RateStep};

/// ARF tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct ArfParams {
    /// Consecutive successes before probing the next higher rate.
    pub up_after: u32,
    /// Consecutive failures before stepping down.
    pub down_after: u32,
    /// AARF (adaptive ARF): double the success threshold after a
    /// failed up-probe, halving the rate of doomed probes — the
    /// standard remedy for ARF's oscillation under stable conditions.
    pub adaptive: bool,
    /// AARF cap on the adapted threshold.
    pub max_up_after: u32,
}

impl Default for ArfParams {
    fn default() -> Self {
        // The classic ARF constants.
        ArfParams {
            up_after: 10,
            down_after: 2,
            adaptive: false,
            max_up_after: 160,
        }
    }
}

impl ArfParams {
    /// The AARF parameterisation (adaptive probe backoff).
    pub fn aarf() -> Self {
        ArfParams {
            adaptive: true,
            ..ArfParams::default()
        }
    }
}

/// Per-link ARF state.
#[derive(Clone, Debug)]
struct LinkState {
    index: usize,
    successes: u32,
    failures: u32,
    probing: bool,
    /// Current success threshold for probing up (AARF grows this).
    up_after: u32,
}

/// An ARF controller managing one station's links.
///
/// The rate ladder is shared (`Arc<[RateStep]>`), so cloning a template
/// controller for each of N stations — the bulk-boot fast path in
/// [`crate::sim::WlanWorld`] — bumps a refcount instead of reallocating
/// the ladder N times.
#[derive(Clone, Debug)]
pub struct Arf {
    ladder: Arc<[RateStep]>,
    params: ArfParams,
    links: HashMap<MacAddr, LinkState>,
    enabled: bool,
    fixed_index: usize,
}

impl Arf {
    /// Creates a controller for `std`'s rate ladder.
    pub fn new(std: PhyStandard, params: ArfParams, enabled: bool) -> Self {
        let ladder: Arc<[RateStep]> = std.rate_ladder().into();
        let fixed_index = ladder.len() - 1;
        Arf {
            ladder,
            params,
            links: HashMap::new(),
            enabled,
            fixed_index,
        }
    }

    fn link(&mut self, peer: MacAddr) -> &mut LinkState {
        let start = self.ladder.len() - 1;
        let up_after = self.params.up_after;
        self.links.entry(peer).or_insert(LinkState {
            index: start,
            successes: 0,
            failures: 0,
            probing: false,
            up_after,
        })
    }

    /// The rate to use for the next transmission to `peer`.
    pub fn current_rate(&mut self, peer: MacAddr) -> RateStep {
        if !self.enabled {
            return self.ladder[self.fixed_index];
        }
        let idx = self.link(peer).index;
        self.ladder[idx]
    }

    /// Records a successful (ACKed) transmission to `peer`.
    pub fn on_success(&mut self, peer: MacAddr) {
        if !self.enabled {
            return;
        }
        let top = self.ladder.len() - 1;
        let base_up_after = self.params.up_after;
        let l = self.link(peer);
        l.failures = 0;
        if l.probing {
            // A successful probe: the new rate sticks, and AARF resets
            // its adapted threshold.
            l.up_after = base_up_after;
        }
        l.probing = false;
        l.successes += 1;
        if l.successes >= l.up_after && l.index < top {
            l.index += 1;
            l.successes = 0;
            // The first frame at the new rate is a probe: one failure
            // drops straight back.
            l.probing = true;
        }
    }

    /// Records a failed (retry-limit or unACKed) transmission to `peer`.
    pub fn on_failure(&mut self, peer: MacAddr) {
        if !self.enabled {
            return;
        }
        let p = self.params;
        let l = self.link(peer);
        l.successes = 0;
        l.failures += 1;
        if l.probing && p.adaptive {
            // AARF: a failed probe doubles the success run required
            // before the next attempt.
            l.up_after = (l.up_after * 2).min(p.max_up_after);
        }
        let drop = l.probing || l.failures >= p.down_after;
        if drop && l.index > 0 {
            l.index -= 1;
            l.failures = 0;
        }
        l.probing = false;
    }

    /// Resets the link state for a peer (e.g. after roaming).
    pub fn reset(&mut self, peer: MacAddr) {
        self.links.remove(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arf() -> Arf {
        Arf::new(PhyStandard::Dot11g, ArfParams::default(), true)
    }

    fn peer() -> MacAddr {
        MacAddr::station(1)
    }

    #[test]
    fn starts_at_top_rate() {
        let mut a = arf();
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
    }

    #[test]
    fn two_failures_step_down() {
        let mut a = arf();
        a.on_failure(peer());
        assert_eq!(
            a.current_rate(peer()).rate.mbps(),
            54.0,
            "one failure holds"
        );
        a.on_failure(peer());
        assert_eq!(a.current_rate(peer()).rate.mbps(), 48.0);
    }

    #[test]
    fn sustained_failures_reach_base_rate_and_stop() {
        let mut a = arf();
        for _ in 0..100 {
            a.on_failure(peer());
        }
        assert_eq!(
            a.current_rate(peer()).rate.mbps(),
            6.0,
            "floors at base rate"
        );
    }

    #[test]
    fn ten_successes_probe_up() {
        let mut a = arf();
        // Start by dropping one step.
        a.on_failure(peer());
        a.on_failure(peer());
        assert_eq!(a.current_rate(peer()).rate.mbps(), 48.0);
        for _ in 0..10 {
            a.on_success(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
    }

    #[test]
    fn failed_probe_drops_immediately() {
        let mut a = arf();
        a.on_failure(peer());
        a.on_failure(peer());
        for _ in 0..10 {
            a.on_success(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
        // A single failure right after probing up falls straight back.
        a.on_failure(peer());
        assert_eq!(a.current_rate(peer()).rate.mbps(), 48.0);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut a = arf();
        a.on_failure(peer());
        a.on_success(peer());
        a.on_failure(peer());
        // Never two *consecutive* failures, so still at top.
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
    }

    #[test]
    fn links_are_independent() {
        let mut a = arf();
        let other = MacAddr::station(2);
        a.on_failure(peer());
        a.on_failure(peer());
        assert_eq!(a.current_rate(peer()).rate.mbps(), 48.0);
        assert_eq!(a.current_rate(other).rate.mbps(), 54.0);
    }

    #[test]
    fn aarf_backs_off_doomed_probes() {
        // A link that always fails above 48 Mbps: classic ARF probes up
        // every 10 successes; AARF doubles the run between probes.
        let count_probes = |params: ArfParams| -> u32 {
            let mut a = Arf::new(PhyStandard::Dot11g, params, true);
            // Drop to 48 first.
            a.on_failure(peer());
            a.on_failure(peer());
            let mut probes = 0;
            for _ in 0..400 {
                if a.current_rate(peer()).rate.mbps() > 48.0 {
                    // The probe frame at 54 fails.
                    probes += 1;
                    a.on_failure(peer());
                } else {
                    a.on_success(peer());
                }
            }
            probes
        };
        let arf_probes = count_probes(ArfParams::default());
        let aarf_probes = count_probes(ArfParams::aarf());
        assert!(
            aarf_probes * 2 <= arf_probes,
            "AARF should probe far less: ARF {arf_probes} vs AARF {aarf_probes}"
        );
        assert!(aarf_probes >= 1, "but it must still probe eventually");
    }

    #[test]
    fn aarf_threshold_resets_after_successful_probe() {
        let mut a = Arf::new(PhyStandard::Dot11g, ArfParams::aarf(), true);
        // Fail probes a few times to inflate the threshold.
        a.on_failure(peer());
        a.on_failure(peer()); // Now at 48.
        for _ in 0..10 {
            a.on_success(peer());
        }
        a.on_failure(peer()); // Failed probe at 54: threshold 20.
        for _ in 0..20 {
            a.on_success(peer());
        }
        // This probe succeeds; threshold must reset to 10.
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
        a.on_success(peer());
        // Drop again and confirm only 10 successes are needed now.
        a.on_failure(peer());
        a.on_failure(peer());
        for _ in 0..10 {
            a.on_success(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
    }

    #[test]
    fn disabled_arf_pins_top_rate() {
        let mut a = Arf::new(PhyStandard::Dot11g, ArfParams::default(), false);
        for _ in 0..10 {
            a.on_failure(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
    }

    /// Walks the entire Fig. 1.13 802.11g rate ladder downwards: every
    /// pair of consecutive failures steps exactly one rung, visiting
    /// each rate in ladder order until the 6 Mbps base.
    #[test]
    fn consecutive_failures_walk_every_rung_down() {
        let ladder = PhyStandard::Dot11g.rate_ladder();
        assert!(ladder.len() >= 3, "g ladder has many rungs");
        let mut a = arf();
        for rung in (0..ladder.len() - 1).rev() {
            a.on_failure(peer());
            assert_eq!(
                a.current_rate(peer()).rate.mbps(),
                ladder[rung + 1].rate.mbps(),
                "first failure must hold the rate"
            );
            a.on_failure(peer());
            assert_eq!(
                a.current_rate(peer()).rate.mbps(),
                ladder[rung].rate.mbps(),
                "second consecutive failure steps down one rung"
            );
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), ladder[0].rate.mbps());
    }

    /// From the base rate, every run of 10 successes probes one rung
    /// back up, visiting each rate until the 54 Mbps top.
    #[test]
    fn success_runs_walk_every_rung_up() {
        let ladder = PhyStandard::Dot11g.rate_ladder();
        let mut a = arf();
        for _ in 0..2 * (ladder.len() - 1) {
            a.on_failure(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), ladder[0].rate.mbps());
        for rung in 1..ladder.len() {
            for _ in 0..10 {
                a.on_success(peer());
            }
            assert_eq!(
                a.current_rate(peer()).rate.mbps(),
                ladder[rung].rate.mbps(),
                "ten successes probe up to rung {rung}"
            );
        }
    }

    /// The top of the ladder clamps: success runs at 54 Mbps never
    /// index past the last rung (and never set a phantom probe that a
    /// single failure would punish).
    #[test]
    fn success_runs_clamp_at_top_rung() {
        let mut a = arf();
        for _ in 0..50 {
            a.on_success(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
        // Were the controller stuck in "probing" at the top, this
        // single failure would drop a rung; Fig. 1.13 says hold.
        a.on_failure(peer());
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
    }

    /// The bottom of the ladder clamps symmetrically, and the link
    /// recovers from the floor (the failure streak does not wedge).
    #[test]
    fn failure_runs_clamp_at_base_rung_and_recover() {
        let ladder = PhyStandard::Dot11g.rate_ladder();
        let mut a = arf();
        for _ in 0..1000 {
            a.on_failure(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), ladder[0].rate.mbps());
        for _ in 0..10 {
            a.on_success(peer());
        }
        assert_eq!(
            a.current_rate(peer()).rate.mbps(),
            ladder[1].rate.mbps(),
            "floor must not wedge: successes probe back up"
        );
    }

    /// The 802.11b ladder (4 rungs) walks the same way — the controller
    /// is ladder-agnostic.
    #[test]
    fn dot11b_ladder_walks_down_and_up() {
        let ladder = PhyStandard::Dot11b.rate_ladder();
        let mut a = Arf::new(PhyStandard::Dot11b, ArfParams::default(), true);
        assert_eq!(
            a.current_rate(peer()).rate.mbps(),
            ladder.last().unwrap().rate.mbps()
        );
        for _ in 0..2 * (ladder.len() - 1) {
            a.on_failure(peer());
        }
        assert_eq!(a.current_rate(peer()).rate.mbps(), ladder[0].rate.mbps());
        for _ in 0..10 * (ladder.len() - 1) {
            a.on_success(peer());
        }
        assert_eq!(
            a.current_rate(peer()).rate.mbps(),
            ladder.last().unwrap().rate.mbps()
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = arf();
        a.on_failure(peer());
        a.on_failure(peer());
        a.reset(peer());
        assert_eq!(a.current_rate(peer()).rate.mbps(), 54.0);
    }
}
