//! The closing comparison table ("Comparison of wireless networks
//! types") as data and as simulation.
//!
//! Each [`Technology`] row carries the paper's claimed numbers
//! (standard, band, nominal range, maximum bit rate) and a
//! [`Technology::measure`] that obtains the corresponding figures from
//! the simulators in this workspace, so the table can be *regenerated*
//! rather than merely restated.

use crate::taxonomy::NetworkClass;
use wn_phy::bands::Band;
use wn_phy::geom::Point;
use wn_phy::medium::{LinkBudget, Radio};
use wn_phy::modulation::PhyStandard;
use wn_phy::propagation::LogDistance;
use wn_phy::units::DataRate;
use wn_sim::{SimTime, Simulation};

/// Every row of the comparison table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Bluetooth (IEEE 802.15.1).
    Bluetooth,
    /// IrDA infrared.
    Irda,
    /// ZigBee (IEEE 802.15.4).
    Zigbee,
    /// UWB (IEEE 802.15.3).
    Uwb,
    /// One of the Wi-Fi PHY generations.
    WiFi(PhyStandard),
    /// WiMAX (IEEE 802.16).
    Wimax,
    /// Cellular (4G headline row).
    Cellular,
    /// Satellite (DVB-S2 row).
    Satellite,
}

/// A fully-populated table row: the paper's claim plus our measurement.
#[derive(Clone, Debug)]
pub struct TechnologyRow {
    /// The technology.
    pub tech: Technology,
    /// Network class column.
    pub class: NetworkClass,
    /// Display name column.
    pub name: String,
    /// Standard column.
    pub standard: &'static str,
    /// Frequency band column.
    pub band: &'static str,
    /// Paper's nominal range, metres.
    pub paper_range_m: f64,
    /// Paper's maximum bit rate.
    pub paper_max_rate: DataRate,
    /// Our simulated/derived achievable rate.
    pub measured_max_rate: DataRate,
    /// Our simulated/derived usable range, metres.
    pub measured_range_m: f64,
}

impl Technology {
    /// Every row in the paper's order.
    pub fn all() -> Vec<Technology> {
        let mut v = vec![
            Technology::Bluetooth,
            Technology::Irda,
            Technology::Zigbee,
            Technology::Uwb,
        ];
        v.extend(PhyStandard::ALL.map(Technology::WiFi));
        v.extend([
            Technology::Wimax,
            Technology::Cellular,
            Technology::Satellite,
        ]);
        v
    }

    /// The owning network class.
    pub fn class(self) -> NetworkClass {
        match self {
            Technology::Bluetooth | Technology::Irda | Technology::Zigbee | Technology::Uwb => {
                NetworkClass::Wpan
            }
            Technology::WiFi(_) => NetworkClass::Wlan,
            Technology::Wimax => NetworkClass::Wman,
            Technology::Cellular | Technology::Satellite => NetworkClass::Wwan,
        }
    }

    /// Display name.
    pub fn name(self) -> String {
        match self {
            Technology::Bluetooth => "Bluetooth".into(),
            Technology::Irda => "IrDA".into(),
            Technology::Zigbee => "ZigBee".into(),
            Technology::Uwb => "UWB".into(),
            Technology::WiFi(s) => format!("Wi-Fi {}", s.name()),
            Technology::Wimax => "WiMAX".into(),
            Technology::Cellular => "Cellular".into(),
            Technology::Satellite => "Satellite".into(),
        }
    }

    /// Standard column, as printed in the table.
    pub fn standard(self) -> &'static str {
        match self {
            Technology::Bluetooth => "IEEE 802.15.1",
            Technology::Irda => "IrDA",
            Technology::Zigbee => "IEEE 802.15.4",
            Technology::Uwb => "IEEE 802.15.3",
            Technology::WiFi(s) => match s {
                PhyStandard::Dot11 => "IEEE 802.11",
                PhyStandard::Dot11a => "IEEE 802.11a",
                PhyStandard::Dot11b => "IEEE 802.11b",
                PhyStandard::Dot11g => "IEEE 802.11g",
                PhyStandard::Dot11n => "IEEE 802.11n",
                PhyStandard::Dot11ac => "IEEE 802.11ac",
            },
            Technology::Wimax => "IEEE 802.16",
            Technology::Cellular => "AMPS/GSM/GPRS/UMTS/HSDPA/LTE",
            Technology::Satellite => "DVB-S2",
        }
    }

    /// Band column text.
    pub fn band_text(self) -> &'static str {
        match self {
            Technology::Bluetooth => "2.4 GHz",
            Technology::Irda => "850-900 nm IR",
            Technology::Zigbee => "868/900 MHz, 2.4 GHz",
            Technology::Uwb => "3.1-10.6 GHz",
            Technology::WiFi(s) => match s.band() {
                Band::Ism2_4GHz => "2.4 GHz",
                Band::Unii5GHz => "5 GHz",
                _ => "2.4/5 GHz",
            },
            Technology::Wimax => "2-11 / 10-66 GHz",
            Technology::Cellular => "700 MHz-2.6 GHz",
            Technology::Satellite => "3-30 GHz",
        }
    }

    /// The paper's "Nominal range" column, metres.
    pub fn paper_range_m(self) -> f64 {
        match self {
            Technology::Bluetooth | Technology::Zigbee | Technology::Uwb => 10.0,
            Technology::Irda => 1.0,
            Technology::WiFi(s) => s.nominal_range_m(),
            Technology::Wimax => 50_000.0,
            Technology::Cellular | Technology::Satellite => 50_000.0,
        }
    }

    /// The paper's "Maximum bit rate" column.
    pub fn paper_max_rate(self) -> DataRate {
        match self {
            Technology::Bluetooth => DataRate::from_kbps(720.0),
            Technology::Irda => DataRate::from_mbps(16.0),
            Technology::Zigbee => DataRate::from_kbps(250.0),
            Technology::Uwb => DataRate::from_mbps(480.0),
            Technology::WiFi(s) => match s {
                // The table prints 1 Mbps for the original and 48 for a
                // (its per-row quirk); we keep the paper's numbers here.
                PhyStandard::Dot11 => DataRate::from_mbps(1.0),
                PhyStandard::Dot11a => DataRate::from_mbps(48.0),
                s => s.max_rate(),
            },
            Technology::Wimax => DataRate::from_mbps(70.0),
            Technology::Cellular => DataRate::from_gbps(1.0),
            Technology::Satellite => DataRate::from_mbps(60.0),
        }
    }

    /// Measures the achievable peak rate and usable range from the
    /// corresponding simulator.
    pub fn measure(self) -> (DataRate, f64) {
        match self {
            Technology::Bluetooth => {
                // Saturated single-pair piconet for one second.
                use wn_wpan::bluetooth::{boot, BtNetwork, DeviceClass};
                let mut net = BtNetwork::new();
                let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
                let p = net.form_piconet(m).expect("fresh master");
                let s = net.add_device(Point::new(5.0, 0.0), DeviceClass::Class2);
                net.join(p, s).expect("in range");
                net.send(m, s, 10_000_000);
                let mut sim = Simulation::new(net);
                boot(&mut sim);
                sim.run_until(SimTime::from_secs(2));
                let rate = sim.world().delivered_bytes(s) as f64 * 8.0 / 2.0;
                (DataRate(rate), DeviceClass::Class2.range_m())
            }
            Technology::Irda => {
                use wn_wpan::irda::{negotiate, IrPort, MAX_DISTANCE_M};
                let tx = IrPort::aimed_at(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
                let best = negotiate(&tx, Point::new(0.1, 0.0)).expect("close link");
                (best, MAX_DISTANCE_M)
            }
            Technology::Zigbee => (DataRate(wn_wpan::zigbee::RATE_BPS), 10.0),
            Technology::Uwb => {
                let best = wn_wpan::uwb::rate_at_distance(1.0).expect("close link");
                // Usable range: the farthest distance with any rate.
                let mut range = 0.0;
                let mut d = 0.5;
                while wn_wpan::uwb::rate_at_distance(d).is_some() {
                    range = d;
                    d += 0.5;
                }
                (best, range)
            }
            Technology::WiFi(s) => {
                let lb = LinkBudget::for_standard(s, Radio::consumer_wifi());
                let model = LogDistance::indoor();
                let peak = s.max_rate();
                // Range: farthest distance at which the *base* rate
                // still closes indoors.
                let range = lb.max_range_for_rate(s, &model, s.base_rate().rate, 10_000.0);
                (peak, range)
            }
            Technology::Wimax => {
                use wn_wman::link::WimaxLink;
                let l = WimaxLink::default();
                let peak = l.peak_rate();
                let range = if l.rate_at(50_000.0, false).is_some() {
                    50_000.0
                } else {
                    0.0
                };
                (peak, range)
            }
            Technology::Cellular => {
                use wn_wwan::cellular::Generation;
                // Coverage via multi-cell tiling is effectively
                // unbounded; report the text's >50 km.
                (Generation::G4.peak_rate(), 60_000.0)
            }
            Technology::Satellite => {
                use wn_wwan::satellite::SatLink;
                let rate = SatLink::typical().achievable_rate();
                (rate, 200_000.0)
            }
        }
    }

    /// Builds the complete row, running the measurement.
    pub fn row(self) -> TechnologyRow {
        let (measured_max_rate, measured_range_m) = self.measure();
        TechnologyRow {
            tech: self,
            class: self.class(),
            name: self.name(),
            standard: self.standard(),
            band: self.band_text(),
            paper_range_m: self.paper_range_m(),
            paper_max_rate: self.paper_max_rate(),
            measured_max_rate,
            measured_range_m,
        }
    }
}

/// Builds the entire comparison table (runs every measurement).
///
/// The 13 measurements are independent simulations, so they sweep
/// through the worker pool; row order stays `Technology::all()` order.
pub fn comparison_table() -> Vec<TechnologyRow> {
    wn_sim::par_map(Technology::all(), Technology::row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_rows_in_class_order() {
        let rows = Technology::all();
        assert_eq!(rows.len(), 13);
        // Classes appear in WPAN→WLAN→WMAN→WWAN order.
        let classes: Vec<NetworkClass> = rows.iter().map(|t| t.class()).collect();
        let mut sorted = classes.clone();
        sorted.sort();
        assert_eq!(classes, sorted);
    }

    #[test]
    fn paper_numbers_match_the_table() {
        assert_eq!(Technology::Bluetooth.paper_max_rate().bps(), 720_000.0);
        assert_eq!(Technology::Irda.paper_max_rate().mbps(), 16.0);
        assert_eq!(Technology::Zigbee.paper_max_rate().bps(), 250_000.0);
        assert_eq!(Technology::Uwb.paper_max_rate().mbps(), 480.0);
        assert_eq!(Technology::Wimax.paper_max_rate().mbps(), 70.0);
        assert_eq!(Technology::Satellite.paper_max_rate().mbps(), 60.0);
        assert_eq!(Technology::Cellular.paper_max_rate().bps(), 1e9);
        assert_eq!(
            Technology::WiFi(PhyStandard::Dot11ac)
                .paper_max_rate()
                .bps(),
            1.3e9
        );
    }

    #[test]
    fn measured_rates_within_2x_of_paper() {
        // The reproduction criterion: the *shape* holds — every
        // measured peak is within a factor of two of the paper's
        // number (the MAC/scheduling overhead legitimately shaves
        // some).
        for t in Technology::all() {
            let row = t.row();
            let ratio = row.measured_max_rate.bps() / row.paper_max_rate.bps();
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: paper {} vs measured {} (ratio {ratio})",
                row.name,
                row.paper_max_rate,
                row.measured_max_rate
            );
        }
    }

    #[test]
    fn measured_ranges_in_the_right_class_band() {
        for t in Technology::all() {
            let row = t.row();
            match row.class {
                NetworkClass::Wpan => assert!(
                    row.measured_range_m <= 100.0,
                    "{}: {}",
                    row.name,
                    row.measured_range_m
                ),
                NetworkClass::Wlan => assert!(
                    (10.0..2000.0).contains(&row.measured_range_m),
                    "{}: {}",
                    row.name,
                    row.measured_range_m
                ),
                NetworkClass::Wman | NetworkClass::Wwan => assert!(
                    row.measured_range_m >= 50_000.0,
                    "{}: {}",
                    row.name,
                    row.measured_range_m
                ),
            }
        }
    }

    #[test]
    fn rate_range_tradeoff_across_classes() {
        // Fig. 1.1's diagonal: within the short-range classes, reach
        // grows down the table while WPAN rates stay below WLAN peaks.
        let bt = Technology::Bluetooth.row();
        let wifi = Technology::WiFi(PhyStandard::Dot11g).row();
        let wimax = Technology::Wimax.row();
        assert!(bt.measured_max_rate.bps() < wifi.measured_max_rate.bps());
        assert!(wifi.measured_range_m < wimax.measured_range_m);
    }
}
