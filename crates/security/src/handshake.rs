//! PSK derivation and the 4-way handshake.
//!
//! §5.2: "The most common WPA configuration is WPA-PSK (Pre-Shared
//! Key). The keys used by WPA are 256-bit." The PMK is
//! `PBKDF2-HMAC-SHA1(passphrase, ssid, 4096, 32)`; the 4-way handshake
//! then derives a fresh pairwise transient key (PTK) from the PMK,
//! both MAC addresses and two nonces, and proves possession on both
//! sides with HMAC MICs — without ever sending the PMK.
//!
//! This module is also the attack surface for the offline dictionary
//! attack in [`crate::attacks::dictionary`]: a captured handshake
//! (nonces + MIC) lets an attacker test passphrases offline.

use wn_crypto::hmac::hmac_sha1;
use wn_crypto::pbkdf2::wpa_psk;

/// The 256-bit pairwise master key.
pub type Pmk = [u8; 32];

/// The expanded pairwise transient key, split into its parts.
#[derive(Clone, PartialEq, Eq)]
pub struct Ptk {
    /// Key confirmation key — MICs the handshake messages.
    pub kck: [u8; 16],
    /// Key encryption key — wraps the group key.
    pub kek: [u8; 16],
    /// Temporal key — feeds TKIP/CCMP.
    pub tk: [u8; 16],
    /// TX Michael key (TKIP only).
    pub mic_tx: [u8; 8],
    /// RX Michael key (TKIP only).
    pub mic_rx: [u8; 8],
}

impl std::fmt::Debug for Ptk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ptk").finish_non_exhaustive()
    }
}

/// Derives the PMK from a passphrase and SSID (the §5.2 256-bit key).
pub fn derive_pmk(passphrase: &str, ssid: &str) -> Pmk {
    wpa_psk(passphrase, ssid)
}

/// The 802.11i PRF: HMAC-SHA1 expansion with a label and counter.
fn prf_512(key: &[u8], label: &str, data: &[u8]) -> [u8; 64] {
    let mut out = [0u8; 64];
    let mut filled = 0;
    let mut counter = 0u8;
    while filled < 64 {
        let mut msg = Vec::with_capacity(label.len() + 1 + data.len() + 1);
        msg.extend_from_slice(label.as_bytes());
        msg.push(0);
        msg.extend_from_slice(data);
        msg.push(counter);
        let block = hmac_sha1(key, &msg);
        let take = (64 - filled).min(20);
        out[filled..filled + take].copy_from_slice(&block[..take]);
        filled += take;
        counter += 1;
    }
    out
}

/// Expands the PTK from PMK, addresses and nonces (802.11i §8.5.1.2:
/// min/max ordering makes both sides derive identically).
pub fn derive_ptk(
    pmk: &Pmk,
    aa: &[u8; 6],
    spa: &[u8; 6],
    anonce: &[u8; 32],
    snonce: &[u8; 32],
) -> Ptk {
    let (mac1, mac2) = if aa <= spa { (aa, spa) } else { (spa, aa) };
    let (n1, n2) = if anonce <= snonce {
        (anonce, snonce)
    } else {
        (snonce, anonce)
    };
    let mut data = Vec::with_capacity(12 + 64);
    data.extend_from_slice(mac1);
    data.extend_from_slice(mac2);
    data.extend_from_slice(n1);
    data.extend_from_slice(n2);
    let raw = prf_512(pmk, "Pairwise key expansion", &data);
    let mut ptk = Ptk {
        kck: [0; 16],
        kek: [0; 16],
        tk: [0; 16],
        mic_tx: [0; 8],
        mic_rx: [0; 8],
    };
    ptk.kck.copy_from_slice(&raw[0..16]);
    ptk.kek.copy_from_slice(&raw[16..32]);
    ptk.tk.copy_from_slice(&raw[32..48]);
    ptk.mic_tx.copy_from_slice(&raw[48..56]);
    ptk.mic_rx.copy_from_slice(&raw[56..64]);
    ptk
}

/// A captured (or live) 4-way handshake transcript.
#[derive(Clone, Debug)]
pub struct Handshake {
    /// Authenticator (AP) address.
    pub aa: [u8; 6],
    /// Supplicant (STA) address.
    pub spa: [u8; 6],
    /// AP nonce (message 1, in clear).
    pub anonce: [u8; 32],
    /// STA nonce (message 2, in clear).
    pub snonce: [u8; 32],
    /// The message-2 body the MIC covers.
    pub msg2_body: Vec<u8>,
    /// The message-2 MIC (HMAC-SHA1-128 under the KCK).
    pub msg2_mic: [u8; 16],
}

/// Computes the message MIC: HMAC-SHA1 truncated to 128 bits.
pub fn message_mic(kck: &[u8; 16], body: &[u8]) -> [u8; 16] {
    let full = hmac_sha1(kck, body);
    full[..16].try_into().expect("16 bytes")
}

/// Runs a complete 4-way handshake between honest peers; returns the
/// agreed PTK and the over-the-air transcript an eavesdropper sees.
pub fn run_handshake(
    passphrase: &str,
    ssid: &str,
    aa: [u8; 6],
    spa: [u8; 6],
    anonce: [u8; 32],
    snonce: [u8; 32],
) -> (Ptk, Handshake) {
    let pmk = derive_pmk(passphrase, ssid);
    // Message 1: AP → STA (anonce). Message 2: STA → AP (snonce, MIC).
    let ptk = derive_ptk(&pmk, &aa, &spa, &anonce, &snonce);
    let mut msg2_body = b"msg2:".to_vec();
    msg2_body.extend_from_slice(&snonce);
    let msg2_mic = message_mic(&ptk.kck, &msg2_body);
    // Messages 3/4 confirm and install; the transcript above is what
    // the dictionary attack needs.
    let hs = Handshake {
        aa,
        spa,
        anonce,
        snonce,
        msg2_body,
        msg2_mic,
    };
    (ptk, hs)
}

/// Verifies a handshake transcript against a candidate passphrase —
/// exactly the offline check the dictionary attack performs.
pub fn passphrase_matches(hs: &Handshake, ssid: &str, candidate: &str) -> bool {
    let pmk = derive_pmk(candidate, ssid);
    let ptk = derive_ptk(&pmk, &hs.aa, &hs.spa, &hs.anonce, &hs.snonce);
    message_mic(&ptk.kck, &hs.msg2_body) == hs.msg2_mic
}

#[cfg(test)]
mod tests {
    use super::*;

    const AA: [u8; 6] = [2, 0xAB, 0, 0, 0, 1];
    const SPA: [u8; 6] = [2, 0, 0, 0, 0, 7];

    fn nonce(fill: u8) -> [u8; 32] {
        [fill; 32]
    }

    #[test]
    fn pmk_is_256_bit_and_deterministic() {
        let a = derive_pmk("password", "IEEE");
        let b = derive_pmk("password", "IEEE");
        assert_eq!(a, b);
        assert_eq!(a.len(), 32, "the text's 256-bit WPA key");
    }

    #[test]
    fn both_sides_derive_same_ptk_regardless_of_order() {
        let pmk = derive_pmk("pass phrase!", "Net");
        let a = derive_ptk(&pmk, &AA, &SPA, &nonce(1), &nonce(2));
        // Swap the roles: the min/max canonicalisation keeps it equal.
        let b = derive_ptk(&pmk, &SPA, &AA, &nonce(2), &nonce(1));
        assert!(a == b);
    }

    #[test]
    fn nonces_freshen_the_ptk() {
        let pmk = derive_pmk("pass phrase!", "Net");
        let a = derive_ptk(&pmk, &AA, &SPA, &nonce(1), &nonce(2));
        let b = derive_ptk(&pmk, &AA, &SPA, &nonce(3), &nonce(2));
        assert!(a != b, "a new anonce must give a new session key");
    }

    #[test]
    fn handshake_roundtrip_and_verification() {
        let (ptk, hs) = run_handshake("correct horse", "HomeNet", AA, SPA, nonce(5), nonce(6));
        assert!(passphrase_matches(&hs, "HomeNet", "correct horse"));
        assert!(!passphrase_matches(&hs, "HomeNet", "wrong horse"));
        assert!(
            !passphrase_matches(&hs, "OtherNet", "correct horse"),
            "SSID salts the PMK"
        );
        // The agreed TK is usable for CCMP.
        let mut s = crate::wpa2::CcmpSession::new(ptk.tk, SPA);
        let mut r = crate::wpa2::CcmpSession::new(ptk.tk, SPA);
        let p = s.encrypt(b"h", b"post-handshake data");
        assert!(r.decrypt(b"h", &p).is_ok());
    }

    #[test]
    fn prf_expands_distinctly_per_label_position() {
        let pmk = derive_pmk("x", "y");
        let raw = prf_512(&pmk, "Pairwise key expansion", b"data");
        // The five PTK parts must not repeat (sanity on the expansion).
        assert_ne!(raw[0..16], raw[16..32]);
        assert_ne!(raw[16..32], raw[32..48]);
    }

    #[test]
    fn ptk_debug_redacts() {
        let pmk = derive_pmk("secret", "ssid");
        let ptk = derive_ptk(&pmk, &AA, &SPA, &nonce(1), &nonce(2));
        let s = format!("{ptk:?}");
        assert!(!s.contains("kck:"), "{s}");
    }
}
