//! FIG-1.6 — regenerates home-WLAN saturation throughput vs station
//! count (with the RTS/CTS and CW ablations) and times the DCF kernel.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::{fig_1_6_wlan_home, wlan_saturation_mbps};
use wn_phy::modulation::PhyStandard;

fn main() {
    let (fig, report) = fig_1_6_wlan_home(42);
    print_figure(&fig);
    print_report(&report);

    // Ablation: per-standard single-sender MAC efficiency.
    println!("MAC efficiency ablation (1 saturated sender):");
    for std in [
        PhyStandard::Dot11b,
        PhyStandard::Dot11g,
        PhyStandard::Dot11a,
    ] {
        let mbps = wlan_saturation_mbps(std, 1, false, 9);
        println!(
            "  {:<9} {:>6.1} Mbps of {:>6.1} PHY ({:.0}%)",
            std.name(),
            mbps,
            std.max_rate().mbps(),
            mbps / std.max_rate().mbps() * 100.0
        );
    }

    bench("fig06/dcf_4sta_1s", || {
        black_box(wlan_saturation_mbps(PhyStandard::Dot11g, 4, false, 11))
    });
}
