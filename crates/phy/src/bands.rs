//! Frequency bands and channel plans.
//!
//! §2 of the source text: "The most common frequency bands are at
//! 2.4 GHz and at 5 GHz, which are available across most of the globe."
//! This module encodes those ISM bands, the licensed bands used by
//! WiMAX/cellular, and the 802.11 channelisation (including the 2.4 GHz
//! overlapping-channel geometry that drives the §6 interference
//! experiment).

use crate::units::Hertz;

/// The spectrum segments used by the technologies of the text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Band {
    /// 868 MHz European ZigBee band.
    Ism868MHz,
    /// 900/915 MHz ISM band (ZigBee, early cellular).
    Ism900MHz,
    /// 2.4 GHz ISM — Wi-Fi b/g/n, Bluetooth, ZigBee, microwave ovens.
    Ism2_4GHz,
    /// 5 GHz U-NII — Wi-Fi a/n/ac.
    Unii5GHz,
    /// 3.1–10.6 GHz UWB allocation (US).
    Uwb3to10GHz,
    /// 2–11 GHz WiMAX non-line-of-sight range.
    Wimax2to11GHz,
    /// 10–66 GHz WiMAX line-of-sight range.
    Wimax10to66GHz,
    /// Licensed cellular bands (700 MHz–2.6 GHz).
    Cellular,
    /// 3–30 GHz satellite (SHF).
    Satellite,
    /// 850–900 nm infrared window (IrDA) — not RF at all.
    Infrared,
}

impl Band {
    /// A representative carrier frequency for link-budget computations.
    pub fn representative_frequency(self) -> Hertz {
        match self {
            Band::Ism868MHz => Hertz::from_mhz(868.0),
            Band::Ism900MHz => Hertz::from_mhz(915.0),
            Band::Ism2_4GHz => Hertz::from_ghz(2.442),
            Band::Unii5GHz => Hertz::from_ghz(5.25),
            Band::Uwb3to10GHz => Hertz::from_ghz(6.85),
            Band::Wimax2to11GHz => Hertz::from_ghz(3.5),
            Band::Wimax10to66GHz => Hertz::from_ghz(28.0),
            Band::Cellular => Hertz::from_mhz(1900.0),
            Band::Satellite => Hertz::from_ghz(12.0),
            Band::Infrared => Hertz(3.4e14), // ~875 nm
        }
    }

    /// Whether a licence is required to transmit (§2: ISM bands are
    /// "unlicensed ... without charge").
    pub fn is_licensed(self) -> bool {
        matches!(
            self,
            Band::Cellular | Band::Satellite | Band::Wimax10to66GHz
        )
    }

    /// Whether links in this band require line of sight in our models.
    pub fn requires_line_of_sight(self) -> bool {
        matches!(self, Band::Wimax10to66GHz | Band::Infrared)
    }
}

/// An 802.11 channel within a band.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Channel {
    /// The containing band.
    pub band: Band,
    /// Channel number within the band's plan.
    pub number: u8,
}

/// Errors constructing channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// The channel number does not exist in the band's plan.
    InvalidNumber(u8),
    /// The band has no 802.11 channel plan.
    NoPlan(Band),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::InvalidNumber(n) => write!(f, "invalid channel number {n}"),
            ChannelError::NoPlan(b) => write!(f, "band {b:?} has no 802.11 channel plan"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl Channel {
    /// Creates a 2.4 GHz channel (1–14).
    pub fn ism24(number: u8) -> Result<Self, ChannelError> {
        if (1..=14).contains(&number) {
            Ok(Channel {
                band: Band::Ism2_4GHz,
                number,
            })
        } else {
            Err(ChannelError::InvalidNumber(number))
        }
    }

    /// Creates a 5 GHz channel (the common 20 MHz U-NII numbers).
    pub fn unii5(number: u8) -> Result<Self, ChannelError> {
        const VALID: &[u8] = &[
            36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112, 116, 120, 124, 128, 132, 136, 140,
            144, 149, 153, 157, 161, 165,
        ];
        if VALID.contains(&number) {
            Ok(Channel {
                band: Band::Unii5GHz,
                number,
            })
        } else {
            Err(ChannelError::InvalidNumber(number))
        }
    }

    /// Centre frequency of this channel.
    pub fn center_frequency(self) -> Hertz {
        match self.band {
            Band::Ism2_4GHz => {
                if self.number == 14 {
                    Hertz::from_mhz(2484.0)
                } else {
                    Hertz::from_mhz(2407.0 + 5.0 * self.number as f64)
                }
            }
            Band::Unii5GHz => Hertz::from_mhz(5000.0 + 5.0 * self.number as f64),
            _ => self.band.representative_frequency(),
        }
    }

    /// Spectral overlap fraction with another channel assuming 22 MHz
    /// DSSS masks at 2.4 GHz and 20 MHz OFDM masks at 5 GHz.
    ///
    /// 1.0 = co-channel, 0.0 = fully orthogonal. This is the quantity
    /// behind the "use channels 1/6/11" folklore: adjacent 2.4 GHz
    /// channels are only 5 MHz apart but 22 MHz wide.
    pub fn overlap_with(self, other: Channel) -> f64 {
        if self.band != other.band {
            return 0.0;
        }
        let width = match self.band {
            Band::Ism2_4GHz => 22.0,
            _ => 20.0,
        };
        let fa = self.center_frequency().mhz();
        let fb = other.center_frequency().mhz();
        let sep = (fa - fb).abs();
        ((width - sep) / width).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_1_6_11_frequencies() {
        assert_eq!(Channel::ism24(1).unwrap().center_frequency().mhz(), 2412.0);
        assert_eq!(Channel::ism24(6).unwrap().center_frequency().mhz(), 2437.0);
        assert_eq!(Channel::ism24(11).unwrap().center_frequency().mhz(), 2462.0);
        assert_eq!(Channel::ism24(14).unwrap().center_frequency().mhz(), 2484.0);
    }

    #[test]
    fn invalid_channels_rejected() {
        assert_eq!(Channel::ism24(0), Err(ChannelError::InvalidNumber(0)));
        assert_eq!(Channel::ism24(15), Err(ChannelError::InvalidNumber(15)));
        assert_eq!(Channel::unii5(37), Err(ChannelError::InvalidNumber(37)));
        assert!(Channel::unii5(36).is_ok());
    }

    #[test]
    fn unii_frequency() {
        assert_eq!(Channel::unii5(36).unwrap().center_frequency().mhz(), 5180.0);
        assert_eq!(
            Channel::unii5(165).unwrap().center_frequency().mhz(),
            5825.0
        );
    }

    #[test]
    fn overlap_structure_2_4ghz() {
        let c1 = Channel::ism24(1).unwrap();
        let c2 = Channel::ism24(2).unwrap();
        let c6 = Channel::ism24(6).unwrap();
        assert_eq!(c1.overlap_with(c1), 1.0);
        // Adjacent channels overlap heavily.
        assert!(c1.overlap_with(c2) > 0.7);
        // Channels 1 and 6 (25 MHz apart, 22 MHz wide) do not overlap.
        assert_eq!(c1.overlap_with(c6), 0.0);
        // Symmetry.
        assert_eq!(c1.overlap_with(c2), c2.overlap_with(c1));
    }

    #[test]
    fn cross_band_no_overlap() {
        let a = Channel::ism24(1).unwrap();
        let b = Channel::unii5(36).unwrap();
        assert_eq!(a.overlap_with(b), 0.0);
    }

    #[test]
    fn licensing_matches_text() {
        assert!(!Band::Ism2_4GHz.is_licensed());
        assert!(!Band::Unii5GHz.is_licensed());
        assert!(Band::Cellular.is_licensed());
        assert!(Band::Satellite.is_licensed());
    }

    #[test]
    fn los_requirements() {
        assert!(Band::Wimax10to66GHz.requires_line_of_sight());
        assert!(!Band::Wimax2to11GHz.requires_line_of_sight());
        assert!(Band::Infrared.requires_line_of_sight());
    }

    #[test]
    fn representative_frequencies_sane() {
        assert!((Band::Ism2_4GHz.representative_frequency().ghz() - 2.442).abs() < 1e-9);
        assert!(Band::Uwb3to10GHz.representative_frequency().ghz() > 3.0);
    }
}
