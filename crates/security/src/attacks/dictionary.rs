//! Offline dictionary attack on the WPA/WPA2 4-way handshake.
//!
//! WPA-PSK's cryptography is sound; its weakness is human. An attacker
//! who captures one handshake (four frames — or forces one with a
//! deauth) can test passphrases offline at PBKDF2 speed: derive the
//! PMK, expand the PTK, check the message-2 MIC. The 4096-iteration
//! PBKDF2 slows each guess, but a passphrase in the dictionary falls
//! anyway. (This is why the §5.2 ranking still puts WPA2+AES on top —
//! *given a strong passphrase*.)

use crate::handshake::{passphrase_matches, Handshake};

/// Outcome of a dictionary run.
#[derive(Clone, Debug, PartialEq)]
pub struct DictionaryResult {
    /// The recovered passphrase, if found.
    pub passphrase: Option<String>,
    /// Candidates tested before stopping.
    pub guesses: u64,
}

/// Runs the offline attack over a word list.
pub fn run(hs: &Handshake, ssid: &str, wordlist: &[&str]) -> DictionaryResult {
    let mut guesses = 0;
    for &w in wordlist {
        guesses += 1;
        if passphrase_matches(hs, ssid, w) {
            return DictionaryResult {
                passphrase: Some(w.to_string()),
                guesses,
            };
        }
    }
    DictionaryResult {
        passphrase: None,
        guesses,
    }
}

/// Estimated wall-clock for a dictionary of `words` at `guesses_per_s`
/// (PBKDF2-bound; ~10⁴–10⁵/s on 2010s-era GPUs).
pub fn estimated_seconds(words: u64, guesses_per_s: f64) -> f64 {
    words as f64 / guesses_per_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::run_handshake;

    const AA: [u8; 6] = [2, 0xAB, 0, 0, 0, 1];
    const SPA: [u8; 6] = [2, 0, 0, 0, 0, 7];

    fn capture(passphrase: &str) -> Handshake {
        let (_ptk, hs) = run_handshake(passphrase, "CoffeeShop", AA, SPA, [5; 32], [6; 32]);
        hs
    }

    #[test]
    fn weak_passphrase_falls() {
        let hs = capture("dragon");
        let words = ["123456", "password", "qwerty", "dragon", "letmein"];
        let r = run(&hs, "CoffeeShop", &words);
        assert_eq!(r.passphrase.as_deref(), Some("dragon"));
        assert_eq!(r.guesses, 4);
    }

    #[test]
    fn strong_passphrase_survives() {
        let hs = capture("vQ9#xT2$mK8@pL5!");
        let words = ["123456", "password", "qwerty", "dragon", "letmein"];
        let r = run(&hs, "CoffeeShop", &words);
        assert_eq!(r.passphrase, None);
        assert_eq!(r.guesses, 5);
    }

    #[test]
    fn wrong_ssid_never_matches() {
        // The SSID salts the PMK, so rainbow tables are per-network.
        let hs = capture("dragon");
        let r = run(&hs, "OtherNet", &["dragon"]);
        assert_eq!(r.passphrase, None);
    }

    #[test]
    fn effort_estimates() {
        // A 10M-word list at 50k guesses/s ≈ 200 s; full 8-char random
        // space is computationally absurd — that asymmetry IS the §5.2
        // ranking's justification.
        assert!((estimated_seconds(10_000_000, 50_000.0) - 200.0).abs() < 1e-9);
        let full_space = 95f64.powi(8);
        let years = full_space / 50_000.0 / 86_400.0 / 365.0;
        assert!(years > 1_000.0, "{years}");
    }
}
