//! `wn-security` — the three generations of Wi-Fi security from §5 and
//! the attacks that drove each transition.
//!
//! Protocols:
//! - [`wep`] — Wired Equivalent Privacy: RC4 with a 24-bit IV and a
//!   CRC-32 ICV, in 64/128/256-bit key sizes.
//! - [`wpa`] — WPA/TKIP: per-packet RC4 keys, the Michael MIC, TSC
//!   replay protection and MIC-failure countermeasures.
//! - [`wpa2`] — WPA2/CCMP: AES in CCM mode with a packet-number nonce
//!   and replay window.
//! - [`handshake`] — PSK derivation (PBKDF2) and a faithful 4-way
//!   handshake with PTK expansion and MIC'd messages.
//! - [`wps`] — the Wi-Fi Protected Setup PIN design flaw (the "2-14
//!   hours of sustained effort" attack vector).
//!
//! Attacks ([`attacks`]):
//! - keystream reuse from IV collisions (WEP),
//! - FMS weak-IV key recovery — the "cracked … in minutes" demo,
//! - CRC bit-flipping forgery (WEP integrity failure),
//! - offline dictionary attack on the 4-way handshake,
//! - WPS PIN search.
//!
//! [`ranking`] distils all of the above into the §5.2 best-to-worst
//! list with simulated time-to-breach figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod handshake;
pub mod ranking;
pub mod wep;
pub mod wpa;
pub mod wpa2;
pub mod wps;

pub use ranking::{breach_ranking, SecurityMethod};
pub use wep::{WepKey, WepKeySize};
