//! perfsuite — times the full experiment campaign serial vs parallel
//! and records throughput to `BENCH_campaign.json`.
//!
//! Run with: `cargo run --release -p wn-bench --bin perfsuite`
//!
//! The serial pass runs the campaign on one worker; the parallel pass
//! uses `--threads N` (default: detected parallelism / `WN_THREADS`).
//! Both passes produce byte-identical reports — the suite asserts this
//! — so the speedup is measured on genuinely equivalent work. Events
//! per second comes from the simulation kernel's global processed-event
//! counter, not wall-clock guesswork.
//!
//! A third pass re-runs the parallel campaign with the observability
//! kill switch off ([`wn_sim::set_observability`]) to measure what the
//! typed trace/metrics layer costs; figures never read the trace, so
//! this pass must also render byte-identically.
//!
//! A final section benchmarks the two scheduler back ends on the
//! SCALE-DCF 1000-station saturation workload, twice over: the full
//! simulation through each queue (digests must match bit-for-bit),
//! and the recorded push/pop op stream of that run replayed
//! payload-free through each queue — the isolated queue-cost
//! comparison, since the full run is dominated by MAC/PHY compute.

use std::time::Instant;

use wn_core::runner;
use wn_core::scenarios::{scale_dcf_op_log, scale_dcf_point};
use wn_sim::{
    global_events_processed, replay_ops, set_observability, worker_count, SchedulerKind, OP_POP,
};

struct Pass {
    threads: usize,
    wall_s: f64,
    events: u64,
    markdown: String,
}

fn run_pass(threads: usize) -> Pass {
    let ev0 = global_events_processed();
    let t0 = Instant::now();
    let markdown = runner::campaign_markdown(threads);
    let wall_s = t0.elapsed().as_secs_f64();
    Pass {
        threads,
        wall_s,
        events: global_events_processed() - ev0,
        markdown,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parallel_threads: Option<usize> = None;
    let mut out_path = String::from("BENCH_campaign.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                parallel_threads = args.get(i).and_then(|v| v.parse().ok()).filter(|&n| n >= 1);
                if parallel_threads.is_none() {
                    eprintln!("--threads needs a count >= 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag '{other}' (supported: --threads N, --out PATH)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let parallel_threads = parallel_threads.unwrap_or_else(worker_count).max(1);

    eprintln!("perfsuite: serial pass (1 thread)…");
    let serial = run_pass(1);
    eprintln!(
        "perfsuite: serial {:.2} s, {} events ({:.0} ev/s)",
        serial.wall_s,
        serial.events,
        serial.events as f64 / serial.wall_s
    );
    eprintln!("perfsuite: parallel pass ({parallel_threads} threads)…");
    let parallel = run_pass(parallel_threads);
    eprintln!(
        "perfsuite: parallel {:.2} s, {} events ({:.0} ev/s)",
        parallel.wall_s,
        parallel.events,
        parallel.events as f64 / parallel.wall_s
    );

    assert_eq!(
        serial.markdown, parallel.markdown,
        "campaign output must be byte-identical across thread counts"
    );
    assert_eq!(
        serial.events, parallel.events,
        "both passes must process the same simulated events"
    );

    eprintln!("perfsuite: tracing-off pass ({parallel_threads} threads)…");
    set_observability(false);
    let untraced = run_pass(parallel_threads);
    set_observability(true);
    eprintln!(
        "perfsuite: tracing-off {:.2} s, {} events ({:.0} ev/s)",
        untraced.wall_s,
        untraced.events,
        untraced.events as f64 / untraced.wall_s
    );
    assert_eq!(
        parallel.markdown, untraced.markdown,
        "figures must not depend on the trace (kill switch changed the output)"
    );
    // Overhead of the observability layer: >0 means tracing costs time.
    let tracing_overhead = parallel.wall_s / untraced.wall_s - 1.0;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A single-core host runs "parallel" on one worker by construction,
    // so serial/parallel wall clocks differ only by noise. Recording
    // that ratio as a speedup made healthy runs look like regressions
    // (speedup 0.95 on a 1-core box); skip the verdict instead.
    let (speedup_json, speedup_note) = if cores < 2 {
        (
            "\"speedup\": null,\n  \"speedup_verdict\": \"skipped: single-core host, parallel pass degenerates to serial\"".to_string(),
            "speedup n/a (1 core)".to_string(),
        )
    } else {
        let speedup = serial.wall_s / parallel.wall_s;
        (
            format!("\"speedup\": {speedup:.2}"),
            format!("speedup {speedup:.2}x"),
        )
    };

    let scheduler = scheduler_section();

    let json = format!(
        "{{\n  \"campaign\": \"EXPERIMENTS.md full regeneration\",\n  \"host_cores\": {cores},\n  \"identical_output\": true,\n  \"serial\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"parallel\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"tracing_off\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"tracing_overhead\": {:.3},\n  {speedup_json},\n{scheduler}}}\n",
        serial.threads,
        serial.wall_s,
        serial.events,
        serial.events as f64 / serial.wall_s,
        parallel.threads,
        parallel.wall_s,
        parallel.events,
        parallel.events as f64 / parallel.wall_s,
        untraced.threads,
        untraced.wall_s,
        untraced.events,
        untraced.events as f64 / untraced.wall_s,
        tracing_overhead,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perfsuite: cannot write '{out_path}': {e}");
        std::process::exit(2);
    }
    eprintln!("perfsuite: {speedup_note} on {cores} core(s) -> {out_path}");
    print!("{json}");
}

/// Benchmarks both scheduler back ends on the SCALE-DCF 1000-station
/// workload and returns the `"scheduler"` JSON object (indented two
/// spaces, trailing newline). Panics on any digest disagreement.
fn scheduler_section() -> String {
    const STATIONS: usize = 1000;
    const DURATION_MS: u64 = 200;
    const SEED: u64 = 42;

    // Full simulation through each queue: same events, same metrics
    // digest, wall-clock mostly MAC/PHY compute.
    let mut full = Vec::new();
    for kind in SchedulerKind::ALL {
        eprintln!(
            "perfsuite: SCALE-DCF n={STATIONS} dur={DURATION_MS}ms full sim on {}…",
            kind.label()
        );
        let t0 = Instant::now();
        let p = scale_dcf_point(STATIONS, DURATION_MS, SEED, kind);
        full.push((kind, t0.elapsed().as_secs_f64(), p));
    }
    let (heap_full, wheel_full) = (&full[0], &full[1]);
    assert_eq!(
        (heap_full.2.events, heap_full.2.metrics_fnv),
        (wheel_full.2.events, wheel_full.2.metrics_fnv),
        "scheduler back ends diverged on the full SCALE-DCF run"
    );

    // The isolated queue comparison: record the exact push/pop stream
    // of the same run, then replay it payload-free through each queue.
    let ops = scale_dcf_op_log(STATIONS, DURATION_MS, SEED);
    let pushes = ops.iter().filter(|&&o| o != OP_POP).count();
    let mut replay = Vec::new();
    for kind in SchedulerKind::ALL {
        let t0 = Instant::now();
        let (pops, fnv) = replay_ops(kind, &ops);
        let wall = t0.elapsed().as_secs_f64();
        eprintln!(
            "perfsuite: op-stream replay on {}: {pops} pops in {wall:.3} s ({:.0} ev/s)",
            kind.label(),
            pops as f64 / wall
        );
        replay.push((kind, wall, pops, fnv));
    }
    assert_eq!(
        (replay[0].2, replay[0].3),
        (replay[1].2, replay[1].3),
        "scheduler back ends popped the op stream in different orders"
    );

    let full_rate =
        |p: &(SchedulerKind, f64, wn_core::scenarios::ScaleDcfPoint)| p.2.events as f64 / p.1;
    let replay_rate = |r: &(SchedulerKind, f64, u64, u64)| r.2 as f64 / r.1;
    let full_speedup = full_rate(wheel_full) / full_rate(heap_full);
    let replay_speedup = replay_rate(&replay[1]) / replay_rate(&replay[0]);
    eprintln!(
        "perfsuite: timer wheel vs heap: {full_speedup:.2}x full sim, {replay_speedup:.2}x queue ops"
    );

    format!(
        "  \"scheduler\": {{\n    \"workload\": \"SCALE-DCF stations={STATIONS} duration_ms={DURATION_MS} seed={SEED}\",\n    \"full_sim\": {{\n      \"heap\": {{ \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0} }},\n      \"wheel\": {{ \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0} }},\n      \"metrics_fnv\": \"{:016x}\",\n      \"identical_output\": true,\n      \"wheel_speedup\": {:.2}\n    }},\n    \"queue_op_replay\": {{\n      \"note\": \"recorded push/pop stream of the same run replayed payload-free through each queue\",\n      \"ops\": {},\n      \"pushes\": {pushes},\n      \"heap\": {{ \"wall_s\": {:.3}, \"pops\": {}, \"events_per_s\": {:.0} }},\n      \"wheel\": {{ \"wall_s\": {:.3}, \"pops\": {}, \"events_per_s\": {:.0} }},\n      \"pop_order_fnv\": \"{:016x}\",\n      \"identical_pop_order\": true,\n      \"wheel_speedup\": {:.2}\n    }}\n  }}\n",
        heap_full.1,
        heap_full.2.events,
        full_rate(heap_full),
        wheel_full.1,
        wheel_full.2.events,
        full_rate(wheel_full),
        heap_full.2.metrics_fnv,
        full_speedup,
        ops.len(),
        replay[0].1,
        replay[0].2,
        replay_rate(&replay[0]),
        replay[1].1,
        replay[1].2,
        replay_rate(&replay[1]),
        replay[0].3,
        replay_speedup,
    )
}
