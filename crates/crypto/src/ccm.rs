//! CCM authenticated encryption (RFC 3610), the mode behind WPA2's CCMP.
//!
//! §5.2: "the mandatory use of AES algorithms and the introduction of
//! CCMP (Counter Cipher Mode with Block Chaining Message Authentication
//! Code Protocol)". CCM combines CTR-mode encryption with a CBC-MAC over
//! the nonce, associated data and plaintext.
//!
//! This implementation is parameterised the way CCMP uses it: a 13-byte
//! nonce and an 8-byte MIC (`M = 8`, `L = 2`).

use crate::aes::Aes;

/// Tag (MIC) length in bytes used by CCMP.
pub const TAG_LEN: usize = 8;

/// Nonce length in bytes used by CCMP (15 − L with L = 2).
pub const NONCE_LEN: usize = 13;

/// Errors from CCM operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcmError {
    /// The MIC did not verify — the frame was forged or corrupted.
    BadTag,
    /// Ciphertext shorter than the MIC.
    TooShort,
}

impl std::fmt::Display for CcmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcmError::BadTag => write!(f, "CCM tag verification failed"),
            CcmError::TooShort => write!(f, "ciphertext shorter than the CCM tag"),
        }
    }
}

impl std::error::Error for CcmError {}

fn ctr_block(aes: &Aes, nonce: &[u8; NONCE_LEN], counter: u16) -> [u8; 16] {
    // A_i: flags(L=2 -> 0x01) || nonce || counter.
    let mut block = [0u8; 16];
    block[0] = 0x01;
    block[1..14].copy_from_slice(nonce);
    block[14..16].copy_from_slice(&counter.to_be_bytes());
    aes.encrypt(&block)
}

fn cbc_mac(aes: &Aes, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> [u8; TAG_LEN] {
    // B_0: flags || nonce || message length.
    // flags = (aad? 0x40) | ((M-2)/2 << 3) | (L-1) with M=8, L=2.
    let mut b0 = [0u8; 16];
    b0[0] = (if aad.is_empty() { 0 } else { 0x40 }) | (((TAG_LEN as u8 - 2) / 2) << 3) | 0x01;
    b0[1..14].copy_from_slice(nonce);
    b0[14..16].copy_from_slice(&(plaintext.len() as u16).to_be_bytes());

    let mut x = aes.encrypt(&b0);

    // Associated data, prefixed with its 2-byte length, zero padded.
    if !aad.is_empty() {
        let mut header = Vec::with_capacity(2 + aad.len());
        header.extend_from_slice(&(aad.len() as u16).to_be_bytes());
        header.extend_from_slice(aad);
        for chunk in header.chunks(16) {
            for (xi, &ci) in x.iter_mut().zip(chunk.iter()) {
                *xi ^= ci;
            }
            x = aes.encrypt(&x);
        }
    }

    // Payload blocks, zero padded.
    for chunk in plaintext.chunks(16) {
        for (xi, &ci) in x.iter_mut().zip(chunk.iter()) {
            *xi ^= ci;
        }
        x = aes.encrypt(&x);
    }

    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&x[..TAG_LEN]);
    tag
}

/// Encrypts `plaintext` and appends an 8-byte MIC.
///
/// `aad` (the MAC header fields CCMP protects) is authenticated but not
/// encrypted. The nonce must never repeat under one key — CCMP
/// guarantees this with its 48-bit packet number.
///
/// # Panics
///
/// Panics if `plaintext` exceeds `u16::MAX` bytes (CCMP frames cannot).
pub fn encrypt(aes: &Aes, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    assert!(
        plaintext.len() <= u16::MAX as usize,
        "payload too long for L=2"
    );
    let tag = cbc_mac(aes, nonce, aad, plaintext);

    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    for (i, chunk) in plaintext.chunks(16).enumerate() {
        let ks = ctr_block(aes, nonce, (i + 1) as u16);
        out.extend(chunk.iter().zip(ks.iter()).map(|(&p, &k)| p ^ k));
    }
    // The tag is encrypted with counter block 0.
    let s0 = ctr_block(aes, nonce, 0);
    out.extend(tag.iter().zip(s0.iter()).map(|(&t, &k)| t ^ k));
    out
}

/// Decrypts and verifies; returns the plaintext or an error.
pub fn decrypt(
    aes: &Aes,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CcmError> {
    if ciphertext.len() < TAG_LEN {
        return Err(CcmError::TooShort);
    }
    let (body, sent_tag_enc) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
    let mut plaintext = Vec::with_capacity(body.len());
    for (i, chunk) in body.chunks(16).enumerate() {
        let ks = ctr_block(aes, nonce, (i + 1) as u16);
        plaintext.extend(chunk.iter().zip(ks.iter()).map(|(&c, &k)| c ^ k));
    }
    let s0 = ctr_block(aes, nonce, 0);
    let sent_tag: Vec<u8> = sent_tag_enc
        .iter()
        .zip(s0.iter())
        .map(|(&t, &k)| t ^ k)
        .collect();
    let expect = cbc_mac(aes, nonce, aad, &plaintext);
    if crate::hmac::verify_tag(&expect, &sent_tag) {
        Ok(plaintext)
    } else {
        Err(CcmError::BadTag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Aes {
        Aes::new(b"wpa2-session-key")
    }

    fn nonce(n: u8) -> [u8; NONCE_LEN] {
        let mut v = [0u8; NONCE_LEN];
        v[12] = n;
        v
    }

    #[test]
    fn roundtrip_various_lengths() {
        let aes = key();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1500] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let aad = b"frame header";
            let ct = encrypt(&aes, &nonce(1), aad, &pt);
            assert_eq!(ct.len(), len + TAG_LEN);
            let back = decrypt(&aes, &nonce(1), aad, &ct).unwrap();
            assert_eq!(back, pt, "len {len}");
        }
    }

    #[test]
    fn tamper_ciphertext_detected() {
        let aes = key();
        let mut ct = encrypt(&aes, &nonce(2), b"hdr", b"the quick brown fox");
        ct[3] ^= 0x40;
        assert_eq!(decrypt(&aes, &nonce(2), b"hdr", &ct), Err(CcmError::BadTag));
    }

    #[test]
    fn tamper_tag_detected() {
        let aes = key();
        let mut ct = encrypt(&aes, &nonce(3), b"", b"payload");
        let last = ct.len() - 1;
        ct[last] ^= 1;
        assert_eq!(decrypt(&aes, &nonce(3), b"", &ct), Err(CcmError::BadTag));
    }

    #[test]
    fn aad_is_authenticated() {
        let aes = key();
        let ct = encrypt(&aes, &nonce(4), b"to-ds=1", b"data");
        assert_eq!(
            decrypt(&aes, &nonce(4), b"to-ds=0", &ct),
            Err(CcmError::BadTag),
            "changing the protected header must break the MIC"
        );
    }

    #[test]
    fn wrong_nonce_fails() {
        let aes = key();
        let ct = encrypt(&aes, &nonce(5), b"", b"replay me");
        assert_eq!(decrypt(&aes, &nonce(6), b"", &ct), Err(CcmError::BadTag));
    }

    #[test]
    fn wrong_key_fails() {
        let ct = encrypt(&key(), &nonce(7), b"", b"secret");
        let other = Aes::new(b"another-16b-key!");
        assert_eq!(decrypt(&other, &nonce(7), b"", &ct), Err(CcmError::BadTag));
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(
            decrypt(&key(), &nonce(0), b"", &[0u8; 4]),
            Err(CcmError::TooShort)
        );
    }

    #[test]
    fn distinct_nonces_distinct_ciphertexts() {
        // CTR reuse would leak plaintext xor; CCMP's packet number
        // prevents it. Verify our ciphertexts differ across nonces.
        let aes = key();
        let a = encrypt(&aes, &nonce(10), b"", b"same plaintext");
        let b = encrypt(&aes, &nonce(11), b"", b"same plaintext");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_plaintext_still_authenticated() {
        let aes = key();
        let ct = encrypt(&aes, &nonce(12), b"mgmt", b"");
        assert_eq!(ct.len(), TAG_LEN);
        assert!(decrypt(&aes, &nonce(12), b"mgmt", &ct).unwrap().is_empty());
        assert_eq!(
            decrypt(&aes, &nonce(12), b"data", &ct),
            Err(CcmError::BadTag)
        );
    }
}
