//! `wn-sim` — deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate every other crate in the workspace builds
//! on. It provides:
//!
//! - [`SimTime`] / [`SimDuration`] — virtual time with nanosecond
//!   resolution, wide enough (u64 ns ≈ 584 years) for any scenario here.
//! - [`Scheduler`] / [`Simulation`] — a classic event-queue engine with
//!   deterministic FIFO tie-breaking for simultaneous events.
//! - [`rng`] — a from-scratch SplitMix64/xoshiro256** PRNG so that every
//!   simulation is reproducible from a single seed, independent of
//!   platform or external crate versions.
//! - [`stats`] — counters, histograms, time-weighted gauges and series
//!   used by the experiment harness to regenerate the paper's figures.
//! - [`metrics`] — a registry that names those instruments per layer and
//!   per station and snapshots them into deterministic JSONL.
//! - [`trace`] — a bounded event trace carrying typed
//!   [`trace::TraceEvent`]s for debugging, ordering assertions in tests,
//!   and JSONL export.
//! - [`par`] — a std-only scoped-thread pool ([`par_map`]) that fans the
//!   independent sweep points of a campaign across cores while keeping
//!   results in input order, so parallel runs stay byte-identical.
//!
//! # Example
//!
//! ```
//! use wn_sim::{SimTime, SimDuration, Simulation, World, Scheduler};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule_in(SimDuration::from_millis(1), Ev::Tick);
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.scheduler_mut().schedule_at(SimTime::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_millis(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod json;
pub mod metrics;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wheel;

pub use engine::{
    event_key, global_events_processed, key_time, replay_ops, Scheduler, SchedulerKind, Simulation,
    World, OP_POP,
};
pub use metrics::{MetricKey, MetricRow, MetricsRegistry, MetricsSnapshot};
pub use par::{
    par_map, par_map_with, run_shards_serial, run_shards_windowed, shard_boundaries, worker_count,
    ShardMsg,
};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
pub use trace::{
    observability_enabled, set_observability, DropReason, FrameKind, Level, Lookup, Trace,
    TraceEvent,
};
