//! Quickstart: build a home WLAN (Fig. 1.6), watch a station join,
//! push traffic through the AP, and print the comparison table.
//!
//! Run with: `cargo run --example quickstart`

use wireless_networks::core::registry::comparison_table;
use wireless_networks::core::scenarios::wlan_saturation_mbps;
use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::sim::MacConfig;
use wireless_networks::net80211::builder::{send_app_data, EssBuilder};
use wireless_networks::net80211::ssid::Ssid;
use wireless_networks::net80211::sta::StaState;
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::sim::SimTime;

fn main() {
    println!("== wireless-networks quickstart ==\n");

    // 1. A home WLAN: one 802.11g AP, two stations (Fig. 1.6).
    let ssid = Ssid::new("HomeNet").expect("valid SSID");
    let mut net = EssBuilder::new(MacConfig::new(PhyStandard::Dot11g), ssid)
        .ap(Point::new(0.0, 0.0), 6)
        .sta(Point::new(8.0, 3.0)) // Laptop in the living room.
        .sta(Point::new(-6.0, 10.0)) // Desktop in the study.
        .build();

    // Let scanning, authentication and association complete.
    net.sim.run_until(SimTime::from_secs(2));
    for (i, sh) in net.sta_shared.iter().enumerate() {
        let sh = sh.lock().expect("shared state lock");
        println!(
            "station {i}: state={:?} bssid={:?} aid={} (beacons heard: {})",
            sh.state, sh.bssid, sh.aid, sh.beacons_heard
        );
        assert_eq!(sh.state, StaState::Associated);
    }

    // 2. The laptop sends the desktop a message — relayed by the AP.
    let laptop = net.sta_ids[0];
    let handle = net.sta_shared[0].clone();
    send_app_data(
        &mut net.sim,
        laptop,
        &handle,
        MacAddr::station(1),
        b"hello across the BSS".to_vec(),
        SimTime::from_millis(2100),
    );
    net.sim.run_until(SimTime::from_secs(3));
    let delivered = &net.sta_shared[1]
        .lock()
        .expect("shared state lock")
        .delivered;
    println!(
        "\ndesktop received {} message(s): {:?}",
        delivered.len(),
        delivered
            .iter()
            .map(|(t, from, body)| (
                t.to_string(),
                *from,
                String::from_utf8_lossy(body).into_owned()
            ))
            .collect::<Vec<_>>()
    );
    println!(
        "AP bridged {} frame(s) locally",
        net.ap_shared[0]
            .lock()
            .expect("shared state lock")
            .bridged_local
    );

    // 3. Saturation throughput of the cell (the MAC-efficiency story).
    let mbps = wlan_saturation_mbps(PhyStandard::Dot11g, 4, false, 42);
    println!("\n4 saturated stations on 802.11g: {mbps:.1} Mbps aggregate (PHY peak 54)");

    // 4. The closing comparison table, measured.
    println!("\n== Comparison of wireless network types (paper vs measured) ==");
    println!(
        "{:<16} {:<6} {:>14} {:>14} {:>12} {:>12}",
        "technology", "class", "paper rate", "measured", "paper range", "measured"
    );
    for row in comparison_table() {
        println!(
            "{:<16} {:<6} {:>14} {:>14} {:>11.0}m {:>11.0}m",
            row.name,
            row.class.abbrev(),
            row.paper_max_rate.to_string(),
            row.measured_max_rate.to_string(),
            row.paper_range_m,
            row.measured_range_m
        );
    }
}
