//! M2M fleet tracking (§7): "transport and logistics (fleet
//! management)" over the WWAN substrate — trucks report positions via
//! the cellular grid with handoffs, a remote depot links in by
//! satellite, and a WiMAX tower backhauls a rural district.
//!
//! Run with: `cargo run --example m2m_fleet`

use wireless_networks::phy::geom::Point;
use wireless_networks::sim::{SimTime, Simulation};
use wireless_networks::wman::link::WimaxLink;
use wireless_networks::wman::scheduler::{
    boot as wimax_boot, BaseStation, ServiceClass, WimaxEvent,
};
use wireless_networks::wwan::cellular::{erlang_b_capacity, CellGrid, Generation, ReuseCluster};
use wireless_networks::wwan::satellite::{GeoSatellite, SatLink};

fn main() {
    println!("== M2M fleet management (§7) ==\n");

    // --- The cellular layer: a 37-cell metro grid with N=7 reuse.
    let grid = CellGrid::hex(3, 1500.0);
    let cluster = ReuseCluster::new(7).expect("7 is a valid cluster size");
    println!(
        "metro grid: {} cells of 1.5 km; reuse N=7 -> worst-case SIR {:.1} dB, {} voice channels/cell",
        grid.len(),
        cluster.downlink_sir_db(4.0),
        cluster.channels_per_cell(420)
    );
    println!(
        "trunking: {} channels/cell carry {:.1} erlangs at 2% blocking",
        cluster.channels_per_cell(420),
        erlang_b_capacity(cluster.channels_per_cell(420), 0.02)
    );

    // Three trucks drive across town; count their handoffs.
    let routes = [
        (
            "truck-A",
            Point::new(-7000.0, 200.0),
            Point::new(7000.0, 300.0),
        ),
        (
            "truck-B",
            Point::new(-6000.0, -4000.0),
            Point::new(6000.0, 4000.0),
        ),
        (
            "truck-C",
            Point::new(0.0, -7000.0),
            Point::new(500.0, 7000.0),
        ),
    ];
    for (name, from, to) in routes {
        let seq = grid.drive_test(from, to, 3000);
        println!(
            "{name}: served by {} cells along the route (handoffs: {})",
            seq.len(),
            seq.len() - 1
        );
        assert!(seq.len() >= 2, "a cross-town route must hand off");
    }
    println!(
        "telemetry uplink budget per truck on {} ({}): {}",
        Generation::G4.name(),
        Generation::G4.year(),
        Generation::G4.peak_rate()
    );

    // --- The remote depot: GEO satellite link ("users who are located
    // in remote areas or islands").
    let depot = GeoSatellite {
        elevation_deg: 22.0,
    };
    let hub = GeoSatellite {
        elevation_deg: 38.0,
    };
    let link = SatLink::typical();
    println!(
        "\nremote depot via GEO: one-way {:.0} ms, RTT {:.0} ms, rate {}",
        depot.bent_pipe_delay_s(&hub) * 1e3,
        depot.round_trip_s(&hub) * 1e3,
        link.achievable_rate()
    );
    assert!(depot.round_trip_s(&hub) > 0.4, "GEO RTT is ~half a second");

    // --- The rural district: one WiMAX tower feeds roadside units.
    let mut bs = BaseStation::new(WimaxLink::default());
    let mut units = Vec::new();
    for km in [2.0, 8.0, 15.0, 30.0, 48.0] {
        let id = bs
            .add_subscriber(km * 1000.0, false, ServiceClass::Nrtps, 2e6)
            .expect("within the 50 km footprint");
        units.push((km, id));
    }
    let mut sim = Simulation::new(bs);
    wimax_boot(&mut sim);
    for &(_, id) in &units {
        for t in 0..50u64 {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(t * 100),
                WimaxEvent::Offer {
                    ss: id,
                    bytes: 100_000,
                },
            );
        }
    }
    sim.run_until(SimTime::from_secs(5));
    println!("\nWiMAX district (Fig. 1.7):");
    for &(km, id) in &units {
        let mbps = sim.world().delivered_bytes(id) as f64 * 8.0 / 5.0 / 1e6;
        println!("  roadside unit at {km:>4.0} km: {mbps:5.1} Mbps");
    }
    let total: u64 = units
        .iter()
        .map(|&(_, id)| sim.world().delivered_bytes(id))
        .sum();
    println!(
        "  aggregate: {:.1} Mbps from one tower to {} units",
        total as f64 * 8.0 / 5.0 / 1e6,
        units.len()
    );
}
