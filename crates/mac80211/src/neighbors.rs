//! Propagation neighbor cache and event-fan-out wait-list structures.
//!
//! The DCF hot path in [`crate::sim`] used to pay O(n) per
//! transmission three times over: a link-budget evaluation for every
//! station at tx start, a full-table scan to deliver busy edges, and
//! another full-table scan at tx end to resume frozen backoffs. This
//! module provides the three data structures that cut those to the
//! stations actually involved, without changing a single trace byte:
//!
//! - [`NeighborCache`] — a pairwise rx-power matrix (in dBm and,
//!   mirrored bit-for-bit, in linear milliwatts for the interference
//!   sums) plus, per transmitter, the sorted list of stations that can
//!   hear it at the carrier-sense threshold. Static topologies compute
//!   propagation once; mobility dirties only the moved station's row
//!   and column.
//! - [`AudibleSet`] — the per-station set of in-flight transmission
//!   ids, with O(1) insert and O(members) removal instead of the old
//!   `Vec::retain` full scan.
//! - [`IdBitSet`] — the contender wait-list: stations with an armed
//!   backoff, iterated in ascending id order so the idle-edge rearm
//!   visits exactly the stations the old 0..n scan would have acted
//!   on, in the same order.
//!
//! Equivalence with the uncached path is load-bearing: audibility here
//! is *raw* co-channel power against the CS threshold, a superset of
//! what any receiver on an overlapping channel can hear after the
//! spectral-mask discount, so per-member awake/channel/leak checks in
//! the MAC stay exactly where they were. Rows are `Arc`-shared
//! copy-on-write: an in-flight transmission snapshots its row at start
//! time for free, and a mobility update clones the row before writing,
//! leaving the snapshot untouched.

use std::sync::Arc;

use crate::sim::StationId;
use wn_phy::units::Dbm;

/// Pairwise rx-power cache with per-transmitter audible-neighbor lists.
///
/// `rows[src][dst]` is the raw received power at `dst` of a
/// transmission from `src` (the diagonal is +inf: a station trivially
/// "hears" itself at any threshold, and the MAC skips it explicitly).
/// `mw_rows` mirrors `rows` in linear milliwatts
/// (`Dbm::to_milliwatts` of the same entry, bit for bit) — the
/// interference sums in the reception path run in the linear domain,
/// and memoizing the dB→mW conversion is where most of the
/// transcendental math in a saturated cell goes. `audible[src]` lists
/// every `dst != src` whose raw power meets the carrier-sense
/// threshold, ascending.
#[derive(Default)]
pub struct NeighborCache {
    rows: Vec<Arc<Vec<Dbm>>>,
    mw_rows: Vec<Arc<Vec<f64>>>,
    audible: Vec<Arc<Vec<StationId>>>,
}

impl NeighborCache {
    /// An empty (unbuilt) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether [`build`](Self::build) has run since the last
    /// [`clear`](Self::clear).
    pub fn is_built(&self) -> bool {
        !self.rows.is_empty()
    }

    /// Drops all cached state (topology-shaping setup calls, e.g. a
    /// radio swap, call this; the next use rebuilds).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.mw_rows.clear();
        self.audible.clear();
    }

    /// Builds the full matrix for `n` stations from `power(src, dst)`,
    /// marking `dst` audible from `src` when the raw power meets `cs`.
    pub fn build(&mut self, n: usize, cs: Dbm, mut power: impl FnMut(StationId, StationId) -> Dbm) {
        self.clear();
        self.rows.reserve(n);
        self.mw_rows.reserve(n);
        self.audible.reserve(n);
        for src in 0..n {
            let mut row = Vec::with_capacity(n);
            let mut mw = Vec::with_capacity(n);
            let mut aud = Vec::new();
            for dst in 0..n {
                if dst == src {
                    row.push(Dbm(f64::INFINITY));
                    mw.push(f64::INFINITY);
                    continue;
                }
                let p = power(src, dst);
                if p.value() >= cs.value() {
                    aud.push(dst);
                }
                row.push(p);
                mw.push(p.to_milliwatts());
            }
            self.rows.push(Arc::new(row));
            self.mw_rows.push(Arc::new(mw));
            self.audible.push(Arc::new(aud));
        }
    }

    /// Recomputes one station's row and column after it moved (or
    /// changed its radio): its own row and audible list are rebuilt
    /// from scratch, and every other station's entry *to* it is
    /// patched in place, maintaining the sorted audible lists by
    /// binary search. Rows shared with in-flight transmission records
    /// are cloned before writing (copy-on-write), so those records
    /// keep their start-time snapshot.
    pub fn rebuild_station(
        &mut self,
        id: StationId,
        cs: Dbm,
        mut power: impl FnMut(StationId, StationId) -> Dbm,
    ) {
        let n = self.rows.len();
        debug_assert!(id < n, "rebuild_station on an unbuilt cache");
        let mut row = Vec::with_capacity(n);
        let mut mw = Vec::with_capacity(n);
        let mut aud = Vec::new();
        for dst in 0..n {
            if dst == id {
                row.push(Dbm(f64::INFINITY));
                mw.push(f64::INFINITY);
                continue;
            }
            let p = power(id, dst);
            if p.value() >= cs.value() {
                aud.push(dst);
            }
            row.push(p);
            mw.push(p.to_milliwatts());
        }
        self.rows[id] = Arc::new(row);
        self.mw_rows[id] = Arc::new(mw);
        self.audible[id] = Arc::new(aud);
        for src in 0..n {
            if src == id {
                continue;
            }
            let p = power(src, id);
            Arc::make_mut(&mut self.rows[src])[id] = p;
            Arc::make_mut(&mut self.mw_rows[src])[id] = p.to_milliwatts();
            let hears = p.value() >= cs.value();
            let list = &self.audible[src];
            match list.binary_search(&id) {
                Ok(pos) if !hears => {
                    Arc::make_mut(&mut self.audible[src]).remove(pos);
                }
                Err(pos) if hears => {
                    Arc::make_mut(&mut self.audible[src]).insert(pos, id);
                }
                _ => {}
            }
        }
    }

    /// The cached power row for `src` (shared, copy-on-write).
    pub fn row(&self, src: StationId) -> Arc<Vec<Dbm>> {
        Arc::clone(&self.rows[src])
    }

    /// The linear-milliwatt mirror of [`row`](Self::row) (shared,
    /// copy-on-write; entry `dst` is bit-identical to
    /// `row[dst].to_milliwatts()`).
    pub fn mw_row(&self, src: StationId) -> Arc<Vec<f64>> {
        Arc::clone(&self.mw_rows[src])
    }

    /// The sorted audible-neighbor list for `src` (shared).
    pub fn audible_list(&self, src: StationId) -> Arc<Vec<StationId>> {
        Arc::clone(&self.audible[src])
    }

    /// Verifies every cached entry (powers and audible lists) against
    /// a fresh evaluation — the oracle behind the mobility-invalidation
    /// property test. Returns the first mismatch as
    /// `(src, dst, cached, fresh)`.
    pub fn find_incoherence(
        &self,
        cs: Dbm,
        mut power: impl FnMut(StationId, StationId) -> Dbm,
    ) -> Option<(StationId, StationId, Dbm, Dbm)> {
        let n = self.rows.len();
        for src in 0..n {
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                let fresh = power(src, dst);
                let cached = self.rows[src][dst];
                let listed = self.audible[src].binary_search(&dst).is_ok();
                // The mw mirror must stay bit-identical to the dBm
                // entry's conversion, not merely numerically close.
                if cached.value() != fresh.value()
                    || listed != (fresh.value() >= cs.value())
                    || self.mw_rows[src][dst].to_bits() != fresh.to_milliwatts().to_bits()
                {
                    return Some((src, dst, cached, fresh));
                }
            }
        }
        None
    }
}

/// The set of in-flight transmission ids a station can hear.
///
/// Membership is tiny in practice (the number of concurrent audible
/// transmissions), so an unsorted `Vec` with `swap_remove` beats any
/// tree: O(1) insert, one linear pass to remove or test. Order is
/// never observed — the MAC only asks "empty?" and "contains?".
#[derive(Default, Clone)]
pub struct AudibleSet {
    ids: Vec<u64>,
}

impl AudibleSet {
    /// Adds an id (caller guarantees it is not already present) and
    /// returns the new member count.
    pub fn insert(&mut self, id: u64) -> usize {
        debug_assert!(!self.ids.contains(&id), "duplicate audible id {id}");
        self.ids.push(id);
        self.ids.len()
    }

    /// Removes an id if present; reports whether it was a member.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.ids.iter().position(|&t| t == id) {
            Some(i) => {
                self.ids.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, id: u64) -> bool {
        self.ids.contains(&id)
    }

    /// Whether no transmission is audible.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of audible transmissions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Forgets everything (doze, channel switch).
    pub fn clear(&mut self) {
        self.ids.clear();
    }
}

/// A station-id bitset iterated in ascending order — the contender
/// wait-list.
///
/// Saturated cells freeze and re-arm every station on every
/// transmission, so the structure must take O(1) per membership flip;
/// a sorted container would pay a shift per insert and lose to the
/// plain O(n) scan it replaces. Word-and-trailing-zeros iteration
/// preserves the ascending visit order the old `0..n` loop had, which
/// the trace fingerprints depend on.
#[derive(Default)]
pub struct IdBitSet {
    words: Vec<u64>,
}

impl IdBitSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `id` (idempotent).
    pub fn insert(&mut self, id: usize) {
        let word = id / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (id % 64);
    }

    /// Removes `id` (idempotent).
    pub fn remove(&mut self, id: usize) {
        if let Some(w) = self.words.get_mut(id / 64) {
            *w &= !(1u64 << (id % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Empties the set, keeping its capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Appends the members to `out` in ascending order.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audible_set_tracks_overlapping_transmissions() {
        // Two transmissions overlap in time; the first to end must be
        // removed without disturbing the second — the bookkeeping the
        // MAC does at every tx-end edge.
        let mut s = AudibleSet::default();
        assert!(s.is_empty());
        assert_eq!(s.insert(7), 1);
        assert_eq!(s.insert(9), 2);
        assert!(s.contains(7) && s.contains(9));
        assert!(s.remove(7));
        assert!(!s.contains(7));
        assert!(s.contains(9));
        assert_eq!(s.len(), 1);
        assert!(!s.remove(7), "double-remove must report absence");
        assert!(s.remove(9));
        assert!(s.is_empty());
    }

    #[test]
    fn bitset_iterates_ascending_across_words() {
        let mut b = IdBitSet::new();
        for &id in &[200, 3, 64, 0, 127, 65] {
            b.insert(id);
        }
        b.remove(64);
        b.insert(64); // idempotent re-add
        b.remove(3);
        let mut got = Vec::new();
        b.collect_into(&mut got);
        assert_eq!(got, vec![0, 64, 65, 127, 200]);
        assert!(b.contains(127) && !b.contains(3) && !b.contains(1000));
        b.remove(1000); // out of range is a no-op
    }

    #[test]
    fn cache_builds_and_patches_moved_station() {
        // Powers derived from a mutable "position" table so the test
        // can move a station and demand row+column patching.
        let mut xs = [0.0f64, 10.0, 20.0, 80.0];
        let cs = Dbm(-82.0);
        fn power(xs: &[f64; 4]) -> impl FnMut(StationId, StationId) -> Dbm + '_ {
            move |a, b| Dbm(-((xs[a] - xs[b]).abs()) - 40.0)
        }
        let mut c = NeighborCache::new();
        c.build(4, cs, power(&xs));
        assert!(c.is_built());
        assert!(c.find_incoherence(cs, power(&xs)).is_none());
        // 0 hears 1 (−50) and 2 (−60) but not 3 (−120).
        assert_eq!(*c.audible_list(0), vec![1, 2]);

        // A record snapshots row 0 (both domains), then station 3
        // moves next to 0: the snapshots must keep the old power, the
        // cache the new — in dBm and in the milliwatt mirror alike.
        let snapshot = c.row(0);
        let mw_snapshot = c.mw_row(0);
        xs[3] = 5.0;
        c.rebuild_station(3, cs, power(&xs));
        assert_eq!(snapshot[3], Dbm(-120.0));
        assert_eq!(c.row(0)[3], Dbm(-45.0));
        assert_eq!(
            mw_snapshot[3].to_bits(),
            Dbm(-120.0).to_milliwatts().to_bits()
        );
        assert_eq!(
            c.mw_row(0)[3].to_bits(),
            Dbm(-45.0).to_milliwatts().to_bits()
        );
        assert_eq!(*c.audible_list(0), vec![1, 2, 3]);
        assert_eq!(*c.audible_list(3), vec![0, 1, 2]);
        assert!(c.find_incoherence(cs, power(&xs)).is_none());

        c.clear();
        assert!(!c.is_built());
    }
}
