//! Receiver-side duplicate detection.
//!
//! When an ACK is lost the sender retransmits with the Retry bit set
//! (§4.2), and the receiver must not deliver the same MSDU twice. The
//! standard's duplicate cache keys on (transmitter, sequence, fragment).

use std::collections::HashMap;

use crate::addr::MacAddr;
use crate::frame::SequenceControl;

/// A per-receiver duplicate-detection cache.
#[derive(Clone, Debug, Default)]
pub struct DedupCache {
    last_seen: HashMap<MacAddr, SequenceControl>,
}

impl DedupCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a received frame and reports whether it is a duplicate.
    ///
    /// Per the standard, a frame is a duplicate when the Retry bit is
    /// set *and* its sequence control equals the last accepted frame
    /// from the same transmitter.
    pub fn check(&mut self, transmitter: MacAddr, seq: SequenceControl, retry: bool) -> bool {
        let dup = retry && self.last_seen.get(&transmitter) == Some(&seq);
        if !dup {
            self.last_seen.insert(transmitter, seq);
        }
        dup
    }

    /// Forgets a transmitter (e.g. on disassociation).
    pub fn forget(&mut self, transmitter: MacAddr) {
        self.last_seen.remove(&transmitter);
    }

    /// Number of transmitters tracked.
    pub fn len(&self) -> usize {
        self.last_seen.len()
    }

    /// `true` when no transmitters are tracked.
    pub fn is_empty(&self) -> bool {
        self.last_seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(seq: u16, frag: u8) -> SequenceControl {
        SequenceControl {
            sequence: seq,
            fragment: frag,
        }
    }

    #[test]
    fn retransmission_detected() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        assert!(!c.check(tx, sc(10, 0), false));
        // The retry of the same frame is a duplicate.
        assert!(c.check(tx, sc(10, 0), true));
        // And again.
        assert!(c.check(tx, sc(10, 0), true));
    }

    #[test]
    fn new_sequence_not_duplicate() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        assert!(!c.check(tx, sc(10, 0), false));
        assert!(!c.check(tx, sc(11, 0), false));
        // A retry of a *different* frame is not a duplicate.
        assert!(!c.check(tx, sc(12, 0), true));
    }

    #[test]
    fn fragments_tracked_separately() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        assert!(!c.check(tx, sc(10, 0), false));
        assert!(!c.check(tx, sc(10, 1), false));
        assert!(c.check(tx, sc(10, 1), true));
    }

    #[test]
    fn transmitters_independent() {
        let mut c = DedupCache::new();
        let a = MacAddr::station(1);
        let b = MacAddr::station(2);
        assert!(!c.check(a, sc(5, 0), false));
        // Same sequence from another STA is fine.
        assert!(!c.check(b, sc(5, 0), true));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn retry_without_prior_sighting_accepted() {
        // First copy lost entirely; the retry is the first we see.
        let mut c = DedupCache::new();
        assert!(!c.check(MacAddr::station(3), sc(7, 0), true));
    }

    #[test]
    fn forget_clears_state() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        c.check(tx, sc(10, 0), false);
        c.forget(tx);
        assert!(c.is_empty());
        // After forgetting, even an exact retry is accepted (fresh
        // association ⇒ fresh counters).
        assert!(!c.check(tx, sc(10, 0), true));
    }
}
