//! FIG-1.4 — regenerates the ZigBee star/mesh/cluster-tree comparison;
//! times a mesh delivery round.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_1_4_zigbee;
use wn_sim::{SimTime, Simulation};
use wn_wpan::zigbee::{mesh_grid, ZigbeeEvent};

fn main() {
    let (fig, report) = fig_1_4_zigbee(42);
    print_figure(&fig);
    print_report(&report);

    bench("fig04/mesh_5x5_50_packets", || {
        let net = mesh_grid(5, 5, 8.0, 7);
        let mut sim = Simulation::new(net);
        for k in 0..50u64 {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(k * 10),
                ZigbeeEvent::Send {
                    src: 0,
                    dst: 24,
                    bytes: 60,
                },
            );
        }
        sim.run_until(SimTime::from_secs(5));
        black_box(sim.world().stats.delivered)
    });
}
