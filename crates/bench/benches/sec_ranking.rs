//! SEC-RANK — regenerates the §5.2 security ranking with a live WEP
//! crack, and times the attack kernels.

use criterion::{black_box, Criterion};
use wn_bench::{criterion_fast, print_figure, print_report};
use wn_core::scenarios::sec_ranking;
use wn_security::attacks::fms::{directed_capture, recover_key};
use wn_security::handshake::{passphrase_matches, run_handshake};
use wn_security::wep::WepKey;
use wn_security::wps::{brute_force, Registrar, WpsPin};

fn bench(c: &mut Criterion) {
    let (fig, report) = sec_ranking();
    print_figure(&fig);
    print_report(&report);

    c.bench_function("sec/fms_crack_40bit", |b| {
        let key = WepKey::new(b"\x42\x13\x37\xC0\xDE").expect("5 bytes");
        let (samples, reference) = directed_capture(&key);
        b.iter(|| {
            let r = recover_key(&samples, 5, &reference, 3, 10_000);
            assert!(r.key.is_some());
            black_box(r.nodes_explored)
        })
    });

    c.bench_function("sec/pbkdf2_guess", |b| {
        // One dictionary guess = one 4096-iteration PBKDF2 + PTK + MIC.
        let (_ptk, hs) = run_handshake(
            "correct",
            "Net",
            [2, 0xAB, 0, 0, 0, 1],
            [2, 0, 0, 0, 0, 7],
            [1; 32],
            [2; 32],
        );
        b.iter(|| black_box(passphrase_matches(&hs, "Net", "wrong-guess")))
    });

    c.bench_function("sec/wps_full_search", |b| {
        let reg = Registrar::new(WpsPin::from_first7(9_999_999));
        b.iter(|| black_box(brute_force(&reg).attempts))
    });
}

fn main() {
    let mut c = criterion_fast();
    bench(&mut c);
    c.final_summary();
}
