//! WPA with TKIP (§5.2).
//!
//! "Some of the significant changes implemented with WPA included
//! message integrity checks … and the Temporal Key Integrity Protocol
//! (TKIP). TKIP employs a per-packet key system that was radically
//! more secure than the fixed key used in the WEP system."
//!
//! The pipeline per packet: two-phase key mixing (TK ⊕ TA ⊕ TSC →
//! fresh RC4 key), a Michael MIC over the addresses and payload, a
//! monotonically-increasing TSC checked at the receiver (anti-replay),
//! and the Michael *countermeasures* — two MIC failures within a
//! minute force a rekey and a 60 s shutdown, because Michael itself is
//! deliberately weak.

use wn_crypto::crc32;
use wn_crypto::michael::michael;
use wn_crypto::rc4::Rc4;
use wn_crypto::tkip::{per_packet_key, Tsc};

/// A TKIP security association between one transmitter and receiver.
#[derive(Clone)]
pub struct TkipSession {
    /// 128-bit temporal key (from the 4-way handshake).
    tk: [u8; 16],
    /// 64-bit Michael key for this direction.
    mic_key: [u8; 8],
    /// Transmitter address (mixed into every per-packet key).
    ta: [u8; 6],
    /// Next TSC to send.
    tsc: Tsc,
    /// Highest TSC accepted (receiver side).
    replay_floor: Option<Tsc>,
    /// Michael failures observed in the current window.
    mic_failures: u32,
    /// Whether countermeasures have tripped.
    pub countermeasures_active: bool,
}

impl std::fmt::Debug for TkipSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TkipSession")
            .field("tsc", &self.tsc)
            .field("countermeasures_active", &self.countermeasures_active)
            .finish_non_exhaustive()
    }
}

/// A TKIP-protected packet.
#[derive(Clone, Debug, PartialEq)]
pub struct TkipPacket {
    /// The 48-bit sequence counter, sent in clear.
    pub tsc: u64,
    /// RC4 ciphertext of payload ‖ MIC ‖ ICV.
    pub ciphertext: Vec<u8>,
}

/// TKIP errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TkipError {
    /// TSC not greater than the last accepted — replay.
    Replay,
    /// The WEP-style ICV failed (noise-level corruption).
    BadIcv,
    /// The Michael MIC failed — active attack suspected.
    MicFailure,
    /// Countermeasures are active; traffic refused.
    CountermeasuresActive,
    /// Packet too short.
    TooShort,
}

impl std::fmt::Display for TkipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TkipError::Replay => write!(f, "TKIP replay detected"),
            TkipError::BadIcv => write!(f, "TKIP ICV failure"),
            TkipError::MicFailure => write!(f, "Michael MIC failure"),
            TkipError::CountermeasuresActive => write!(f, "TKIP countermeasures active"),
            TkipError::TooShort => write!(f, "TKIP packet too short"),
        }
    }
}

impl std::error::Error for TkipError {}

impl TkipSession {
    /// Creates a session from the temporal key, Michael key and TA.
    pub fn new(tk: [u8; 16], mic_key: [u8; 8], ta: [u8; 6]) -> Self {
        TkipSession {
            tk,
            mic_key,
            ta,
            tsc: Tsc(0),
            replay_floor: None,
            mic_failures: 0,
            countermeasures_active: false,
        }
    }

    /// Michael is computed over DA ‖ SA ‖ payload.
    fn mic(&self, da: &[u8; 6], sa: &[u8; 6], payload: &[u8]) -> [u8; 8] {
        let mut m = Vec::with_capacity(12 + payload.len());
        m.extend_from_slice(da);
        m.extend_from_slice(sa);
        m.extend_from_slice(payload);
        michael(&self.mic_key, &m)
    }

    /// Encrypts a packet; the TSC advances so every packet gets a
    /// fresh RC4 key.
    pub fn encrypt(
        &mut self,
        da: &[u8; 6],
        sa: &[u8; 6],
        payload: &[u8],
    ) -> Result<TkipPacket, TkipError> {
        if self.countermeasures_active {
            return Err(TkipError::CountermeasuresActive);
        }
        let tsc = self.tsc;
        self.tsc = self.tsc.next();
        let key = per_packet_key(&self.tk, &self.ta, tsc);
        let mut buf = payload.to_vec();
        buf.extend_from_slice(&self.mic(da, sa, payload));
        let icv = crc32(&buf);
        buf.extend_from_slice(&icv.to_le_bytes());
        let mut rc4 = Rc4::new(&key);
        rc4.apply(&mut buf);
        Ok(TkipPacket {
            tsc: tsc.0,
            ciphertext: buf,
        })
    }

    /// Decrypts and verifies; enforces replay ordering, the ICV and the
    /// Michael MIC; counts MIC failures toward countermeasures.
    pub fn decrypt(
        &mut self,
        da: &[u8; 6],
        sa: &[u8; 6],
        packet: &TkipPacket,
    ) -> Result<Vec<u8>, TkipError> {
        if self.countermeasures_active {
            return Err(TkipError::CountermeasuresActive);
        }
        if packet.ciphertext.len() < 12 {
            return Err(TkipError::TooShort);
        }
        let tsc = Tsc(packet.tsc);
        if let Some(floor) = self.replay_floor {
            if tsc <= floor {
                return Err(TkipError::Replay);
            }
        }
        let key = per_packet_key(&self.tk, &self.ta, tsc);
        let mut buf = packet.ciphertext.clone();
        let mut rc4 = Rc4::new(&key);
        rc4.apply(&mut buf);
        let (rest, icv_bytes) = buf.split_at(buf.len() - 4);
        let sent_icv = u32::from_le_bytes(icv_bytes.try_into().expect("4 bytes"));
        if crc32(rest) != sent_icv {
            // Noise: not a MIC event, just drop.
            return Err(TkipError::BadIcv);
        }
        let (payload, mic_bytes) = rest.split_at(rest.len() - 8);
        if self.mic(da, sa, payload)[..] != mic_bytes[..] {
            // §5.2's "message integrity checks (to determine if an
            // attacker had captured or altered packets)".
            self.mic_failures += 1;
            if self.mic_failures >= 2 {
                self.countermeasures_active = true;
            }
            return Err(TkipError::MicFailure);
        }
        self.replay_floor = Some(tsc);
        Ok(payload.to_vec())
    }

    /// Rekeys after countermeasures (new TK/MIC keys from a fresh
    /// handshake), clearing all state.
    pub fn rekey(&mut self, tk: [u8; 16], mic_key: [u8; 8]) {
        *self = TkipSession::new(tk, mic_key, self.ta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DA: [u8; 6] = [2, 0, 0, 0, 0, 9];
    const SA: [u8; 6] = [2, 0, 0, 0, 0, 1];
    const TA: [u8; 6] = SA;

    fn pair() -> (TkipSession, TkipSession) {
        let tk = *b"temporal-key-16b";
        let mic = *b"michael8";
        (TkipSession::new(tk, mic, TA), TkipSession::new(tk, mic, TA))
    }

    #[test]
    fn roundtrip() {
        let (mut tx, mut rx) = pair();
        let pkt = tx.encrypt(&DA, &SA, b"hello wpa").unwrap();
        assert_eq!(rx.decrypt(&DA, &SA, &pkt).unwrap(), b"hello wpa");
    }

    #[test]
    fn per_packet_keys_differ() {
        // The core §5.2 claim: no two packets share an RC4 keystream.
        let (mut tx, _) = pair();
        let a = tx.encrypt(&DA, &SA, b"same plaintext body").unwrap();
        let b = tx.encrypt(&DA, &SA, b"same plaintext body").unwrap();
        assert_ne!(a.ciphertext, b.ciphertext);
        assert_ne!(a.tsc, b.tsc);
        // Unlike WEP with a repeated IV, xor of ciphertexts is NOT the
        // xor of plaintexts (which is zero here).
        let equal = a
            .ciphertext
            .iter()
            .zip(&b.ciphertext)
            .filter(|(x, y)| x == y)
            .count();
        assert!(equal < a.ciphertext.len() / 2);
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = pair();
        let p1 = tx.encrypt(&DA, &SA, b"one").unwrap();
        let p2 = tx.encrypt(&DA, &SA, b"two").unwrap();
        assert!(rx.decrypt(&DA, &SA, &p1).is_ok());
        assert!(rx.decrypt(&DA, &SA, &p2).is_ok());
        // Replaying either is refused.
        assert_eq!(rx.decrypt(&DA, &SA, &p1), Err(TkipError::Replay));
        assert_eq!(rx.decrypt(&DA, &SA, &p2), Err(TkipError::Replay));
    }

    #[test]
    fn out_of_order_equal_tsc_rejected() {
        let (mut tx, mut rx) = pair();
        let p1 = tx.encrypt(&DA, &SA, b"one").unwrap();
        let same = p1.clone();
        assert!(rx.decrypt(&DA, &SA, &p1).is_ok());
        assert_eq!(rx.decrypt(&DA, &SA, &same), Err(TkipError::Replay));
    }

    #[test]
    fn forged_payload_trips_mic_then_countermeasures() {
        let (mut tx, mut rx) = pair();
        // An attacker who somehow fixes the ICV still fails Michael.
        // Construct two tampered packets with valid ICVs by flipping
        // payload bits and compensating the (linear) ICV.
        for round in 0..2 {
            let pkt = tx.encrypt(&DA, &SA, b"legitimate traffic").unwrap();
            let mut c = pkt.ciphertext.clone();
            // Flip a payload bit.
            c[0] ^= 0x01;
            // Compensate the encrypted CRC (linearity in the clear maps
            // through the stream cipher).
            let delta = wn_crypto::crc32::bit_flip_delta(&[0x01], c.len() - 4 - 1);
            let n = c.len();
            for (i, db) in delta.to_le_bytes().iter().enumerate() {
                c[n - 4 + i] ^= db;
            }
            let forged = TkipPacket {
                tsc: pkt.tsc,
                ciphertext: c,
            };
            let err = rx.decrypt(&DA, &SA, &forged).unwrap_err();
            assert_eq!(err, TkipError::MicFailure, "round {round}");
        }
        assert!(
            rx.countermeasures_active,
            "two MIC failures in the window trip countermeasures"
        );
        // All traffic now refused until rekey.
        let pkt = tx.encrypt(&DA, &SA, b"more").unwrap();
        assert_eq!(
            rx.decrypt(&DA, &SA, &pkt),
            Err(TkipError::CountermeasuresActive)
        );
        // Rekey restores service.
        let tk2 = *b"fresh-temporal-k";
        let mic2 = *b"newmich8";
        rx.rekey(tk2, mic2);
        let mut tx2 = TkipSession::new(tk2, mic2, TA);
        let p = tx2.encrypt(&DA, &SA, b"after rekey").unwrap();
        assert_eq!(rx.decrypt(&DA, &SA, &p).unwrap(), b"after rekey");
    }

    #[test]
    fn noise_corruption_is_icv_not_mic() {
        let (mut tx, mut rx) = pair();
        let mut pkt = tx.encrypt(&DA, &SA, b"payload").unwrap();
        pkt.ciphertext[2] ^= 0xFF; // Without CRC compensation.
        assert_eq!(rx.decrypt(&DA, &SA, &pkt), Err(TkipError::BadIcv));
        assert!(
            !rx.countermeasures_active,
            "noise must not trip countermeasures"
        );
    }

    #[test]
    fn address_spoofing_detected() {
        // Michael covers DA ‖ SA: redirecting a frame breaks the MIC.
        let (mut tx, mut rx) = pair();
        let pkt = tx.encrypt(&DA, &SA, b"to the gateway").unwrap();
        let evil_da: [u8; 6] = [2, 0, 0, 0, 0, 66];
        assert_eq!(rx.decrypt(&evil_da, &SA, &pkt), Err(TkipError::MicFailure));
    }
}
