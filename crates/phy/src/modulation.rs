//! Modulation schemes, the Fig. 1.13 PHY generations, and their rate
//! ladders.
//!
//! §4.3 of the source text lists, for every 802.11 generation, the top
//! bit rate "in ideal conditions" and the ladder of "slower speeds ...
//! in less than ideal conditions". This module makes that executable: a
//! [`PhyStandard`] carries its [`RateStep`] ladder with per-step minimum
//! SNR, and [`Modulation`] supplies textbook BER curves so frame error
//! probability falls out of the link budget.

use crate::bands::Band;
use crate::units::{DataRate, Db};

/// Abramowitz & Stegun 7.1.26 approximation of erf (|ε| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The Gaussian tail function Q(x) = P(N(0,1) > x).
pub fn q_function(x: f64) -> f64 {
    0.5 * (1.0 - erf(x / std::f64::consts::SQRT_2))
}

/// Physical modulation families used across the text's technologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary PSK (also stands in for DBPSK at our fidelity).
    Bpsk,
    /// Quaternary PSK / DQPSK / OQPSK (ZigBee).
    Qpsk,
    /// 16-QAM.
    Qam16,
    /// 64-QAM.
    Qam64,
    /// 256-QAM (802.11ac).
    Qam256,
    /// Complementary code keying (802.11b 5.5/11 Mbps).
    Cck,
    /// 2-level GFSK (Bluetooth, 802.11 FHSS).
    Gfsk,
    /// Pulse-position modulation (UWB, IrDA).
    Ppm,
}

impl Modulation {
    /// Bit error rate at the given *linear* SNR (Eb/N0-style textbook
    /// approximations — adequate for relative comparisons).
    pub fn ber(self, snr_linear: f64) -> f64 {
        if snr_linear <= 0.0 {
            return 0.5;
        }
        let ber = match self {
            Modulation::Bpsk => q_function((2.0 * snr_linear).sqrt()),
            Modulation::Qpsk => q_function(snr_linear.sqrt()),
            Modulation::Qam16 => Self::qam_ber(16.0, snr_linear),
            Modulation::Qam64 => Self::qam_ber(64.0, snr_linear),
            Modulation::Qam256 => Self::qam_ber(256.0, snr_linear),
            // CCK behaves roughly like QPSK with ~3 dB processing gain.
            Modulation::Cck => q_function((2.0 * snr_linear).sqrt() * 0.9),
            // Non-coherent binary FSK.
            Modulation::Gfsk => 0.5 * (-snr_linear / 2.0).exp(),
            // Binary PPM ≈ non-coherent orthogonal signalling.
            Modulation::Ppm => 0.5 * (-snr_linear / 2.0).exp(),
        };
        ber.clamp(0.0, 0.5)
    }

    fn qam_ber(m: f64, snr: f64) -> f64 {
        let k = m.log2();
        (4.0 / k) * (1.0 - 1.0 / m.sqrt()) * q_function((3.0 * k * snr / (m - 1.0)).sqrt())
    }

    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Bpsk | Modulation::Gfsk | Modulation::Ppm => 1,
            Modulation::Qpsk => 2,
            Modulation::Cck => 8,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
        }
    }
}

/// Frame error probability for `bits` payload bits at a given BER,
/// assuming independent bit errors.
pub fn frame_error_rate(ber: f64, bits: u64) -> f64 {
    if ber <= 0.0 {
        return 0.0;
    }
    1.0 - (1.0 - ber).powi(bits.min(i32::MAX as u64) as i32)
}

/// One rung of a PHY rate ladder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateStep {
    /// The nominal data rate.
    pub rate: DataRate,
    /// Modulation used at this rate.
    pub modulation: Modulation,
    /// Minimum SNR (dB) at which the receiver can use this rate.
    pub min_snr_db: f64,
}

/// Reference frame length for the calibrated PER model, bits (1500 B).
const PER_REF_BITS: f64 = 12_000.0;

impl RateStep {
    /// Calibrated frame-success probability at a given SINR.
    ///
    /// The raw [`Modulation::ber`] curves describe ideal coherent
    /// receivers; real rungs carry coding and implementation losses
    /// already folded into `min_snr_db` (chosen so a 1500-byte frame
    /// succeeds ≳90% right at threshold). This model is anchored to the
    /// threshold: success follows a logistic in the SNR *margin*,
    /// adjusted for frame length, so the ladder, the receiver's rate
    /// choice and the error process stay mutually consistent:
    ///
    /// - margin +3 dB → ≳99% success,
    /// - margin 0 dB → ~90%,
    /// - margin −3 dB → ~2% (the rate is not usable).
    pub fn success_prob(self, sinr_db: f64, bits: u64) -> f64 {
        let margin = sinr_db - self.min_snr_db;
        // Logistic anchored 1 dB below threshold with a 2.2/dB slope.
        let p_ref = 1.0 / (1.0 + (-2.2 * (margin + 1.0)).exp());
        // Independent-error length scaling relative to 1500 B.
        p_ref.powf((bits.max(1) as f64 / PER_REF_BITS).max(0.05))
    }

    /// Calibrated frame-error probability (complement of
    /// [`RateStep::success_prob`]).
    pub fn frame_error_prob(self, sinr_db: f64, bits: u64) -> f64 {
        1.0 - self.success_prob(sinr_db, bits)
    }
}

/// The transmission schemes of §4.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransmissionScheme {
    /// Frequency-hopping spread spectrum (original 802.11).
    Fhss,
    /// Direct-sequence spread spectrum (802.11b).
    Dsss,
    /// Orthogonal frequency-division multiplexing (a/g/n/ac).
    Ofdm,
}

/// MAC-relevant timing constants, which depend on the PHY generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MacTiming {
    /// Slot time, µs.
    pub slot_us: f64,
    /// Short interframe space, µs.
    pub sifs_us: f64,
    /// Minimum contention window (slots − 1, i.e. CW ranges 0..=cw_min).
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// PLCP preamble + header duration, µs, paid by every frame.
    pub preamble_us: f64,
}

impl MacTiming {
    /// DIFS = SIFS + 2 × slot.
    pub fn difs_us(&self) -> f64 {
        self.sifs_us + 2.0 * self.slot_us
    }

    /// EIFS used after an errored frame: SIFS + DIFS + ACK-at-base-rate.
    pub fn eifs_us(&self, ack_at_base_us: f64) -> f64 {
        self.sifs_us + self.difs_us() + ack_at_base_us
    }
}

/// The IEEE 802.11 PHY generations of Fig. 1.13.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhyStandard {
    /// Original 1997 802.11: FHSS, 2.4 GHz, 1–2 Mbps.
    Dot11,
    /// 802.11b: DSSS, 2.4 GHz, up to 11 Mbps.
    Dot11b,
    /// 802.11a: OFDM, 5 GHz, up to 54 Mbps.
    Dot11a,
    /// 802.11g: OFDM, 2.4 GHz, up to 54 Mbps, b-compatible.
    Dot11g,
    /// 802.11n: MIMO OFDM, 2.4/5 GHz, up to 600 Mbps, 250 m.
    Dot11n,
    /// 802.11ac: MU-MIMO OFDM, 5 GHz, up to 1.3 Gbps.
    Dot11ac,
}

impl PhyStandard {
    /// All generations in chronological order.
    pub const ALL: [PhyStandard; 6] = [
        PhyStandard::Dot11,
        PhyStandard::Dot11b,
        PhyStandard::Dot11a,
        PhyStandard::Dot11g,
        PhyStandard::Dot11n,
        PhyStandard::Dot11ac,
    ];

    /// Human-readable name as used in the text.
    pub fn name(self) -> &'static str {
        match self {
            PhyStandard::Dot11 => "802.11",
            PhyStandard::Dot11b => "802.11b",
            PhyStandard::Dot11a => "802.11a",
            PhyStandard::Dot11g => "802.11g",
            PhyStandard::Dot11n => "802.11n",
            PhyStandard::Dot11ac => "802.11ac",
        }
    }

    /// Operating band (for dual-band n we model the 2.4 GHz variant by
    /// default; pass-through users can pick [`Band::Unii5GHz`]).
    pub fn band(self) -> Band {
        match self {
            PhyStandard::Dot11 | PhyStandard::Dot11b | PhyStandard::Dot11g => Band::Ism2_4GHz,
            PhyStandard::Dot11a | PhyStandard::Dot11ac => Band::Unii5GHz,
            PhyStandard::Dot11n => Band::Ism2_4GHz,
        }
    }

    /// Transmission scheme per §4.3.
    pub fn scheme(self) -> TransmissionScheme {
        match self {
            PhyStandard::Dot11 => TransmissionScheme::Fhss,
            PhyStandard::Dot11b => TransmissionScheme::Dsss,
            _ => TransmissionScheme::Ofdm,
        }
    }

    /// Channel bandwidth in MHz used by our model of this generation.
    pub fn bandwidth_mhz(self) -> f64 {
        match self {
            PhyStandard::Dot11 => 1.0,
            PhyStandard::Dot11b | PhyStandard::Dot11a | PhyStandard::Dot11g => 20.0,
            PhyStandard::Dot11n => 40.0,
            PhyStandard::Dot11ac => 80.0,
        }
    }

    /// Number of spatial streams our model assigns (MIMO, §4.3's
    /// "multiple wireless signals and antennas").
    pub fn spatial_streams(self) -> u32 {
        match self {
            PhyStandard::Dot11n => 4,
            PhyStandard::Dot11ac => 3,
            _ => 1,
        }
    }

    /// The nominal range from the closing comparison table, metres.
    pub fn nominal_range_m(self) -> f64 {
        match self {
            PhyStandard::Dot11n | PhyStandard::Dot11ac => 250.0,
            _ => 100.0,
        }
    }

    /// The rate ladder: every rate the text lists for this generation,
    /// slowest first, with the minimum SNR to sustain it.
    pub fn rate_ladder(self) -> Vec<RateStep> {
        use Modulation::*;
        let step = |mbps: f64, m: Modulation, snr: f64| RateStep {
            rate: DataRate::from_mbps(mbps),
            modulation: m,
            min_snr_db: snr,
        };
        match self {
            // "a lower bit rate speed of 1 Mbps" / 2 Mbps FHSS.
            PhyStandard::Dot11 => vec![step(1.0, Gfsk, 4.0), step(2.0, Gfsk, 7.0)],
            // "the slower speeds of 5.5 Mbps, 2 Mbps, and 1 Mbps".
            PhyStandard::Dot11b => vec![
                step(1.0, Bpsk, 2.0),
                step(2.0, Qpsk, 5.0),
                step(5.5, Cck, 8.0),
                step(11.0, Cck, 11.0),
            ],
            // "48, 36, 24, 18, 12, and 6 Mbps" + 9 from the OFDM set.
            PhyStandard::Dot11a | PhyStandard::Dot11g => vec![
                step(6.0, Bpsk, 5.0),
                step(9.0, Bpsk, 6.0),
                step(12.0, Qpsk, 8.0),
                step(18.0, Qpsk, 11.0),
                step(24.0, Qam16, 14.0),
                step(36.0, Qam16, 18.0),
                step(48.0, Qam64, 23.0),
                step(54.0, Qam64, 25.0),
            ],
            // 4 streams × 40 MHz, MCS 0–7 per stream: 600 Mbps peak.
            PhyStandard::Dot11n => vec![
                step(60.0, Bpsk, 5.0),
                step(120.0, Qpsk, 8.0),
                step(180.0, Qpsk, 11.0),
                step(240.0, Qam16, 14.0),
                step(360.0, Qam16, 18.0),
                step(480.0, Qam64, 24.0),
                step(540.0, Qam64, 28.0),
                step(600.0, Qam64, 31.0),
            ],
            // 3 streams × 80 MHz with 256-QAM: 1.3 Gbps peak.
            PhyStandard::Dot11ac => vec![
                step(117.0, Bpsk, 5.0),
                step(234.0, Qpsk, 8.0),
                step(351.0, Qpsk, 11.0),
                step(468.0, Qam16, 14.0),
                step(702.0, Qam16, 18.0),
                step(936.0, Qam64, 24.0),
                step(1170.0, Qam256, 31.0),
                step(1300.0, Qam256, 34.0),
            ],
        }
    }

    /// The fastest rate usable at `snr`, if any.
    pub fn best_rate_for_snr(self, snr: Db) -> Option<RateStep> {
        self.rate_ladder()
            .into_iter()
            .rev()
            .find(|s| snr.value() >= s.min_snr_db)
    }

    /// The base (most robust) rate — used for control frames and beacons.
    pub fn base_rate(self) -> RateStep {
        self.rate_ladder()[0]
    }

    /// Peak rate "under ideal conditions" (§4.3).
    pub fn max_rate(self) -> DataRate {
        self.rate_ladder().last().expect("ladder non-empty").rate
    }

    /// MAC timing constants for this generation.
    pub fn mac_timing(self) -> MacTiming {
        match self {
            PhyStandard::Dot11 => MacTiming {
                slot_us: 50.0,
                sifs_us: 28.0,
                cw_min: 15,
                cw_max: 1023,
                preamble_us: 128.0,
            },
            PhyStandard::Dot11b => MacTiming {
                slot_us: 20.0,
                sifs_us: 10.0,
                cw_min: 31,
                cw_max: 1023,
                preamble_us: 192.0,
            },
            PhyStandard::Dot11a => MacTiming {
                slot_us: 9.0,
                sifs_us: 16.0,
                cw_min: 15,
                cw_max: 1023,
                preamble_us: 20.0,
            },
            PhyStandard::Dot11g => MacTiming {
                slot_us: 9.0,
                sifs_us: 10.0,
                cw_min: 15,
                cw_max: 1023,
                preamble_us: 20.0,
            },
            PhyStandard::Dot11n => MacTiming {
                slot_us: 9.0,
                sifs_us: 10.0,
                cw_min: 15,
                cw_max: 1023,
                preamble_us: 36.0,
            },
            PhyStandard::Dot11ac => MacTiming {
                slot_us: 9.0,
                sifs_us: 16.0,
                cw_min: 15,
                cw_max: 1023,
                preamble_us: 40.0,
            },
        }
    }

    /// §4.3: "802.11g is also backward compatible with 802.11b".
    pub fn interoperates_with(self, other: PhyStandard) -> bool {
        use PhyStandard::*;
        if self == other {
            return true;
        }
        matches!(
            (self, other),
            (Dot11b, Dot11g)
                | (Dot11g, Dot11b)
                | (Dot11n, Dot11g)
                | (Dot11g, Dot11n)
                | (Dot11n, Dot11b)
                | (Dot11b, Dot11n)
                | (Dot11ac, Dot11a)
                | (Dot11a, Dot11ac)
                | (Dot11n, Dot11a)
                | (Dot11a, Dot11n)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_reference_points() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-4);
        assert!((q_function(3.0) - 0.001_349_9).abs() < 1e-5);
        assert!(q_function(10.0) < 1e-20);
        assert!((q_function(-1.0) - 0.841_345).abs() < 1e-4);
    }

    #[test]
    fn ber_decreases_with_snr() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
            Modulation::Qam256,
            Modulation::Cck,
            Modulation::Gfsk,
            Modulation::Ppm,
        ] {
            let mut prev = 0.5;
            for snr_db in [-10.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
                let b = m.ber(Db(snr_db).to_linear());
                assert!(b <= prev + 1e-12, "{m:?} BER rose at {snr_db} dB");
                assert!((0.0..=0.5).contains(&b));
                prev = b;
            }
        }
    }

    #[test]
    fn denser_constellations_need_more_snr() {
        let snr = Db(12.0).to_linear();
        assert!(Modulation::Bpsk.ber(snr) < Modulation::Qam16.ber(snr));
        assert!(Modulation::Qam16.ber(snr) < Modulation::Qam64.ber(snr));
        assert!(Modulation::Qam64.ber(snr) < Modulation::Qam256.ber(snr));
    }

    #[test]
    fn bpsk_ber_reference_value() {
        // BPSK at Eb/N0 = 9.6 dB → BER ≈ 1e-5 (textbook landmark).
        let ber = Modulation::Bpsk.ber(Db(9.6).to_linear());
        assert!((5e-6..3e-5).contains(&ber), "ber = {ber}");
    }

    #[test]
    fn frame_error_rate_props() {
        assert_eq!(frame_error_rate(0.0, 12_000), 0.0);
        let fer = frame_error_rate(1e-5, 12_000);
        assert!((fer - 0.113).abs() < 0.01, "fer = {fer}");
        assert!(frame_error_rate(0.5, 10_000) > 0.999_999);
        // Longer frames fail more often.
        assert!(frame_error_rate(1e-5, 12_000) > frame_error_rate(1e-5, 800));
    }

    #[test]
    fn ladders_match_the_text() {
        assert_eq!(PhyStandard::Dot11.max_rate().mbps(), 2.0);
        assert_eq!(PhyStandard::Dot11b.max_rate().mbps(), 11.0);
        assert_eq!(PhyStandard::Dot11a.max_rate().mbps(), 54.0);
        assert_eq!(PhyStandard::Dot11g.max_rate().mbps(), 54.0);
        assert_eq!(PhyStandard::Dot11n.max_rate().mbps(), 600.0);
        assert!((PhyStandard::Dot11ac.max_rate().bps() - 1.3e9).abs() < 1e6);
    }

    #[test]
    fn ladder_monotone_in_rate_and_snr() {
        for std in PhyStandard::ALL {
            let ladder = std.rate_ladder();
            for pair in ladder.windows(2) {
                assert!(
                    pair[1].rate.bps() > pair[0].rate.bps(),
                    "{std:?} rate order"
                );
                assert!(pair[1].min_snr_db > pair[0].min_snr_db, "{std:?} snr order");
            }
        }
    }

    #[test]
    fn g_fallback_ladder_is_the_texts() {
        // "the slower speeds of 48, 36, 24, 18, 12, and 6 Mbps".
        let rates: Vec<f64> = PhyStandard::Dot11g
            .rate_ladder()
            .iter()
            .map(|s| s.rate.mbps())
            .collect();
        for expected in [6.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0] {
            assert!(rates.contains(&expected), "missing {expected} Mbps");
        }
    }

    #[test]
    fn best_rate_for_snr_walks_the_ladder() {
        let g = PhyStandard::Dot11g;
        assert_eq!(g.best_rate_for_snr(Db(30.0)).unwrap().rate.mbps(), 54.0);
        assert_eq!(g.best_rate_for_snr(Db(24.0)).unwrap().rate.mbps(), 48.0);
        assert_eq!(g.best_rate_for_snr(Db(9.0)).unwrap().rate.mbps(), 12.0);
        assert_eq!(g.best_rate_for_snr(Db(5.5)).unwrap().rate.mbps(), 6.0);
        assert!(g.best_rate_for_snr(Db(1.0)).is_none());
    }

    #[test]
    fn timing_difs_values() {
        // Classic values: b → 50 µs DIFS, a → 34 µs DIFS.
        assert_eq!(PhyStandard::Dot11b.mac_timing().difs_us(), 50.0);
        assert_eq!(PhyStandard::Dot11a.mac_timing().difs_us(), 34.0);
        assert_eq!(PhyStandard::Dot11g.mac_timing().difs_us(), 28.0);
    }

    #[test]
    fn interop_matches_text() {
        use PhyStandard::*;
        // "802.11g wireless network adapters can connect to an 802.11b
        // wireless AP, and 802.11b ... to an 802.11g wireless AP".
        assert!(Dot11g.interoperates_with(Dot11b));
        assert!(Dot11b.interoperates_with(Dot11g));
        // "migrating from 802.11b to 802.11a (... all the network
        // adapters ... must be replaced)" — no interop.
        assert!(!Dot11b.interoperates_with(Dot11a));
        assert!(!Dot11a.interoperates_with(Dot11g));
        assert!(Dot11.interoperates_with(Dot11));
    }

    #[test]
    fn bands_match_text() {
        assert_eq!(PhyStandard::Dot11b.band(), Band::Ism2_4GHz);
        assert_eq!(PhyStandard::Dot11g.band(), Band::Ism2_4GHz);
        assert_eq!(PhyStandard::Dot11a.band(), Band::Unii5GHz);
        assert_eq!(PhyStandard::Dot11ac.band(), Band::Unii5GHz);
    }

    #[test]
    fn nominal_ranges_match_table() {
        assert_eq!(PhyStandard::Dot11b.nominal_range_m(), 100.0);
        assert_eq!(PhyStandard::Dot11n.nominal_range_m(), 250.0);
        assert_eq!(PhyStandard::Dot11ac.nominal_range_m(), 250.0);
    }
}
