//! The access point — "a bridge between the wireless STAs and the
//! existing network backbone" (§3.1).
//!
//! The AP [`UpperLayer`] implements:
//!
//! - periodic beacons carrying the SSID, channel and TIM;
//! - Open System and Shared Key authentication (§5.1);
//! - association/reassociation with AID assignment;
//! - bridging: ToDS frames are relayed to local STAs, across the
//!   distribution system to other APs, or out of the portal;
//! - power-save buffering (§4.2): frames for dozing STAs are held,
//!   advertised in the TIM, and released one per PS-Poll with the
//!   More Data bit set while more remain.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::sync::Mutex;

use crate::ds::{DsFrame, DsHandle};
use crate::ie::{AssocReqBody, AssocRespBody, AuthAlgorithm, AuthBody, BeaconBody};
use crate::ssid::Ssid;
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl, Subtype};
use wn_mac80211::sim::{Command, UpperCtx, UpperLayer};
use wn_phy::units::Dbm;
use wn_sim::trace::{Level, TraceEvent};
use wn_sim::{SimDuration, SimTime};

/// Timer tag: emit the next beacon.
pub const TAG_BEACON: u64 = 1;
/// Timer tag: the distribution system has frames for this AP.
pub const TAG_DS: u64 = 2;

/// Highest association ID the standard allows (the TIM partial
/// virtual bitmap addresses 2008 stations, AIDs 1–2007). APs assign
/// AIDs from 1 upward; invariant oracles check every observed
/// [`TraceEvent::Assoc`] falls in `1..=MAX_AID`.
pub const MAX_AID: u16 = 2007;

/// AP configuration.
#[derive(Clone, Debug)]
pub struct ApConfig {
    /// The network name advertised in beacons.
    pub ssid: Ssid,
    /// Operating channel.
    pub channel: u8,
    /// Beacon interval (classically ~100 ms).
    pub beacon_interval: SimDuration,
    /// Per-STA power-save buffer depth.
    pub ps_buffer_limit: usize,
    /// Authentication algorithm required.
    pub auth: AuthAlgorithm,
    /// Shared-key challenge secret (Shared Key auth only).
    pub shared_key: Vec<u8>,
}

impl ApConfig {
    /// A default open-authentication AP on the given channel.
    pub fn open(ssid: Ssid, channel: u8) -> Self {
        ApConfig {
            ssid,
            channel,
            beacon_interval: SimDuration::from_millis(100),
            ps_buffer_limit: 16,
            auth: AuthAlgorithm::OpenSystem,
            shared_key: Vec::new(),
        }
    }
}

/// Observable AP-side state for scenarios and assertions.
#[derive(Debug, Default)]
pub struct ApShared {
    /// (time, STA) association log.
    pub associations: Vec<(SimTime, MacAddr)>,
    /// (time, STA) disassociation log.
    pub disassociations: Vec<(SimTime, MacAddr)>,
    /// Frames bridged STA→STA locally.
    pub bridged_local: u64,
    /// Frames sent into the distribution system.
    pub to_ds: u64,
    /// Frames delivered out of the DS to local STAs.
    pub from_ds: u64,
    /// Frames that left via the portal because no wireless STA matched.
    pub to_portal: u64,
    /// Frames buffered for power-saving STAs.
    pub ps_buffered: u64,
    /// Beacons transmitted.
    pub beacons: u64,
}

/// A cloneable handle to [`ApShared`].
pub type ApSharedHandle = Arc<Mutex<ApShared>>;

struct StaEntry {
    aid: u16,
    power_save: bool,
    buffered: VecDeque<(MacAddr, Vec<u8>)>,
}

/// The AP upper-layer logic.
pub struct ApLogic {
    cfg: ApConfig,
    ds: Option<DsHandle>,
    stas: HashMap<MacAddr, StaEntry>,
    pending_challenges: HashMap<MacAddr, Vec<u8>>,
    next_aid: u16,
    shared: ApSharedHandle,
}

impl ApLogic {
    /// Creates an AP; `ds` is `None` for a standalone BSS.
    pub fn new(cfg: ApConfig, ds: Option<DsHandle>) -> (Self, ApSharedHandle) {
        let shared: ApSharedHandle = Arc::new(Mutex::new(ApShared::default()));
        (
            ApLogic {
                cfg,
                ds,
                stas: HashMap::new(),
                pending_challenges: HashMap::new(),
                next_aid: 1,
                shared: shared.clone(),
            },
            shared,
        )
    }

    fn beacon_body(&self) -> BeaconBody {
        let tim: Vec<u16> = self
            .stas
            .values()
            .filter(|e| e.power_save && !e.buffered.is_empty())
            .map(|e| e.aid)
            .collect();
        BeaconBody {
            ssid: self.cfg.ssid.clone(),
            interval_ms: self.cfg.beacon_interval.as_millis_f64() as u16,
            channel: self.cfg.channel,
            tim,
        }
    }

    fn send_downlink(&mut self, ctx: &mut UpperCtx, da: MacAddr, sa: MacAddr, payload: Vec<u8>) {
        // Power-save buffering: hold frames for dozing STAs.
        if let Some(entry) = self.stas.get_mut(&da) {
            if entry.power_save {
                if entry.buffered.len() < self.cfg.ps_buffer_limit {
                    entry.buffered.push_back((sa, payload));
                    self.shared.lock().expect("shared state lock").ps_buffered += 1;
                }
                return;
            }
        }
        let f = Frame::data(
            DsBits::FromAp,
            da,
            sa,
            ctx.addr,
            SequenceControl::default(),
            payload,
        );
        ctx.send(f);
    }

    fn handle_to_ds_data(&mut self, ctx: &mut UpperCtx, frame: &Frame) {
        let da = frame.destination();
        let sa = frame.source().unwrap_or(MacAddr::ZERO);
        let payload = frame.body.clone();
        if da.is_group() {
            // Rebroadcast locally and flood the backbone.
            let f = Frame::data(
                DsBits::FromAp,
                da,
                sa,
                ctx.addr,
                SequenceControl::default(),
                payload.clone(),
            );
            ctx.send(f);
            if let Some(ds) = &self.ds {
                let latency = ds.lock().expect("shared state lock").wire_latency;
                let targets = ds.lock().expect("shared state lock").route_broadcast(
                    ctx.now,
                    ctx.id,
                    DsFrame { da, sa, payload },
                );
                self.shared.lock().expect("shared state lock").to_ds += 1;
                for ap in targets {
                    ctx.command(Command::SignalStation {
                        station: ap,
                        tag: TAG_DS,
                        delay: latency,
                    });
                }
            }
            return;
        }
        if self.stas.contains_key(&da) {
            self.shared.lock().expect("shared state lock").bridged_local += 1;
            self.send_downlink(ctx, da, sa, payload);
            return;
        }
        match &self.ds {
            Some(ds) => {
                let latency = ds.lock().expect("shared state lock").wire_latency;
                let target = ds.lock().expect("shared state lock").route(
                    ctx.now,
                    ctx.id,
                    DsFrame { da, sa, payload },
                );
                match target {
                    Some(ap) => {
                        self.shared.lock().expect("shared state lock").to_ds += 1;
                        ctx.command(Command::SignalStation {
                            station: ap,
                            tag: TAG_DS,
                            delay: latency,
                        });
                    }
                    None => {
                        self.shared.lock().expect("shared state lock").to_portal += 1;
                    }
                }
            }
            None => {
                // No backbone: unknown destinations "leave" via the
                // AP's own uplink.
                self.shared.lock().expect("shared state lock").to_portal += 1;
            }
        }
    }

    fn update_ps(&mut self, sta: MacAddr, ps: bool) {
        if let Some(e) = self.stas.get_mut(&sta) {
            e.power_save = ps;
        }
    }
}

impl UpperLayer for ApLogic {
    fn on_start(&mut self, ctx: &mut UpperCtx) {
        ctx.command(Command::SetChannel(self.cfg.channel));
        ctx.set_timer(self.cfg.beacon_interval, TAG_BEACON);
    }

    fn on_timer(&mut self, ctx: &mut UpperCtx, tag: u64) {
        match tag {
            TAG_BEACON => {
                let body = self.beacon_body().encode();
                let f = Frame::management(
                    Subtype::Beacon,
                    MacAddr::BROADCAST,
                    ctx.addr,
                    ctx.addr,
                    SequenceControl::default(),
                    body,
                );
                ctx.send(f);
                self.shared.lock().expect("shared state lock").beacons += 1;
                ctx.set_timer(self.cfg.beacon_interval, TAG_BEACON);
            }
            TAG_DS => {
                let frames = match &self.ds {
                    Some(ds) => ds.lock().expect("shared state lock").drain(ctx.id),
                    None => Vec::new(),
                };
                for df in frames {
                    self.shared.lock().expect("shared state lock").from_ds += 1;
                    if df.da.is_group() {
                        let f = Frame::data(
                            DsBits::FromAp,
                            df.da,
                            df.sa,
                            ctx.addr,
                            SequenceControl::default(),
                            df.payload,
                        );
                        ctx.send(f);
                    } else {
                        self.send_downlink(ctx, df.da, df.sa, df.payload);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut UpperCtx, frame: &Frame, _rssi: Dbm) {
        let from = frame.transmitter().unwrap_or(MacAddr::ZERO);
        // Track the §4.2 Power Management bit on every received frame.
        self.update_ps(from, frame.fc.power_management);

        match frame.fc.subtype {
            Subtype::Auth => {
                let Ok(req) = AuthBody::decode(&frame.body) else {
                    return;
                };
                let reply = |transaction: u16, status: u16, challenge: Vec<u8>| AuthBody {
                    algorithm: req.algorithm,
                    transaction,
                    status,
                    challenge,
                };
                let body = match (req.algorithm, req.transaction, &self.cfg.auth) {
                    (AuthAlgorithm::OpenSystem, 1, AuthAlgorithm::OpenSystem) => {
                        reply(2, 0, Vec::new())
                    }
                    (AuthAlgorithm::OpenSystem, 1, AuthAlgorithm::SharedKey) => {
                        // §5.1: authentication "based on demonstrating
                        // knowledge of a shared secret" — open auth is
                        // refused when a key is required.
                        reply(2, 13, Vec::new())
                    }
                    (AuthAlgorithm::SharedKey, 1, AuthAlgorithm::SharedKey) => {
                        // Issue a challenge derived from our key + STA.
                        let mut ch = self.cfg.shared_key.clone();
                        ch.extend_from_slice(&from.0);
                        self.pending_challenges.insert(from, ch.clone());
                        reply(2, 0, ch)
                    }
                    (AuthAlgorithm::SharedKey, 3, AuthAlgorithm::SharedKey) => {
                        let ok = self.pending_challenges.remove(&from).as_deref()
                            == Some(&req.challenge[..]);
                        reply(4, if ok { 0 } else { 15 }, Vec::new())
                    }
                    _ => reply(2, 13, Vec::new()),
                };
                let f = Frame::management(
                    Subtype::Auth,
                    from,
                    ctx.addr,
                    ctx.addr,
                    SequenceControl::default(),
                    body.encode(),
                );
                ctx.send(f);
            }
            Subtype::AssocReq | Subtype::ReassocReq => {
                let status_aid = match AssocReqBody::decode(&frame.body) {
                    Ok(req) if req.ssid == self.cfg.ssid => {
                        let aid = match self.stas.get(&from) {
                            Some(e) => e.aid,
                            None => {
                                let aid = self.next_aid;
                                self.next_aid += 1;
                                self.stas.insert(
                                    from,
                                    StaEntry {
                                        aid,
                                        power_save: false,
                                        buffered: VecDeque::new(),
                                    },
                                );
                                aid
                            }
                        };
                        if let Some(ds) = &self.ds {
                            ds.lock()
                                .expect("shared state lock")
                                .associate(from, ctx.id);
                        }
                        self.shared
                            .lock()
                            .expect("shared state lock")
                            .associations
                            .push((ctx.now, from));
                        ctx.emit(
                            Level::Info,
                            TraceEvent::Assoc {
                                station: ctx.id as u32,
                                aid,
                            },
                        );
                        (0u16, aid)
                    }
                    _ => (1u16, 0),
                };
                let resp = AssocRespBody {
                    status: status_aid.0,
                    aid: status_aid.1,
                };
                let sub = if frame.fc.subtype == Subtype::AssocReq {
                    Subtype::AssocResp
                } else {
                    Subtype::ReassocResp
                };
                let f = Frame::management(
                    sub,
                    from,
                    ctx.addr,
                    ctx.addr,
                    SequenceControl::default(),
                    resp.encode(),
                );
                ctx.send(f);
            }
            Subtype::Disassoc | Subtype::Deauth => {
                self.stas.remove(&from);
                if let Some(ds) = &self.ds {
                    ds.lock().expect("shared state lock").disassociate(from);
                }
                self.shared
                    .lock()
                    .expect("shared state lock")
                    .disassociations
                    .push((ctx.now, from));
            }
            Subtype::ProbeReq => {
                let f = Frame::management(
                    Subtype::ProbeResp,
                    from,
                    ctx.addr,
                    ctx.addr,
                    SequenceControl::default(),
                    self.beacon_body().encode(),
                );
                ctx.send(f);
            }
            Subtype::PsPoll => {
                // Release one buffered frame; More Data while more wait.
                let Some(entry) = self.stas.get_mut(&from) else {
                    return;
                };
                if let Some((sa, payload)) = entry.buffered.pop_front() {
                    let more = !entry.buffered.is_empty();
                    let mut f = Frame::data(
                        DsBits::FromAp,
                        from,
                        sa,
                        ctx.addr,
                        SequenceControl::default(),
                        payload,
                    );
                    f.fc.more_data = more;
                    ctx.send(f);
                }
            }
            Subtype::Data if frame.fc.to_ds && self.stas.contains_key(&from) => {
                self.handle_to_ds_data(ctx, frame);
            }
            Subtype::NullData => {
                // Pure power-management signalling; PS bit already noted.
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_body_contains_tim_only_for_buffered_ps_stas() {
        let (mut ap, _sh) = ApLogic::new(ApConfig::open(Ssid::new("N").unwrap(), 1), None);
        ap.stas.insert(
            MacAddr::station(1),
            StaEntry {
                aid: 1,
                power_save: true,
                buffered: VecDeque::new(),
            },
        );
        let mut buffered = VecDeque::new();
        buffered.push_back((MacAddr::station(9), vec![1]));
        ap.stas.insert(
            MacAddr::station(2),
            StaEntry {
                aid: 2,
                power_save: true,
                buffered,
            },
        );
        ap.stas.insert(
            MacAddr::station(3),
            StaEntry {
                aid: 3,
                power_save: false,
                buffered: VecDeque::from([(MacAddr::station(9), vec![2])]),
            },
        );
        let tim = ap.beacon_body().tim;
        assert_eq!(
            tim,
            vec![2],
            "only PS STAs with buffered frames appear in the TIM"
        );
    }
}
