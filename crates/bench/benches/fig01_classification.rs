//! FIG-1.1 — regenerates the wireless-network classification scatter
//! (range vs rate per technology) and times one registry measurement.

use criterion::{black_box, Criterion};
use wn_bench::{criterion_fast, print_figure};
use wn_core::registry::Technology;
use wn_core::scenarios::fig_1_1_classification;

fn bench(c: &mut Criterion) {
    let fig = fig_1_1_classification();
    print_figure(&fig);
    assert_eq!(fig.series.len(), 13, "all table rows present");

    c.bench_function("fig01/measure_wifi_g_row", |b| {
        b.iter(|| black_box(Technology::WiFi(wn_phy::modulation::PhyStandard::Dot11g).measure()))
    });
    c.bench_function("fig01/measure_irda_row", |b| {
        b.iter(|| black_box(Technology::Irda.measure()))
    });
}

fn main() {
    let mut c = criterion_fast();
    bench(&mut c);
    c.final_summary();
}
