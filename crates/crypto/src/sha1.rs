//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 appears in this workspace solely as the hash underlying
//! HMAC-SHA1 and PBKDF2, which WPA/WPA2 use to derive the pairwise
//! master key from a passphrase (§5.2's "WPA-PSK (Pre-Shared Key)").

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sha1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sha1")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            h: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        let mut input = data;
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().expect("sliced 64");
            self.process_block(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len * 8;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0x00]);
        }
        // Length is appended manually to avoid recursing through update's
        // length accounting.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex(&Sha1::digest(msg)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&msg)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha1::digest(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Messages of length 55/56/64 exercise all padding branches.
        for len in [55usize, 56, 57, 63, 64, 65] {
            let msg = vec![0x61u8; len];
            let d = Sha1::digest(&msg);
            // Compare against a second computation through streaming.
            let mut h = Sha1::new();
            h.update(&msg);
            assert_eq!(h.finalize(), d, "len {len}");
        }
    }
}
