//! FIG-1.2 — regenerates the Bluetooth piconet-sharing curves and the
//! scatternet comparison; times one second of slot-true piconet TDD.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_1_2_bluetooth;
use wn_phy::geom::Point;
use wn_sim::{SimTime, Simulation};
use wn_wpan::bluetooth::{boot, BtNetwork, DeviceClass};

fn main() {
    let (fig, report) = fig_1_2_bluetooth();
    print_figure(&fig);
    print_report(&report);

    bench("fig02/piconet_one_second", || {
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).expect("fresh master");
        let s = net.add_device(Point::new(2.0, 0.0), DeviceClass::Class2);
        net.join(p, s).expect("in range");
        net.send(m, s, 1_000_000);
        let mut sim = Simulation::new(net);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(1));
        black_box(sim.world().delivered_bytes(s))
    });
}
