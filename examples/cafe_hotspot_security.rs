//! Café hotspot security (§5): the same café Wi-Fi under each security
//! generation, attacked with the era's tooling — keystream reuse and
//! FMS key recovery against WEP, forgery countermeasures under
//! WPA/TKIP, an offline dictionary run against the WPA2 handshake, and
//! the WPS PIN hole.
//!
//! Run with: `cargo run --example cafe_hotspot_security`

use wireless_networks::security::attacks::bitflip::flip_payload;
use wireless_networks::security::attacks::dictionary;
use wireless_networks::security::attacks::fms::{directed_capture, recover_key};
use wireless_networks::security::attacks::keystream::KeystreamDictionary;
use wireless_networks::security::handshake::run_handshake;
use wireless_networks::security::ranking::breach_ranking;
use wireless_networks::security::wep::{decrypt as wep_decrypt, encrypt as wep_encrypt, WepKey};
use wireless_networks::security::wpa::TkipSession;
use wireless_networks::security::wpa2::CcmpSession;
use wireless_networks::security::wps::{brute_force, Registrar, WpsPin};

fn main() {
    println!("== café hotspot, attacked through the generations (§5) ==\n");

    // --- 1999: WEP. The café sets a 104-bit key.
    let wep_key = WepKey::new(b"CafeLatte123!").expect("13 bytes");
    println!("--- WEP era ({:?}) ---", wep_key);

    // Eavesdropper exploits an IV collision with known plaintext.
    let iv = [0x0C, 0x0A, 0x0F];
    let menu_request = b"GET /menu.html HTTP/1.0\r\n\r\n......";
    let mut dict = KeystreamDictionary::new();
    dict.learn_from_known_plaintext(&wep_encrypt(&wep_key, iv, menu_request), menu_request);
    let card = b"cardnumber=4111111111111111&cvv=0";
    assert_eq!(menu_request.len(), card.len());
    let sniffed = wep_encrypt(&wep_key, iv, card);
    let stolen = dict.decrypt(&sniffed).expect("same IV, same keystream");
    println!(
        "keystream reuse stole: {}",
        String::from_utf8_lossy(&stolen)
    );
    assert_eq!(stolen, card);

    // Bit-flip a payment frame without the key; the ICV still passes.
    let order = wep_encrypt(&wep_key, [9, 9, 9], b"tip=01 EUR");
    let forged = flip_payload(&order, 5, &[0x08]).expect("in range"); // '1'^0x08 = '9'.
    let accepted = wep_decrypt(&wep_key, &forged).expect("receiver accepts the forgery");
    println!(
        "bit-flip forged order: {}",
        String::from_utf8_lossy(&accepted)
    );
    assert_eq!(accepted, b"tip=09 EUR");

    // FMS: recover the full key from weak-IV traffic — "in minutes".
    let started = std::time::Instant::now();
    let (samples, reference) = directed_capture(&wep_key);
    let rec = recover_key(&samples, 13, &reference, 4, 200_000);
    println!(
        "FMS recovered the 104-bit key: {:?} ({} weak-IV samples, {} search nodes, {:.2} s wall)",
        rec.key
            .as_ref()
            .map(|k| String::from_utf8_lossy(k).into_owned()),
        rec.samples_used,
        rec.nodes_explored,
        started.elapsed().as_secs_f64()
    );
    assert_eq!(rec.key.as_deref(), Some(wep_key.secret()));

    // --- 2003: WPA/TKIP. Same forgery now trips Michael countermeasures.
    println!("\n--- WPA/TKIP era ---");
    let tk = *b"cafe-temporal-16";
    let mic = *b"michael8";
    let ta = [2, 0, 0, 0, 0, 1];
    let (da, sa) = ([2, 0, 0, 0, 0, 9], ta);
    let mut tx = TkipSession::new(tk, mic, ta);
    let mut rx = TkipSession::new(tk, mic, ta);
    for attempt in 1..=2 {
        let pkt = tx
            .encrypt(&da, &sa, b"tip=01 EUR")
            .expect("countermeasures off");
        let mut c = pkt.ciphertext.clone();
        c[0] ^= 0x08;
        let delta = wireless_networks::crypto::crc32::bit_flip_delta(&[0x08], c.len() - 5);
        let n = c.len();
        for (i, b) in delta.to_le_bytes().iter().enumerate() {
            c[n - 4 + i] ^= b;
        }
        let forged = wireless_networks::security::wpa::TkipPacket {
            tsc: pkt.tsc,
            ciphertext: c,
        };
        let err = rx.decrypt(&da, &sa, &forged).unwrap_err();
        println!("forgery attempt {attempt}: {err}");
    }
    println!("countermeasures active: {}", rx.countermeasures_active);
    assert!(rx.countermeasures_active);

    // --- 2006: WPA2/CCMP + PSK.
    println!("\n--- WPA2 era ---");
    let (ptk, hs) = run_handshake(
        "Espresso&Wifi2006",
        "CafeNet",
        [2, 0xAB, 0, 0, 0, 1],
        ta,
        [3; 32],
        [4; 32],
    );
    let mut ap = CcmpSession::new(ptk.tk, ta);
    let mut sta = CcmpSession::new(ptk.tk, ta);
    let pkt = ap.encrypt(b"hdr", b"tip=01 EUR");
    let mut forged = pkt.clone();
    forged.ciphertext[0] ^= 0x08;
    println!(
        "CCMP forgery: {:?}",
        sta.decrypt(b"hdr", &forged).unwrap_err()
    );
    assert!(sta.decrypt(b"hdr", &pkt).is_ok());

    // Offline dictionary against the captured handshake.
    let words = ["password", "cafe2006", "espresso", "qwerty123", "letmein!"];
    let r = dictionary::run(&hs, "CafeNet", &words);
    println!(
        "dictionary attack over {} words: {:?} (strong passphrase survives)",
        r.guesses, r.passphrase
    );
    assert!(r.passphrase.is_none());

    // But the café left WPS enabled…
    let pin = WpsPin::from_first7(8_675_309);
    let result = brute_force(&Registrar::new(pin));
    println!(
        "WPS PIN {} recovered in {} attempts (≤11 000 by design; hours, not centuries)",
        result.pin.0, result.attempts
    );
    assert_eq!(result.pin, pin);

    // --- The §5.2 ranking, derived from all of the above.
    println!("\n--- ranking (best to worst) ---");
    for (rank, method, t) in breach_ranking() {
        let human = if t == 0.0 {
            "instant".to_string()
        } else if t < 3600.0 {
            format!("{:.0} min", t / 60.0)
        } else if t < 86_400.0 * 30.0 {
            format!("{:.0} h", t / 3600.0)
        } else {
            format!("{:.0} yr", t / 86_400.0 / 365.0)
        };
        println!("{rank}. {method:<16} time-to-breach ≈ {human}");
    }
}
