//! Seed → scenario mapping.
//!
//! A [`Scenario`] is plain data: everything the runner needs to build
//! and drive one world, and everything the shrinker needs to produce
//! smaller candidates. [`ScenarioGen`] draws one from a seed with the
//! workspace's own deterministic [`Rng`], so the same seed always
//! yields the same scenario on every platform and thread count.

use wn_phy::modulation::PhyStandard;
use wn_sim::Rng;

/// One generated test case.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The seed that produced it (also seeds the world's own RNGs).
    pub seed: u64,
    /// Which world it drives, with all parameters.
    pub kind: ScenarioKind,
}

/// The world a scenario exercises.
#[derive(Clone, Debug)]
pub enum ScenarioKind {
    /// Flat 802.11 IBSS: senders flooding a sink over DCF.
    Wlan(WlanScenario),
    /// Infrastructure ESS: APs + STAs, association/roaming/power save.
    Ess(EssScenario),
    /// Bluetooth piconet or scatternet.
    Bluetooth(BtScenario),
    /// ZigBee star or mesh.
    Zigbee(ZigbeeScenario),
    /// WiMAX base station with scheduled service classes.
    Wman(WmanScenario),
}

/// Flat-WLAN parameters: a ring of senders around a sink at station 0.
#[derive(Clone, Debug)]
pub struct WlanScenario {
    /// Total stations including the sink (≥ 2).
    pub stations: usize,
    /// Ring radius around the sink (m).
    pub radius_m: f64,
    /// PHY generation.
    pub standard: PhyStandard,
    /// MSDU payload bytes.
    pub payload: usize,
    /// Frames injected per sender.
    pub frames_per_sender: u32,
    /// Injection period per sender (µs).
    pub interval_us: u64,
    /// Virtual run length (ms).
    pub duration_ms: u64,
    /// RTS/CTS threshold (bytes; `usize::MAX` disables).
    pub rts_threshold: usize,
    /// Fragmentation threshold (bytes; `usize::MAX` disables).
    pub frag_threshold: usize,
    /// Transmit queue limit (MSDUs).
    pub queue_limit: usize,
    /// Short retry limit.
    pub retry_limit_short: u32,
    /// Long retry limit.
    pub retry_limit_long: u32,
    /// CWmin override.
    pub cw_min_override: Option<u32>,
    /// CWmax override.
    pub cw_max_override: Option<u32>,
    /// ARF rate adaptation on/off.
    pub arf: bool,
    /// Fault toggle: park the sink on another channel so every data
    /// frame times out and walks the full retry ladder.
    pub deaf_sink: bool,
    /// Fault toggle: arm [`wn_mac80211::sim::MacConfig`]'s
    /// `failpoint_retry_overrun`, the deliberate off-by-one the retry
    /// oracle must catch (oracle self-test only).
    pub failpoint_retry_overrun: bool,
    /// QoS switch: EDCA queues + A-MPDU aggregation, mixed-AC traffic
    /// (`fuzz --qos` corpus; always `false` in the default corpus so
    /// legacy digests stay byte-identical).
    pub edca: bool,
    /// A-MPDU aggregate size cap (MPDUs; 1 = aggregation effectively
    /// off while still exercising the QoS data path).
    pub ampdu_max_mpdus: usize,
    /// Per-MPDU delimiter-loss probability inside a decoded aggregate.
    pub ampdu_per_mpdu_loss: f64,
    /// Fault toggle: arm [`wn_mac80211::sim::MacConfig`]'s
    /// `failpoint_aifsn_swap`, the planted AC_VO/AC_BK parameter swap
    /// the priority-inversion oracle must catch (self-test only).
    pub failpoint_aifsn_swap: bool,
    /// Add a second, co-channel BSS cell (its own sink + sender ring)
    /// one `radius_m`-scaled offset away — the OBSS leg of the QoS
    /// corpus.
    pub obss_cell: bool,
}

impl WlanScenario {
    /// `true` when every sender has an identical offered load and
    /// distance, so DCF fairness bounds apply. An OBSS twin cell
    /// breaks the single-ring symmetry (the second sink sits among
    /// the "senders" the fairness oracle would compare).
    pub fn symmetric(&self) -> bool {
        !self.deaf_sink && !self.failpoint_retry_overrun && !self.obss_cell
    }

    /// Stations the runner actually creates: the scenario ring, plus
    /// its OBSS twin when armed.
    pub fn total_stations(&self) -> usize {
        self.stations * (1 + usize::from(self.obss_cell))
    }
}

/// Infrastructure ESS parameters.
#[derive(Clone, Debug)]
pub struct EssScenario {
    /// Access points (1–2, on channels 1 and 6).
    pub aps: usize,
    /// Stations; element `i` is `true` when STA `i` runs power save.
    pub sta_power_save: Vec<bool>,
    /// Walk STA 0 from the first AP toward the last.
    pub walker: bool,
    /// Distance between APs (m).
    pub ap_spacing_m: f64,
    /// Walking speed (m/s).
    pub walk_speed_mps: f64,
    /// Virtual run length (s).
    pub duration_s: u64,
}

/// Bluetooth parameters. Device indices refer to the deterministic
/// build order in the runner: piconet `[master, slaves…]`, scatternet
/// `[master A, master B, bridge, slaves A…, slaves B…]`.
#[derive(Clone, Debug)]
pub struct BtScenario {
    /// Two piconets sharing a bridge slave instead of one piconet.
    pub scatternet: bool,
    /// Slaves in (the first) piconet.
    pub slaves_a: usize,
    /// Slaves in the second piconet (scatternet only).
    pub slaves_b: usize,
    /// `(src index, dst index, bytes)` application transfers; pairs
    /// without a route simply stay queued (conservation still holds).
    pub transfers: Vec<(usize, usize, usize)>,
    /// Virtual run length (ms).
    pub duration_ms: u64,
}

impl BtScenario {
    /// Number of devices the runner will create.
    pub fn device_count(&self) -> usize {
        if self.scatternet {
            3 + self.slaves_a + self.slaves_b
        } else {
            1 + self.slaves_a
        }
    }
}

/// ZigBee topology choice.
#[derive(Clone, Debug)]
pub enum ZigbeeTopology {
    /// Coordinator + `n` ring nodes.
    Star {
        /// Ring nodes around the coordinator.
        n: usize,
        /// Ring radius (m).
        radius_m: f64,
    },
    /// FFD mesh grid.
    Mesh {
        /// Grid columns.
        cols: usize,
        /// Grid rows.
        rows: usize,
        /// Grid spacing (m).
        spacing_m: f64,
    },
}

impl ZigbeeTopology {
    /// Number of nodes the runner will create.
    pub fn node_count(&self) -> usize {
        match *self {
            ZigbeeTopology::Star { n, .. } => n + 1,
            ZigbeeTopology::Mesh { cols, rows, .. } => cols * rows,
        }
    }
}

/// ZigBee parameters.
#[derive(Clone, Debug)]
pub struct ZigbeeScenario {
    /// Star or mesh layout.
    pub topology: ZigbeeTopology,
    /// `(src node, dst node, bytes, at_ms)` offered packets.
    pub sends: Vec<(usize, usize, usize, u64)>,
    /// Virtual run length (ms).
    pub duration_ms: u64,
}

/// One WiMAX subscriber.
#[derive(Clone, Debug)]
pub struct WmanSub {
    /// Distance from the base station (m).
    pub dist_m: f64,
    /// Behind an obstruction (NLOS penalty).
    pub obstructed: bool,
    /// Scheduling class index into `[Ugs, Rtps, Nrtps, BestEffort]`.
    pub class: usize,
    /// Reserved rate (bps).
    pub reserved_bps: f64,
    /// Downlink bytes offered every 100 ms.
    pub dl_offer: usize,
    /// Uplink bytes offered every 100 ms (0 = none).
    pub ul_offer: usize,
}

/// WiMAX parameters.
#[derive(Clone, Debug)]
pub struct WmanScenario {
    /// Subscribers (some may be refused admission when out of range;
    /// their offers are then skipped).
    pub subs: Vec<WmanSub>,
    /// Downlink share of each frame (0–1).
    pub dl_ratio: f64,
    /// Per-subscriber downlink queue limit (bytes).
    pub queue_limit_bytes: usize,
    /// Virtual run length (ms).
    pub duration_ms: u64,
}

impl Scenario {
    /// Stable short tag for digests and progress lines.
    pub fn kind_tag(&self) -> &'static str {
        match self.kind {
            ScenarioKind::Wlan(_) => "wlan",
            ScenarioKind::Ess(_) => "ess",
            ScenarioKind::Bluetooth(_) => "bt",
            ScenarioKind::Zigbee(_) => "zigbee",
            ScenarioKind::Wman(_) => "wman",
        }
    }

    /// One-line human summary (for fuzz output and shrink reports).
    pub fn summary(&self) -> String {
        match &self.kind {
            ScenarioKind::Wlan(w) => format!(
                "wlan seed={} stations={} frames={}x{} payload={} dur={}ms rts={} frag={} \
                 queue={} retry={}/{}{}{}{}",
                self.seed,
                w.stations,
                w.stations - 1,
                w.frames_per_sender,
                w.payload,
                w.duration_ms,
                threshold(w.rts_threshold),
                threshold(w.frag_threshold),
                w.queue_limit,
                w.retry_limit_short,
                w.retry_limit_long,
                if w.deaf_sink { " deaf-sink" } else { "" },
                if w.failpoint_retry_overrun {
                    " failpoint"
                } else {
                    ""
                },
                if w.edca {
                    format!(
                        " edca ampdu={} loss={:.2}{}{}",
                        w.ampdu_max_mpdus,
                        w.ampdu_per_mpdu_loss,
                        if w.obss_cell { " obss" } else { "" },
                        if w.failpoint_aifsn_swap {
                            " aifsn-swap"
                        } else {
                            ""
                        },
                    )
                } else {
                    String::new()
                },
            ),
            ScenarioKind::Ess(e) => format!(
                "ess seed={} aps={} stas={} walker={} dur={}s",
                self.seed,
                e.aps,
                e.sta_power_save.len(),
                e.walker,
                e.duration_s
            ),
            ScenarioKind::Bluetooth(b) => format!(
                "bt seed={} devices={} scatternet={} transfers={} dur={}ms",
                self.seed,
                b.device_count(),
                b.scatternet,
                b.transfers.len(),
                b.duration_ms
            ),
            ScenarioKind::Zigbee(z) => format!(
                "zigbee seed={} nodes={} sends={} dur={}ms",
                self.seed,
                z.topology.node_count(),
                z.sends.len(),
                z.duration_ms
            ),
            ScenarioKind::Wman(w) => format!(
                "wman seed={} subs={} dl_ratio={:.2} dur={}ms",
                self.seed,
                w.subs.len(),
                w.dl_ratio,
                w.duration_ms
            ),
        }
    }
}

fn threshold(v: usize) -> String {
    if v == usize::MAX {
        "off".to_string()
    } else {
        v.to_string()
    }
}

/// Deterministic seed → [`Scenario`] generator.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioGen {
    /// Arm the MAC retry fail-point in every generated WLAN scenario.
    /// This is the oracle self-test switch: with it on, the retry
    /// oracle must catch (and the shrinker minimise) the planted
    /// off-by-one. Normal fuzzing leaves it off.
    pub inject_retry_overrun: bool,
    /// Draw the QoS corpus instead of the mixed one: every seed maps
    /// to an EDCA/A-MPDU WLAN world (mixed-AC traffic, aggregation
    /// on/off, OBSS twin cells). Off by default so the classic
    /// corpus — and every recorded digest over it — is untouched.
    pub qos: bool,
    /// Arm the AC_VO/AC_BK parameter-swap fail-point in every QoS
    /// world: the priority-inversion oracle's self-test switch.
    pub inject_aifsn_swap: bool,
}

impl ScenarioGen {
    /// A generator with the retry fail-point armed.
    pub fn with_retry_overrun() -> Self {
        ScenarioGen {
            inject_retry_overrun: true,
            ..Self::default()
        }
    }

    /// The QoS-corpus generator (`fuzz --qos`).
    pub fn with_qos() -> Self {
        ScenarioGen {
            qos: true,
            ..Self::default()
        }
    }

    /// The QoS corpus with the AIFSN-swap fail-point armed (the
    /// priority-inversion oracle self-test).
    pub fn with_qos_aifsn_swap() -> Self {
        ScenarioGen {
            qos: true,
            inject_aifsn_swap: true,
            ..Self::default()
        }
    }

    /// Draws the scenario for `seed`.
    pub fn scenario(&self, seed: u64) -> Scenario {
        // Decorrelate from the worlds' own seeding (they fork off the
        // raw seed) without losing determinism.
        let mut rng = Rng::new(seed ^ 0xC0FF_EE00_5EED_FACE);
        if self.qos {
            // The QoS corpus is its own seed space: every seed is an
            // EDCA world. Drawn from the same decorrelated stream but
            // never interleaved with the classic draws, so enabling it
            // cannot shift what any classic seed generates.
            return Scenario {
                seed,
                kind: ScenarioKind::Wlan(self.qos_wlan(&mut rng)),
            };
        }
        let kind = match rng.below(100) {
            0..=44 => ScenarioKind::Wlan(self.wlan(&mut rng)),
            45..=59 => ScenarioKind::Ess(Self::ess(&mut rng)),
            60..=74 => ScenarioKind::Bluetooth(Self::bluetooth(&mut rng)),
            75..=89 => ScenarioKind::Zigbee(Self::zigbee(&mut rng)),
            _ => ScenarioKind::Wman(Self::wman(&mut rng)),
        };
        Scenario { seed, kind }
    }

    fn wlan(&self, rng: &mut Rng) -> WlanScenario {
        let standard = *rng.choose(&[
            PhyStandard::Dot11b,
            PhyStandard::Dot11a,
            PhyStandard::Dot11g,
            PhyStandard::Dot11n,
        ]);
        let cw_min_override = if rng.chance(0.15) {
            Some(*rng.choose(&[7u32, 15, 31]))
        } else {
            None
        };
        let cw_max_override = if rng.chance(0.15) {
            Some(*rng.choose(&[127u32, 255, 1023]))
        } else {
            None
        };
        WlanScenario {
            stations: 2 + rng.below(7) as usize,
            radius_m: rng.f64_range(5.0, 15.0),
            standard,
            payload: 100 + rng.below(1300) as usize,
            frames_per_sender: 8 + rng.below(32) as u32,
            interval_us: 500 + rng.below(3500),
            duration_ms: 40 + rng.below(80),
            rts_threshold: if rng.chance(0.4) {
                200 + rng.below(800) as usize
            } else {
                usize::MAX
            },
            frag_threshold: if rng.chance(0.3) {
                256 + rng.below(768) as usize
            } else {
                usize::MAX
            },
            queue_limit: 4 + rng.below(61) as usize,
            retry_limit_short: 3 + rng.below(6) as u32,
            retry_limit_long: 2 + rng.below(5) as u32,
            cw_min_override,
            cw_max_override,
            arf: rng.chance(0.7),
            deaf_sink: rng.chance(0.12),
            failpoint_retry_overrun: self.inject_retry_overrun,
            edca: false,
            ampdu_max_mpdus: 16,
            ampdu_per_mpdu_loss: 0.0,
            failpoint_aifsn_swap: false,
            obss_cell: false,
        }
    }

    /// One world of the QoS corpus: an EDCA/A-MPDU ring (sometimes
    /// twinned into an OBSS pair), mixed-AC traffic injected by the
    /// runner, aggregation size swept down to 1 (off), and the same
    /// deaf-sink fault leg the classic corpus has so block-ack
    /// timeouts walk the per-MPDU retry ladder.
    fn qos_wlan(&self, rng: &mut Rng) -> WlanScenario {
        let standard = *rng.choose(&[
            PhyStandard::Dot11b,
            PhyStandard::Dot11a,
            PhyStandard::Dot11g,
            PhyStandard::Dot11n,
        ]);
        WlanScenario {
            stations: 2 + rng.below(6) as usize,
            radius_m: rng.f64_range(5.0, 15.0),
            standard,
            payload: 100 + rng.below(1200) as usize,
            frames_per_sender: 12 + rng.below(40) as u32,
            interval_us: 300 + rng.below(2700),
            duration_ms: 40 + rng.below(80),
            // The EDCA transmit path aggregates instead of using
            // RTS/CTS or fragmentation; keep both off.
            rts_threshold: usize::MAX,
            frag_threshold: usize::MAX,
            queue_limit: 8 + rng.below(57) as usize,
            retry_limit_short: 3 + rng.below(6) as u32,
            retry_limit_long: 2 + rng.below(5) as u32,
            cw_min_override: None,
            cw_max_override: None,
            arf: rng.chance(0.5),
            deaf_sink: rng.chance(0.12),
            failpoint_retry_overrun: self.inject_retry_overrun,
            edca: true,
            ampdu_max_mpdus: *rng.choose(&[1usize, 4, 8, 16, 32]),
            ampdu_per_mpdu_loss: if rng.chance(0.35) {
                rng.f64_range(0.05, 0.35)
            } else {
                0.0
            },
            failpoint_aifsn_swap: self.inject_aifsn_swap,
            obss_cell: rng.chance(0.3),
        }
    }

    fn ess(rng: &mut Rng) -> EssScenario {
        let aps = 1 + rng.below(2) as usize;
        let stas = 1 + rng.below(3) as usize;
        let sta_power_save = (0..stas).map(|_| rng.chance(0.4)).collect();
        EssScenario {
            aps,
            sta_power_save,
            walker: aps == 2 && rng.chance(0.7),
            ap_spacing_m: rng.f64_range(120.0, 180.0),
            walk_speed_mps: rng.f64_range(5.0, 10.0),
            duration_s: 3 + rng.below(3),
        }
    }

    fn bluetooth(rng: &mut Rng) -> BtScenario {
        let scatternet = rng.chance(0.35);
        let slaves_a = 1 + rng.below(5) as usize;
        let slaves_b = if scatternet {
            1 + rng.below(5) as usize
        } else {
            0
        };
        let devices = if scatternet {
            3 + slaves_a + slaves_b
        } else {
            1 + slaves_a
        };
        let transfers = (0..1 + rng.below(6))
            .map(|_| {
                let src = rng.below(devices as u64) as usize;
                let mut dst = rng.below(devices as u64) as usize;
                if dst == src {
                    dst = (dst + 1) % devices;
                }
                (src, dst, 5_000 + rng.below(55_000) as usize)
            })
            .collect();
        BtScenario {
            scatternet,
            slaves_a,
            slaves_b,
            transfers,
            duration_ms: 400 + rng.below(800),
        }
    }

    fn zigbee(rng: &mut Rng) -> ZigbeeScenario {
        let topology = if rng.chance(0.5) {
            ZigbeeTopology::Star {
                n: 3 + rng.below(8) as usize,
                radius_m: rng.f64_range(5.0, 9.0),
            }
        } else {
            ZigbeeTopology::Mesh {
                cols: 2 + rng.below(3) as usize,
                rows: 2 + rng.below(3) as usize,
                spacing_m: rng.f64_range(5.0, 9.0),
            }
        };
        let nodes = topology.node_count();
        let duration_ms = 800 + rng.below(1200);
        let sends = (0..5 + rng.below(20))
            .map(|_| {
                let src = rng.below(nodes as u64) as usize;
                let mut dst = rng.below(nodes as u64) as usize;
                if dst == src {
                    dst = (dst + 1) % nodes;
                }
                (
                    src,
                    dst,
                    20 + rng.below(180) as usize,
                    rng.below(duration_ms / 2),
                )
            })
            .collect();
        ZigbeeScenario {
            topology,
            sends,
            duration_ms,
        }
    }

    fn wman(rng: &mut Rng) -> WmanScenario {
        let subs = (0..1 + rng.below(4))
            .map(|_| {
                let class = rng.below(4) as usize;
                WmanSub {
                    dist_m: rng.f64_range(1_000.0, 12_000.0),
                    obstructed: rng.chance(0.2),
                    class,
                    reserved_bps: if class == 3 {
                        0.0
                    } else {
                        rng.f64_range(0.5e6, 3e6)
                    },
                    dl_offer: 20_000 + rng.below(180_000) as usize,
                    ul_offer: if rng.chance(0.5) {
                        10_000 + rng.below(70_000) as usize
                    } else {
                        0
                    },
                }
            })
            .collect();
        WmanScenario {
            subs,
            dl_ratio: rng.f64_range(0.4, 0.7),
            queue_limit_bytes: 200_000 + rng.below(800_000) as usize,
            duration_ms: 300 + rng.below(400),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let g = ScenarioGen::default();
        for seed in 0..64 {
            let a = g.scenario(seed);
            let b = g.scenario(seed);
            assert_eq!(a.summary(), b.summary());
        }
    }

    #[test]
    fn seeds_cover_every_world() {
        let g = ScenarioGen::default();
        let mut tags = std::collections::BTreeSet::new();
        for seed in 0..200 {
            tags.insert(g.scenario(seed).kind_tag());
        }
        assert_eq!(
            tags.into_iter().collect::<Vec<_>>(),
            vec!["bt", "ess", "wlan", "wman", "zigbee"]
        );
    }

    #[test]
    fn retry_overrun_generator_arms_the_failpoint() {
        let g = ScenarioGen::with_retry_overrun();
        let armed = (0..50).any(|seed| match g.scenario(seed).kind {
            ScenarioKind::Wlan(ref w) => w.failpoint_retry_overrun,
            _ => false,
        });
        assert!(armed);
    }

    #[test]
    fn qos_generator_emits_only_edca_worlds_and_covers_the_axes() {
        let g = ScenarioGen::with_qos();
        let (mut agg_off, mut agg_on, mut obss, mut lossy) = (false, false, false, false);
        for seed in 0..100 {
            let sc = g.scenario(seed);
            let ScenarioKind::Wlan(ref w) = sc.kind else {
                panic!("qos corpus drew a non-WLAN world: {}", sc.summary());
            };
            assert!(w.edca, "qos corpus drew a legacy world: {}", sc.summary());
            agg_off |= w.ampdu_max_mpdus == 1;
            agg_on |= w.ampdu_max_mpdus > 1;
            obss |= w.obss_cell;
            lossy |= w.ampdu_per_mpdu_loss > 0.0;
        }
        assert!(agg_off && agg_on && obss && lossy);
    }

    #[test]
    fn aifsn_swap_generator_arms_the_failpoint() {
        let g = ScenarioGen::with_qos_aifsn_swap();
        for seed in 0..20 {
            match g.scenario(seed).kind {
                ScenarioKind::Wlan(ref w) => assert!(w.failpoint_aifsn_swap),
                _ => panic!("qos corpus drew a non-WLAN world"),
            }
        }
    }

    /// Turning the QoS corpus on must not disturb what the classic
    /// generator draws — the legacy-digest equivalence contract starts
    /// here.
    #[test]
    fn qos_flag_leaves_the_classic_corpus_untouched() {
        let classic = ScenarioGen::default();
        for seed in 0..64 {
            let s = classic.scenario(seed).summary();
            assert!(!s.contains("edca"), "classic corpus grew QoS fields: {s}");
        }
    }
}
