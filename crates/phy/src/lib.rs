//! `wn-phy` — radio physics and 802.11 PHY-sublayer models.
//!
//! This crate is the "air medium" substrate: everything the source text
//! attributes to radio waves rather than protocols lives here.
//!
//! - [`units`] — decibel/milliwatt power arithmetic, frequencies, rates.
//! - [`geom`] — positions in metres and simple trajectory helpers.
//! - [`bands`] — the ISM/licensed bands and 802.11 channel plans of §2.
//! - [`propagation`] — free-space, log-distance, two-ray and log-normal
//!   shadowing path-loss models, plus wall attenuation for the §6
//!   "black spot" experiments.
//! - [`modulation`] — the FHSS/DSSS/OFDM rate ladders of Fig. 1.13 with
//!   SNR thresholds, BER curves and frame error probability.
//! - [`medium`] — link-budget and SINR computations binding the above
//!   together, including the capture effect used by the MAC.
//! - [`fading`] — Rayleigh/Rician block fading for time-varying links.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bands;
pub mod fading;
pub mod geom;
pub mod medium;
pub mod modulation;
pub mod propagation;
pub mod units;

pub use bands::{Band, Channel};
pub use geom::Point;
pub use medium::LinkBudget;
pub use modulation::{PhyStandard, RateStep};
pub use propagation::PathLoss;
pub use units::{DataRate, Db, Dbm, Hertz};
