//! FIG-1.10 — regenerates the ESS roaming walk (handoff gap, session
//! survival) and times association establishment.

use std::hint::black_box;

use wn_bench::{bench, print_report};
use wn_core::scenarios::fig_1_10_ess_roaming;
use wn_mac80211::sim::MacConfig;
use wn_net80211::builder::EssBuilder;
use wn_net80211::ssid::Ssid;
use wn_phy::geom::Point;
use wn_phy::modulation::PhyStandard;
use wn_sim::SimTime;

fn main() {
    let (outcome, report) = fig_1_10_ess_roaming(5);
    println!(
        "roaming outcome: {} associations, order {:?}, handoff gap {:?} s, {}/{} delivered",
        outcome.associations,
        outcome.serving_order,
        outcome.handoff_gap_s,
        outcome.delivered,
        outcome.offered
    );
    print_report(&report);

    bench("fig10/scan_auth_assoc", || {
        let ssid = Ssid::new("Bench").expect("valid");
        let mut mac = MacConfig::new(PhyStandard::Dot11g);
        mac.seed = 3;
        let mut ess = EssBuilder::new(mac, ssid)
            .ap(Point::new(0.0, 0.0), 1)
            .sta(Point::new(10.0, 0.0))
            .build();
        ess.sim.run_until(SimTime::from_secs(1));
        let aid = ess.sta_shared[0].lock().expect("shared state lock").aid;
        black_box(aid)
    });
}
