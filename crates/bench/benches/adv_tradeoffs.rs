//! ADV-6 — regenerates the §6 trade-off experiments (co-channel
//! interference, shadowing black spots, capture-effect ablation) and
//! times the shadow-map computation.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::{adjacent_channels, adv_tradeoffs};
use wn_phy::geom::Point;
use wn_phy::medium::{LinkBudget, Radio};
use wn_phy::modulation::PhyStandard;
use wn_phy::propagation::{LogDistance, Shadowing};

fn main() {
    let (fig, report) = adv_tradeoffs(13);
    print_figure(&fig);
    print_report(&report);

    let (fig, report) = adjacent_channels(29);
    print_figure(&fig);
    print_report(&report);

    let lb = LinkBudget::for_standard(PhyStandard::Dot11g, Radio::consumer_wifi());
    let model = Shadowing {
        base: LogDistance::indoor(),
        sigma_db: 9.0,
        seed: 4,
    };
    bench("adv/shadow_map_400_points", || {
        let mut dead = 0u32;
        for gx in 1..=20 {
            for gy in 1..=20 {
                let p = Point::new(gx as f64 * 2.0, gy as f64 * 2.0);
                let loss = model.loss_between(Point::ORIGIN, p, lb.frequency);
                if PhyStandard::Dot11g
                    .best_rate_for_snr(lb.snr(loss))
                    .is_none()
                {
                    dead += 1;
                }
            }
        }
        black_box(dead)
    });
}
