//! SCALE-DCF saturation properties, checked from `MetricsRegistry`
//! snapshots rather than the experiment harness's own claims: as the
//! contending-station count grows under symmetric saturated load,
//! per-station goodput must collapse monotonically while Jain fairness
//! stays near 1 for the horizons DCF needs to mix.
//!
//! The sweep points reuse the release horizons from the experiment
//! family (≈35·n ms — DCF's short-term capture unfairness decays as
//! 1/T), which makes this minutes-long in debug; the tier-1 debug
//! suite therefore skips it and CI runs it in the release job.

use wireless_networks::core::scenarios::scale_dcf_point;
use wireless_networks::sim::SchedulerKind;

/// `(stations, horizon_ms)` — the 10/50/200 release points.
const POINTS: [(usize, u64); 3] = [(10, 560), (50, 3500), (200, 7000)];

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-sized horizons; run with --release (CI does)"
)]
fn per_station_goodput_collapses_monotonically_and_fairly() {
    let points: Vec<_> = POINTS
        .iter()
        .map(|&(n, dur)| scale_dcf_point(n, dur, 42, SchedulerKind::TimerWheel))
        .collect();

    for p in &points {
        // Saturation precondition: every sender still has backlog at the
        // horizon, so goodput measures the channel, not the offered load.
        assert!(
            p.saturated,
            "n={}: a sender drained its queue before the horizon",
            p.stations
        );
        assert!(
            p.jain_fairness >= 0.95,
            "n={}: Jain fairness {:.4} < 0.95 under symmetric saturation",
            p.stations,
            p.jain_fairness
        );
    }

    for w in points.windows(2) {
        assert!(
            w[1].per_station_kbps <= w[0].per_station_kbps,
            "per-station goodput rose from {:.1} kbps (n={}) to {:.1} kbps (n={})",
            w[0].per_station_kbps,
            w[0].stations,
            w[1].per_station_kbps,
            w[1].stations
        );
    }

    // And the collapse is real, not a plateau: 20x the contenders must
    // cost well over half the per-station goodput.
    let (first, last) = (&points[0], &points[points.len() - 1]);
    assert!(
        last.per_station_kbps * 2.0 < first.per_station_kbps,
        "contention collapse too shallow: {:.1} -> {:.1} kbps",
        first.per_station_kbps,
        last.per_station_kbps
    );
}
