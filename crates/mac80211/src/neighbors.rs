//! Propagation neighbor cache and event-fan-out wait-list structures.
//!
//! The DCF hot path in [`crate::sim`] used to pay O(n) per
//! transmission three times over: a link-budget evaluation for every
//! station at tx start, a full-table scan to deliver busy edges, and
//! another full-table scan at tx end to resume frozen backoffs. This
//! module provides the three data structures that cut those to the
//! stations actually involved, without changing a single trace byte:
//!
//! - [`NeighborCache`] — pairwise rx-power rows (in dBm and, mirrored
//!   bit-for-bit, in linear milliwatts for the interference sums)
//!   plus, per transmitter, the sorted list of stations that can hear
//!   it at the carrier-sense threshold. Static topologies compute
//!   propagation once; mobility dirties only the moved station's row
//!   and column. Rows come in two representations: *dense* (an entry
//!   for every station, the original n×n matrix) and *sparse* (entries
//!   only for the stations a [`crate::grid::SpatialGrid`] neighborhood
//!   query returns — everyone within one cell edge, a superset of
//!   audibility when the cell edge is at least the maximum audible
//!   range). Sparse mode turns an O(n²) build into O(n·k) and a
//!   mobility patch into O(k).
//! - [`AudibleSet`] — the per-station set of in-flight transmission
//!   ids, with O(1) insert and O(members) removal instead of the old
//!   `Vec::retain` full scan.
//! - [`IdBitSet`] — the contender wait-list: stations with an armed
//!   backoff, iterated in ascending id order so the idle-edge rearm
//!   visits exactly the stations the old 0..n scan would have acted
//!   on, in the same order.
//!
//! Equivalence with the uncached path is load-bearing: audibility here
//! is *raw* co-channel power against the CS threshold, a superset of
//! what any receiver on an overlapping channel can hear after the
//! spectral-mask discount, so per-member awake/channel/leak checks in
//! the MAC stay exactly where they were. A sparse row's omissions are
//! sound the same way: an omitted station is beyond one grid cell
//! edge, hence below the carrier-sense floor by construction, so every
//! threshold decision reads the same answer from the −∞ it gets back;
//! its (sub-CS) power no longer enters interference sums, which is
//! bit-identical whenever the deployment fits within one neighborhood
//! span (every fuzz-corpus world does) and is the documented
//! interference-truncation semantic beyond that. Rows are `Arc`-shared
//! copy-on-write: an in-flight transmission snapshots its row at start
//! time for free, and a mobility update clones the row before writing,
//! leaving the snapshot untouched.

use std::sync::Arc;

use crate::sim::StationId;
use wn_phy::units::Dbm;

/// One transmitter's received-power row, as snapshotted by an
/// in-flight transmission record: power at every station in dBm plus
/// the bit-exact linear-milliwatt mirror used by interference sums.
///
/// Dense rows (`keys == None`) index directly by station id and carry
/// the +inf diagonal the original matrix had; the mW mirror is absent
/// only on the uncached direct path, which converts per entry exactly
/// as the pre-cache code did. Sparse rows store entries for the sorted
/// `keys` subset only (self excluded) and answer −∞ for everyone else
/// — omitted stations are below the carrier-sense floor by grid
/// construction.
#[derive(Clone)]
pub struct RxRow {
    keys: Option<Arc<Vec<StationId>>>,
    dbm: Arc<Vec<Dbm>>,
    mw: Option<Arc<Vec<f64>>>,
}

impl RxRow {
    /// A dense row; `mw` is `None` on the uncached direct path.
    pub fn dense(dbm: Arc<Vec<Dbm>>, mw: Option<Arc<Vec<f64>>>) -> Self {
        RxRow {
            keys: None,
            dbm,
            mw,
        }
    }

    /// Received power at `dst`; −∞ for entries a sparse row omits
    /// (beyond the grid neighborhood, hence below the CS floor).
    pub fn get(&self, dst: StationId) -> Dbm {
        match &self.keys {
            None => self.dbm[dst],
            Some(k) => match k.binary_search(&dst) {
                Ok(i) => self.dbm[i],
                Err(_) => Dbm(f64::NEG_INFINITY),
            },
        }
    }

    /// [`get`](Self::get) for ascending `dst` sequences: `cursor`
    /// (starting at 0 for each fresh sequence) advances monotonically
    /// through a sparse row's keys, making a whole candidates sweep
    /// O(k) instead of O(c·log k). Dense rows ignore the cursor.
    pub fn get_seq(&self, dst: StationId, cursor: &mut usize) -> Dbm {
        match &self.keys {
            None => self.dbm[dst],
            Some(k) => {
                while *cursor < k.len() && k[*cursor] < dst {
                    *cursor += 1;
                }
                if *cursor < k.len() && k[*cursor] == dst {
                    self.dbm[*cursor]
                } else {
                    Dbm(f64::NEG_INFINITY)
                }
            }
        }
    }

    /// Adds this row's linear-milliwatt image into `acc` (full
    /// spectral overlap), preserving the exact float semantics of the
    /// pre-sparse code: cached dense rows add the memoized mirror
    /// slice-wise; the direct path converts each dBm entry in place.
    /// Sparse rows add their stored entries at their key slots, in
    /// ascending key order — each slot still receives at most one term
    /// per transmission, in the same record order as before.
    pub fn accumulate_mw(&self, acc: &mut [f64]) {
        match (&self.keys, &self.mw) {
            (None, Some(mw)) => {
                for (a, m) in acc.iter_mut().zip(mw.iter()) {
                    *a += m;
                }
            }
            (None, None) => {
                for (a, p) in acc.iter_mut().zip(self.dbm.iter()) {
                    *a += p.to_milliwatts();
                }
            }
            (Some(keys), Some(mw)) => {
                for (&k, &m) in keys.iter().zip(mw.iter()) {
                    acc[k] += m;
                }
            }
            (Some(keys), None) => {
                for (&k, &p) in keys.iter().zip(self.dbm.iter()) {
                    acc[k] += p.to_milliwatts();
                }
            }
        }
    }

    /// Fractional-overlap variant of [`accumulate_mw`](Self::accumulate_mw):
    /// every entry is discounted by `shift` dB before conversion,
    /// exactly as the uncached path computed it.
    pub fn accumulate_shifted_mw(&self, shift: f64, acc: &mut [f64]) {
        match &self.keys {
            None => {
                for (a, p) in acc.iter_mut().zip(self.dbm.iter()) {
                    *a += Dbm(p.value() + shift).to_milliwatts();
                }
            }
            Some(keys) => {
                for (&k, &p) in keys.iter().zip(self.dbm.iter()) {
                    acc[k] += Dbm(p.value() + shift).to_milliwatts();
                }
            }
        }
    }
}

/// Pairwise rx-power cache with per-transmitter audible-neighbor lists.
///
/// Dense mode (`keys == None`): `rows[src][dst]` is the raw received
/// power at `dst` of a transmission from `src` (the diagonal is +inf:
/// a station trivially "hears" itself at any threshold, and the MAC
/// skips it explicitly). Sparse mode (`keys == Some`): `rows[src][i]`
/// is the power at `keys[src][i]`, the sorted grid neighborhood of
/// `src` with `src` itself excluded — stations beyond the neighborhood
/// are below the carrier-sense floor by construction and read back as
/// −∞. `mw_rows` mirrors `rows` in linear milliwatts
/// (`Dbm::to_milliwatts` of the same entry, bit for bit) — the
/// interference sums in the reception path run in the linear domain,
/// and memoizing the dB→mW conversion is where most of the
/// transcendental math in a saturated cell goes. `audible[src]` lists
/// every `dst != src` whose raw power meets the carrier-sense
/// threshold, ascending; audible lists are always a subset of the
/// stored keys.
#[derive(Default)]
pub struct NeighborCache {
    keys: Option<Vec<Arc<Vec<StationId>>>>,
    rows: Vec<Arc<Vec<Dbm>>>,
    mw_rows: Vec<Arc<Vec<f64>>>,
    audible: Vec<Arc<Vec<StationId>>>,
}

impl NeighborCache {
    /// An empty (unbuilt) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether [`build`](Self::build) or
    /// [`build_sparse`](Self::build_sparse) has run since the last
    /// [`clear`](Self::clear).
    pub fn is_built(&self) -> bool {
        !self.rows.is_empty()
    }

    /// Whether the cache holds sparse grid-backed rows.
    pub fn is_sparse(&self) -> bool {
        self.keys.is_some()
    }

    /// Total stored pair entries — n·(n−1) in dense mode, the sum of
    /// neighborhood sizes in sparse mode (what the grid saved).
    pub fn stored_entries(&self) -> usize {
        match &self.keys {
            Some(keys) => keys.iter().map(|k| k.len()).sum(),
            None => {
                let n = self.rows.len();
                n.saturating_mul(n.saturating_sub(1))
            }
        }
    }

    /// Drops all cached state (topology-shaping setup calls, e.g. a
    /// radio swap, call this; the next use rebuilds).
    pub fn clear(&mut self) {
        self.keys = None;
        self.rows.clear();
        self.mw_rows.clear();
        self.audible.clear();
    }

    /// Builds the full dense matrix for `n` stations from
    /// `power(src, dst)`, marking `dst` audible from `src` when the
    /// raw power meets `cs`.
    pub fn build(&mut self, n: usize, cs: Dbm, mut power: impl FnMut(StationId, StationId) -> Dbm) {
        self.clear();
        self.rows.reserve(n);
        self.mw_rows.reserve(n);
        self.audible.reserve(n);
        for src in 0..n {
            let mut row = Vec::with_capacity(n);
            let mut mw = Vec::with_capacity(n);
            let mut aud = Vec::new();
            for dst in 0..n {
                if dst == src {
                    row.push(Dbm(f64::INFINITY));
                    mw.push(f64::INFINITY);
                    continue;
                }
                let p = power(src, dst);
                if p.value() >= cs.value() {
                    aud.push(dst);
                }
                row.push(p);
                mw.push(p.to_milliwatts());
            }
            self.rows.push(Arc::new(row));
            self.mw_rows.push(Arc::new(mw));
            self.audible.push(Arc::new(aud));
        }
    }

    /// Builds sparse grid-backed rows for `n` stations: for each
    /// `src`, `neighbors_of(src, &mut scratch)` must append the sorted
    /// candidate set (typically a 27-cell grid neighborhood; `src`
    /// itself may be included and is skipped). Only those pairs are
    /// evaluated and stored — O(n·k) instead of O(n²). Soundness is
    /// the caller's contract: every station outside the candidate set
    /// must be below `cs` from `src`.
    pub fn build_sparse(
        &mut self,
        n: usize,
        cs: Dbm,
        mut power: impl FnMut(StationId, StationId) -> Dbm,
        mut neighbors_of: impl FnMut(StationId, &mut Vec<StationId>),
    ) {
        self.clear();
        let mut keys = Vec::with_capacity(n);
        self.rows.reserve(n);
        self.mw_rows.reserve(n);
        self.audible.reserve(n);
        let mut scratch = Vec::new();
        for src in 0..n {
            scratch.clear();
            neighbors_of(src, &mut scratch);
            debug_assert!(
                scratch.windows(2).all(|w| w[0] < w[1]),
                "neighborhood for {src} not sorted/unique"
            );
            let mut ks = Vec::with_capacity(scratch.len());
            let mut row = Vec::with_capacity(scratch.len());
            let mut mw = Vec::with_capacity(scratch.len());
            let mut aud = Vec::new();
            for &dst in &scratch {
                if dst == src {
                    continue;
                }
                let p = power(src, dst);
                if p.value() >= cs.value() {
                    aud.push(dst);
                }
                ks.push(dst);
                row.push(p);
                mw.push(p.to_milliwatts());
            }
            keys.push(Arc::new(ks));
            self.rows.push(Arc::new(row));
            self.mw_rows.push(Arc::new(mw));
            self.audible.push(Arc::new(aud));
        }
        self.keys = Some(keys);
    }

    /// Recomputes one station's row and column after it moved (or
    /// changed its radio): its own row and audible list are rebuilt
    /// from scratch, and every other station's entry *to* it is
    /// patched in place, maintaining the sorted audible lists by
    /// binary search. Rows shared with in-flight transmission records
    /// are cloned before writing (copy-on-write), so those records
    /// keep their start-time snapshot. Dense mode only — sparse caches
    /// patch via [`rebuild_station_sparse`](Self::rebuild_station_sparse).
    pub fn rebuild_station(
        &mut self,
        id: StationId,
        cs: Dbm,
        mut power: impl FnMut(StationId, StationId) -> Dbm,
    ) {
        let n = self.rows.len();
        debug_assert!(id < n, "rebuild_station on an unbuilt cache");
        debug_assert!(self.keys.is_none(), "dense rebuild on a sparse cache");
        let mut row = Vec::with_capacity(n);
        let mut mw = Vec::with_capacity(n);
        let mut aud = Vec::new();
        for dst in 0..n {
            if dst == id {
                row.push(Dbm(f64::INFINITY));
                mw.push(f64::INFINITY);
                continue;
            }
            let p = power(id, dst);
            if p.value() >= cs.value() {
                aud.push(dst);
            }
            row.push(p);
            mw.push(p.to_milliwatts());
        }
        self.rows[id] = Arc::new(row);
        self.mw_rows[id] = Arc::new(mw);
        self.audible[id] = Arc::new(aud);
        for src in 0..n {
            if src == id {
                continue;
            }
            let p = power(src, id);
            Arc::make_mut(&mut self.rows[src])[id] = p;
            Arc::make_mut(&mut self.mw_rows[src])[id] = p.to_milliwatts();
            let hears = p.value() >= cs.value();
            self.patch_audible(src, id, hears);
        }
    }

    /// Sparse-mode mobility patch: the moved station's row is rebuilt
    /// over `new_keys` (its sorted post-move neighborhood, `id`
    /// excluded), every station in `new_keys` gains or refreshes its
    /// entry *to* `id`, and every station in `stale` (the pre-move
    /// neighborhood minus the post-move one) drops its entry — O(k)
    /// where the dense patch was O(n). Copy-on-write discipline is the
    /// same as [`rebuild_station`](Self::rebuild_station): the keys,
    /// powers and milliwatt mirror of a patched row always change
    /// together, so an in-flight snapshot stays internally consistent.
    pub fn rebuild_station_sparse(
        &mut self,
        id: StationId,
        cs: Dbm,
        mut power: impl FnMut(StationId, StationId) -> Dbm,
        new_keys: &[StationId],
        stale: &[StationId],
    ) {
        debug_assert!(self.keys.is_some(), "sparse rebuild on a dense cache");
        debug_assert!(new_keys.windows(2).all(|w| w[0] < w[1]));
        let mut ks = Vec::with_capacity(new_keys.len());
        let mut row = Vec::with_capacity(new_keys.len());
        let mut mw = Vec::with_capacity(new_keys.len());
        let mut aud = Vec::new();
        for &dst in new_keys {
            if dst == id {
                continue;
            }
            let p = power(id, dst);
            if p.value() >= cs.value() {
                aud.push(dst);
            }
            ks.push(dst);
            row.push(p);
            mw.push(p.to_milliwatts());
        }
        let keys = self.keys.as_mut().expect("checked sparse");
        keys[id] = Arc::new(ks);
        self.rows[id] = Arc::new(row);
        self.mw_rows[id] = Arc::new(mw);
        self.audible[id] = Arc::new(aud);

        for &src in new_keys {
            if src == id {
                continue;
            }
            let p = power(src, id);
            let keys = self.keys.as_mut().expect("checked sparse");
            match keys[src].binary_search(&id) {
                Ok(i) => {
                    // Entry exists: refresh the value in place.
                    Arc::make_mut(&mut self.rows[src])[i] = p;
                    Arc::make_mut(&mut self.mw_rows[src])[i] = p.to_milliwatts();
                }
                Err(i) => {
                    Arc::make_mut(&mut keys[src]).insert(i, id);
                    Arc::make_mut(&mut self.rows[src]).insert(i, p);
                    Arc::make_mut(&mut self.mw_rows[src]).insert(i, p.to_milliwatts());
                }
            }
            self.patch_audible(src, id, p.value() >= cs.value());
        }
        for &src in stale {
            if src == id {
                continue;
            }
            let keys = self.keys.as_mut().expect("checked sparse");
            if let Ok(i) = keys[src].binary_search(&id) {
                Arc::make_mut(&mut keys[src]).remove(i);
                Arc::make_mut(&mut self.rows[src]).remove(i);
                Arc::make_mut(&mut self.mw_rows[src]).remove(i);
            }
            self.patch_audible(src, id, false);
        }
    }

    fn patch_audible(&mut self, src: StationId, dst: StationId, hears: bool) {
        let list = &self.audible[src];
        match list.binary_search(&dst) {
            Ok(pos) if !hears => {
                Arc::make_mut(&mut self.audible[src]).remove(pos);
            }
            Err(pos) if hears => {
                Arc::make_mut(&mut self.audible[src]).insert(pos, dst);
            }
            _ => {}
        }
    }

    /// The cached power row for `src` (shared, copy-on-write), in
    /// whichever representation the cache was built with.
    pub fn row(&self, src: StationId) -> RxRow {
        RxRow {
            keys: self.keys.as_ref().map(|k| Arc::clone(&k[src])),
            dbm: Arc::clone(&self.rows[src]),
            mw: Some(Arc::clone(&self.mw_rows[src])),
        }
    }

    /// The sorted audible-neighbor list for `src` (shared).
    pub fn audible_list(&self, src: StationId) -> Arc<Vec<StationId>> {
        Arc::clone(&self.audible[src])
    }

    /// Verifies every cached entry (powers and audible lists) against
    /// a fresh evaluation — the oracle behind the mobility-invalidation
    /// property test and the grid-coherence fuzz oracle. In sparse
    /// mode an *absent* pair is coherent only if its fresh power is
    /// below `cs` (the grid's soundness claim) and it is not listed
    /// audible; such a violation reports the −∞ the row would answer.
    /// Returns the first mismatch as `(src, dst, cached, fresh)`.
    pub fn find_incoherence(
        &self,
        cs: Dbm,
        mut power: impl FnMut(StationId, StationId) -> Dbm,
    ) -> Option<(StationId, StationId, Dbm, Dbm)> {
        let n = self.rows.len();
        for src in 0..n {
            let row = self.row(src);
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                let fresh = power(src, dst);
                let cached = row.get(dst);
                let listed = self.audible[src].binary_search(&dst).is_ok();
                let stored = match &self.keys {
                    None => true,
                    Some(keys) => keys[src].binary_search(&dst).is_ok(),
                };
                if !stored {
                    // Omitted by the grid: must be genuinely sub-CS.
                    if fresh.value() >= cs.value() || listed {
                        return Some((src, dst, cached, fresh));
                    }
                    continue;
                }
                // The mw mirror must stay bit-identical to the dBm
                // entry's conversion, not merely numerically close.
                let mw_cached = match &self.keys {
                    None => self.mw_rows[src][dst],
                    Some(keys) => {
                        let i = keys[src].binary_search(&dst).expect("stored");
                        self.mw_rows[src][i]
                    }
                };
                if cached.value() != fresh.value()
                    || listed != (fresh.value() >= cs.value())
                    || mw_cached.to_bits() != fresh.to_milliwatts().to_bits()
                {
                    return Some((src, dst, cached, fresh));
                }
            }
        }
        None
    }
}

/// The set of in-flight transmission ids a station can hear.
///
/// Membership is tiny in practice (the number of concurrent audible
/// transmissions), so an unsorted `Vec` with `swap_remove` beats any
/// tree: O(1) insert, one linear pass to remove or test. Order is
/// never observed — the MAC only asks "empty?" and "contains?".
#[derive(Default, Clone)]
pub struct AudibleSet {
    ids: Vec<u64>,
}

impl AudibleSet {
    /// Adds an id (caller guarantees it is not already present) and
    /// returns the new member count.
    pub fn insert(&mut self, id: u64) -> usize {
        debug_assert!(!self.ids.contains(&id), "duplicate audible id {id}");
        self.ids.push(id);
        self.ids.len()
    }

    /// Removes an id if present; reports whether it was a member.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.ids.iter().position(|&t| t == id) {
            Some(i) => {
                self.ids.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, id: u64) -> bool {
        self.ids.contains(&id)
    }

    /// Whether no transmission is audible.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of audible transmissions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Forgets everything (doze, channel switch).
    pub fn clear(&mut self) {
        self.ids.clear();
    }
}

/// A station-id bitset iterated in ascending order — the contender
/// wait-list.
///
/// Saturated cells freeze and re-arm every station on every
/// transmission, so the structure must take O(1) per membership flip;
/// a sorted container would pay a shift per insert and lose to the
/// plain O(n) scan it replaces. Word-and-trailing-zeros iteration
/// preserves the ascending visit order the old `0..n` loop had, which
/// the trace fingerprints depend on.
#[derive(Default)]
pub struct IdBitSet {
    words: Vec<u64>,
}

impl IdBitSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `id` (idempotent).
    pub fn insert(&mut self, id: usize) {
        let word = id / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (id % 64);
    }

    /// Removes `id` (idempotent).
    pub fn remove(&mut self, id: usize) {
        if let Some(w) = self.words.get_mut(id / 64) {
            *w &= !(1u64 << (id % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Empties the set, keeping its capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Appends the members to `out` in ascending order.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audible_set_tracks_overlapping_transmissions() {
        // Two transmissions overlap in time; the first to end must be
        // removed without disturbing the second — the bookkeeping the
        // MAC does at every tx-end edge.
        let mut s = AudibleSet::default();
        assert!(s.is_empty());
        assert_eq!(s.insert(7), 1);
        assert_eq!(s.insert(9), 2);
        assert!(s.contains(7) && s.contains(9));
        assert!(s.remove(7));
        assert!(!s.contains(7));
        assert!(s.contains(9));
        assert_eq!(s.len(), 1);
        assert!(!s.remove(7), "double-remove must report absence");
        assert!(s.remove(9));
        assert!(s.is_empty());
    }

    #[test]
    fn bitset_iterates_ascending_across_words() {
        let mut b = IdBitSet::new();
        for &id in &[200, 3, 64, 0, 127, 65] {
            b.insert(id);
        }
        b.remove(64);
        b.insert(64); // idempotent re-add
        b.remove(3);
        let mut got = Vec::new();
        b.collect_into(&mut got);
        assert_eq!(got, vec![0, 64, 65, 127, 200]);
        assert!(b.contains(127) && !b.contains(3) && !b.contains(1000));
        b.remove(1000); // out of range is a no-op
    }

    #[test]
    fn cache_builds_and_patches_moved_station() {
        // Powers derived from a mutable "position" table so the test
        // can move a station and demand row+column patching.
        let mut xs = [0.0f64, 10.0, 20.0, 80.0];
        let cs = Dbm(-82.0);
        fn power(xs: &[f64; 4]) -> impl FnMut(StationId, StationId) -> Dbm + '_ {
            move |a, b| Dbm(-((xs[a] - xs[b]).abs()) - 40.0)
        }
        let mut c = NeighborCache::new();
        c.build(4, cs, power(&xs));
        assert!(c.is_built());
        assert!(!c.is_sparse());
        assert_eq!(c.stored_entries(), 12);
        assert!(c.find_incoherence(cs, power(&xs)).is_none());
        // 0 hears 1 (−50) and 2 (−60) but not 3 (−120).
        assert_eq!(*c.audible_list(0), vec![1, 2]);

        // A record snapshots row 0 (both domains), then station 3
        // moves next to 0: the snapshots must keep the old power, the
        // cache the new — in dBm and in the milliwatt mirror alike.
        let snapshot = c.row(0);
        xs[3] = 5.0;
        c.rebuild_station(3, cs, power(&xs));
        assert_eq!(snapshot.get(3), Dbm(-120.0));
        assert_eq!(c.row(0).get(3), Dbm(-45.0));
        let mut mw = vec![0.0; 4];
        snapshot.accumulate_mw(&mut mw);
        assert_eq!(mw[3].to_bits(), Dbm(-120.0).to_milliwatts().to_bits());
        assert_eq!(*c.audible_list(0), vec![1, 2, 3]);
        assert_eq!(*c.audible_list(3), vec![0, 1, 2]);
        assert!(c.find_incoherence(cs, power(&xs)).is_none());

        c.clear();
        assert!(!c.is_built());
    }

    #[test]
    fn sparse_rows_store_only_the_neighborhood_and_patch_moves() {
        // Four stations on a line; the "grid" neighborhood is within
        // 30 units. Station 3 (at 80) is beyond everyone's horizon and
        // beyond the CS floor, so its omission is sound.
        let mut xs = [0.0f64, 10.0, 20.0, 80.0];
        let cs = Dbm(-75.0);
        fn power(xs: &[f64; 4]) -> impl FnMut(StationId, StationId) -> Dbm + '_ {
            move |a, b| Dbm(-((xs[a] - xs[b]).abs()) - 40.0)
        }
        fn hood(xs: &[f64; 4]) -> impl FnMut(StationId, &mut Vec<StationId>) + '_ {
            move |src, out| {
                out.extend((0..4).filter(|&d| (xs[src] - xs[d]).abs() <= 30.0));
            }
        }
        let mut c = NeighborCache::new();
        c.build_sparse(4, cs, power(&xs), hood(&xs));
        assert!(c.is_sparse());
        assert!(c.stored_entries() < 12, "sparse must omit far pairs");
        assert!(c.find_incoherence(cs, power(&xs)).is_none());
        assert_eq!(*c.audible_list(0), vec![1, 2]);
        assert_eq!(c.row(0).get(3), Dbm(f64::NEG_INFINITY));
        assert_eq!(c.row(0).get(1), Dbm(-50.0));

        // Sequential access agrees with random access.
        let row = c.row(0);
        let mut cur = 0;
        for d in [1usize, 2, 3] {
            assert_eq!(row.get_seq(d, &mut cur), row.get(d));
        }

        // Station 3 moves next to the cluster: its row rebuilds over
        // the new neighborhood, everyone gains an entry to it, and a
        // pre-move snapshot still answers −∞.
        let snapshot = c.row(0);
        xs[3] = 5.0;
        let new_keys = [0usize, 1, 2];
        c.rebuild_station_sparse(3, cs, power(&xs), &new_keys, &[]);
        assert_eq!(snapshot.get(3), Dbm(f64::NEG_INFINITY));
        assert_eq!(c.row(0).get(3), Dbm(-45.0));
        assert_eq!(*c.audible_list(0), vec![1, 2, 3]);
        assert_eq!(*c.audible_list(3), vec![0, 1, 2]);
        assert!(c.find_incoherence(cs, power(&xs)).is_none());

        // And back out again: stale entries must disappear.
        xs[3] = 80.0;
        c.rebuild_station_sparse(3, cs, power(&xs), &[], &new_keys);
        assert_eq!(c.row(0).get(3), Dbm(f64::NEG_INFINITY));
        assert_eq!(*c.audible_list(0), vec![1, 2]);
        assert!(c.find_incoherence(cs, power(&xs)).is_none());
    }

    #[test]
    fn sparse_incoherence_flags_an_omitted_audible_pair() {
        // A neighborhood that wrongly omits an audible station must be
        // reported: the grid's soundness contract is what the fuzz
        // oracle leans on.
        let xs = [0.0f64, 10.0];
        let cs = Dbm(-75.0);
        let mut c = NeighborCache::new();
        c.build_sparse(
            2,
            cs,
            |a, b| Dbm(-((xs[a] - xs[b]).abs()) - 40.0),
            |_, _| {},
        );
        let got = c.find_incoherence(cs, |a, b| Dbm(-((xs[a] - xs[b]).abs()) - 40.0));
        assert_eq!(got, Some((0, 1, Dbm(f64::NEG_INFINITY), Dbm(-50.0))));
    }
}
