//! Positions and movement in metres.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or displacement) in 3-D space, metres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
    /// Height in metres.
    pub z: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from x/y with z = 0.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y, z: 0.0 }
    }

    /// Creates a point with an explicit height.
    pub fn new3(x: f64, y: f64, z: f64) -> Self {
        Point { x, y, z }
    }

    /// Euclidean distance to another point, metres.
    pub fn distance_to(self, other: Point) -> f64 {
        let d = other - self;
        (d.x * d.x + d.y * d.y + d.z * d.z).sqrt()
    }

    /// Length of this vector, metres.
    pub fn norm(self) -> f64 {
        Point::ORIGIN.distance_to(self)
    }

    /// Unit vector toward `target`; `None` if coincident.
    pub fn direction_to(self, target: Point) -> Option<Point> {
        let d = target - self;
        let n = d.norm();
        if n == 0.0 {
            None
        } else {
            Some(Point::new3(d.x / n, d.y / n, d.z / n))
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `target` at `t = 1`.
    pub fn lerp(self, target: Point, t: f64) -> Point {
        self + (target - self) * t
    }

    /// Angle in radians between the vectors `self→a` and `self→b`.
    ///
    /// Used for the IrDA <30° cone check. Returns 0 for degenerate
    /// (zero-length) vectors.
    pub fn angle_between(self, a: Point, b: Point) -> f64 {
        let u = a - self;
        let v = b - self;
        let nu = u.norm();
        let nv = v.norm();
        if nu == 0.0 || nv == 0.0 {
            return 0.0;
        }
        let cos = ((u.x * v.x + u.y * v.y + u.z * v.z) / (nu * nv)).clamp(-1.0, 1.0);
        cos.acos()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, o: Point) -> Point {
        Point::new3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, o: Point) -> Point {
        Point::new3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, s: f64) -> Point {
        Point::new3(self.x * s, self.y * s, self.z * s)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.z == 0.0 {
            write!(f, "({:.1}, {:.1})", self.x, self.y)
        } else {
            write!(f, "({:.1}, {:.1}, {:.1})", self.x, self.y, self.z)
        }
    }
}

/// An axis-aligned wall segment used by the indoor propagation model.
///
/// Walls are modelled as thin vertical rectangles; the model only needs
/// to count how many walls the direct ray crosses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Wall {
    /// One end of the wall in the horizontal plane.
    pub a: Point,
    /// The other end.
    pub b: Point,
    /// Attenuation added per crossing, dB.
    pub loss_db: f64,
}

impl Wall {
    /// Creates a wall between two floor points.
    pub fn new(a: Point, b: Point, loss_db: f64) -> Self {
        Wall { a, b, loss_db }
    }

    /// `true` if the 2-D segment `p→q` crosses this wall.
    pub fn crossed_by(&self, p: Point, q: Point) -> bool {
        segments_intersect(p, q, self.a, self.b)
    }
}

fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// 2-D proper segment intersection (shared endpoints count as crossing).
fn segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    let d1 = orient(q1, q2, p1);
    let d2 = orient(q1, q2, p2);
    let d3 = orient(p1, p2, q1);
    let d4 = orient(p1, p2, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    let on = |a: Point, b: Point, c: Point, d: f64| {
        d == 0.0
            && c.x >= a.x.min(b.x)
            && c.x <= a.x.max(b.x)
            && c.y >= a.y.min(b.y)
            && c.y <= a.y.max(b.y)
    };
    on(q1, q2, p1, d1) || on(q1, q2, p2, d2) || on(p1, p2, q1, d3) || on(p1, p2, q2, d4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_to(b), 5.0);
    }

    #[test]
    fn distance_3d() {
        let a = Point::new3(1.0, 2.0, 2.0);
        assert_eq!(Point::ORIGIN.distance_to(a), 3.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn direction_is_unit() {
        let d = Point::new(1.0, 1.0)
            .direction_to(Point::new(4.0, 5.0))
            .unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        assert!(Point::ORIGIN.direction_to(Point::ORIGIN).is_none());
    }

    #[test]
    fn angle_between_right_angle() {
        let o = Point::ORIGIN;
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert!((o.angle_between(a, b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_between_colinear() {
        let o = Point::ORIGIN;
        let a = Point::new(1.0, 0.0);
        let b = Point::new(5.0, 0.0);
        assert!(o.angle_between(a, b).abs() < 1e-12);
    }

    #[test]
    fn wall_crossing_detection() {
        // Vertical wall at x = 5 from y = 0 to y = 10.
        let wall = Wall::new(Point::new(5.0, 0.0), Point::new(5.0, 10.0), 6.0);
        assert!(wall.crossed_by(Point::new(0.0, 5.0), Point::new(10.0, 5.0)));
        assert!(!wall.crossed_by(Point::new(0.0, 5.0), Point::new(4.0, 5.0)));
        assert!(!wall.crossed_by(Point::new(0.0, 11.0), Point::new(10.0, 11.0)));
    }

    #[test]
    fn parallel_segments_do_not_cross() {
        let wall = Wall::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 3.0);
        assert!(!wall.crossed_by(Point::new(0.0, 1.0), Point::new(10.0, 1.0)));
    }

    #[test]
    fn touching_endpoint_counts() {
        let wall = Wall::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 3.0);
        assert!(wall.crossed_by(Point::new(5.0, 0.0), Point::new(5.0, 5.0)));
    }
}
