//! Path-loss and shadowing models.
//!
//! These are the standard textbook models (Stallings, the text's
//! reference list): free-space, log-distance with configurable exponent,
//! two-ray ground reflection for long outdoor links, log-normal
//! shadowing for the §6 "black spots" experiment, and a wall-count
//! indoor model.

use crate::geom::{Point, Wall};
use crate::units::{Db, Hertz};

/// A deterministic path-loss model: loss in dB as a function of link
/// geometry and frequency.
pub trait PathLoss {
    /// Path loss over `distance_m` metres at `freq`.
    ///
    /// Implementations must be monotone non-decreasing in distance.
    fn loss(&self, distance_m: f64, freq: Hertz) -> Db;
}

/// Free-space path loss (Friis): `20·log₁₀(4πd/λ)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreeSpace;

/// Distance floor: below 1 m the far-field formulas are meaningless, so
/// all models clamp (also avoids log(0)).
const MIN_DISTANCE_M: f64 = 1.0;

impl PathLoss for FreeSpace {
    fn loss(&self, distance_m: f64, freq: Hertz) -> Db {
        let d = distance_m.max(MIN_DISTANCE_M);
        let lambda = freq.wavelength_m();
        Db(20.0 * (4.0 * std::f64::consts::PI * d / lambda).log10())
    }
}

/// Log-distance model: free-space up to a reference distance, then a
/// configurable exponent. Exponent 2 = free space; 2.7–3.5 = urban;
/// 4–6 = indoor obstructed.
#[derive(Clone, Copy, Debug)]
pub struct LogDistance {
    /// Reference distance in metres (usually 1 m).
    pub reference_m: f64,
    /// Path-loss exponent beyond the reference distance.
    pub exponent: f64,
}

impl LogDistance {
    /// A typical indoor-office parameterisation (exponent 3.0).
    pub fn indoor() -> Self {
        LogDistance {
            reference_m: 1.0,
            exponent: 3.0,
        }
    }

    /// A typical outdoor-urban parameterisation (exponent 2.9).
    pub fn urban() -> Self {
        LogDistance {
            reference_m: 1.0,
            exponent: 2.9,
        }
    }
}

impl PathLoss for LogDistance {
    fn loss(&self, distance_m: f64, freq: Hertz) -> Db {
        let d = distance_m.max(MIN_DISTANCE_M);
        let ref_loss = FreeSpace.loss(self.reference_m, freq);
        if d <= self.reference_m {
            return ref_loss;
        }
        ref_loss + Db(10.0 * self.exponent * (d / self.reference_m).log10())
    }
}

/// Two-ray ground-reflection model for long outdoor links: beyond the
/// crossover distance the loss grows with d⁴ and becomes independent of
/// frequency; below it, free space applies.
#[derive(Clone, Copy, Debug)]
pub struct TwoRayGround {
    /// Transmitter antenna height, metres.
    pub tx_height_m: f64,
    /// Receiver antenna height, metres.
    pub rx_height_m: f64,
}

impl TwoRayGround {
    /// Crossover distance `4π·ht·hr/λ`.
    pub fn crossover_m(&self, freq: Hertz) -> f64 {
        4.0 * std::f64::consts::PI * self.tx_height_m * self.rx_height_m / freq.wavelength_m()
    }
}

impl PathLoss for TwoRayGround {
    fn loss(&self, distance_m: f64, freq: Hertz) -> Db {
        let d = distance_m.max(MIN_DISTANCE_M);
        let dc = self.crossover_m(freq);
        if d < dc {
            FreeSpace.loss(d, freq)
        } else {
            // PL = 40 log d − 20 log(ht·hr); continuous-enough at dc for
            // simulation purposes.
            Db(40.0 * d.log10() - 20.0 * (self.tx_height_m * self.rx_height_m).log10())
        }
    }
}

/// Indoor model: log-distance plus a fixed loss for every wall the
/// direct ray crosses — the §6 "structures built using steel
/// reinforcing materials" black-spot mechanism.
#[derive(Clone, Debug, Default)]
pub struct IndoorWalls {
    /// The base distance-dependent model.
    pub base: Option<LogDistance>,
    /// The wall layout.
    pub walls: Vec<Wall>,
}

impl IndoorWalls {
    /// Creates an indoor model over the given walls with the standard
    /// indoor exponent.
    pub fn new(walls: Vec<Wall>) -> Self {
        IndoorWalls {
            base: Some(LogDistance::indoor()),
            walls,
        }
    }

    /// Total loss between two *positions* (geometry-aware, unlike the
    /// scalar [`PathLoss`] interface).
    pub fn loss_between(&self, from: Point, to: Point, freq: Hertz) -> Db {
        let base = self.base.unwrap_or(LogDistance {
            reference_m: 1.0,
            exponent: 2.0,
        });
        let mut total = base.loss(from.distance_to(to), freq);
        for w in &self.walls {
            if w.crossed_by(from, to) {
                total = total + Db(w.loss_db);
            }
        }
        total
    }
}

/// Log-normal shadowing: adds a zero-mean Gaussian (in dB) with the
/// given σ to any base model. The draw is *deterministic per link* —
/// hashed from the endpoints — so a given wall/desk arrangement yields
/// a stable shadow map (black spots stay where they are), which is what
/// the §6 coverage experiment needs.
#[derive(Clone, Copy, Debug)]
pub struct Shadowing<M> {
    /// The underlying distance model.
    pub base: M,
    /// Standard deviation of the shadowing term, dB (typically 4–12).
    pub sigma_db: f64,
    /// Seed mixed into the per-link hash (scenario-level).
    pub seed: u64,
}

impl<M> Shadowing<M> {
    /// Deterministic standard-normal draw for a (from, to) link.
    fn unit_normal_for_link(&self, a: Point, b: Point) -> f64 {
        // Hash both endpoints symmetrically so A→B and B→A shadow alike
        // (real shadowing is reciprocal).
        let q = |v: f64| (v * 8.0).round() as i64 as u64;
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for part in [
            q(a.x + b.x),
            q(a.y + b.y),
            q(a.z + b.z),
            q(a.x * b.x + a.y * b.y),
        ] {
            h ^= part.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = h.rotate_left(23).wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        // Two 32-bit halves → Box-Muller.
        let u1 = ((h >> 32) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        let u2 = ((h & 0xFFFF_FFFF) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Loss between two positions including the shadowing term.
    pub fn loss_between(&self, from: Point, to: Point, freq: Hertz) -> Db
    where
        M: PathLoss,
    {
        let base = self.base.loss(from.distance_to(to), freq);
        base + Db(self.sigma_db * self.unit_normal_for_link(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f24() -> Hertz {
        Hertz::from_ghz(2.4)
    }

    #[test]
    fn free_space_reference_values() {
        // FSPL at 1 m, 2.4 GHz ≈ 40.05 dB.
        let l = FreeSpace.loss(1.0, f24());
        assert!((l.value() - 40.05).abs() < 0.1, "{l}");
        // At 100 m ≈ 80.05 dB (20 dB per decade).
        let l100 = FreeSpace.loss(100.0, f24());
        assert!((l100.value() - 80.05).abs() < 0.1, "{l100}");
    }

    #[test]
    fn free_space_20db_per_decade() {
        let l10 = FreeSpace.loss(10.0, f24()).value();
        let l100 = FreeSpace.loss(100.0, f24()).value();
        assert!((l100 - l10 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn higher_frequency_higher_loss() {
        let l24 = FreeSpace.loss(50.0, Hertz::from_ghz(2.4)).value();
        let l5 = FreeSpace.loss(50.0, Hertz::from_ghz(5.25)).value();
        // 5 GHz loses ~6.8 dB more — why 802.11a has shorter range (§4.3).
        assert!((l5 - l24 - 6.8).abs() < 0.2, "{l5} vs {l24}");
    }

    #[test]
    fn log_distance_exponent() {
        let m = LogDistance {
            reference_m: 1.0,
            exponent: 3.5,
        };
        let l10 = m.loss(10.0, f24()).value();
        let l100 = m.loss(100.0, f24()).value();
        assert!((l100 - l10 - 35.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_matches_free_space_at_reference() {
        let m = LogDistance::indoor();
        assert!((m.loss(1.0, f24()).value() - FreeSpace.loss(1.0, f24()).value()).abs() < 1e-9);
        assert!((m.loss(0.5, f24()).value() - FreeSpace.loss(1.0, f24()).value()).abs() < 1e-9);
    }

    #[test]
    fn monotonicity_of_all_models() {
        let models: Vec<Box<dyn PathLoss>> = vec![
            Box::new(FreeSpace),
            Box::new(LogDistance::indoor()),
            Box::new(LogDistance::urban()),
            Box::new(TwoRayGround {
                tx_height_m: 10.0,
                rx_height_m: 1.5,
            }),
        ];
        for m in &models {
            let mut prev = f64::NEG_INFINITY;
            for d in [1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0, 10_000.0, 50_000.0] {
                let l = m.loss(d, f24()).value();
                assert!(l >= prev - 1e-9, "non-monotone at {d}");
                prev = l;
            }
        }
    }

    #[test]
    fn two_ray_crossover_and_d4() {
        let m = TwoRayGround {
            tx_height_m: 30.0,
            rx_height_m: 1.5,
        };
        let dc = m.crossover_m(f24());
        assert!(dc > 1000.0, "dc = {dc}");
        // Below crossover, equals free space.
        assert!((m.loss(100.0, f24()).value() - FreeSpace.loss(100.0, f24()).value()).abs() < 1e-9);
        // Beyond crossover, 40 dB per decade.
        let d1 = dc * 2.0;
        let d2 = dc * 20.0;
        let diff = m.loss(d2, f24()).value() - m.loss(d1, f24()).value();
        assert!((diff - 40.0).abs() < 1e-9, "{diff}");
    }

    #[test]
    fn indoor_walls_add_attenuation() {
        let wall = Wall::new(Point::new(5.0, -10.0), Point::new(5.0, 10.0), 8.0);
        let model = IndoorWalls::new(vec![wall]);
        let a = Point::new(0.0, 0.0);
        let through = Point::new(10.0, 0.0);
        let clear = Point::new(0.0, 10.0);
        let l_through = model.loss_between(a, through, f24()).value();
        let l_clear = model.loss_between(a, clear, f24()).value();
        // Same distance, but one path crosses the wall.
        assert!((l_through - l_clear - 8.0).abs() < 1e-9);
    }

    #[test]
    fn shadowing_is_deterministic_and_reciprocal() {
        let m = Shadowing {
            base: LogDistance::indoor(),
            sigma_db: 8.0,
            seed: 42,
        };
        let a = Point::new(0.0, 0.0);
        let b = Point::new(30.0, 14.0);
        let l1 = m.loss_between(a, b, f24());
        let l2 = m.loss_between(a, b, f24());
        assert_eq!(l1.value(), l2.value());
        let rev = m.loss_between(b, a, f24());
        assert!((l1.value() - rev.value()).abs() < 1e-9, "not reciprocal");
    }

    #[test]
    fn shadowing_varies_across_links_with_right_spread() {
        let m = Shadowing {
            base: FreeSpace,
            sigma_db: 8.0,
            seed: 7,
        };
        let a = Point::new(0.0, 0.0);
        let d = 50.0;
        let base = FreeSpace.loss(d, f24()).value();
        let mut devs = Vec::new();
        for i in 0..500 {
            let angle = i as f64 * 0.02;
            let b = Point::new(d * angle.cos(), d * angle.sin());
            devs.push(m.loss_between(a, b, f24()).value() - base);
        }
        let mean: f64 = devs.iter().sum::<f64>() / devs.len() as f64;
        let sd = (devs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / devs.len() as f64).sqrt();
        assert!(mean.abs() < 1.5, "mean {mean}");
        assert!((sd - 8.0).abs() < 1.5, "sd {sd}");
    }
}
