//! Shared helpers for the figure/table benches.
//!
//! Every bench target in this crate regenerates one figure or table of
//! the source text: it prints the series/report (the reproduction) and
//! then times the underlying simulation kernel with Criterion.

use criterion::Criterion;
use wn_core::experiment::ExperimentReport;
use wn_sim::stats::Figure;

/// Prints a regenerated figure as an aligned table.
pub fn print_figure(fig: &Figure) {
    println!("\n{}", fig.to_table());
}

/// Prints an experiment report and asserts it reproduced the paper.
pub fn print_report(report: &ExperimentReport) {
    println!("{}", report.to_markdown());
    assert!(
        report.passed(),
        "experiment {} did not reproduce",
        report.id
    );
}

/// A Criterion instance tuned for heavyweight simulation kernels.
pub fn criterion_fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}
