//! TKIP per-packet key mixing (IEEE 802.11i §8.3.2.5, structurally
//! faithful).
//!
//! §5.2: "TKIP employs a per-packet key system that was radically more
//! secure than the fixed key used in the WEP system." The mixing takes
//! the 128-bit temporal key, the transmitter address and a 48-bit packet
//! sequence counter (TSC) and produces a fresh 128-bit RC4 key per
//! packet, with the first three bytes formatted to avoid the WEP weak-IV
//! classes.
//!
//! # Substitution note (recorded in DESIGN.md)
//!
//! The standard's 16-bit S-box table is reproduced here *derived from
//! the AES S-box* (`S(x) = (mul2(sbox[x]) << 8) | sbox[x]` pattern)
//! rather than pasted from the standard. The construction preserves all
//! properties the simulation relies on: nonlinearity, per-packet key
//! uniqueness, and the weak-IV-avoiding byte layout. Bit-for-bit interop
//! with real TKIP hardware is *not* claimed (and is irrelevant here —
//! both ends of every simulated link use this implementation).

use crate::aes::gf_mul_pub as gf_mul;

/// The 48-bit TKIP sequence counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Tsc(pub u64);

impl Tsc {
    /// Increments, wrapping at 2⁴⁸ (which would force rekeying in real
    /// deployments).
    pub fn next(self) -> Tsc {
        Tsc((self.0 + 1) & 0xFFFF_FFFF_FFFF)
    }

    fn lo16(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    fn hi32(self) -> u32 {
        ((self.0 >> 16) & 0xFFFF_FFFF) as u32
    }
}

/// 16-bit S-box lookup built from the AES S-box (see module docs).
fn sbox16(x: u16) -> u16 {
    fn half(b: u8) -> u16 {
        let s = aes_sbox(b);
        ((gf_mul(s, 2) as u16) << 8) | s as u16
    }
    half((x & 0xFF) as u8) ^ half((x >> 8) as u8).rotate_left(8)
}

fn aes_sbox(b: u8) -> u8 {
    // Reuse the AES crate's derived S-box via a tiny local cache.
    use std::sync::OnceLock;
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(crate::aes::sbox_table)[b as usize]
}

/// Phase-1 output: 80 bits mixed from temporal key, TA and TSC upper bits.
pub type Ttak = [u16; 5];

/// Phase 1: mixes the temporal key, transmitter address and the upper
/// 32 bits of the TSC. Changes only once every 2¹⁶ packets.
pub fn phase1(tk: &[u8; 16], ta: &[u8; 6], tsc: Tsc) -> Ttak {
    let iv32 = tsc.hi32();
    let mut p = [
        (iv32 & 0xFFFF) as u16,
        (iv32 >> 16) as u16,
        u16::from_le_bytes([ta[0], ta[1]]),
        u16::from_le_bytes([ta[2], ta[3]]),
        u16::from_le_bytes([ta[4], ta[5]]),
    ];
    let tk16 = |i: usize| u16::from_le_bytes([tk[2 * (i % 8)], tk[2 * (i % 8) + 1]]);
    for i in 0..8u16 {
        let j = 2 * (i & 1) as usize;
        p[0] = p[0].wrapping_add(sbox16(p[4] ^ tk16(j)));
        p[1] = p[1].wrapping_add(sbox16(p[0] ^ tk16(2 + j)));
        p[2] = p[2].wrapping_add(sbox16(p[1] ^ tk16(4 + j)));
        p[3] = p[3].wrapping_add(sbox16(p[2] ^ tk16(6 + j)));
        p[4] = p[4].wrapping_add(sbox16(p[3] ^ tk16(j))).wrapping_add(i);
    }
    p
}

/// Phase 2: mixes the phase-1 output with the low 16 TSC bits to produce
/// the 16-byte per-packet RC4 key ("WEP seed").
///
/// The first three bytes follow the standard's weak-IV-avoiding layout:
/// `[tsc_hi8, (tsc_hi8 | 0x20) & 0x7F, tsc_lo8]`.
pub fn phase2(tk: &[u8; 16], ttak: &Ttak, tsc: Tsc) -> [u8; 16] {
    let iv16 = tsc.lo16();
    let mut ppk = [
        ttak[0],
        ttak[1],
        ttak[2],
        ttak[3],
        ttak[4],
        ttak[4].wrapping_add(iv16),
    ];
    let tk16 = |i: usize| u16::from_le_bytes([tk[2 * i], tk[2 * i + 1]]);

    // 96-bit bijective mixing (S-box substitutions plus additions).
    ppk[0] = ppk[0].wrapping_add(sbox16(ppk[5] ^ tk16(0)));
    ppk[1] = ppk[1].wrapping_add(sbox16(ppk[0] ^ tk16(1)));
    ppk[2] = ppk[2].wrapping_add(sbox16(ppk[1] ^ tk16(2)));
    ppk[3] = ppk[3].wrapping_add(sbox16(ppk[2] ^ tk16(3)));
    ppk[4] = ppk[4].wrapping_add(sbox16(ppk[3] ^ tk16(4)));
    ppk[5] = ppk[5].wrapping_add(sbox16(ppk[4] ^ tk16(5)));
    ppk[0] = ppk[0].wrapping_add((ppk[5] ^ tk16(6)).rotate_right(1));
    ppk[1] = ppk[1].wrapping_add((ppk[0] ^ tk16(7)).rotate_right(1));
    ppk[2] = ppk[2].wrapping_add(ppk[1].rotate_right(1));
    ppk[3] = ppk[3].wrapping_add(ppk[2].rotate_right(1));
    ppk[4] = ppk[4].wrapping_add(ppk[3].rotate_right(1));
    ppk[5] = ppk[5].wrapping_add(ppk[4].rotate_right(1));

    let hi8 = (iv16 >> 8) as u8;
    let mut key = [0u8; 16];
    key[0] = hi8;
    key[1] = (hi8 | 0x20) & 0x7F;
    key[2] = (iv16 & 0xFF) as u8;
    key[3] = ((ppk[5] ^ tk16(0)) >> 1) as u8;
    for i in 0..6 {
        key[4 + 2 * i] = (ppk[i] & 0xFF) as u8;
        key[5 + 2 * i] = (ppk[i] >> 8) as u8;
    }
    key
}

/// Convenience: full two-phase mixing for one packet.
pub fn per_packet_key(tk: &[u8; 16], ta: &[u8; 6], tsc: Tsc) -> [u8; 16] {
    let ttak = phase1(tk, ta, tsc);
    phase2(tk, &ttak, tsc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TK: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F,
    ];
    const TA: [u8; 6] = [0x02, 0x00, 0x00, 0xBE, 0xEF, 0x01];

    #[test]
    fn deterministic() {
        assert_eq!(
            per_packet_key(&TK, &TA, Tsc(42)),
            per_packet_key(&TK, &TA, Tsc(42))
        );
    }

    #[test]
    fn consecutive_packets_get_distinct_keys() {
        // The whole point of TKIP: no two packets share an RC4 key.
        let mut seen = std::collections::HashSet::new();
        let mut tsc = Tsc(0);
        for _ in 0..10_000 {
            assert!(
                seen.insert(per_packet_key(&TK, &TA, tsc)),
                "key reuse at {tsc:?}"
            );
            tsc = tsc.next();
        }
    }

    #[test]
    fn weak_iv_layout_enforced() {
        // key[1] must have bit5 set and bit7 clear, dodging the FMS
        // weak-IV classes of the form (A+3, N-1, X).
        for raw in [0u64, 1, 0xFF, 0x100, 0xFFFF, 0x10000, 0xABCDEF] {
            let k = per_packet_key(&TK, &TA, Tsc(raw));
            assert_eq!(k[1] & 0x20, 0x20, "bit5 clear for tsc {raw:#x}");
            assert_eq!(k[1] & 0x80, 0x00, "bit7 set for tsc {raw:#x}");
        }
    }

    #[test]
    fn phase1_constant_within_iv16_window() {
        // Phase 1 depends only on the upper 32 TSC bits.
        let a = phase1(&TK, &TA, Tsc(0x0001_0000));
        let b = phase1(&TK, &TA, Tsc(0x0001_FFFF));
        assert_eq!(a, b);
        let c = phase1(&TK, &TA, Tsc(0x0002_0000));
        assert_ne!(a, c);
    }

    #[test]
    fn transmitter_address_separates_streams() {
        // STA→AP and AP→STA use the same TK but different TAs, so their
        // per-packet keys must differ.
        let ta2: [u8; 6] = [0x02, 0x00, 0x00, 0xBE, 0xEF, 0x02];
        assert_ne!(
            per_packet_key(&TK, &TA, Tsc(7)),
            per_packet_key(&TK, &ta2, Tsc(7))
        );
    }

    #[test]
    fn temporal_key_sensitivity() {
        let mut tk2 = TK;
        tk2[15] ^= 0x01;
        assert_ne!(
            per_packet_key(&TK, &TA, Tsc(7)),
            per_packet_key(&tk2, &TA, Tsc(7))
        );
    }

    #[test]
    fn tsc_wraps_at_48_bits() {
        assert_eq!(Tsc(0xFFFF_FFFF_FFFF).next(), Tsc(0));
    }

    #[test]
    fn keys_look_uniform() {
        // Rough balance check on the mixed bytes (positions 3..16).
        let mut ones = 0u32;
        let mut bits = 0u32;
        for t in 0..2000u64 {
            let k = per_packet_key(&TK, &TA, Tsc(t));
            for &b in &k[3..] {
                ones += b.count_ones();
                bits += 8;
            }
        }
        let ratio = ones as f64 / bits as f64;
        assert!((0.47..0.53).contains(&ratio), "bit ratio {ratio}");
    }
}
