//! The discrete-event engine.
//!
//! A [`Simulation`] owns a user-defined [`World`] (all mutable model
//! state) and a [`Scheduler`] (the pending-event queue). The main loop
//! repeatedly pops the earliest event and hands it to
//! [`World::handle`], which may mutate the world and schedule further
//! events. Events scheduled for the same instant are delivered in the
//! order they were scheduled (FIFO), which makes runs fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// Events processed by every simulation in this process, across threads.
///
/// Updated in bulk at the end of each `run*` loop (not per event) so the
/// hot path stays free of atomics; campaign-level tooling reads it to
/// report aggregate events/sec.
static GLOBAL_PROCESSED: AtomicU64 = AtomicU64::new(0);

/// Total events delivered through `run`/`run_until`/`run_bounded` by all
/// simulations in this process since start-up.
pub fn global_events_processed() -> u64 {
    GLOBAL_PROCESSED.load(AtomicOrdering::Relaxed)
}

/// Packs an event's `(time, seq)` ordering pair into a single `u128`.
///
/// The timestamp occupies the high 64 bits and the FIFO sequence number
/// the low 64, so one integer compare reproduces the lexicographic
/// `(SimTime, seq)` order exactly — earlier time first, then lower seq.
/// This halves the comparison work on every heap sift in the engine's
/// hottest loop.
#[inline]
pub fn event_key(at: SimTime, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

/// Recovers the timestamp from a packed [`event_key`].
#[inline]
pub fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

/// Model state driven by the engine.
///
/// Implementors own every piece of mutable simulation state and react to
/// events by mutating themselves and scheduling follow-up events.
pub trait World {
    /// The domain-specific event type.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// A scheduled entry in the event queue.
struct Scheduled<E> {
    /// Packed `(time, seq)` ordering key — see [`event_key`].
    key: u128,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first. The low `seq` bits break ties FIFO for
        // determinism.
        other.key.cmp(&self.key)
    }
}

/// Which event-queue implementation a [`Scheduler`] drains.
///
/// Both back ends order events by the same packed [`event_key`], so
/// any deterministic simulation produces byte-identical traces and
/// metrics under either — the differential tests in `wn-check` and
/// `tests/determinism.rs` enforce exactly that. The timer wheel
/// ([`crate::wheel`]) is the default: it trades comparison sifts for
/// O(1) bucketing and wins on dense MAC timer workloads with large
/// pending queues, and a 500-seed dual-scheduler fuzz soak pins it
/// byte-identical to the heap. The binary heap stays selectable as the
/// reference implementation (`--scheduler heap` on the CLI tools).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// `std::collections::BinaryHeap` — the reference back end.
    BinaryHeap,
    /// Hierarchical timer wheel / calendar queue — the default.
    #[default]
    TimerWheel,
}

impl SchedulerKind {
    /// Both back ends, reference first — for differential sweeps.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::BinaryHeap, SchedulerKind::TimerWheel];

    /// Short stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::BinaryHeap => "heap",
            SchedulerKind::TimerWheel => "wheel",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binaryheap" => Ok(SchedulerKind::BinaryHeap),
            "wheel" | "timer-wheel" | "timerwheel" => Ok(SchedulerKind::TimerWheel),
            other => Err(format!("unknown scheduler kind '{other}' (heap|wheel)")),
        }
    }
}

/// The pluggable queue behind a [`Scheduler`].
enum Backend<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    // Boxed: the wheel's inline slot arrays dwarf the heap variant.
    Wheel(Box<TimerWheel<E>>),
}

/// Marks a pop in a recorded scheduler op stream — see
/// [`Scheduler::record_ops`]. Never collides with a real [`event_key`]
/// in practice: it would need both the maximum timestamp and the
/// maximum sequence number.
pub const OP_POP: u128 = u128::MAX;

/// The pending-event queue plus the virtual clock.
pub struct Scheduler<E> {
    backend: Backend<E>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
    /// When recording, every push appends its key and every pop appends
    /// [`OP_POP`] — the stream [`replay_ops`] consumes.
    op_log: Option<Vec<u128>>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero using the default back
    /// end ([`SchedulerKind::TimerWheel`]).
    pub fn new() -> Self {
        Self::with_kind(SchedulerKind::default())
    }

    /// Creates an empty scheduler at time zero on the given back end.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        Scheduler {
            backend: match kind {
                SchedulerKind::BinaryHeap => Backend::Heap(BinaryHeap::new()),
                SchedulerKind::TimerWheel => Backend::Wheel(Box::default()),
            },
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
            op_log: None,
        }
    }

    /// Starts recording the scheduler op stream (pushed keys and pop
    /// markers). Used by the bench suite to replay a workload's exact
    /// scheduling behaviour through both back ends in isolation.
    pub fn record_ops(&mut self) {
        self.op_log = Some(Vec::new());
    }

    /// Takes the recorded op stream, leaving recording disabled.
    pub fn take_op_log(&mut self) -> Vec<u128> {
        self.op_log.take().unwrap_or_default()
    }

    /// Which back end this scheduler drains.
    pub fn kind(&self) -> SchedulerKind {
        match self.backend {
            Backend::Heap(_) => SchedulerKind::BinaryHeap,
            Backend::Wheel(_) => SchedulerKind::TimerWheel,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Wheel(w) => w.len(),
        }
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — delivering an event before the
    /// current instant would violate causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let key = event_key(at, seq);
        debug_assert_ne!(key, OP_POP, "event key collides with the pop marker");
        if let Some(log) = &mut self.op_log {
            log.push(key);
        }
        match &mut self.backend {
            Backend::Heap(h) => h.push(Scheduled { key, event }),
            Backend::Wheel(w) => w.push(key, event),
        }
    }

    /// Schedules `event` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedules `event` at the current instant (delivered after all
    /// events already queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|s| key_time(s.key)),
            Backend::Wheel(w) => w.peek_key().map(key_time),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let (key, event) = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|s| (s.key, s.event))?,
            Backend::Wheel(w) => w.pop()?,
        };
        if let Some(log) = &mut self.op_log {
            log.push(OP_POP);
        }
        let at = key_time(key);
        debug_assert!(at >= self.now, "queue yielded an event in the past");
        self.now = at;
        Some((at, event))
    }
}

/// Replays a recorded scheduler op stream (see
/// [`Scheduler::record_ops`]) through the chosen back end with no event
/// payloads and no world, measuring pure queue throughput on the
/// workload's exact push/pop pattern.
///
/// Returns `(pops, fnv)` where `fnv` is the FNV-1a hash of every popped
/// key in pop order — identical across back ends if and only if they
/// drain the stream in the same total order.
pub fn replay_ops(kind: SchedulerKind, ops: &[u128]) -> (u64, u64) {
    let mut heap: BinaryHeap<std::cmp::Reverse<u128>> = BinaryHeap::new();
    let mut wheel: TimerWheel<()> = TimerWheel::new();
    let mut pops = 0u64;
    let mut fnv = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |key: u128| {
        for b in key.to_le_bytes() {
            fnv ^= u64::from(b);
            fnv = fnv.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &op in ops {
        if op == OP_POP {
            let key = match kind {
                SchedulerKind::BinaryHeap => heap.pop().map(|r| r.0),
                SchedulerKind::TimerWheel => wheel.pop().map(|(k, ())| k),
            };
            let key = key.expect("op stream pops an empty queue");
            fold(key);
            pops += 1;
        } else {
            match kind {
                SchedulerKind::BinaryHeap => heap.push(std::cmp::Reverse(op)),
                SchedulerKind::TimerWheel => wheel.push(op, ()),
            }
        }
    }
    (pops, fnv)
}

/// A complete simulation: a world plus its scheduler.
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    processed: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation around `world` with an empty event queue on
    /// the default scheduler ([`SchedulerKind::TimerWheel`]).
    pub fn new(world: W) -> Self {
        Self::with_scheduler(world, SchedulerKind::default())
    }

    /// Creates a simulation around `world` draining the given scheduler
    /// back end. Both kinds deliver identical schedules; see
    /// [`SchedulerKind`].
    pub fn with_scheduler(world: W, kind: SchedulerKind) -> Self {
        Simulation {
            world,
            sched: Scheduler::with_kind(kind),
            processed: 0,
        }
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup and inspection).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Shared access to the scheduler.
    pub fn scheduler(&self) -> &Scheduler<W::Event> {
        &self.sched
    }

    /// Mutable access to the scheduler (for seeding initial events).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Delivers the next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((now, ev)) => {
                self.world.handle(now, ev, &mut self.sched);
                self.processed += 1;
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains. Returns events processed.
    pub fn run(&mut self) -> u64 {
        let start = self.processed;
        while self.step() {}
        let n = self.processed - start;
        GLOBAL_PROCESSED.fetch_add(n, AtomicOrdering::Relaxed);
        n
    }

    /// Runs until the queue drains or virtual time would pass `deadline`.
    ///
    /// Events stamped exactly at `deadline` are delivered; later ones
    /// remain queued. Returns events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.processed;
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        let n = self.processed - start;
        GLOBAL_PROCESSED.fetch_add(n, AtomicOrdering::Relaxed);
        n
    }

    /// Runs until at most `limit` further events have been processed.
    ///
    /// Returns `true` if the queue drained before the limit was hit —
    /// useful as a watchdog against accidental event storms in tests.
    pub fn run_bounded(&mut self, limit: u64) -> bool {
        let start = self.processed;
        let mut drained = false;
        for _ in 0..limit {
            if !self.step() {
                drained = true;
                break;
            }
        }
        GLOBAL_PROCESSED.fetch_add(self.processed - start, AtomicOrdering::Relaxed);
        drained || self.sched.pending() == 0
    }

    /// Consumes the simulation, returning the final world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order and times of delivered tags.
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.scheduler_mut().schedule_at(SimTime::from_millis(3), 3);
        sim.scheduler_mut().schedule_at(SimTime::from_millis(1), 1);
        sim.scheduler_mut().schedule_at(SimTime::from_millis(2), 2);
        sim.run();
        let tags: Vec<u32> = sim.world().seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        let t = SimTime::from_micros(10);
        for tag in 0..100 {
            sim.scheduler_mut().schedule_at(t, tag);
        }
        sim.run();
        let tags: Vec<u32> = sim.world().seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.scheduler_mut().schedule_at(SimTime::from_secs(5), 0);
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), s: &mut Scheduler<()>) {
                s.schedule_at(now - crate::SimDuration::from_nanos(1), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.scheduler_mut().schedule_at(SimTime::from_secs(1), ());
        sim.run();
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for ms in 1..=10 {
            sim.scheduler_mut()
                .schedule_at(SimTime::from_millis(ms), ms as u32);
        }
        let n = sim.run_until(SimTime::from_millis(4));
        assert_eq!(n, 4);
        assert_eq!(sim.scheduler().pending(), 6);
        // Deadline-inclusive semantics: the event at exactly 4 ms ran.
        assert_eq!(sim.world().seen.last().unwrap().1, 4);
    }

    #[test]
    fn run_bounded_detects_event_storm() {
        struct Storm;
        impl World for Storm {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), s: &mut Scheduler<()>) {
                s.schedule_in(SimDuration::from_nanos(1), ());
            }
        }
        let mut sim = Simulation::new(Storm);
        sim.scheduler_mut().schedule_now(());
        assert!(!sim.run_bounded(1000), "storm should not drain");
    }

    #[test]
    fn self_scheduling_chain_runs_to_completion() {
        struct Chain {
            remaining: u32,
        }
        impl World for Chain {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), s: &mut Scheduler<()>) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    s.schedule_in(SimDuration::from_micros(100), ());
                }
            }
        }
        let mut sim = Simulation::new(Chain { remaining: 50 });
        sim.scheduler_mut().schedule_now(());
        let n = sim.run();
        assert_eq!(n, 51);
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        struct Nest {
            order: Vec<u32>,
        }
        impl World for Nest {
            type Event = u32;
            fn handle(&mut self, _: SimTime, ev: u32, s: &mut Scheduler<u32>) {
                self.order.push(ev);
                if ev == 1 {
                    s.schedule_now(99);
                }
            }
        }
        let mut sim = Simulation::new(Nest { order: vec![] });
        sim.scheduler_mut().schedule_at(SimTime::ZERO, 1);
        sim.scheduler_mut().schedule_at(SimTime::ZERO, 2);
        sim.run();
        assert_eq!(sim.world().order, vec![1, 2, 99]);
    }

    #[test]
    fn packed_key_orders_like_tuple() {
        let pairs = [
            (SimTime::ZERO, 0u64),
            (SimTime::ZERO, 1),
            (SimTime::from_nanos(1), 0),
            (SimTime::from_millis(7), 3),
            (SimTime::from_millis(7), 4),
            (SimTime::from_nanos(u64::MAX), u64::MAX),
        ];
        for &(t1, s1) in &pairs {
            for &(t2, s2) in &pairs {
                assert_eq!(
                    event_key(t1, s1).cmp(&event_key(t2, s2)),
                    (t1, s1).cmp(&(t2, s2)),
                    "key order diverged for ({t1:?},{s1}) vs ({t2:?},{s2})"
                );
            }
        }
    }

    #[test]
    fn key_time_recovers_timestamp() {
        for t in [0u64, 1, 999, u64::MAX] {
            assert_eq!(
                key_time(event_key(SimTime::from_nanos(t), 42)),
                SimTime::from_nanos(t)
            );
        }
    }

    #[test]
    fn global_counter_accumulates_run_deltas() {
        let before = global_events_processed();
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for i in 0..7 {
            sim.scheduler_mut()
                .schedule_at(SimTime::from_millis(i), i as u32);
        }
        sim.run();
        assert!(global_events_processed() >= before + 7);
    }

    /// A world whose handler re-schedules pseudo-random follow-ups, so
    /// the delivered sequence exercises interleaved push/pop on the
    /// queue. Used to compare back ends event-for-event.
    struct Churn {
        rng: crate::rng::Rng,
        seen: Vec<(SimTime, u32)>,
        budget: u32,
    }

    impl World for Churn {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, s: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            for _ in 0..(self.rng.next_u64() % 3) {
                // Delays from sub-tick to multi-level: 0 ns .. ~134 ms.
                let d = self.rng.next_u64() % (1 << 27);
                s.schedule_in(SimDuration::from_nanos(d), self.rng.next_u64() as u32);
            }
        }
    }

    fn churn_run(kind: SchedulerKind) -> Vec<(SimTime, u32)> {
        let world = Churn {
            rng: crate::rng::Rng::new(0xABBA),
            seen: Vec::new(),
            budget: 20_000,
        };
        let mut sim = Simulation::with_scheduler(world, kind);
        for i in 0..64u32 {
            let at = SimTime::from_nanos((i as u64 * 977) % 50_000);
            sim.scheduler_mut().schedule_at(at, i);
        }
        sim.run();
        sim.into_world().seen
    }

    #[test]
    fn wheel_and_heap_deliver_identical_schedules() {
        assert_eq!(
            churn_run(SchedulerKind::BinaryHeap),
            churn_run(SchedulerKind::TimerWheel),
            "scheduler back ends diverged on a churn workload"
        );
    }

    #[test]
    fn wheel_backend_passes_ordering_and_fifo() {
        let mut sim =
            Simulation::with_scheduler(Recorder { seen: vec![] }, SchedulerKind::TimerWheel);
        assert_eq!(sim.scheduler().kind(), SchedulerKind::TimerWheel);
        // Same instant: FIFO; distinct instants spanning wheel levels:
        // time order.
        let t = SimTime::from_secs(2);
        for tag in 0..50 {
            sim.scheduler_mut().schedule_at(t, tag);
        }
        sim.scheduler_mut().schedule_at(SimTime::from_nanos(5), 100);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(7200), 101);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_millis(1), 102);
        sim.run();
        let tags: Vec<u32> = sim.world().seen.iter().map(|&(_, t)| t).collect();
        let mut expect = vec![100, 102];
        expect.extend(0..50);
        expect.push(101);
        assert_eq!(tags, expect);
    }

    #[test]
    fn kind_parses_and_labels_round_trip() {
        for kind in SchedulerKind::ALL {
            assert_eq!(kind.label().parse::<SchedulerKind>().unwrap(), kind);
        }
        assert!("calendar".parse::<SchedulerKind>().is_err());
        // The wheel earned the default via the 500-seed dual soak; the
        // heap remains the selectable reference back end.
        assert_eq!(SchedulerKind::default(), SchedulerKind::TimerWheel);
    }

    #[test]
    fn processed_and_totals_track() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for i in 0..5 {
            sim.scheduler_mut()
                .schedule_at(SimTime::from_millis(i), i as u32);
        }
        sim.run();
        assert_eq!(sim.processed(), 5);
        assert_eq!(sim.scheduler().scheduled_total(), 5);
        assert_eq!(sim.scheduler().pending(), 0);
    }
}
