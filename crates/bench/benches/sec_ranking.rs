//! SEC-RANK — regenerates the §5.2 security ranking with a live WEP
//! crack, and times the attack kernels.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::sec_ranking;
use wn_security::attacks::fms::{directed_capture, recover_key};
use wn_security::handshake::{passphrase_matches, run_handshake};
use wn_security::wep::WepKey;
use wn_security::wps::{brute_force, Registrar, WpsPin};

fn main() {
    let (fig, report) = sec_ranking();
    print_figure(&fig);
    print_report(&report);

    let key = WepKey::new(b"\x42\x13\x37\xC0\xDE").expect("5 bytes");
    let (samples, reference) = directed_capture(&key);
    bench("sec/fms_crack_40bit", || {
        let r = recover_key(&samples, 5, &reference, 3, 10_000);
        assert!(r.key.is_some());
        black_box(r.nodes_explored)
    });

    // One dictionary guess = one 4096-iteration PBKDF2 + PTK + MIC.
    let (_ptk, hs) = run_handshake(
        "correct",
        "Net",
        [2, 0xAB, 0, 0, 0, 1],
        [2, 0, 0, 0, 0, 7],
        [1; 32],
        [2; 32],
    );
    bench("sec/pbkdf2_guess", || {
        black_box(passphrase_matches(&hs, "Net", "wrong-guess"))
    });

    let reg = Registrar::new(WpsPin::from_first7(9_999_999));
    bench("sec/wps_full_search", || {
        black_box(brute_force(&reg).attempts)
    });
}
