//! Michael — TKIP's message integrity code (IEEE 802.11i §8.3.2.3).
//!
//! §5.2: WPA added "message integrity checks (to determine if an
//! attacker had captured or altered packets)". Michael is that check: a
//! deliberately lightweight 64-bit MAC designed to run on first-
//! generation WEP hardware. Its weakness (≈2²⁰ security) is why WPA
//! pairs it with countermeasures, and why CCMP replaced it.

fn xswap(x: u32) -> u32 {
    // Swap the bytes within each 16-bit half.
    ((x & 0x00FF_00FF) << 8) | ((x & 0xFF00_FF00) >> 8)
}

/// The Michael block function.
fn block(l: &mut u32, r: &mut u32) {
    *r ^= l.rotate_left(17);
    *l = l.wrapping_add(*r);
    *r ^= xswap(*l);
    *l = l.wrapping_add(*r);
    *r ^= l.rotate_left(3);
    *l = l.wrapping_add(*r);
    *r ^= l.rotate_right(2);
    *l = l.wrapping_add(*r);
}

/// Computes the 8-byte Michael MIC of `message` under a 64-bit key.
///
/// The key is the two little-endian words `(k0, k1)`; the message is
/// padded with `0x5A` and zeros to a multiple of four bytes, per spec.
pub fn michael(key: &[u8; 8], message: &[u8]) -> [u8; 8] {
    let mut l = u32::from_le_bytes(key[0..4].try_into().expect("4 bytes"));
    let mut r = u32::from_le_bytes(key[4..8].try_into().expect("4 bytes"));

    // Pad with 0x5A then 4–7 zero bytes to a multiple of four (Ferguson's
    // Michael spec — the minimum of four zeros is load-bearing).
    let mut padded = message.to_vec();
    padded.push(0x5A);
    padded.extend_from_slice(&[0, 0, 0, 0]);
    while !padded.len().is_multiple_of(4) {
        padded.push(0x00);
    }
    for chunk in padded.chunks_exact(4) {
        l ^= u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        block(&mut l, &mut r);
    }
    let mut out = [0u8; 8];
    out[0..4].copy_from_slice(&l.to_le_bytes());
    out[4..8].copy_from_slice(&r.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annex_vectors() {
        // IEEE 802.11i Annex G Michael test vectors: the chained series
        // where each MIC keys the next computation over "", "M",
        // "Mi", ... The first two links are checked here.
        let k0 = [0u8; 8];
        let m0 = michael(&k0, b"");
        assert_eq!(m0, [0x82, 0x92, 0x5c, 0x1c, 0xa1, 0xd1, 0x30, 0xb8]);
        let m1 = michael(&m0, b"M");
        assert_eq!(m1, [0x43, 0x47, 0x21, 0xca, 0x40, 0x63, 0x9b, 0x3f]);
    }

    #[test]
    fn deterministic() {
        let key = [1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(michael(&key, b"hello"), michael(&key, b"hello"));
    }

    #[test]
    fn key_sensitivity() {
        let a = michael(&[0; 8], b"frame body");
        let b = michael(&[1, 0, 0, 0, 0, 0, 0, 0], b"frame body");
        assert_ne!(a, b);
    }

    #[test]
    fn message_sensitivity_every_position() {
        let key = [9, 8, 7, 6, 5, 4, 3, 2];
        let msg = b"data data data data".to_vec();
        let good = michael(&key, &msg);
        for i in 0..msg.len() {
            let mut bad = msg.clone();
            bad[i] ^= 0x01;
            assert_ne!(michael(&key, &bad), good, "flip at {i} undetected");
        }
    }

    #[test]
    fn length_extension_is_detected() {
        // Unlike plain CRC, appending bytes changes the MIC even when
        // the appended bytes are the pad byte value.
        let key = [0xAA; 8];
        let a = michael(&key, b"abc");
        let b = michael(&key, b"abc\x5A");
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche_is_reasonable() {
        // Michael is weak, but single-bit input changes should still
        // flip a substantial number of output bits on average.
        let key = [0x55; 8];
        let base = michael(&key, b"avalanche-probe-message");
        let mut total_flips = 0u32;
        let msg = b"avalanche-probe-message".to_vec();
        for i in 0..msg.len() {
            let mut m = msg.clone();
            m[i] ^= 0x80;
            let out = michael(&key, &m);
            total_flips += base
                .iter()
                .zip(out.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum::<u32>();
        }
        let avg = total_flips as f64 / msg.len() as f64;
        assert!(avg > 16.0, "average flips {avg} too low for a 64-bit MIC");
    }
}
