//! FIG-1.8 — regenerates the satellite/cellular comparison and times
//! the drive-test handoff scan plus the Erlang-B solver.

use criterion::{black_box, Criterion};
use wn_bench::{criterion_fast, print_figure, print_report};
use wn_core::scenarios::fig_1_8_wwan;
use wn_phy::geom::Point;
use wn_wwan::cellular::{erlang_b_capacity, CellGrid};

fn bench(c: &mut Criterion) {
    let (fig, report) = fig_1_8_wwan();
    print_figure(&fig);
    print_report(&report);

    c.bench_function("fig08/drive_test_37_cells", |b| {
        let grid = CellGrid::hex(3, 1500.0);
        b.iter(|| {
            black_box(grid.drive_test(Point::new(-8000.0, 100.0), Point::new(8000.0, 100.0), 2000))
        })
    });

    c.bench_function("fig08/erlang_b_inverse", |b| {
        b.iter(|| black_box(erlang_b_capacity(60, 0.02)))
    });
}

fn main() {
    let mut c = criterion_fast();
    bench(&mut c);
    c.final_summary();
}
