//! WPA2 with CCMP (§5.2).
//!
//! "One of the most significant changes between WPA and WPA2 was the
//! mandatory use of AES algorithms and the introduction of CCMP …
//! as a replacement for TKIP."
//!
//! CCMP: AES-CCM with an 8-byte MIC, a 13-byte nonce built from the
//! transmitter address and a 48-bit packet number (PN), the MAC header
//! authenticated as associated data, and strict PN replay ordering.

use wn_crypto::aes::Aes;
use wn_crypto::ccm::{self, NONCE_LEN};

/// A CCMP security association.
#[derive(Clone)]
pub struct CcmpSession {
    aes: Aes,
    ta: [u8; 6],
    pn: u64,
    replay_floor: Option<u64>,
}

impl std::fmt::Debug for CcmpSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CcmpSession")
            .field("pn", &self.pn)
            .finish_non_exhaustive()
    }
}

/// A CCMP-protected packet.
#[derive(Clone, Debug, PartialEq)]
pub struct CcmpPacket {
    /// 48-bit packet number, sent in clear in the CCMP header.
    pub pn: u64,
    /// AES-CCM ciphertext ‖ 8-byte MIC.
    pub ciphertext: Vec<u8>,
}

/// CCMP errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcmpError {
    /// PN not strictly increasing — replay.
    Replay,
    /// The CCM tag failed — forged or corrupted.
    BadMic,
    /// Packet too short.
    TooShort,
}

impl std::fmt::Display for CcmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcmpError::Replay => write!(f, "CCMP replay detected"),
            CcmpError::BadMic => write!(f, "CCMP MIC failure"),
            CcmpError::TooShort => write!(f, "CCMP packet too short"),
        }
    }
}

impl std::error::Error for CcmpError {}

impl CcmpSession {
    /// Creates a session from the 128-bit temporal key and TA.
    pub fn new(tk: [u8; 16], ta: [u8; 6]) -> Self {
        CcmpSession {
            aes: Aes::new(&tk),
            ta,
            pn: 1,
            replay_floor: None,
        }
    }

    /// Builds the CCMP nonce: priority ‖ TA ‖ PN48.
    fn nonce(&self, pn: u64) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        n[0] = 0; // Priority.
        n[1..7].copy_from_slice(&self.ta);
        n[7..13].copy_from_slice(&pn.to_be_bytes()[2..8]);
        n
    }

    /// Encrypts `payload`, authenticating `header` (the MAC header
    /// fields CCMP protects — so header tampering breaks the MIC).
    pub fn encrypt(&mut self, header: &[u8], payload: &[u8]) -> CcmpPacket {
        let pn = self.pn;
        self.pn += 1;
        let nonce = self.nonce(pn);
        let ciphertext = ccm::encrypt(&self.aes, &nonce, header, payload);
        CcmpPacket { pn, ciphertext }
    }

    /// Decrypts and verifies; enforces PN ordering.
    pub fn decrypt(&mut self, header: &[u8], packet: &CcmpPacket) -> Result<Vec<u8>, CcmpError> {
        if packet.ciphertext.len() < ccm::TAG_LEN {
            return Err(CcmpError::TooShort);
        }
        if let Some(floor) = self.replay_floor {
            if packet.pn <= floor {
                return Err(CcmpError::Replay);
            }
        }
        let nonce = self.nonce(packet.pn);
        let payload = ccm::decrypt(&self.aes, &nonce, header, &packet.ciphertext)
            .map_err(|_| CcmpError::BadMic)?;
        self.replay_floor = Some(packet.pn);
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TA: [u8; 6] = [2, 0, 0, 0, 0, 1];
    const HDR: &[u8] = b"fc+addrs";

    fn pair() -> (CcmpSession, CcmpSession) {
        let tk = *b"wpa2-temporal-k!";
        (CcmpSession::new(tk, TA), CcmpSession::new(tk, TA))
    }

    #[test]
    fn roundtrip() {
        let (mut tx, mut rx) = pair();
        let p = tx.encrypt(HDR, b"the modern way");
        assert_eq!(rx.decrypt(HDR, &p).unwrap(), b"the modern way");
    }

    #[test]
    fn mic_adds_eight_bytes() {
        let (mut tx, _) = pair();
        let p = tx.encrypt(HDR, b"12345");
        assert_eq!(p.ciphertext.len(), 5 + 8);
    }

    #[test]
    fn bitflip_cannot_be_compensated() {
        // The attack that worked on WEP (and annoyed TKIP) is dead:
        // there is no linear relation to exploit, any flip fails.
        let (mut tx, mut rx) = pair();
        let p = tx.encrypt(HDR, b"untouchable payload");
        for pos in 0..p.ciphertext.len() {
            let mut forged = p.clone();
            forged.ciphertext[pos] ^= 0x01;
            assert_eq!(
                rx.decrypt(HDR, &forged),
                Err(CcmpError::BadMic),
                "pos {pos}"
            );
        }
        // The original still decrypts (replay floor untouched by failures).
        assert!(rx.decrypt(HDR, &p).is_ok());
    }

    #[test]
    fn header_authenticated() {
        let (mut tx, mut rx) = pair();
        let p = tx.encrypt(b"to-ds=1,da=gateway", b"data");
        assert_eq!(
            rx.decrypt(b"to-ds=1,da=attacker", &p),
            Err(CcmpError::BadMic),
            "redirecting the header must break the MIC"
        );
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = pair();
        let p1 = tx.encrypt(HDR, b"one");
        let p2 = tx.encrypt(HDR, b"two");
        assert!(rx.decrypt(HDR, &p1).is_ok());
        assert!(rx.decrypt(HDR, &p2).is_ok());
        assert_eq!(rx.decrypt(HDR, &p1), Err(CcmpError::Replay));
    }

    #[test]
    fn nonce_unique_per_packet() {
        let (mut tx, _) = pair();
        let a = tx.encrypt(HDR, b"same");
        let b = tx.encrypt(HDR, b"same");
        assert_ne!(a.pn, b.pn);
        assert_ne!(a.ciphertext, b.ciphertext, "fresh nonce ⇒ fresh ciphertext");
    }

    #[test]
    fn different_ta_different_ciphertext() {
        let tk = *b"wpa2-temporal-k!";
        let mut a = CcmpSession::new(tk, TA);
        let mut b = CcmpSession::new(tk, [2, 0, 0, 0, 0, 2]);
        let pa = a.encrypt(HDR, b"payload");
        let pb = b.encrypt(HDR, b"payload");
        assert_ne!(pa.ciphertext, pb.ciphertext, "TA is in the nonce");
    }
}
