//! The station (STA) state machine.
//!
//! §3.1: "A station (STA) might be a PC, a laptop, a PDA, a phone or
//! whatever device having the capability to access the wireless
//! medium." This module implements the full client lifecycle:
//!
//! 1. **Scan** — dwell on each configured channel collecting beacons
//!    (passive scan) for the configured SSID.
//! 2. **Authenticate** — Open System or Shared Key (§5.1).
//! 3. **Associate** — join the BSS, receive an AID.
//! 4. **Transfer** — application payloads ride ToDS data frames via the
//!    AP; downlink FromDS frames are delivered to the application.
//! 5. **Roam** — §3.2: "As a mobile device moves out of the range of
//!    one access point, it moves into the range of another … clients
//!    can freely roam … and still maintain seamless network
//!    connection." Roaming triggers on beacon loss or on hearing a
//!    sufficiently stronger same-SSID beacon.
//! 6. **Power save** (optional) — doze between beacons, wake for the
//!    TIM, PS-Poll buffered frames out of the AP (§4.2).

use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

use crate::ie::{AssocReqBody, AssocRespBody, AuthAlgorithm, AuthBody, BeaconBody};
use crate::ssid::Ssid;
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl, Subtype};
use wn_mac80211::sim::{Command, UpperCtx, UpperLayer};
use wn_phy::units::Dbm;
use wn_sim::trace::{Level, TraceEvent};
use wn_sim::{SimDuration, SimTime};

/// Timer tag: scan dwell elapsed, hop to the next channel.
pub const TAG_SCAN: u64 = 10;
/// Timer tag: beacon watchdog tick.
pub const TAG_WATCH: u64 = 11;
/// Timer tag: application asked us to drain the outgoing queue.
pub const TAG_APP: u64 = 12;
/// Timer tag: wake from power-save doze for the next beacon.
pub const TAG_PS_WAKE: u64 = 13;
/// Timer tag: association attempt timed out.
pub const TAG_JOIN_TIMEOUT: u64 = 14;

/// STA configuration.
#[derive(Clone, Debug)]
pub struct StaConfig {
    /// The network to join.
    pub ssid: Ssid,
    /// Channels to scan.
    pub channels: Vec<u8>,
    /// Dwell time per scanned channel.
    pub scan_dwell: SimDuration,
    /// Authentication algorithm to attempt.
    pub auth: AuthAlgorithm,
    /// Shared key (Shared Key auth only).
    pub shared_key: Vec<u8>,
    /// Enable §4.2 power-save mode.
    pub power_save: bool,
    /// Active scanning: send a probe request on each scanned channel
    /// instead of waiting a full beacon interval (faster discovery).
    pub active_scan: bool,
    /// Missed-beacon count that declares the link lost.
    pub beacon_loss_limit: u32,
    /// Roam when another AP's beacon is this much stronger (dB).
    pub roam_hysteresis_db: f64,
    /// Preemptive roaming: after three serving-AP beacons weaker than
    /// this, rescan for a better AP before the link dies entirely.
    pub rescan_below_dbm: f64,
}

impl StaConfig {
    /// A default open-auth client of `ssid` scanning the given channels.
    pub fn open(ssid: Ssid, channels: Vec<u8>) -> Self {
        StaConfig {
            ssid,
            channels,
            scan_dwell: SimDuration::from_millis(120),
            auth: AuthAlgorithm::OpenSystem,
            shared_key: Vec::new(),
            power_save: false,
            active_scan: false,
            beacon_loss_limit: 4,
            roam_hysteresis_db: 6.0,
            rescan_below_dbm: -78.0,
        }
    }
}

/// The STA lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaState {
    /// Not yet started.
    Idle,
    /// Passive-scanning the channel list.
    Scanning,
    /// Authentication exchange in progress.
    Authenticating,
    /// Association exchange in progress.
    Associating,
    /// Member of a BSS, data transfer enabled.
    Associated,
}

/// Observable STA-side state shared with the scenario.
#[derive(Debug)]
pub struct StaShared {
    /// Current lifecycle state.
    pub state: StaState,
    /// Serving BSSID once associated.
    pub bssid: Option<MacAddr>,
    /// Assigned association ID.
    pub aid: u16,
    /// Application payloads awaiting transmission `(destination, data)`.
    pub outgoing: VecDeque<(MacAddr, Vec<u8>)>,
    /// Application payloads received `(time, source, data)`.
    pub delivered: Vec<(SimTime, MacAddr, Vec<u8>)>,
    /// Association history `(time, bssid)` — roaming leaves one entry
    /// per AP, from which handoff gaps are measured.
    pub assoc_events: Vec<(SimTime, MacAddr)>,
    /// MSDUs acknowledged end-to-end by the MAC.
    pub tx_ok: u64,
    /// MSDUs dropped at the retry limit.
    pub tx_fail: u64,
    /// Beacons heard from the serving AP.
    pub beacons_heard: u64,
    /// Times the STA dozed (power save).
    pub dozes: u64,
    /// PS-Polls sent.
    pub ps_polls: u64,
}

impl Default for StaShared {
    fn default() -> Self {
        StaShared {
            state: StaState::Idle,
            bssid: None,
            aid: 0,
            outgoing: VecDeque::new(),
            delivered: Vec::new(),
            assoc_events: Vec::new(),
            tx_ok: 0,
            tx_fail: 0,
            beacons_heard: 0,
            dozes: 0,
            ps_polls: 0,
        }
    }
}

/// A cloneable handle to [`StaShared`].
pub type StaSharedHandle = Arc<Mutex<StaShared>>;

struct Candidate {
    bssid: MacAddr,
    channel: u8,
    rssi: Dbm,
    interval_ms: u16,
}

/// The STA upper-layer logic.
pub struct StaLogic {
    cfg: StaConfig,
    shared: StaSharedHandle,
    scan_index: usize,
    best: Option<Candidate>,
    serving: Option<Candidate>,
    beacons_missed: u32,
    beacon_seen_since_watch: bool,
    join_generation: u64,
    current_rssi: f64,
    weak_beacons: u32,
}

impl StaLogic {
    /// Creates a station client.
    pub fn new(cfg: StaConfig) -> (Self, StaSharedHandle) {
        let shared: StaSharedHandle = Arc::new(Mutex::new(StaShared::default()));
        (
            StaLogic {
                cfg,
                shared: shared.clone(),
                scan_index: 0,
                best: None,
                serving: None,
                beacons_missed: 0,
                beacon_seen_since_watch: false,
                join_generation: 0,
                current_rssi: f64::NEG_INFINITY,
                weak_beacons: 0,
            },
            shared,
        )
    }

    fn start_scan(&mut self, ctx: &mut UpperCtx) {
        // Leaving an established association to reacquire (beacon loss,
        // weak signal, deauth) is the other half of §3.2 roaming.
        if self.shared.lock().expect("shared state lock").state == StaState::Associated {
            ctx.emit(
                Level::Info,
                TraceEvent::Handoff {
                    station: ctx.id as u32,
                },
            );
        }
        self.shared.lock().expect("shared state lock").state = StaState::Scanning;
        self.shared.lock().expect("shared state lock").bssid = None;
        self.serving = None;
        self.best = None;
        self.scan_index = 0;
        ctx.command(Command::SetAwake(true));
        ctx.command(Command::SetChannel(self.cfg.channels[0]));
        self.maybe_probe(ctx);
        ctx.set_timer(self.cfg.scan_dwell, TAG_SCAN);
    }

    /// Active scanning (§3.2's "probe request"): solicit an immediate
    /// probe response instead of waiting out a beacon interval.
    fn maybe_probe(&mut self, ctx: &mut UpperCtx) {
        if !self.cfg.active_scan {
            return;
        }
        let f = Frame::management(
            Subtype::ProbeReq,
            MacAddr::BROADCAST,
            ctx.addr,
            MacAddr::BROADCAST,
            SequenceControl::default(),
            Vec::new(),
        );
        ctx.send(f);
    }

    fn begin_join(&mut self, ctx: &mut UpperCtx) {
        let Some(best) = self.best.take() else {
            // Nothing found; rescan.
            self.start_scan(ctx);
            return;
        };
        ctx.command(Command::SetChannel(best.channel));
        self.shared.lock().expect("shared state lock").state = StaState::Authenticating;
        let body = AuthBody {
            algorithm: self.cfg.auth,
            transaction: 1,
            status: 0,
            challenge: Vec::new(),
        };
        let f = Frame::management(
            Subtype::Auth,
            best.bssid,
            ctx.addr,
            best.bssid,
            SequenceControl::default(),
            body.encode(),
        );
        ctx.send(f);
        self.serving = Some(best);
        self.join_generation += 1;
        ctx.set_timer(
            SimDuration::from_millis(500),
            TAG_JOIN_TIMEOUT + (self.join_generation << 8),
        );
    }

    fn drain_app_queue(&mut self, ctx: &mut UpperCtx) {
        let bssid = {
            let sh = self.shared.lock().expect("shared state lock");
            match sh.state {
                StaState::Associated => sh.bssid,
                _ => None,
            }
        };
        let Some(bssid) = bssid else {
            return;
        };
        loop {
            let item = self
                .shared
                .lock()
                .expect("shared state lock")
                .outgoing
                .pop_front();
            let Some((da, payload)) = item else {
                break;
            };
            let f = Frame::data(
                DsBits::ToAp,
                da,
                ctx.addr,
                bssid,
                SequenceControl::default(),
                payload,
            );
            ctx.send(f);
        }
    }

    fn doze_until_next_beacon(&mut self, ctx: &mut UpperCtx) {
        let Some(serving) = &self.serving else {
            return;
        };
        let interval = SimDuration::from_millis(serving.interval_ms.max(10) as u64);
        // Wake 2 ms before the expected beacon.
        let sleep = interval.saturating_sub(SimDuration::from_millis(2));
        ctx.command(Command::SetAwake(false));
        ctx.emit(
            Level::Debug,
            TraceEvent::PowerSave {
                station: ctx.id as u32,
                doze: true,
            },
        );
        self.shared.lock().expect("shared state lock").dozes += 1;
        ctx.set_timer(sleep, TAG_PS_WAKE);
    }
}

impl UpperLayer for StaLogic {
    fn on_start(&mut self, ctx: &mut UpperCtx) {
        self.start_scan(ctx);
    }

    fn on_timer(&mut self, ctx: &mut UpperCtx, tag: u64) {
        match tag & 0xFF {
            TAG_SCAN => {
                if self.shared.lock().expect("shared state lock").state != StaState::Scanning {
                    return;
                }
                self.scan_index += 1;
                if self.scan_index < self.cfg.channels.len() {
                    ctx.command(Command::SetChannel(self.cfg.channels[self.scan_index]));
                    self.maybe_probe(ctx);
                    ctx.set_timer(self.cfg.scan_dwell, TAG_SCAN);
                } else {
                    self.begin_join(ctx);
                }
            }
            TAG_WATCH => {
                if self.shared.lock().expect("shared state lock").state != StaState::Associated {
                    return;
                }
                if self.beacon_seen_since_watch {
                    self.beacons_missed = 0;
                } else {
                    self.beacons_missed += 1;
                }
                self.beacon_seen_since_watch = false;
                if self.beacons_missed >= self.cfg.beacon_loss_limit {
                    // Link lost — §3.2 roaming by reacquisition.
                    self.start_scan(ctx);
                } else {
                    let interval = self
                        .serving
                        .as_ref()
                        .map(|s| SimDuration::from_millis(s.interval_ms.max(10) as u64))
                        .unwrap_or(SimDuration::from_millis(100));
                    ctx.set_timer(interval, TAG_WATCH);
                }
            }
            TAG_APP => self.drain_app_queue(ctx),
            TAG_PS_WAKE
                if self.shared.lock().expect("shared state lock").state == StaState::Associated =>
            {
                ctx.command(Command::SetAwake(true));
                ctx.emit(
                    Level::Debug,
                    TraceEvent::PowerSave {
                        station: ctx.id as u32,
                        doze: false,
                    },
                );
            }
            TAG_JOIN_TIMEOUT => {
                let gen = tag >> 8;
                if gen == self.join_generation
                    && !matches!(
                        self.shared.lock().expect("shared state lock").state,
                        StaState::Associated
                    )
                {
                    self.start_scan(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut UpperCtx, frame: &Frame, rssi: Dbm) {
        match frame.fc.subtype {
            Subtype::Beacon | Subtype::ProbeResp => {
                let Ok(body) = BeaconBody::decode(&frame.body) else {
                    return;
                };
                if body.ssid != self.cfg.ssid {
                    return;
                }
                let bssid = frame
                    .bssid()
                    .unwrap_or(frame.transmitter().unwrap_or(MacAddr::ZERO));
                let state = self.shared.lock().expect("shared state lock").state;
                match state {
                    StaState::Scanning => {
                        let better = self
                            .best
                            .as_ref()
                            .is_none_or(|b| rssi.value() > b.rssi.value());
                        if better {
                            self.best = Some(Candidate {
                                bssid,
                                channel: body.channel,
                                rssi,
                                interval_ms: body.interval_ms,
                            });
                        }
                    }
                    StaState::Associated => {
                        let my_bssid = self.shared.lock().expect("shared state lock").bssid;
                        if Some(bssid) == my_bssid {
                            self.beacon_seen_since_watch = true;
                            self.shared.lock().expect("shared state lock").beacons_heard += 1;
                            // Exponentially-smoothed serving RSSI.
                            self.current_rssi = if self.current_rssi.is_finite() {
                                0.8 * self.current_rssi + 0.2 * rssi.value()
                            } else {
                                rssi.value()
                            };
                            // Preemptive roaming: a persistently weak
                            // serving AP triggers a rescan while the
                            // link still works.
                            if self.current_rssi < self.cfg.rescan_below_dbm {
                                self.weak_beacons += 1;
                                if self.weak_beacons >= 3 {
                                    self.weak_beacons = 0;
                                    self.start_scan(ctx);
                                    return;
                                }
                            } else {
                                self.weak_beacons = 0;
                            }
                            // Power save: poll if the TIM lists us, else doze.
                            if self.cfg.power_save {
                                let aid = self.shared.lock().expect("shared state lock").aid;
                                if body.tim.contains(&aid) {
                                    self.shared.lock().expect("shared state lock").ps_polls += 1;
                                    ctx.command(Command::SetAwake(true));
                                    ctx.send(Frame::ps_poll(bssid, ctx.addr, aid));
                                } else {
                                    self.doze_until_next_beacon(ctx);
                                }
                            }
                        } else if rssi.value() > self.current_rssi + self.cfg.roam_hysteresis_db {
                            // A clearly stronger same-SSID AP: roam to it.
                            self.best = Some(Candidate {
                                bssid,
                                channel: body.channel,
                                rssi,
                                interval_ms: body.interval_ms,
                            });
                            ctx.emit(
                                Level::Info,
                                TraceEvent::Handoff {
                                    station: ctx.id as u32,
                                },
                            );
                            self.begin_join(ctx);
                        }
                    }
                    _ => {}
                }
            }
            Subtype::Auth => {
                if self.shared.lock().expect("shared state lock").state != StaState::Authenticating
                {
                    return;
                }
                let Ok(body) = AuthBody::decode(&frame.body) else {
                    return;
                };
                let Some(serving) = &self.serving else {
                    return;
                };
                let bssid = serving.bssid;
                match (body.transaction, body.status) {
                    (2, 0) if body.algorithm == AuthAlgorithm::SharedKey => {
                        // Echo the challenge ("proving possession" §5.1;
                        // the real WEP encryption of the challenge is
                        // exercised in wn-security).
                        let mut expected = self.cfg.shared_key.clone();
                        expected.extend_from_slice(&ctx.addr.0);
                        let resp = AuthBody {
                            algorithm: AuthAlgorithm::SharedKey,
                            transaction: 3,
                            status: 0,
                            challenge: expected,
                        };
                        let f = Frame::management(
                            Subtype::Auth,
                            bssid,
                            ctx.addr,
                            bssid,
                            SequenceControl::default(),
                            resp.encode(),
                        );
                        ctx.send(f);
                    }
                    (2, 0) | (4, 0) => {
                        // Authenticated: associate.
                        self.shared.lock().expect("shared state lock").state =
                            StaState::Associating;
                        let req = AssocReqBody {
                            ssid: self.cfg.ssid.clone(),
                        };
                        let f = Frame::management(
                            Subtype::AssocReq,
                            bssid,
                            ctx.addr,
                            bssid,
                            SequenceControl::default(),
                            req.encode(),
                        );
                        ctx.send(f);
                    }
                    _ => {
                        // Refused — rescan later.
                        self.start_scan(ctx);
                    }
                }
            }
            Subtype::AssocResp | Subtype::ReassocResp => {
                if self.shared.lock().expect("shared state lock").state != StaState::Associating {
                    return;
                }
                let Ok(body) = AssocRespBody::decode(&frame.body) else {
                    return;
                };
                if body.status != 0 {
                    self.start_scan(ctx);
                    return;
                }
                let bssid = self
                    .serving
                    .as_ref()
                    .map(|s| s.bssid)
                    .unwrap_or(MacAddr::ZERO);
                {
                    let mut sh = self.shared.lock().expect("shared state lock");
                    sh.state = StaState::Associated;
                    sh.bssid = Some(bssid);
                    sh.aid = body.aid;
                    sh.assoc_events.push((ctx.now, bssid));
                }
                ctx.emit(
                    Level::Info,
                    TraceEvent::Assoc {
                        station: ctx.id as u32,
                        aid: body.aid,
                    },
                );
                self.current_rssi = self
                    .serving
                    .as_ref()
                    .map(|s| s.rssi.value())
                    .unwrap_or(-70.0);
                self.beacons_missed = 0;
                self.beacon_seen_since_watch = true;
                let interval = self
                    .serving
                    .as_ref()
                    .map(|s| SimDuration::from_millis(s.interval_ms.max(10) as u64))
                    .unwrap_or(SimDuration::from_millis(100));
                ctx.set_timer(interval, TAG_WATCH);
                if self.cfg.power_save {
                    ctx.command(Command::SetPowerManagement(true));
                    // Announce power-save entry with a Null-Data frame so
                    // the AP starts buffering (§4.2 Power Management bit).
                    let mut null = Frame::data(
                        DsBits::ToAp,
                        bssid,
                        ctx.addr,
                        bssid,
                        SequenceControl::default(),
                        Vec::new(),
                    );
                    null.fc.subtype = Subtype::NullData;
                    ctx.send(null);
                }
                // Flush anything the application queued while joining.
                self.drain_app_queue(ctx);
            }
            Subtype::Data if frame.fc.from_ds => {
                let sa = frame.source().unwrap_or(MacAddr::ZERO);
                self.shared
                    .lock()
                    .expect("shared state lock")
                    .delivered
                    .push((ctx.now, sa, frame.body.clone()));
                if self.cfg.power_save {
                    if frame.fc.more_data {
                        let aid = self.shared.lock().expect("shared state lock").aid;
                        let bssid = self
                            .shared
                            .lock()
                            .expect("shared state lock")
                            .bssid
                            .unwrap_or(MacAddr::ZERO);
                        self.shared.lock().expect("shared state lock").ps_polls += 1;
                        ctx.send(Frame::ps_poll(bssid, ctx.addr, aid));
                    } else {
                        self.doze_until_next_beacon(ctx);
                    }
                }
            }
            Subtype::Deauth | Subtype::Disassoc
                if self.shared.lock().expect("shared state lock").state == StaState::Associated =>
            {
                self.start_scan(ctx);
            }
            _ => {}
        }
    }

    fn on_tx_result(&mut self, _ctx: &mut UpperCtx, frame: &Frame, success: bool) {
        if frame.fc.subtype == Subtype::Data {
            let mut sh = self.shared.lock().expect("shared state lock");
            if success {
                sh.tx_ok += 1;
            } else {
                sh.tx_fail += 1;
            }
        }
    }
}
