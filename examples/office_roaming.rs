//! Office roaming (Fig. 1.10): an employee walks their laptop from one
//! end of the building to the other while a file transfer runs; the
//! laptop roams between two APs of the same ESS over the wired
//! distribution system, and the session survives.
//!
//! Run with: `cargo run --example office_roaming`

use wireless_networks::core::scenarios::fig_1_10_ess_roaming;
use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::sim::MacConfig;
use wireless_networks::net80211::builder::{schedule_walk, send_app_data, EssBuilder};
use wireless_networks::net80211::ssid::Ssid;
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::sim::{SimDuration, SimTime};

fn main() {
    println!("== ESS roaming walkthrough (Fig. 1.10) ==\n");

    // Build a two-AP ESS: channels 1 and 6, 260 m apart, wired backbone.
    let ssid = Ssid::new("CorpNet").expect("valid SSID");
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = 2024;
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(0.0, 0.0), 1)
        .ap(Point::new(260.0, 0.0), 6)
        .sta(Point::new(12.0, 0.0)) // The walking laptop.
        .sta(Point::new(250.0, 8.0)) // A file server's wireless bridge near AP1.
        .build();

    ess.sim.run_until(SimTime::from_secs(2));
    println!(
        "t=2s: laptop associated to {:?}",
        ess.sta_shared[0].lock().expect("shared state lock").bssid
    );

    // Walk from AP0's office to AP1's office at 5 m/s (a brisk walk).
    let laptop = ess.sta_ids[0];
    schedule_walk(
        &mut ess.sim,
        laptop,
        Point::new(12.0, 0.0),
        Point::new(250.0, 0.0),
        5.0,
        SimDuration::from_millis(200),
        SimTime::from_secs(2),
    );

    // The server streams messages to the laptop through the whole walk.
    let server = ess.sta_ids[1];
    let server_sh = ess.sta_shared[1].clone();
    let total = 55u64;
    for k in 0..total {
        send_app_data(
            &mut ess.sim,
            server,
            &server_sh,
            MacAddr::station(0),
            format!("chunk-{k:03}").into_bytes(),
            SimTime::from_millis(2500 + k * 1000),
        );
    }
    ess.sim.run_until(SimTime::from_secs(80));

    let sh = ess.sta_shared[0].lock().expect("shared state lock");
    println!("\nassociation history:");
    for (t, bssid) in &sh.assoc_events {
        println!("  {t} -> {bssid}");
    }
    println!(
        "\nchunks delivered during the walk: {}/{} ({:.0}%)",
        sh.delivered.len(),
        total,
        sh.delivered.len() as f64 / total as f64 * 100.0
    );
    println!(
        "DS now maps the laptop to AP id {:?}",
        ess.ds
            .lock()
            .expect("shared state lock")
            .serving_ap(MacAddr::station(0))
    );

    // The packaged experiment: run the canonical FIG-1.10 scenario too.
    let (outcome, report) = fig_1_10_ess_roaming(5);
    println!(
        "\ncanonical FIG-1.10 run: {} associations, handoff gap {:?} s, {}/{} delivered",
        outcome.associations, outcome.handoff_gap_s, outcome.delivered, outcome.offered
    );
    println!("\n{}", report.to_markdown());
    assert!(report.passed(), "roaming experiment must pass");
}
