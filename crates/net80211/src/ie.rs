//! Management-frame bodies ("the data or information included in …
//! management type … frames", §4.2).
//!
//! A compact tag-length-value encoding carrying the elements the
//! architecture needs: SSID, beacon interval, the traffic indication
//! map (TIM) for power save, authentication fields, and association
//! status/AID.

use crate::ssid::Ssid;

const TAG_SSID: u8 = 0;
const TAG_BEACON_INTERVAL: u8 = 1;
const TAG_TIM: u8 = 2;
const TAG_AUTH: u8 = 3;
const TAG_ASSOC_STATUS: u8 = 4;
const TAG_CHANNEL: u8 = 5;

/// Decode errors for management bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IeError {
    /// Body truncated mid-element.
    Truncated,
    /// A required element is missing.
    Missing(u8),
    /// An element's payload is malformed.
    Malformed(u8),
}

impl std::fmt::Display for IeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IeError::Truncated => write!(f, "management body truncated"),
            IeError::Missing(t) => write!(f, "missing information element {t}"),
            IeError::Malformed(t) => write!(f, "malformed information element {t}"),
        }
    }
}

impl std::error::Error for IeError {}

fn push_tlv(out: &mut Vec<u8>, tag: u8, value: &[u8]) {
    debug_assert!(value.len() <= 255);
    out.push(tag);
    out.push(value.len() as u8);
    out.extend_from_slice(value);
}

fn find_tlv(body: &[u8], tag: u8) -> Result<Option<&[u8]>, IeError> {
    let mut rest = body;
    while !rest.is_empty() {
        if rest.len() < 2 {
            return Err(IeError::Truncated);
        }
        let (t, len) = (rest[0], rest[1] as usize);
        if rest.len() < 2 + len {
            return Err(IeError::Truncated);
        }
        if t == tag {
            return Ok(Some(&rest[2..2 + len]));
        }
        rest = &rest[2 + len..];
    }
    Ok(None)
}

/// The decoded contents of a beacon / probe-response body.
#[derive(Clone, Debug, PartialEq)]
pub struct BeaconBody {
    /// The network name.
    pub ssid: Ssid,
    /// Beacon interval in milliseconds.
    pub interval_ms: u16,
    /// Channel the BSS operates on.
    pub channel: u8,
    /// AIDs with buffered frames at the AP (the TIM of §4.2's power
    /// management discussion).
    pub tim: Vec<u16>,
}

impl BeaconBody {
    /// Encodes to frame-body bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_tlv(&mut out, TAG_SSID, self.ssid.bytes());
        push_tlv(
            &mut out,
            TAG_BEACON_INTERVAL,
            &self.interval_ms.to_le_bytes(),
        );
        push_tlv(&mut out, TAG_CHANNEL, &[self.channel]);
        let tim: Vec<u8> = self.tim.iter().flat_map(|a| a.to_le_bytes()).collect();
        push_tlv(&mut out, TAG_TIM, &tim);
        out
    }

    /// Decodes from frame-body bytes.
    pub fn decode(body: &[u8]) -> Result<Self, IeError> {
        let ssid_raw = find_tlv(body, TAG_SSID)?.ok_or(IeError::Missing(TAG_SSID))?;
        let ssid = Ssid::new(String::from_utf8_lossy(ssid_raw).into_owned())
            .map_err(|_| IeError::Malformed(TAG_SSID))?;
        let iv =
            find_tlv(body, TAG_BEACON_INTERVAL)?.ok_or(IeError::Missing(TAG_BEACON_INTERVAL))?;
        if iv.len() != 2 {
            return Err(IeError::Malformed(TAG_BEACON_INTERVAL));
        }
        let interval_ms = u16::from_le_bytes([iv[0], iv[1]]);
        let ch = find_tlv(body, TAG_CHANNEL)?.ok_or(IeError::Missing(TAG_CHANNEL))?;
        if ch.len() != 1 {
            return Err(IeError::Malformed(TAG_CHANNEL));
        }
        let tim_raw = find_tlv(body, TAG_TIM)?.unwrap_or(&[]);
        if tim_raw.len() % 2 != 0 {
            return Err(IeError::Malformed(TAG_TIM));
        }
        let tim = tim_raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        Ok(BeaconBody {
            ssid,
            interval_ms,
            channel: ch[0],
            tim,
        })
    }
}

/// Authentication algorithm identifiers (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuthAlgorithm {
    /// Open System — no proof of identity.
    OpenSystem,
    /// Shared Key — the WEP challenge/response.
    SharedKey,
}

/// An authentication frame body: algorithm, transaction seq, status.
#[derive(Clone, Debug, PartialEq)]
pub struct AuthBody {
    /// Which algorithm is in use.
    pub algorithm: AuthAlgorithm,
    /// Transaction sequence number (1 = request, 2 = response…).
    pub transaction: u16,
    /// 0 = success.
    pub status: u16,
    /// WEP challenge text for Shared Key transactions 2 and 3.
    pub challenge: Vec<u8>,
}

impl AuthBody {
    /// Encodes to frame-body bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        let alg: u16 = match self.algorithm {
            AuthAlgorithm::OpenSystem => 0,
            AuthAlgorithm::SharedKey => 1,
        };
        v.extend_from_slice(&alg.to_le_bytes());
        v.extend_from_slice(&self.transaction.to_le_bytes());
        v.extend_from_slice(&self.status.to_le_bytes());
        v.extend_from_slice(&self.challenge);
        let mut out = Vec::new();
        push_tlv(&mut out, TAG_AUTH, &v);
        out
    }

    /// Decodes from frame-body bytes.
    pub fn decode(body: &[u8]) -> Result<Self, IeError> {
        let raw = find_tlv(body, TAG_AUTH)?.ok_or(IeError::Missing(TAG_AUTH))?;
        if raw.len() < 6 {
            return Err(IeError::Malformed(TAG_AUTH));
        }
        let alg = u16::from_le_bytes([raw[0], raw[1]]);
        let algorithm = match alg {
            0 => AuthAlgorithm::OpenSystem,
            1 => AuthAlgorithm::SharedKey,
            _ => return Err(IeError::Malformed(TAG_AUTH)),
        };
        Ok(AuthBody {
            algorithm,
            transaction: u16::from_le_bytes([raw[2], raw[3]]),
            status: u16::from_le_bytes([raw[4], raw[5]]),
            challenge: raw[6..].to_vec(),
        })
    }
}

/// An association request body (carries the SSID being joined).
#[derive(Clone, Debug, PartialEq)]
pub struct AssocReqBody {
    /// The SSID the STA wants to join.
    pub ssid: Ssid,
}

impl AssocReqBody {
    /// Encodes to frame-body bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_tlv(&mut out, TAG_SSID, self.ssid.bytes());
        out
    }

    /// Decodes from frame-body bytes.
    pub fn decode(body: &[u8]) -> Result<Self, IeError> {
        let raw = find_tlv(body, TAG_SSID)?.ok_or(IeError::Missing(TAG_SSID))?;
        let ssid = Ssid::new(String::from_utf8_lossy(raw).into_owned())
            .map_err(|_| IeError::Malformed(TAG_SSID))?;
        Ok(AssocReqBody { ssid })
    }
}

/// An association response body: status and the assigned AID.
#[derive(Clone, Debug, PartialEq)]
pub struct AssocRespBody {
    /// 0 = success.
    pub status: u16,
    /// Association ID (1-based; 0 when refused).
    pub aid: u16,
}

impl AssocRespBody {
    /// Encodes to frame-body bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&self.status.to_le_bytes());
        v.extend_from_slice(&self.aid.to_le_bytes());
        let mut out = Vec::new();
        push_tlv(&mut out, TAG_ASSOC_STATUS, &v);
        out
    }

    /// Decodes from frame-body bytes.
    pub fn decode(body: &[u8]) -> Result<Self, IeError> {
        let raw = find_tlv(body, TAG_ASSOC_STATUS)?.ok_or(IeError::Missing(TAG_ASSOC_STATUS))?;
        if raw.len() != 4 {
            return Err(IeError::Malformed(TAG_ASSOC_STATUS));
        }
        Ok(AssocRespBody {
            status: u16::from_le_bytes([raw[0], raw[1]]),
            aid: u16::from_le_bytes([raw[2], raw[3]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssid() -> Ssid {
        Ssid::new("TestNet").unwrap()
    }

    #[test]
    fn beacon_roundtrip() {
        let b = BeaconBody {
            ssid: ssid(),
            interval_ms: 100,
            channel: 6,
            tim: vec![1, 5, 9],
        };
        assert_eq!(BeaconBody::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn beacon_empty_tim() {
        let b = BeaconBody {
            ssid: ssid(),
            interval_ms: 50,
            channel: 11,
            tim: vec![],
        };
        let back = BeaconBody::decode(&b.encode()).unwrap();
        assert!(back.tim.is_empty());
    }

    #[test]
    fn auth_roundtrip_both_algorithms() {
        for alg in [AuthAlgorithm::OpenSystem, AuthAlgorithm::SharedKey] {
            let a = AuthBody {
                algorithm: alg,
                transaction: 2,
                status: 0,
                challenge: vec![9; 16],
            };
            assert_eq!(AuthBody::decode(&a.encode()).unwrap(), a);
        }
    }

    #[test]
    fn assoc_bodies_roundtrip() {
        let req = AssocReqBody { ssid: ssid() };
        assert_eq!(AssocReqBody::decode(&req.encode()).unwrap(), req);
        let resp = AssocRespBody { status: 0, aid: 3 };
        assert_eq!(AssocRespBody::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn missing_elements_detected() {
        assert_eq!(BeaconBody::decode(&[]), Err(IeError::Missing(TAG_SSID)));
        assert_eq!(AuthBody::decode(&[]), Err(IeError::Missing(TAG_AUTH)));
        assert_eq!(
            AssocRespBody::decode(&[]),
            Err(IeError::Missing(TAG_ASSOC_STATUS))
        );
    }

    #[test]
    fn truncation_detected() {
        let b = BeaconBody {
            ssid: ssid(),
            interval_ms: 100,
            channel: 1,
            tim: vec![],
        };
        let enc = b.encode();
        assert_eq!(
            BeaconBody::decode(&enc[..enc.len() - 1]),
            Err(IeError::Truncated)
        );
        assert_eq!(BeaconBody::decode(&[TAG_SSID]), Err(IeError::Truncated));
    }

    #[test]
    fn malformed_lengths_detected() {
        // Interval with the wrong width.
        let mut out = Vec::new();
        push_tlv(&mut out, TAG_SSID, b"x");
        push_tlv(&mut out, TAG_BEACON_INTERVAL, &[1]);
        assert_eq!(
            BeaconBody::decode(&out),
            Err(IeError::Malformed(TAG_BEACON_INTERVAL))
        );
    }

    #[test]
    fn foreign_elements_are_skipped() {
        // Unknown tags before the ones we want are tolerated.
        let mut enc = Vec::new();
        push_tlv(&mut enc, 200, &[1, 2, 3]);
        let b = BeaconBody {
            ssid: ssid(),
            interval_ms: 100,
            channel: 1,
            tim: vec![],
        };
        enc.extend_from_slice(&b.encode());
        assert_eq!(BeaconBody::decode(&enc).unwrap(), b);
    }
}
