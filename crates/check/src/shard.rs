//! The sharded-vs-serial differential harness (DESIGN.md §15).
//!
//! A fuzz scenario's deployment is partitioned into interference
//! shards ([`WlanWorld::shard_plan`]); each shard becomes its own
//! component world, built by the *same* construction code the classic
//! runner uses. The composition is then executed twice:
//!
//! - **serial** — each component advanced straight to the horizon
//!   with one `run_until`, one after another;
//! - **windowed** — all components advanced in lockstep lookahead
//!   windows on scoped threads (1, 2 and 4 workers), barrier between
//!   windows ([`wn_mac80211::shard::run_components_windowed`]).
//!
//! Traces and metrics are digested in shard order in both modes, and
//! the digests must be byte-identical — the same differential
//! contract `--dual` enforces across scheduler back ends and
//! `--cache-diff` across propagation paths. A single-component plan
//! additionally bridges to the classic engine: its serial composition
//! is the very same construction `run_scenario` executes, so the
//! digests must equal the classic fingerprints too (verified by a
//! unit test here).
//!
//! Non-WLAN scenario kinds (Bluetooth, ZigBee, WiMAX) have no shared
//! medium to partition and are skipped ([`shard_diff_seed`] returns
//! `None`).

use crate::run::{
    build_ess_sim, data_frame, wlan_ac_of, wlan_config, wlan_sink_of, wlan_station_pos, CheckUpper,
    TRACE_CAPACITY,
};
use crate::scenario::{EssScenario, Scenario, ScenarioGen, ScenarioKind, WlanScenario};
use std::sync::{Arc, Mutex};
use wn_mac80211::addr::MacAddr;
use wn_mac80211::shard::{
    executor_window, run_components_serial, run_components_windowed, ShardRunReport,
};
use wn_mac80211::sim::{boot as wlan_boot, inject_at, qos_inject_at, WlanWorld};
use wn_sim::par::par_map_with;
use wn_sim::trace::Trace;
use wn_sim::{SchedulerKind, SimDuration, SimTime, Simulation};

/// The shard-executor worker counts every differential point runs
/// under — the "1, 2 and 4 shard configurations" of the contract.
pub const SHARD_WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Smallest executor window the harness batches the lookahead up to
/// (barrier crossings are pure overhead; see DESIGN.md §15 for why
/// batching above the raw lookahead is sound here).
const WINDOW_FLOOR: SimDuration = SimDuration::from_micros(64);

pub use wn_mac80211::shard::component_seed;

/// One seed's sharded-vs-serial differential outcome.
pub struct ShardDiffReport {
    /// The seed.
    pub seed: u64,
    /// Scenario one-liner.
    pub summary: String,
    /// Scenario kind tag.
    pub kind: &'static str,
    /// Number of shards the deployment partitioned into.
    pub shards: usize,
    /// The serial (reference) composition.
    pub serial: ShardRunReport,
    /// The windowed compositions, one per entry of
    /// [`SHARD_WORKER_COUNTS`].
    pub windowed: Vec<(usize, ShardRunReport)>,
    /// A partition-soundness failure on the planning world, if any
    /// (`None` = the plan validates).
    pub incoherence: Option<String>,
}

impl ShardDiffReport {
    /// Whether any windowed execution diverged from the serial
    /// reference, or the plan failed validation.
    pub fn divergent(&self) -> bool {
        self.incoherence.is_some() || self.windowed.iter().any(|(_, r)| *r != self.serial)
    }
}

/// Builds component `k` of a flat-WLAN scenario: the stations in
/// `members` (global ids, ascending), at their scenario positions,
/// with the scenario's traffic — exactly the classic construction
/// restricted to one shard. Injection targets keep their global
/// addresses; a sink outside this shard is simply a MAC address that
/// never answers, which is indistinguishable from the deaf-sink fault
/// the generator already exercises.
fn build_wlan_component(
    seed: u64,
    w: &WlanScenario,
    members: &[usize],
    k: usize,
) -> Simulation<WlanWorld> {
    let mut cfg = wlan_config(seed, w);
    cfg.seed = component_seed(seed, k);
    let delivered = Arc::new(Mutex::new(Vec::new()));
    let mut world = WlanWorld::new(cfg);
    world.set_neighbor_cache(true);
    world.trace = Trace::new(TRACE_CAPACITY);
    for &g in members {
        world.add_station(
            MacAddr::station(g as u32),
            wlan_station_pos(w, g),
            Box::new(CheckUpper {
                delivered: delivered.clone(),
            }),
        );
    }
    if w.deaf_sink {
        if let Some(local) = members.iter().position(|&g| g == 0) {
            world.set_channel(local, 11);
        }
    }
    let mut sim = Simulation::new(world);
    wlan_boot(&mut sim);
    for (local, &g) in members.iter().enumerate() {
        let Some(sink) = wlan_sink_of(w, g) else {
            continue;
        };
        for f in 0..u64::from(w.frames_per_sender) {
            let at = SimTime::from_micros(f * w.interval_us);
            let frame = data_frame(g as u32, sink as u32, w.payload);
            if w.edca {
                qos_inject_at(&mut sim, at, local, frame, wlan_ac_of(g, f));
            } else {
                inject_at(&mut sim, at, local, frame);
            }
        }
    }
    sim
}

fn shard_diff_wlan(sc: &Scenario, w: &WlanScenario) -> ShardDiffReport {
    // Planning world: the same deployment, no traffic. `None` for the
    // interference range couples every overlapping-channel pair, so
    // the only splits are exact channel-orthogonality splits — zero
    // spectral overlap means exactly zero leaked power, never a small
    // number (the cross-shard silence argument, DESIGN.md §15).
    let mut planning = WlanWorld::new(wlan_config(sc.seed, w));
    let log = Arc::new(Mutex::new(Vec::new()));
    for i in 0..w.total_stations() {
        planning.add_station(
            MacAddr::station(i as u32),
            wlan_station_pos(w, i),
            Box::new(CheckUpper {
                delivered: log.clone(),
            }),
        );
    }
    if w.deaf_sink {
        planning.set_channel(0, 11);
    }
    let plan = planning.shard_plan(SimTime::ZERO, None);
    let incoherence = planning
        .shard_plan_incoherence(&plan, SimTime::ZERO)
        .map(|i| i.to_string());

    let horizon = SimTime::from_millis(w.duration_ms);
    let window = executor_window(&plan, horizon, WINDOW_FLOOR);
    let build = |k: usize| build_wlan_component(sc.seed, w, &plan.shards[k], k);
    let serial = run_components_serial(plan.shard_count(), horizon, "fuzz", build);
    let windowed = SHARD_WORKER_COUNTS
        .iter()
        .map(|&workers| {
            (
                workers,
                run_components_windowed(
                    plan.shard_count(),
                    horizon,
                    window,
                    workers,
                    "fuzz",
                    build,
                ),
            )
        })
        .collect();
    ShardDiffReport {
        seed: sc.seed,
        summary: sc.summary(),
        kind: sc.kind_tag(),
        shards: plan.shard_count(),
        serial,
        windowed,
        incoherence,
    }
}

fn shard_diff_ess(sc: &Scenario, e: &EssScenario) -> ShardDiffReport {
    // An ESS is one shard (see `build_ess_sim`), so the differential
    // degenerates to single-run_until vs windowed-run_until over the
    // identical world — which is precisely the slicing-invariance leg
    // of the contract, with the thread hand-off exercised on top.
    let horizon = SimTime::from_secs(e.duration_s);
    let window = SimDuration::from_nanos((horizon.as_nanos() / 8).max(1));
    let build = |_k: usize| build_ess_sim(sc.seed, e, SchedulerKind::default(), true);
    let serial = run_components_serial(1, horizon, "fuzz", build);
    let windowed = SHARD_WORKER_COUNTS
        .iter()
        .map(|&workers| {
            (
                workers,
                run_components_windowed(1, horizon, window, workers, "fuzz", build),
            )
        })
        .collect();
    ShardDiffReport {
        seed: sc.seed,
        summary: sc.summary(),
        kind: sc.kind_tag(),
        shards: 1,
        serial,
        windowed,
        incoherence: None,
    }
}

/// Runs the sharded-vs-serial differential for one explicit scenario;
/// `None` for kinds without a shared medium to partition.
pub fn shard_diff_scenario(sc: &Scenario) -> Option<ShardDiffReport> {
    match &sc.kind {
        ScenarioKind::Wlan(w) => Some(shard_diff_wlan(sc, w)),
        ScenarioKind::Ess(e) => Some(shard_diff_ess(sc, e)),
        ScenarioKind::Bluetooth(_) | ScenarioKind::Zigbee(_) | ScenarioKind::Wman(_) => None,
    }
}

/// Generates the scenario for `seed` and runs the sharded-vs-serial
/// differential on it.
pub fn shard_diff_seed(seed: u64) -> Option<ShardDiffReport> {
    shard_diff_scenario(&ScenarioGen::default().scenario(seed))
}

/// [`shard_diff_seed`] over a seed range, fanned out over `threads`
/// workers (each seed's differential is self-contained, so reports
/// are identical for any worker count). `None` entries are skipped
/// kinds.
pub fn shard_diff_range(start: u64, count: u64, threads: usize) -> Vec<Option<ShardDiffReport>> {
    let seeds: Vec<u64> = (start..start + count).collect();
    par_map_with(threads, seeds, shard_diff_seed)
}

/// [`shard_diff_range`] under an explicit scenario generator — the
/// shard-executor leg of the `--qos` corpus.
pub fn shard_diff_range_gen(
    gen: ScenarioGen,
    start: u64,
    count: u64,
    threads: usize,
) -> Vec<Option<ShardDiffReport>> {
    let seeds: Vec<u64> = (start..start + count).collect();
    par_map_with(threads, seeds, move |seed| {
        shard_diff_scenario(&gen.scenario(seed))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::check_seed;
    use wn_sim::stats::fnv1a;

    fn first_seed_of_kind(kind: &str, pred: impl Fn(&Scenario) -> bool) -> (u64, Scenario) {
        for seed in 0..500 {
            let sc = ScenarioGen::default().scenario(seed);
            if sc.kind_tag() == kind && pred(&sc) {
                return (seed, sc);
            }
        }
        panic!("no {kind} scenario in the first 500 seeds");
    }

    /// The bridge to the classic engine: a flat WLAN without the
    /// deaf-sink fault is one conflict component, so its "sharded"
    /// composition is the identical construction `run_scenario`
    /// executes — fingerprints must match exactly.
    #[test]
    fn single_shard_composition_equals_classic_run() {
        let (seed, sc) = first_seed_of_kind("wlan", |sc| match &sc.kind {
            ScenarioKind::Wlan(w) => !w.deaf_sink,
            _ => false,
        });
        let diff = shard_diff_scenario(&sc).expect("wlan shards");
        assert_eq!(diff.shards, 1, "non-deaf flat WLAN must be one shard");
        let classic = check_seed(seed);
        assert_eq!(diff.serial.trace_fnv, classic.trace_fnv);
        assert_eq!(diff.serial.metrics_fnv, classic.metrics_fnv);
        assert!(!diff.divergent());
    }

    /// The deaf-sink fault parks the sink on an orthogonal channel,
    /// which must split it into its own shard — and the windowed
    /// executions must still be byte-identical to serial.
    #[test]
    fn deaf_sink_splits_and_stays_identical() {
        let (_seed, sc) = first_seed_of_kind("wlan", |sc| match &sc.kind {
            ScenarioKind::Wlan(w) => w.deaf_sink,
            _ => false,
        });
        let diff = shard_diff_scenario(&sc).expect("wlan shards");
        assert_eq!(diff.shards, 2, "deaf sink must shard off: {}", diff.summary);
        assert!(!diff.divergent());
        // The digests are over non-empty content in every mode.
        assert!(diff.serial.events > 0);
        assert_ne!(diff.serial.trace_fnv, fnv1a(b""));
    }

    /// ESS scenarios pin to a single shard but still exercise the
    /// windowed executor against the straight run.
    #[test]
    fn ess_windowed_matches_serial() {
        let (_seed, sc) = first_seed_of_kind("ess", |_| true);
        let diff = shard_diff_scenario(&sc).expect("ess shards");
        assert_eq!(diff.shards, 1);
        assert!(!diff.divergent());
    }

    /// Non-medium kinds are skipped, not zero-filled.
    #[test]
    fn non_wlan_kinds_are_skipped() {
        let (_seed, sc) = first_seed_of_kind("bt", |_| true);
        assert!(shard_diff_scenario(&sc).is_none());
    }

    #[test]
    fn component_seed_zero_is_base() {
        assert_eq!(component_seed(0xDEAD_BEEF, 0), 0xDEAD_BEEF);
        assert_ne!(component_seed(0xDEAD_BEEF, 1), 0xDEAD_BEEF);
        assert_ne!(
            component_seed(0xDEAD_BEEF, 1),
            component_seed(0xDEAD_BEEF, 2)
        );
    }
}
