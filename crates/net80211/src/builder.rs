//! Scenario builders: infrastructure BSS/ESS and ad hoc IBSS networks
//! (the two §3.2 architectures), plus mobility and traffic helpers.

use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

use crate::ap::{ApConfig, ApLogic, ApSharedHandle};
use crate::ds::{new_ds, DsHandle};
use crate::ssid::Ssid;
use crate::sta::{StaConfig, StaLogic, StaSharedHandle, TAG_APP};
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl};
use wn_mac80211::sim::{MacConfig, MacEvent, StationId, UpperCtx, UpperLayer, WlanWorld};
use wn_phy::geom::Point;
use wn_phy::units::Dbm;
use wn_sim::{SchedulerKind, SimDuration, SimTime, Simulation};

/// Builds an extended service set: several APs with the same SSID on a
/// wired distribution system (§3.1: the ESS "appears as a single BSS").
pub struct EssBuilder {
    mac: MacConfig,
    ssid: Ssid,
    aps: Vec<(Point, ApConfig)>,
    stas: Vec<(Point, StaConfig)>,
    wire_latency: SimDuration,
    scheduler: SchedulerKind,
    neighbor_cache: Option<bool>,
}

/// The constructed ESS: world plus handles for observation.
pub struct Ess {
    /// The simulation, booted and ready to run.
    pub sim: Simulation<WlanWorld>,
    /// AP station ids (in declaration order).
    pub ap_ids: Vec<StationId>,
    /// AP observation handles.
    pub ap_shared: Vec<ApSharedHandle>,
    /// STA station ids.
    pub sta_ids: Vec<StationId>,
    /// STA observation handles.
    pub sta_shared: Vec<StaSharedHandle>,
    /// The distribution system.
    pub ds: DsHandle,
}

impl EssBuilder {
    /// Starts a builder for `ssid` with the given MAC configuration.
    pub fn new(mac: MacConfig, ssid: Ssid) -> Self {
        EssBuilder {
            mac,
            ssid,
            aps: Vec::new(),
            stas: Vec::new(),
            wire_latency: SimDuration::from_micros(100),
            scheduler: SchedulerKind::BinaryHeap,
            neighbor_cache: None,
        }
    }

    /// Adds an AP at `pos` on `channel` with open authentication.
    pub fn ap(mut self, pos: Point, channel: u8) -> Self {
        self.aps
            .push((pos, ApConfig::open(self.ssid.clone(), channel)));
        self
    }

    /// Adds an AP with an explicit configuration (shared-key auth,
    /// custom beacon interval…). The SSID is overridden to the ESS's.
    pub fn ap_with(mut self, pos: Point, mut cfg: ApConfig) -> Self {
        cfg.ssid = self.ssid.clone();
        self.aps.push((pos, cfg));
        self
    }

    /// Adds a STA at `pos` with default open-auth configuration that
    /// scans all AP channels.
    pub fn sta(mut self, pos: Point) -> Self {
        let channels: Vec<u8> = self.aps.iter().map(|(_, c)| c.channel).collect();
        let cfg = StaConfig::open(
            self.ssid.clone(),
            if channels.is_empty() {
                vec![1]
            } else {
                channels
            },
        );
        self.stas.push((pos, cfg));
        self
    }

    /// Adds a STA with an explicit configuration.
    pub fn sta_with(mut self, pos: Point, cfg: StaConfig) -> Self {
        self.stas.push((pos, cfg));
        self
    }

    /// Sets the DS wire latency.
    pub fn wire_latency(mut self, l: SimDuration) -> Self {
        self.wire_latency = l;
        self
    }

    /// Selects the event-queue back end (binary heap by default).
    /// Either choice yields bit-identical runs; the timer wheel is the
    /// faster queue for large station counts.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Overrides the propagation neighbor-cache switch for the built
    /// world (the process default otherwise). Cached and direct runs
    /// are byte-identical; the differential fuzz compares them.
    pub fn neighbor_cache(mut self, on: bool) -> Self {
        self.neighbor_cache = Some(on);
        self
    }

    /// Builds and boots the network.
    pub fn build(self) -> Ess {
        let ds = new_ds(self.wire_latency);
        let mut world = WlanWorld::new(self.mac);
        if let Some(on) = self.neighbor_cache {
            world.set_neighbor_cache(on);
        }
        let mut ap_ids = Vec::new();
        let mut ap_shared = Vec::new();
        for (i, (pos, cfg)) in self.aps.into_iter().enumerate() {
            let channel = cfg.channel;
            let (logic, shared) = ApLogic::new(cfg, Some(ds.clone()));
            let id = world.add_station(MacAddr::access_point(i as u32), pos, Box::new(logic));
            world.set_channel(id, channel);
            ap_ids.push(id);
            ap_shared.push(shared);
        }
        let mut sta_ids = Vec::new();
        let mut sta_shared = Vec::new();
        for (i, (pos, cfg)) in self.stas.into_iter().enumerate() {
            let (logic, shared) = StaLogic::new(cfg);
            let id = world.add_station(MacAddr::station(i as u32), pos, Box::new(logic));
            sta_ids.push(id);
            sta_shared.push(shared);
        }
        let mut sim = Simulation::with_scheduler(world, self.scheduler);
        wn_mac80211::sim::boot(&mut sim);
        Ess {
            sim,
            ap_ids,
            ap_shared,
            sta_ids,
            sta_shared,
            ds,
        }
    }
}

/// Queues application data at a STA and nudges its upper layer.
pub fn send_app_data(
    sim: &mut Simulation<WlanWorld>,
    sta: StationId,
    shared: &StaSharedHandle,
    da: MacAddr,
    payload: Vec<u8>,
    at: SimTime,
) {
    shared
        .lock()
        .expect("shared state lock")
        .outgoing
        .push_back((da, payload));
    sim.scheduler_mut().schedule_at(
        at,
        MacEvent::UpperTimer {
            station: sta,
            tag: TAG_APP,
        },
    );
}

/// Schedules a straight-line walk: `SetPosition` events every `step`
/// from `from` to `to` at `speed_mps`.
pub fn schedule_walk(
    sim: &mut Simulation<WlanWorld>,
    station: StationId,
    from: Point,
    to: Point,
    speed_mps: f64,
    step: SimDuration,
    start: SimTime,
) {
    let total = from.distance_to(to);
    if total == 0.0 || speed_mps <= 0.0 {
        return;
    }
    let duration_s = total / speed_mps;
    let steps = (duration_s / step.as_secs_f64()).ceil() as u64;
    for k in 0..=steps {
        let t = (k as f64 / steps as f64).min(1.0);
        let pos = from.lerp(to, t);
        sim.scheduler_mut()
            .schedule_at(start + step * k, MacEvent::SetPosition { station, pos });
    }
}

/// Schedules random-waypoint mobility inside a rectangle: the station
/// repeatedly picks a uniform waypoint and walks there at a uniform
/// speed from `[v_min, v_max]` m/s, until `until`.
///
/// The classic evaluation model for roaming/handoff studies; fully
/// deterministic given `seed`.
#[allow(clippy::too_many_arguments)]
pub fn schedule_random_waypoint(
    sim: &mut Simulation<WlanWorld>,
    station: StationId,
    area_min: Point,
    area_max: Point,
    v_min: f64,
    v_max: f64,
    seed: u64,
    start: SimTime,
    until: SimTime,
) {
    let mut rng = wn_sim::Rng::new(seed ^ 0xB0B0_0000 ^ station as u64);
    let step = SimDuration::from_millis(200);
    let mut t = start;
    let mut pos = sim.world().position(station);
    while t < until {
        let target = Point::new(
            rng.f64_range(area_min.x, area_max.x),
            rng.f64_range(area_min.y, area_max.y),
        );
        let speed = rng.f64_range(v_min, v_max.max(v_min + 1e-9));
        let dist = pos.distance_to(target);
        if dist < 1e-9 {
            continue;
        }
        let leg_s = dist / speed;
        let steps = (leg_s / step.as_secs_f64()).ceil().max(1.0) as u64;
        for k in 1..=steps {
            let at = t + step * k;
            if at >= until {
                break;
            }
            let p = pos.lerp(target, k as f64 / steps as f64);
            sim.scheduler_mut()
                .schedule_at(at, MacEvent::SetPosition { station, pos: p });
        }
        t += step * steps;
        pos = target;
    }
}

// ----- ad hoc mode (§3.2) -----

/// Observable state of an ad hoc node.
#[derive(Debug, Default)]
pub struct IbssNodeShared {
    /// Payloads to send `(destination, data)`.
    pub outgoing: VecDeque<(MacAddr, Vec<u8>)>,
    /// Payloads received `(time, source, data)`.
    pub delivered: Vec<(SimTime, MacAddr, Vec<u8>)>,
    /// MSDUs acknowledged.
    pub tx_ok: u64,
    /// MSDUs dropped.
    pub tx_fail: u64,
}

/// Handle to an ad hoc node's shared state.
pub type IbssShared = Arc<Mutex<IbssNodeShared>>;

/// An ad hoc (IBSS) peer: §3.2 "devices transmit directly peer-to-peer
/// … No access point is required".
pub struct IbssNode {
    bssid: MacAddr,
    shared: IbssShared,
}

impl IbssNode {
    /// Creates a node for the IBSS identified by `bssid`.
    pub fn new(bssid: MacAddr) -> (Self, IbssShared) {
        let shared: IbssShared = Arc::new(Mutex::new(IbssNodeShared::default()));
        (
            IbssNode {
                bssid,
                shared: shared.clone(),
            },
            shared,
        )
    }
}

impl UpperLayer for IbssNode {
    fn on_timer(&mut self, ctx: &mut UpperCtx, tag: u64) {
        if tag == TAG_APP {
            loop {
                let item = self
                    .shared
                    .lock()
                    .expect("shared state lock")
                    .outgoing
                    .pop_front();
                let Some((da, payload)) = item else { break };
                let f = Frame::data(
                    DsBits::Ibss,
                    da,
                    ctx.addr,
                    self.bssid,
                    SequenceControl::default(),
                    payload,
                );
                ctx.send(f);
            }
        }
    }

    fn on_frame(&mut self, ctx: &mut UpperCtx, frame: &Frame, _rssi: Dbm) {
        if frame.fc.subtype == wn_mac80211::frame::Subtype::Data {
            let sa = frame.source().unwrap_or(MacAddr::ZERO);
            self.shared
                .lock()
                .expect("shared state lock")
                .delivered
                .push((ctx.now, sa, frame.body.clone()));
        }
    }

    fn on_tx_result(&mut self, _ctx: &mut UpperCtx, _frame: &Frame, success: bool) {
        let mut sh = self.shared.lock().expect("shared state lock");
        if success {
            sh.tx_ok += 1;
        } else {
            sh.tx_fail += 1;
        }
    }
}

/// Builds an independent BSS of peers at the given positions.
pub struct IbssBuilder {
    mac: MacConfig,
    nodes: Vec<Point>,
}

/// The constructed IBSS.
pub struct Ibss {
    /// The simulation, booted.
    pub sim: Simulation<WlanWorld>,
    /// Node ids.
    pub ids: Vec<StationId>,
    /// Node observation handles.
    pub shared: Vec<IbssShared>,
    /// The generated IBSS BSSID.
    pub bssid: MacAddr,
}

impl IbssBuilder {
    /// Starts an IBSS builder.
    pub fn new(mac: MacConfig) -> Self {
        IbssBuilder {
            mac,
            nodes: Vec::new(),
        }
    }

    /// Adds a peer at `pos`.
    pub fn node(mut self, pos: Point) -> Self {
        self.nodes.push(pos);
        self
    }

    /// Builds and boots the ad hoc network.
    pub fn build(self) -> Ibss {
        let bssid = MacAddr::random_ibss_bssid(self.mac.seed);
        let mut world = WlanWorld::new(self.mac);
        let mut ids = Vec::new();
        let mut shared = Vec::new();
        for (i, &pos) in self.nodes.iter().enumerate() {
            let (node, sh) = IbssNode::new(bssid);
            let id = world.add_station(MacAddr::station(i as u32), pos, Box::new(node));
            ids.push(id);
            shared.push(sh);
        }
        let mut sim = Simulation::new(world);
        wn_mac80211::sim::boot(&mut sim);
        Ibss {
            sim,
            ids,
            shared,
            bssid,
        }
    }
}

/// Queues data at an IBSS node and nudges it.
pub fn ibss_send(
    sim: &mut Simulation<WlanWorld>,
    node: StationId,
    shared: &IbssShared,
    da: MacAddr,
    payload: Vec<u8>,
    at: SimTime,
) {
    shared
        .lock()
        .expect("shared state lock")
        .outgoing
        .push_back((da, payload));
    sim.scheduler_mut().schedule_at(
        at,
        MacEvent::UpperTimer {
            station: node,
            tag: TAG_APP,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::StaState;
    use wn_phy::modulation::PhyStandard;

    fn mac(seed: u64) -> MacConfig {
        let mut m = MacConfig::new(PhyStandard::Dot11g);
        m.seed = seed;
        m
    }

    fn ssid() -> Ssid {
        Ssid::new("TestNet").unwrap()
    }

    #[test]
    fn sta_associates_with_ap() {
        let mut ess = EssBuilder::new(mac(1), ssid())
            .ap(Point::new(0.0, 0.0), 6)
            .sta(Point::new(10.0, 0.0))
            .build();
        ess.sim.run_until(SimTime::from_secs(3));
        let sh = ess.sta_shared[0].lock().expect("shared state lock");
        assert_eq!(sh.state, StaState::Associated);
        assert_eq!(sh.bssid, Some(MacAddr::access_point(0)));
        assert_eq!(sh.aid, 1);
        assert!(sh.beacons_heard > 5, "beacons_heard = {}", sh.beacons_heard);
        assert!(ess
            .ds
            .lock()
            .expect("shared state lock")
            .serving_ap(MacAddr::station(0))
            .is_some());
    }

    #[test]
    fn two_stas_exchange_data_through_ap() {
        // Fig. 1.6 in miniature: all traffic relays via the AP.
        let mut ess = EssBuilder::new(mac(2), ssid())
            .ap(Point::new(0.0, 0.0), 1)
            .sta(Point::new(8.0, 0.0))
            .sta(Point::new(-8.0, 0.0))
            .build();
        ess.sim.run_until(SimTime::from_secs(2));
        let dst = MacAddr::station(1);
        for k in 0..5u64 {
            let sta0 = ess.sta_ids[0];
            let sh0 = ess.sta_shared[0].clone();
            send_app_data(
                &mut ess.sim,
                sta0,
                &sh0,
                dst,
                format!("msg-{k}").into_bytes(),
                SimTime::from_millis(2000 + k * 20),
            );
        }
        ess.sim.run_until(SimTime::from_secs(4));
        let got = ess.sta_shared[1].lock().expect("shared state lock");
        assert_eq!(got.delivered.len(), 5);
        assert_eq!(
            got.delivered[0].1,
            MacAddr::station(0),
            "SA preserved through relay"
        );
        assert_eq!(got.delivered[0].2, b"msg-0");
        assert_eq!(
            ess.ap_shared[0]
                .lock()
                .expect("shared state lock")
                .bridged_local,
            5
        );
    }

    #[test]
    fn unknown_destination_exits_portal() {
        let mut ess = EssBuilder::new(mac(3), ssid())
            .ap(Point::new(0.0, 0.0), 1)
            .sta(Point::new(5.0, 0.0))
            .build();
        ess.sim.run_until(SimTime::from_secs(2));
        let wired = MacAddr([0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
        let sta0 = ess.sta_ids[0];
        let sh0 = ess.sta_shared[0].clone();
        send_app_data(
            &mut ess.sim,
            sta0,
            &sh0,
            wired,
            b"GET /".to_vec(),
            SimTime::from_secs(2),
        );
        ess.sim.run_until(SimTime::from_secs(3));
        assert_eq!(
            ess.ds
                .lock()
                .expect("shared state lock")
                .portal_frames()
                .len(),
            1
        );
        assert_eq!(
            ess.ds.lock().expect("shared state lock").portal_frames()[0]
                .1
                .payload,
            b"GET /"
        );
    }

    #[test]
    fn cross_ap_delivery_over_ds() {
        // Two APs far apart on different channels; STA0 near AP0, STA1
        // near AP1. Traffic crosses the wired backbone.
        let mut ess = EssBuilder::new(mac(4), ssid())
            .ap(Point::new(0.0, 0.0), 1)
            .ap(Point::new(300.0, 0.0), 6)
            .sta(Point::new(5.0, 0.0))
            .sta(Point::new(295.0, 0.0))
            .build();
        ess.sim.run_until(SimTime::from_secs(3));
        assert_eq!(
            ess.sta_shared[0].lock().expect("shared state lock").state,
            StaState::Associated
        );
        assert_eq!(
            ess.sta_shared[1].lock().expect("shared state lock").state,
            StaState::Associated
        );
        assert_ne!(
            ess.sta_shared[0].lock().expect("shared state lock").bssid,
            ess.sta_shared[1].lock().expect("shared state lock").bssid,
            "each STA should pick its nearby AP"
        );
        let sta0 = ess.sta_ids[0];
        let sh0 = ess.sta_shared[0].clone();
        send_app_data(
            &mut ess.sim,
            sta0,
            &sh0,
            MacAddr::station(1),
            b"across the ESS".to_vec(),
            SimTime::from_secs(3),
        );
        ess.sim.run_until(SimTime::from_secs(5));
        let got = ess.sta_shared[1].lock().expect("shared state lock");
        assert_eq!(got.delivered.len(), 1, "frame must traverse the DS");
        assert_eq!(got.delivered[0].2, b"across the ESS");
        assert_eq!(ess.ap_shared[0].lock().expect("shared state lock").to_ds, 1);
        assert_eq!(
            ess.ap_shared[1].lock().expect("shared state lock").from_ds,
            1
        );
    }

    #[test]
    fn roaming_between_aps_fig_1_10() {
        use wn_sim::trace::{Level, TraceEvent};
        // A STA walks from AP0's cell into AP1's; §3.2 roaming.
        let mut ess = EssBuilder::new(mac(5), ssid())
            .ap(Point::new(0.0, 0.0), 1)
            .ap(Point::new(260.0, 0.0), 6)
            .sta(Point::new(10.0, 0.0))
            .build();
        // Retain only Info+ records so the long walk cannot evict the
        // association history we assert on below.
        ess.sim.world_mut().trace.set_min_level(Level::Info);
        ess.sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            ess.sta_shared[0].lock().expect("shared state lock").bssid,
            Some(MacAddr::access_point(0)),
            "starts on the near AP"
        );
        // Walk to the far AP over ~50 s.
        let sta = ess.sta_ids[0];
        schedule_walk(
            &mut ess.sim,
            sta,
            Point::new(10.0, 0.0),
            Point::new(250.0, 0.0),
            5.0,
            SimDuration::from_millis(200),
            SimTime::from_secs(2),
        );
        ess.sim.run_until(SimTime::from_secs(80));
        let sh = ess.sta_shared[0].lock().expect("shared state lock");
        assert_eq!(
            sh.state,
            StaState::Associated,
            "reassociated after the walk"
        );
        assert_eq!(
            sh.bssid,
            Some(MacAddr::access_point(1)),
            "now on the far AP"
        );
        assert!(
            sh.assoc_events.len() >= 2,
            "assoc history should record the handoff: {:?}",
            sh.assoc_events
        );
        assert_eq!(
            ess.ds
                .lock()
                .expect("shared state lock")
                .serving_ap(MacAddr::station(0)),
            Some(ess.ap_ids[1]),
            "DS association moved to AP1"
        );
        drop(sh);
        // Typed-event ordering: the first association precedes the
        // handoff decision, and the handoff was actually traced.
        let trace = &ess.sim.world().trace;
        assert!(
            trace.count_events(|e| matches!(e, TraceEvent::Handoff { .. })) >= 1,
            "roam decision must emit a Handoff event"
        );
        assert!(trace.happened_before_events(
            |e| matches!(e, TraceEvent::Assoc { .. }),
            |e| matches!(e, TraceEvent::Handoff { .. }),
        ));
    }

    #[test]
    fn ibss_peers_exchange_directly() {
        // Fig. 1.9 left: no AP at all.
        let mut net = IbssBuilder::new(mac(6))
            .node(Point::new(0.0, 0.0))
            .node(Point::new(12.0, 0.0))
            .node(Point::new(6.0, 8.0))
            .build();
        let a = net.ids[0];
        let sh_a = net.shared[0].clone();
        ibss_send(
            &mut net.sim,
            a,
            &sh_a,
            MacAddr::station(1),
            b"peer to peer".to_vec(),
            SimTime::from_millis(10),
        );
        net.sim.run_until(SimTime::from_secs(1));
        let got = net.shared[1].lock().expect("shared state lock");
        assert_eq!(got.delivered.len(), 1);
        assert_eq!(got.delivered[0].1, MacAddr::station(0));
        assert_eq!(net.shared[0].lock().expect("shared state lock").tx_ok, 1);
        // The third node saw nothing (unicast).
        assert!(net.shared[2]
            .lock()
            .expect("shared state lock")
            .delivered
            .is_empty());
    }

    #[test]
    fn ibss_broadcast_reaches_all() {
        let mut net = IbssBuilder::new(mac(7))
            .node(Point::new(0.0, 0.0))
            .node(Point::new(10.0, 0.0))
            .node(Point::new(0.0, 10.0))
            .node(Point::new(10.0, 10.0))
            .build();
        let a = net.ids[0];
        let sh_a = net.shared[0].clone();
        ibss_send(
            &mut net.sim,
            a,
            &sh_a,
            MacAddr::BROADCAST,
            b"hello all".to_vec(),
            SimTime::from_millis(10),
        );
        net.sim.run_until(SimTime::from_secs(1));
        for i in 1..4 {
            assert_eq!(
                net.shared[i]
                    .lock()
                    .expect("shared state lock")
                    .delivered
                    .len(),
                1,
                "node {i}"
            );
        }
    }

    #[test]
    fn power_save_sta_receives_buffered_frames_via_ps_poll() {
        let mut cfg = StaConfig::open(ssid(), vec![1]);
        cfg.power_save = true;
        let mut ess = EssBuilder::new(mac(8), ssid())
            .ap(Point::new(0.0, 0.0), 1)
            .sta(Point::new(5.0, 0.0))
            .sta_with(Point::new(-5.0, 0.0), cfg)
            .build();
        ess.sim.run_until(SimTime::from_secs(3));
        assert_eq!(
            ess.sta_shared[1].lock().expect("shared state lock").state,
            StaState::Associated
        );
        // Give the PS STA time to settle into its doze cycle, then send.
        let sta0 = ess.sta_ids[0];
        let sh0 = ess.sta_shared[0].clone();
        for k in 0..3u64 {
            send_app_data(
                &mut ess.sim,
                sta0,
                &sh0,
                MacAddr::station(1),
                format!("buffered-{k}").into_bytes(),
                SimTime::from_millis(3000 + k * 7),
            );
        }
        ess.sim.run_until(SimTime::from_secs(6));
        let sh = ess.sta_shared[1].lock().expect("shared state lock");
        assert_eq!(sh.delivered.len(), 3, "all buffered frames retrieved");
        assert!(sh.ps_polls >= 1, "PS-Poll was used: {}", sh.ps_polls);
        assert!(sh.dozes >= 2, "the STA dozed between beacons: {}", sh.dozes);
        assert!(
            ess.ap_shared[0]
                .lock()
                .expect("shared state lock")
                .ps_buffered
                >= 1,
            "AP buffered for the dozer"
        );
        drop(sh);
        // The doze/wake cycle is visible as typed PowerSave events.
        use wn_sim::trace::TraceEvent;
        let trace = &ess.sim.world().trace;
        let dozes = trace.count_events(|e| matches!(e, TraceEvent::PowerSave { doze: true, .. }));
        let wakes = trace.count_events(|e| matches!(e, TraceEvent::PowerSave { doze: false, .. }));
        assert!(dozes >= 2, "doze events traced: {dozes}");
        assert!(wakes >= 1, "wake events traced: {wakes}");
    }

    #[test]
    fn shared_key_auth_admits_right_key_and_rejects_wrong() {
        use crate::ap::ApConfig;
        use crate::ie::AuthAlgorithm;

        let build = |sta_key: &[u8]| {
            let mut ap_cfg = ApConfig::open(ssid(), 1);
            ap_cfg.auth = AuthAlgorithm::SharedKey;
            ap_cfg.shared_key = b"wep-shared-secret".to_vec();
            let mut sta_cfg = StaConfig::open(ssid(), vec![1]);
            sta_cfg.auth = AuthAlgorithm::SharedKey;
            sta_cfg.shared_key = sta_key.to_vec();
            EssBuilder::new(mac(31), ssid())
                .ap_with(Point::new(0.0, 0.0), ap_cfg)
                .sta_with(Point::new(8.0, 0.0), sta_cfg)
                .build()
        };
        // Matching key: §5.1 "demonstrating knowledge of a shared
        // secret" succeeds.
        let mut good = build(b"wep-shared-secret");
        good.sim.run_until(SimTime::from_secs(3));
        assert_eq!(
            good.sta_shared[0].lock().expect("shared state lock").state,
            StaState::Associated
        );

        // Wrong key: authentication refused, never associates.
        let mut bad = build(b"wrong-key");
        bad.sim.run_until(SimTime::from_secs(3));
        assert_ne!(
            bad.sta_shared[0].lock().expect("shared state lock").state,
            StaState::Associated
        );

        // Open-auth STA against a shared-key AP is refused too.
        let mut ap_cfg = ApConfig::open(ssid(), 1);
        ap_cfg.auth = AuthAlgorithm::SharedKey;
        ap_cfg.shared_key = b"wep-shared-secret".to_vec();
        let mut open = EssBuilder::new(mac(32), ssid())
            .ap_with(Point::new(0.0, 0.0), ap_cfg)
            .sta(Point::new(8.0, 0.0))
            .build();
        open.sim.run_until(SimTime::from_secs(3));
        assert_ne!(
            open.sta_shared[0].lock().expect("shared state lock").state,
            StaState::Associated
        );
    }

    #[test]
    fn active_scan_beats_passive_under_sparse_beacons() {
        use crate::ap::ApConfig;
        // Beacons only every 900 ms: a 120 ms passive dwell usually
        // misses them, while a probe request gets an immediate answer.
        let build = |active: bool, seed: u64| {
            let mut ap_cfg = ApConfig::open(ssid(), 1);
            ap_cfg.beacon_interval = SimDuration::from_millis(900);
            let mut sta_cfg = StaConfig::open(ssid(), vec![1]);
            sta_cfg.active_scan = active;
            EssBuilder::new(mac(seed), ssid())
                .ap_with(Point::new(0.0, 0.0), ap_cfg)
                .sta_with(Point::new(8.0, 0.0), sta_cfg)
                .build()
        };
        let mut active = build(true, 41);
        active.sim.run_until(SimTime::from_millis(600));
        assert_eq!(
            active.sta_shared[0]
                .lock()
                .expect("shared state lock")
                .state,
            StaState::Associated,
            "active scan should join within one dwell"
        );
        let mut passive = build(false, 41);
        passive.sim.run_until(SimTime::from_millis(600));
        assert_ne!(
            passive.sta_shared[0]
                .lock()
                .expect("shared state lock")
                .state,
            StaState::Associated,
            "passive scan cannot have seen a 900 ms beacon yet"
        );
        // Passive still converges eventually.
        passive.sim.run_until(SimTime::from_secs(30));
        assert_eq!(
            passive.sta_shared[0]
                .lock()
                .expect("shared state lock")
                .state,
            StaState::Associated
        );
    }

    #[test]
    fn many_stations_all_join_one_ap() {
        // Scale: eight stations scan, authenticate and associate on one
        // channel without stepping on each other.
        let mut b = EssBuilder::new(mac(33), ssid()).ap(Point::new(0.0, 0.0), 6);
        for i in 0..8 {
            let a = i as f64 / 8.0 * std::f64::consts::TAU;
            b = b.sta(Point::new(12.0 * a.cos(), 12.0 * a.sin()));
        }
        let mut ess = b.build();
        ess.sim.run_until(SimTime::from_secs(4));
        let mut aids = Vec::new();
        for sh in &ess.sta_shared {
            let sh = sh.lock().expect("shared state lock");
            assert_eq!(sh.state, StaState::Associated);
            aids.push(sh.aid);
        }
        aids.sort_unstable();
        aids.dedup();
        assert_eq!(aids.len(), 8, "every STA got a distinct AID");
        assert_eq!(ess.ds.lock().expect("shared state lock").station_count(), 8);
    }

    #[test]
    fn random_waypoint_keeps_station_in_area_and_roaming_works() {
        let mut ess = EssBuilder::new(mac(21), ssid())
            .ap(Point::new(0.0, 0.0), 1)
            .ap(Point::new(200.0, 0.0), 6)
            .sta(Point::new(10.0, 0.0))
            .build();
        ess.sim.run_until(SimTime::from_secs(2));
        let sta = ess.sta_ids[0];
        schedule_random_waypoint(
            &mut ess.sim,
            sta,
            Point::new(0.0, -40.0),
            Point::new(200.0, 40.0),
            3.0,
            8.0,
            77,
            SimTime::from_secs(2),
            SimTime::from_secs(60),
        );
        // Sample positions as the walk progresses: always inside the box.
        for t in [10u64, 25, 40, 55] {
            ess.sim.run_until(SimTime::from_secs(t));
            let p = ess.sim.world().position(sta);
            assert!(
                (-1.0..=201.0).contains(&p.x) && (-41.0..=41.0).contains(&p.y),
                "escaped the area at t={t}: {p}"
            );
        }
        ess.sim.run_until(SimTime::from_secs(70));
        // The STA stayed (or got back) on the network.
        let sh = ess.sta_shared[0].lock().expect("shared state lock");
        assert!(
            !sh.assoc_events.is_empty(),
            "station should have associated at least once"
        );
    }

    #[test]
    fn deterministic_association_given_seed() {
        let run = || {
            let mut ess = EssBuilder::new(mac(9), ssid())
                .ap(Point::new(0.0, 0.0), 1)
                .sta(Point::new(10.0, 0.0))
                .sta(Point::new(12.0, 0.0))
                .build();
            ess.sim.run_until(SimTime::from_secs(2));
            let a = ess.sta_shared[0]
                .lock()
                .expect("shared state lock")
                .assoc_events
                .clone();
            let b = ess.sta_shared[1]
                .lock()
                .expect("shared state lock")
                .assoc_events
                .clone();
            (a, b)
        };
        assert_eq!(run(), run());
    }
}
