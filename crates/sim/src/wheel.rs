//! A hierarchical timer wheel — the calendar-queue scheduler backend.
//!
//! Dense MAC timer workloads (backoff slots, SIFS/DIFS deadlines, NAV
//! expiries) schedule almost everything a few microseconds to a few
//! milliseconds ahead. A comparison-based heap pays O(log n) sifts per
//! pop and moves whole event payloads at every level; ns-2 ships a
//! calendar queue for exactly this reason. The wheel here buckets
//! events by quantised timestamp into a six-level hierarchy of 64-slot
//! wheels (64^6 ticks ≈ 19.5 hours of horizon at 1.024 µs per tick),
//! so each event is moved O(1) times in the common case and the pop
//! path is a bitmap scan plus a small sorted drain.
//!
//! Ordering is identical to the heap backend by construction: every
//! entry carries its packed [`event_key`](crate::engine::event_key)
//! `(time, seq)` key, slots are drained in tick order, and entries
//! within a drained tick are sorted by the full key. The two backends
//! therefore produce byte-identical schedules — the differential tests
//! in `wn-check` and `tests/determinism.rs` hold them to that.

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Hierarchy depth. Events beyond `64^LEVELS` ticks ahead overflow
/// into an unsorted spill vector that is re-bucketed on demand.
const LEVELS: usize = 6;
/// One tick is `1 << TICK_SHIFT` nanoseconds (1.024 µs) — finer than
/// any MAC-scale deadline spacing, coarse enough that a level-0 slot
/// drains in one bitmap probe.
const TICK_SHIFT: u32 = 10;
/// Ticks representable inside the hierarchy (log2).
const HORIZON_BITS: u32 = LEVELS as u32 * SLOT_BITS;

/// A hierarchical timer wheel ordering events by packed `(time, seq)`
/// key. See the module docs; use it through
/// [`Scheduler`](crate::engine::Scheduler) with
/// [`SchedulerKind::TimerWheel`](crate::engine::SchedulerKind).
pub struct TimerWheel<E> {
    /// Current drain position in ticks. Every entry in `slots` /
    /// `overflow` has a tick strictly greater than `pos`; `cur` holds
    /// ticks at or before it.
    pos: u64,
    /// `slots[level][slot]` buckets, unsorted within a bucket.
    slots: [[Vec<(u128, E)>; SLOTS]; LEVELS],
    /// Per-level occupancy bitmap (bit = slot has entries).
    occupied: [u64; LEVELS],
    /// The drained front, sorted by key **descending** so the minimum
    /// pops from the tail in O(1).
    cur: Vec<(u128, E)>,
    /// Events beyond the wheel horizon, re-bucketed when reached.
    overflow: Vec<(u128, E)>,
    /// Total entries across `cur`, `slots` and `overflow`.
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel positioned at tick zero.
    pub fn new() -> Self {
        TimerWheel {
            pos: 0,
            slots: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            occupied: [0; LEVELS],
            cur: Vec::new(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The minimum pending key, if any.
    pub fn peek_key(&self) -> Option<u128> {
        self.cur.last().map(|&(k, _)| k)
    }

    #[inline]
    fn tick_of(key: u128) -> u64 {
        (key >> (64 + TICK_SHIFT)) as u64
    }

    /// Inserts an entry. Keys are unique (the low bits carry the FIFO
    /// sequence number), so no two entries ever compare equal.
    pub fn push(&mut self, key: u128, event: E) {
        if self.len == 0 {
            // Re-anchor the wheel on the first entry; the cursor may
            // move backwards freely while nothing is pending.
            self.pos = Self::tick_of(key);
            self.cur.push((key, event));
            self.len = 1;
            return;
        }
        self.len += 1;
        if Self::tick_of(key) <= self.pos {
            self.push_cur(key, event);
        } else {
            self.place(key, event);
        }
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(u128, E)> {
        let entry = self.cur.pop()?;
        self.len -= 1;
        if self.cur.is_empty() && self.len > 0 {
            self.advance();
        }
        Some(entry)
    }

    /// Sorted insert into the drained front (descending, min at tail).
    ///
    /// The common case — a key at or past the current front's maximum,
    /// e.g. same-instant FIFO chains — appends in O(1); otherwise a
    /// binary search finds the slot within the (small, one-tick-ish)
    /// front.
    fn push_cur(&mut self, key: u128, event: E) {
        match self.cur.last() {
            Some(&(tail, _)) if key > tail => {
                let i = self.cur.partition_point(|&(k, _)| k > key);
                self.cur.insert(i, (key, event));
            }
            _ => self.cur.push((key, event)),
        }
    }

    /// Buckets an entry with tick strictly greater than `pos` into the
    /// hierarchy (or the overflow spill past the horizon). The level is
    /// the highest 6-bit digit in which the tick differs from `pos` —
    /// the slot it lands in cannot have been drained yet.
    fn place(&mut self, key: u128, event: E) {
        let t = Self::tick_of(key);
        let diff = t ^ self.pos;
        debug_assert!(diff != 0, "tick at/before pos belongs in cur");
        let msb = 63 - diff.leading_zeros();
        if msb >= HORIZON_BITS {
            self.overflow.push((key, event));
            return;
        }
        let level = (msb / SLOT_BITS) as usize;
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level][slot].push((key, event));
        self.occupied[level] |= 1 << slot;
    }

    /// Refills `cur` from the hierarchy. Called only when `cur` is
    /// empty and entries remain; cascades higher-level slots downwards
    /// until the earliest tick's entries reach the front.
    fn advance(&mut self) {
        loop {
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Everything pending sits past the horizon: re-anchor
                // on the earliest overflow tick and re-bucket. Rare
                // (needs a >19 h scheduling gap), amortised O(n).
                //
                // No spilled entry can be stranded here: the horizon
                // test is `msb(tick ^ pos) < HORIZON_BITS`, i.e. "same
                // 2^36-tick block as the cursor", and cascades never
                // carry `pos` across a block boundary (the hierarchy
                // only ever holds same-block ticks). So the *only* way
                // into a new block is this branch, which re-buckets the
                // whole spill — overflow entries can never be bypassed
                // by later-tick hierarchy entries. Pinned by
                // `overflow_reanchor_matches_heap_order`.
                debug_assert!(!self.overflow.is_empty());
                let min_tick = self
                    .overflow
                    .iter()
                    .map(|&(k, _)| Self::tick_of(k))
                    .min()
                    .expect("advance called with entries pending");
                self.pos = min_tick;
                for (k, e) in std::mem::take(&mut self.overflow) {
                    if Self::tick_of(k) == self.pos {
                        self.push_cur(k, e);
                    } else {
                        self.place(k, e);
                    }
                }
                // The minimum-tick entry landed in cur by construction.
                debug_assert!(!self.cur.is_empty());
                return;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.occupied[level] &= !(1u64 << slot);
            let entries = std::mem::take(&mut self.slots[level][slot]);
            debug_assert!(!entries.is_empty(), "occupancy bit set on empty slot");
            let width = SLOT_BITS * level as u32;
            // Jump the cursor to the start of the drained slot; lower
            // digits reset, so redistributed entries re-bucket at a
            // strictly lower level (or land in cur when exactly here).
            let span_mask = (1u64 << (width + SLOT_BITS)) - 1;
            self.pos = (self.pos & !span_mask) | ((slot as u64) << width);
            if level == 0 {
                // Swap the drained bucket in as the new front, handing
                // the front's spent buffer back to the slot for reuse.
                self.slots[0][slot] = std::mem::replace(&mut self.cur, entries);
                self.cur.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
                return;
            }
            for (k, e) in entries {
                if Self::tick_of(k) == self.pos {
                    self.push_cur(k, e);
                } else {
                    self.place(k, e);
                }
            }
            if !self.cur.is_empty() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::event_key;
    use crate::rng::Rng;
    use crate::time::SimTime;

    fn key(ns: u64, seq: u64) -> u128 {
        event_key(SimTime::from_nanos(ns), seq)
    }

    /// Pushes `(key, tag)` pairs and pops everything, asserting the pop
    /// order equals the fully sorted key order.
    fn assert_sorted_drain(pairs: Vec<(u128, u64)>) {
        let mut wheel = TimerWheel::new();
        for &(k, tag) in &pairs {
            wheel.push(k, tag);
        }
        assert_eq!(wheel.len(), pairs.len());
        let mut expect: Vec<u128> = pairs.iter().map(|&(k, _)| k).collect();
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some((k, _)) = wheel.pop() {
            got.push(k);
        }
        assert_eq!(got, expect);
        assert!(wheel.is_empty());
    }

    #[test]
    fn drains_in_key_order_across_levels() {
        // Times spanning every level of the hierarchy plus overflow:
        // nanoseconds up to hours.
        let times = [
            0u64,
            1,
            1_000,
            1_025,
            65_536,
            1 << 20,
            1 << 26,
            1 << 32,
            1 << 38,
            1 << 44,
            (1 << 46) + 12_345,
            u64::MAX / 2,
            u64::MAX,
        ];
        let pairs: Vec<(u128, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (key(t, i as u64), i as u64))
            .collect();
        assert_sorted_drain(pairs);
    }

    #[test]
    fn same_tick_entries_come_out_in_seq_order() {
        // 100 entries inside one 1.024 µs tick, shuffled seqs.
        let mut pairs = Vec::new();
        for seq in 0..100u64 {
            pairs.push((key(500 + (seq * 7) % 1000, seq), seq));
        }
        assert_sorted_drain(pairs);
    }

    #[test]
    fn random_workload_matches_sorted_reference() {
        let mut rng = Rng::new(0xD1CE);
        let mut pairs = Vec::new();
        for seq in 0..5_000u64 {
            // Mixture of near (µs..ms) and far (up to ~hours) times.
            let t = if rng.next_u64() % 8 == 0 {
                rng.next_u64() % (1u64 << 47)
            } else {
                rng.next_u64() % 2_000_000
            };
            pairs.push((key(t, seq), seq));
        }
        assert_sorted_drain(pairs);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        // Push while popping, only ever scheduling at/after the last
        // popped time — the engine's causality rule.
        let mut rng = Rng::new(7);
        let mut wheel = TimerWheel::new();
        let mut seq = 0u64;
        let mut last = 0u64;
        let mut popped = Vec::new();
        for _ in 0..200 {
            wheel.push(key(last + rng.next_u64() % 100_000, seq), seq);
            seq += 1;
        }
        while let Some((k, _)) = wheel.pop() {
            let t = (k >> 64) as u64;
            assert!(t >= last, "pop went backwards: {t} < {last}");
            last = t;
            popped.push(k);
            if seq < 2_000 {
                for _ in 0..2 {
                    wheel.push(key(last + rng.next_u64() % 500_000, seq), seq);
                    seq += 1;
                }
            }
        }
        assert_eq!(popped.len(), 2_000);
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted, "interleaved pops left key order");
    }

    #[test]
    fn push_at_current_tick_after_pop_pops_next() {
        let mut wheel = TimerWheel::new();
        wheel.push(key(10_000, 0), 0);
        wheel.push(key(2_000_000, 1), 1);
        assert_eq!(wheel.pop().map(|(_, t)| t), Some(0));
        // A new event earlier than the already-drained front must still
        // pop before it.
        wheel.push(key(10_500, 2), 2);
        assert_eq!(wheel.pop().map(|(_, t)| t), Some(2));
        assert_eq!(wheel.pop().map(|(_, t)| t), Some(1));
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn empty_wheel_reanchors_far_in_the_future() {
        let mut wheel = TimerWheel::new();
        wheel.push(key(100, 0), 0);
        assert!(wheel.pop().is_some());
        // Horizon-crossing re-anchor on an empty wheel.
        let far = 1u64 << 60;
        wheel.push(key(far, 1), 1);
        wheel.push(key(far + 5, 2), 2);
        assert_eq!(wheel.pop().map(|(_, t)| t), Some(1));
        assert_eq!(wheel.pop().map(|(_, t)| t), Some(2));
    }

    /// The re-anchor path (`advance` with every level empty) is the
    /// one place the cursor crosses a 2^36-tick horizon block, and it
    /// must re-bucket *all* spilled entries before draining resumes —
    /// an entry left in `overflow` while the hierarchy fills with
    /// later ticks would pop out of order. This exercises exactly that
    /// shape: nothing but far-future entries, repeated re-anchors, and
    /// causally-timed pushes landing both before and after the
    /// re-anchored cursor.
    #[test]
    fn overflow_only_workload_reanchors_in_key_order() {
        // Spread across many horizon blocks (one tick = 2^10 ns, one
        // block = 2^46 ns), including same-block pairs and block edges.
        let times = [
            1u64 << 47,
            (1 << 47) + (1 << 45),
            (1 << 47) + (1 << 45) + 1024,
            (1 << 46) - 1,
            1 << 46,
            (1 << 46) + 1,
            1 << 50,
            (1 << 50) + (1 << 44),
            1 << 55,
            (1 << 55) + 1,
            u64::MAX >> 1,
            u64::MAX,
        ];
        let pairs: Vec<(u128, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (key(t, i as u64), i as u64))
            .collect();
        assert_sorted_drain(pairs);
    }

    /// Differential check against a reference heap under the engine's
    /// causality rule, with push deltas chosen to straddle the wheel
    /// horizon: small (same block), ~horizon (adjacent block), and far
    /// past it (deep overflow). Catches any divergence in the
    /// overflow/re-anchor path that single-shot drains can't reach —
    /// e.g. a spilled entry skipped while later hierarchy ticks drain.
    #[test]
    fn overflow_reanchor_matches_heap_order() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        for seed in 0..40u64 {
            let mut rng = Rng::new(0xFA2_0000 + seed);
            let mut wheel = TimerWheel::new();
            let mut heap: BinaryHeap<Reverse<u128>> = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..8 {
                let k = key(rng.next_u64() % (1 << 48), seq);
                wheel.push(k, seq);
                heap.push(Reverse(k));
                seq += 1;
            }
            while let Some(Reverse(expect)) = heap.pop() {
                let got = wheel.pop().map(|(k, _)| k);
                assert_eq!(got, Some(expect), "seed {seed}: wheel diverged from heap");
                let now = (expect >> 64) as u64;
                // Causal pushes relative to the popped time, spanning
                // the horizon: same tick, same block, block edge, and
                // deep overflow.
                if seq < 400 {
                    for _ in 0..(rng.next_u64() % 3) {
                        let delta = match rng.next_u64() % 4 {
                            0 => rng.next_u64() % 4_096,
                            1 => rng.next_u64() % (1 << 44),
                            2 => (1 << 46) - 2048 + rng.next_u64() % 4_096,
                            _ => (1 << 46) + rng.next_u64() % (1 << 48),
                        };
                        let k = key(now.saturating_add(delta), seq);
                        wheel.push(k, seq);
                        heap.push(Reverse(k));
                        seq += 1;
                    }
                }
            }
            assert!(wheel.is_empty(), "seed {seed}: wheel kept entries");
        }
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut rng = Rng::new(99);
        let mut wheel = TimerWheel::new();
        for seq in 0..500u64 {
            wheel.push(key(rng.next_u64() % (1 << 40), seq), seq);
        }
        while let Some(k) = wheel.peek_key() {
            assert_eq!(wheel.pop().map(|(pk, _)| pk), Some(k));
        }
        assert!(wheel.is_empty());
    }
}
