//! The shared-medium 802.11 MAC simulation.
//!
//! This module binds the frame codec, DCF timing, duplicate detection
//! and ARF together into an event-driven model of one collision domain:
//!
//! - **Physical carrier sense** — a station defers while any
//!   transmission it can hear (above the CS threshold) is in the air.
//! - **Virtual carrier sense (NAV)** — Duration fields of overheard
//!   frames reserve the medium (§4.2), enabling RTS/CTS protection.
//! - **DCF** — DIFS + binary-exponential-backoff slotted contention,
//!   freeze-and-resume on busy, post-transmission backoff.
//! - **Reliability** — ACKs after SIFS, retries with the Retry bit,
//!   short/long retry limits, CW doubling and reset.
//! - **Fragmentation** — §4.2 More Fragments / fragment numbers; a
//!   fragment burst holds the medium with SIFS gaps.
//! - **Reception** — SINR-based error sampling over the interferer set,
//!   with the capture effect switchable (a DESIGN.md ablation).
//!
//! Higher layers (association, beacons, the distribution system — the
//! `wn-net80211` crate) plug in through the [`UpperLayer`] trait and
//! drive the MAC with [`Command`]s.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::addr::MacAddr;
use crate::arena::{FrameArena, FrameId};
use crate::arf::{Arf, ArfParams};
use crate::dedup::DedupCache;
use crate::duration::{ack_airtime, airtime, cts_airtime, data_duration, rts_duration};
use crate::frame::{Frame, FrameType, SequenceControl, SequenceCounter, Subtype};
use crate::grid::SpatialGrid;
use crate::neighbors::{AudibleSet, IdBitSet, NeighborCache, RxRow};
use wn_phy::geom::Point;
use wn_phy::medium::{coupled_rx_power, LinkBudget, Radio};
use wn_phy::modulation::{PhyStandard, RateStep};
use wn_phy::propagation::{LogDistance, PathLoss};
use wn_phy::units::{Db, Dbm, Hertz};
use wn_sim::metrics::{MetricsRegistry, MetricsSnapshot};
use wn_sim::stats::{Histogram, Summary, TimeWeighted};
use wn_sim::trace::{DropReason, FrameKind, Level, Trace, TraceEvent};
use wn_sim::{Rng, Scheduler, SimDuration, SimTime, World};

/// Maps an 802.11 frame subtype onto the protocol-agnostic trace
/// [`FrameKind`].
pub fn frame_kind(subtype: Subtype) -> FrameKind {
    match subtype {
        Subtype::AssocReq => FrameKind::AssocReq,
        Subtype::AssocResp => FrameKind::AssocResp,
        Subtype::ReassocReq => FrameKind::ReassocReq,
        Subtype::ReassocResp => FrameKind::ReassocResp,
        Subtype::ProbeReq => FrameKind::ProbeReq,
        Subtype::ProbeResp => FrameKind::ProbeResp,
        Subtype::Beacon => FrameKind::Beacon,
        Subtype::Atim => FrameKind::Atim,
        Subtype::Disassoc => FrameKind::Disassoc,
        Subtype::Auth => FrameKind::Auth,
        Subtype::Deauth => FrameKind::Deauth,
        Subtype::PsPoll => FrameKind::PsPoll,
        Subtype::Rts => FrameKind::Rts,
        Subtype::Cts => FrameKind::Cts,
        Subtype::Ack => FrameKind::Ack,
        Subtype::Data => FrameKind::Data,
        Subtype::NullData => FrameKind::NullData,
        Subtype::QosData => FrameKind::QosData,
        Subtype::BlockAckReq => FrameKind::BlockAckReq,
        Subtype::BlockAck => FrameKind::BlockAck,
    }
}

/// Index of a station within a [`WlanWorld`].
pub type StationId = usize;

/// Process-wide default for the propagation neighbor cache of newly
/// built worlds (on unless flipped). The cached and direct paths are
/// byte-identical on static topologies — this switch exists so the
/// perfsuite and the differential fuzz can time and compare them;
/// per-world overrides go through [`WlanWorld::set_neighbor_cache`].
static NEIGHBOR_CACHE_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide neighbor-cache default for new worlds.
pub fn set_neighbor_cache_default(on: bool) {
    NEIGHBOR_CACHE_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide neighbor-cache default.
pub fn neighbor_cache_default() -> bool {
    NEIGHBOR_CACHE_DEFAULT.load(Ordering::Relaxed)
}

/// MAC-level configuration shared by all stations in the world.
#[derive(Clone, Debug)]
pub struct MacConfig {
    /// The PHY generation everyone runs.
    pub standard: PhyStandard,
    /// Frames at least this long (bytes) are protected with RTS/CTS.
    pub rts_threshold: usize,
    /// MSDUs longer than this (bytes) are fragmented.
    pub frag_threshold: usize,
    /// Retry limit for short frames (below the RTS threshold) and RTS.
    pub retry_limit_short: u32,
    /// Retry limit for long frames.
    pub retry_limit_long: u32,
    /// Carrier-sense threshold: transmissions weaker than this at a
    /// receiver are inaudible (and become hidden-terminal interference).
    pub cs_threshold: Dbm,
    /// `true` → SINR-based capture; `false` → any overlap destroys the
    /// frame (the pure collision model).
    pub capture: bool,
    /// Enable ARF rate adaptation (off pins the top rate).
    pub arf: bool,
    /// Use AARF (adaptive probe backoff) instead of classic ARF.
    pub arf_adaptive: bool,
    /// Per-station transmit queue limit (MSDUs); overflow is dropped.
    pub queue_limit: usize,
    /// RNG seed for backoff draws and error sampling.
    pub seed: u64,
    /// Override the PHY's CWmin (binary-exponential-backoff ablation).
    pub cw_min_override: Option<u32>,
    /// Override the PHY's CWmax.
    pub cw_max_override: Option<u32>,
    /// Fault-injection switch for the fuzzer's oracle self-test: when
    /// set, the retry comparison is widened by one, so stations retry
    /// once past the configured limit. Never enabled by normal
    /// scenarios; `wn-check` uses it to prove the retry oracle can
    /// catch an off-by-one accounting bug.
    pub failpoint_retry_overrun: bool,
    /// Enable EDCA (802.11e) channel access: stations get four
    /// access-category queues with per-AC CWmin/CWmax/AIFSN/TXOP and
    /// transmit A-MPDU aggregates answered by compressed block acks.
    /// Off (the default) leaves the legacy DCF path byte-identical to
    /// pre-EDCA builds — no QoS state is even allocated.
    pub edca: bool,
    /// Maximum MPDUs aggregated into one A-MPDU (further capped by the
    /// AC's TXOP budget and the 64-bit block-ack window).
    pub ampdu_max_mpdus: usize,
    /// Maximum total payload bytes aggregated into one A-MPDU.
    pub ampdu_max_bytes: usize,
    /// Independent per-MPDU loss probability applied at a receiver
    /// that decoded the aggregate PPDU — models delimiter/CRC failures
    /// inside an otherwise-received burst, and is what makes *partial*
    /// block acks reachable. 0.0 (the default) acks all-or-nothing
    /// with the PPDU.
    pub ampdu_per_mpdu_loss: f64,
    /// Fault-injection switch for the priority-inversion oracle's
    /// self-test: swaps the AC_VO and AC_BK EDCA parameter sets at
    /// lookup, so voice contends like background traffic and the
    /// VO-p50 ≤ BK-p50 bound must trip. Never enabled by normal
    /// scenarios.
    pub failpoint_aifsn_swap: bool,
}

/// An 802.11e access category, highest priority first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessCategory {
    /// Voice.
    Vo,
    /// Video.
    Vi,
    /// Best effort.
    Be,
    /// Background.
    Bk,
}

impl AccessCategory {
    /// All categories, highest priority first.
    pub const ALL: [AccessCategory; 4] = [
        AccessCategory::Vo,
        AccessCategory::Vi,
        AccessCategory::Be,
        AccessCategory::Bk,
    ];

    /// Queue index (0 = VO … 3 = BK).
    pub fn index(self) -> usize {
        match self {
            AccessCategory::Vo => 0,
            AccessCategory::Vi => 1,
            AccessCategory::Be => 2,
            AccessCategory::Bk => 3,
        }
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(i: usize) -> Option<AccessCategory> {
        AccessCategory::ALL.get(i).copied()
    }

    /// Short label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            AccessCategory::Vo => "vo",
            AccessCategory::Vi => "vi",
            AccessCategory::Be => "be",
            AccessCategory::Bk => "bk",
        }
    }
}

/// The EDCA contention parameter set of one access category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdcaParams {
    /// CWmin for this category.
    pub cw_min: u32,
    /// CWmax for this category.
    pub cw_max: u32,
    /// AIFSN (slots after SIFS before backoff counts down).
    pub aifsn: u8,
    /// TXOP limit in microseconds; 0 means a single-MPDU-equivalent
    /// "no TXOP" grant with no aggregate duration cap.
    pub txop_us: u64,
}

impl MacConfig {
    /// A sensible default configuration for the given standard.
    pub fn new(standard: PhyStandard) -> Self {
        MacConfig {
            standard,
            rts_threshold: usize::MAX,
            frag_threshold: usize::MAX,
            retry_limit_short: 7,
            retry_limit_long: 4,
            cs_threshold: Dbm(-82.0),
            capture: true,
            arf: true,
            arf_adaptive: false,
            queue_limit: 64,
            seed: 1,
            cw_min_override: None,
            cw_max_override: None,
            failpoint_retry_overrun: false,
            edca: false,
            ampdu_max_mpdus: 16,
            ampdu_max_bytes: 65_535,
            ampdu_per_mpdu_loss: 0.0,
            failpoint_aifsn_swap: false,
        }
    }

    /// The EDCA parameter set of an access category (802.11e defaults:
    /// VO/VI shrink the contention window and VO/VI get TXOP grants;
    /// BE/BK inherit the PHY's CW bounds, BK waits a longer AIFS).
    /// The AIFSN-swap failpoint trades the full VO and BK sets.
    pub fn edca_params(&self, ac: AccessCategory) -> EdcaParams {
        let ac = if self.failpoint_aifsn_swap {
            match ac {
                AccessCategory::Vo => AccessCategory::Bk,
                AccessCategory::Bk => AccessCategory::Vo,
                other => other,
            }
        } else {
            ac
        };
        match ac {
            AccessCategory::Vo => EdcaParams {
                cw_min: 3,
                cw_max: 7,
                aifsn: 2,
                txop_us: 1_504,
            },
            AccessCategory::Vi => EdcaParams {
                cw_min: 7,
                cw_max: 15,
                aifsn: 2,
                txop_us: 3_008,
            },
            AccessCategory::Be => EdcaParams {
                cw_min: self.cw_min(),
                cw_max: self.cw_max(),
                aifsn: 3,
                txop_us: 0,
            },
            AccessCategory::Bk => EdcaParams {
                cw_min: self.cw_min(),
                cw_max: self.cw_max(),
                aifsn: 7,
                txop_us: 0,
            },
        }
    }

    /// The effective CWmin after overrides.
    pub fn cw_min(&self) -> u32 {
        self.cw_min_override
            .unwrap_or(self.standard.mac_timing().cw_min)
    }

    /// The effective CWmax after overrides.
    pub fn cw_max(&self) -> u32 {
        self.cw_max_override
            .unwrap_or(self.standard.mac_timing().cw_max)
    }
}

/// Commands an [`UpperLayer`] issues back into the MAC.
#[derive(Debug)]
pub enum Command {
    /// Queue a frame for transmission (the MAC assigns sequence
    /// numbers and handles fragmentation, retries and rate control).
    SendFrame(Frame),
    /// Request an [`UpperLayer::on_timer`] callback after a delay.
    SetTimer {
        /// Delay from now.
        delay: SimDuration,
        /// Opaque tag returned in the callback.
        tag: u64,
    },
    /// Set the Power Management bit on subsequent frames (§4.2).
    SetPowerManagement(bool),
    /// Doze or wake the radio: a dozing station neither receives nor
    /// carrier-senses.
    SetAwake(bool),
    /// Switch to another channel (1–14 at 2.4 GHz); transmissions on
    /// other channels are neither heard nor interfering.
    SetChannel(u8),
    /// Deliver an [`UpperLayer::on_timer`] callback to *another*
    /// station after `delay` — the out-of-band signalling path of a
    /// wired distribution system (§3.1: "In nearly all commercial
    /// products, wired Ethernet is used as the backbone").
    SignalStation {
        /// Target station.
        station: StationId,
        /// Opaque tag delivered to the target.
        tag: u64,
        /// Wire latency.
        delay: SimDuration,
    },
    /// Record a typed trace event in the world's trace — the
    /// instrumentation path for upper layers (association, roaming,
    /// power save live in `wn-net80211`, above the MAC).
    Trace {
        /// Record importance.
        level: Level,
        /// The event payload.
        event: TraceEvent,
    },
}

/// Context handed to [`UpperLayer`] callbacks.
pub struct UpperCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// This station's MAC address.
    pub addr: MacAddr,
    /// This station's id.
    pub id: StationId,
    commands: &'a mut Vec<Command>,
}

impl UpperCtx<'_> {
    /// Queues a frame for transmission.
    pub fn send(&mut self, frame: Frame) {
        self.commands.push(Command::SendFrame(frame));
    }

    /// Requests a timer callback.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.commands.push(Command::SetTimer { delay, tag });
    }

    /// Issues any other command.
    pub fn command(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// Records a typed trace event attributed to this station.
    pub fn emit(&mut self, level: Level, event: TraceEvent) {
        self.commands.push(Command::Trace { level, event });
    }
}

/// The interface the architecture layer implements on top of the MAC.
///
/// `Send` is a supertrait so whole worlds can migrate onto shard
/// executor threads (DESIGN.md §15); uppers share state via
/// `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`.
pub trait UpperLayer: Send {
    /// Called once when the simulation boots.
    fn on_start(&mut self, ctx: &mut UpperCtx) {
        let _ = ctx;
    }

    /// A decoded, deduplicated frame addressed to this station (or
    /// broadcast), with its received signal strength. Control
    /// ACK/RTS/CTS are consumed by the MAC and not delivered; PS-Poll
    /// *is* delivered (the AP must react).
    fn on_frame(&mut self, ctx: &mut UpperCtx, frame: &Frame, rssi: Dbm) {
        let _ = (ctx, frame, rssi);
    }

    /// Final outcome of a queued frame: delivered (ACKed / broadcast
    /// sent) or dropped after the retry limit.
    fn on_tx_result(&mut self, ctx: &mut UpperCtx, frame: &Frame, success: bool) {
        let _ = (ctx, frame, success);
    }

    /// A timer requested via [`Command::SetTimer`] fired.
    fn on_timer(&mut self, ctx: &mut UpperCtx, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// A do-nothing upper layer for raw-MAC experiments.
#[derive(Default)]
pub struct NullUpper;

impl UpperLayer for NullUpper {}

/// Per-station counters exposed to experiments.
#[derive(Clone, Debug, Default)]
pub struct StationStats {
    /// Data/management MSDUs queued.
    pub queued: u64,
    /// MSDUs dropped on queue overflow.
    pub queue_drops: u64,
    /// Frames put on the air (including control and retries).
    pub tx_frames: u64,
    /// Retransmissions.
    pub retries: u64,
    /// MSDUs abandoned at the retry limit.
    pub tx_failures: u64,
    /// MSDUs successfully completed (ACKed, or broadcast sent).
    pub tx_completions: u64,
    /// Frames decoded and accepted (addressed to us, not duplicate).
    pub rx_accepted: u64,
    /// Duplicates discarded.
    pub rx_duplicates: u64,
    /// Frames destroyed by collision/noise at this receiver.
    pub rx_errors: u64,
    /// Payload bytes delivered up the stack.
    pub rx_payload_bytes: u64,
    /// Microseconds this station spent transmitting (all frame kinds,
    /// retries included) — the airtime-fairness numerator.
    pub tx_airtime_us: u64,
    /// MAC access delay (µs) of each completed MSDU.
    pub access_delay_us: Summary,
}

/// One MSDU queued for transmission. The frame itself lives in the
/// world's [`FrameArena`]; a queue entry is two words.
struct Msdu {
    frame: FrameId,
    enqueued: SimTime,
}

/// The in-flight attempt for the head-of-line MSDU.
struct Attempt {
    msdu: Msdu,
    /// The full original MSDU body (taken from `msdu.frame` at queue
    /// time; restored into the completion callback's frame).
    body: Vec<u8>,
    /// Remaining fragment byte ranges of `body` (index 0 = next to
    /// send). Fragment bodies are sliced out at build time, so no
    /// per-fragment copies are held.
    frag_ranges: VecDeque<(usize, usize)>,
    frag_number: u8,
    short_retries: u32,
    long_retries: u32,
    use_rts: bool,
    cts_received: bool,
    rate: RateStep,
    is_retry: bool,
    /// The fully-built wire frame for the pending fragment (arena id,
    /// one reference held here), cached so retries of the same fragment
    /// do not re-clone header and body. Released and cleared whenever a
    /// field that feeds the build changes (fragment advance, retry-bit
    /// flip).
    built: Option<FrameId>,
}

/// What the station is currently waiting for after transmitting.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Expecting {
    Cts,
    Ack,
    BlockAck,
}

/// One MPDU riding (or waiting to re-ride) an A-MPDU aggregate.
struct AmpduMpdu {
    msdu: Msdu,
    seq: u16,
    retries: u32,
}

/// The in-flight A-MPDU attempt of one access category: the MPDUs not
/// yet block-acked, plus the cached aggregate wire frame.
struct AmpduFlight {
    mpdus: Vec<AmpduMpdu>,
    rate: RateStep,
    /// Starting sequence number — the first (lowest) MPDU's seq; the
    /// block-ack bitmap is relative to it.
    ssn: u16,
    /// Cached aggregate wire frame (one arena reference), rebuilt when
    /// the MPDU set changes (partial block ack trims it).
    built: Option<FrameId>,
}

/// One EDCA access category's transmit state.
#[derive(Default)]
struct AcState {
    queue: VecDeque<Msdu>,
    cw: u32,
    /// Remaining backoff slots; `None` when this AC is not contending.
    slots: Option<u32>,
    flight: Option<AmpduFlight>,
}

/// Per-station EDCA state, allocated only when [`MacConfig::edca`] is
/// on — legacy DCF worlds never touch (or pay for) any of it.
#[derive(Default)]
struct EdcaState {
    /// Access categories, indexed by [`AccessCategory::index`].
    acs: [AcState; 4],
    /// Which AC's aggregate is on the air / awaiting its block ack.
    tx_ac: Option<usize>,
}

impl EdcaState {
    fn new(cfg: &MacConfig) -> Box<EdcaState> {
        let mut e = Box::<EdcaState>::default();
        for (i, a) in e.acs.iter_mut().enumerate() {
            a.cw = cfg
                .edca_params(AccessCategory::from_index(i).expect("4 ACs"))
                .cw_min;
        }
        e
    }

    /// Whether any AC holds an armed (possibly frozen) backoff.
    fn any_slots(&self) -> bool {
        self.acs.iter().any(|a| a.slots.is_some())
    }
}

/// How an in-flight A-MPDU was answered.
enum BaResult {
    /// A block ack arrived with this SSN and bitmap.
    Ba(u16, u64),
    /// The block-ack timeout fired; nothing was acked.
    Timeout,
    /// Group-addressed aggregate: complete everything, no response.
    Broadcast,
}

/// A scheduled SIFS response (ACK/CTS) or follow-on fragment.
enum PendingTx {
    Control(Frame),
    NextFragment,
    DataAfterCts,
}

struct Station {
    addr: MacAddr,
    pos: Point,
    radio: Radio,
    power_mgmt: bool,
    upper: Option<Box<dyn UpperLayer>>,
    queue: VecDeque<Msdu>,
    current: Option<Attempt>,
    seq: SequenceCounter,
    dedup: DedupCache,
    arf: Arf,
    reassembly: HashMap<(MacAddr, u16), Vec<u8>>,
    pending: Option<(PendingTx, u64)>,
    stats: StationStats,
    /// EDCA/A-MPDU state; `None` on legacy DCF stations.
    edca: Option<Box<EdcaState>>,
}

/// Per-station DCF/carrier-sense state, flattened into parallel
/// vectors (struct-of-arrays), indexed by [`StationId`].
///
/// These are exactly the fields the per-event hot path touches for
/// stations *other* than the event's own — busy/idle edges, NAV
/// updates, audibility bookkeeping, contender re-arms. Packing each
/// field contiguously keeps those cross-station sweeps on a handful
/// of cache lines instead of striding across whole [`Station`]
/// structs (queues, dedup tables, reassembly maps, stats) hundreds of
/// bytes apart.
#[derive(Default)]
struct DcfState {
    /// Virtual carrier sense: the NAV reservation horizon.
    nav_until: Vec<SimTime>,
    /// In-flight transmissions this station can hear (physical CS).
    audible: Vec<AudibleSet>,
    /// The record id of this station's own in-flight transmission.
    transmitting: Vec<Option<u64>>,
    /// Remaining backoff slots; `None` means no access procedure armed.
    backoff_slots: Vec<Option<u32>>,
    /// When the currently-armed access timer started counting.
    access_armed_at: Vec<Option<SimTime>>,
    /// Contention window (doubles on retry, resets on completion).
    cw: Vec<u32>,
    /// Generation guard invalidating stale scheduled timers.
    timer_gen: Vec<u64>,
    /// The response (CTS/ACK) this station is waiting for, if any.
    expecting: Vec<Option<(Expecting, u64)>>,
    /// The channel the station's radio is tuned to.
    channel: Vec<u8>,
    /// Whether the radio is awake (power save puts it to sleep).
    awake: Vec<bool>,
}

impl DcfState {
    /// Appends one station's worth of initial state.
    fn push(&mut self, cw_min: u32) {
        self.nav_until.push(SimTime::ZERO);
        self.audible.push(AudibleSet::default());
        self.transmitting.push(None);
        self.backoff_slots.push(None);
        self.access_armed_at.push(None);
        self.cw.push(cw_min);
        self.timer_gen.push(0);
        self.expecting.push(None);
        self.channel.push(1);
        self.awake.push(true);
    }

    /// Pre-sizes every column for `additional` more stations.
    fn reserve(&mut self, additional: usize) {
        self.nav_until.reserve(additional);
        self.audible.reserve(additional);
        self.transmitting.reserve(additional);
        self.backoff_slots.reserve(additional);
        self.access_armed_at.reserve(additional);
        self.cw.reserve(additional);
        self.timer_gen.reserve(additional);
        self.expecting.reserve(additional);
        self.channel.reserve(additional);
        self.awake.reserve(additional);
    }
}

/// A transmission on the medium (possibly already finished, retained
/// briefly for interference bookkeeping).
struct TxRecord {
    id: u64,
    src: StationId,
    channel: u8,
    /// The wire frame (arena id; this record holds one reference) —
    /// shared with every successful receiver and with the sender's
    /// build cache instead of deep-cloned per reception.
    frame: FrameId,
    rate: RateStep,
    start: SimTime,
    end: SimTime,
    /// Received power per station (with the bit-exact linear-milliwatt
    /// mirror inside) — a start-time snapshot shared with the neighbor
    /// cache (copy-on-write: mobility after tx start patches the
    /// cache, not this row). Sparse grid-backed rows answer −∞ for
    /// stations beyond the transmitter's cell neighborhood, which are
    /// below the carrier-sense floor by construction.
    rx_power: RxRow,
    /// Stations whose raw start-time power meets the CS threshold,
    /// ascending — the only ones busy/idle-edge delivery visits.
    candidates: Arc<Vec<StationId>>,
    done: bool,
}

/// Events driving the MAC world.
pub enum MacEvent {
    /// Deliver `UpperLayer::on_start` to every station.
    Boot,
    /// A transmission finished; receivers decide reception.
    TxEnd {
        /// Record id.
        tx_id: u64,
    },
    /// DIFS + backoff completed; transmit if still valid.
    AccessTimer {
        /// Station whose timer fired.
        station: StationId,
        /// Generation guard against stale timers.
        gen: u64,
    },
    /// CTS/ACK did not arrive in time.
    ResponseTimeout {
        /// Waiting station.
        station: StationId,
        /// Generation guard.
        gen: u64,
    },
    /// A SIFS-spaced response or burst continuation is due.
    SifsAction {
        /// Responding station.
        station: StationId,
        /// Generation guard.
        gen: u64,
    },
    /// The NAV reservation expired; re-evaluate channel access.
    NavExpired {
        /// Station whose NAV ended.
        station: StationId,
    },
    /// An upper-layer timer fired.
    UpperTimer {
        /// Target station.
        station: StationId,
        /// Opaque tag.
        tag: u64,
    },
    /// Move a station (mobility models schedule these).
    SetPosition {
        /// Target station.
        station: StationId,
        /// New position.
        pos: Point,
    },
    /// Inject an application frame into a station's queue. The frame
    /// was staged into the world's arena ([`WlanWorld::stage_frame`],
    /// or the [`inject_at`] one-call form); the event carries only its
    /// id, so scheduler entries stay a few words regardless of payload.
    Inject {
        /// Sending station.
        station: StationId,
        /// The staged frame to queue.
        frame: FrameId,
    },
    /// Inject a staged frame into a specific EDCA access-category
    /// queue. On a legacy (non-EDCA) station this degrades to a plain
    /// [`Inject`](Self::Inject).
    InjectQos {
        /// Sending station.
        station: StationId,
        /// The staged frame to queue.
        frame: FrameId,
        /// Target access category.
        ac: AccessCategory,
    },
    /// Deliver the failure confirmation for an MSDU dropped on queue
    /// overflow. Scheduled (at the drop instant) rather than called
    /// inline so an upper layer that reacts by sending again cannot
    /// recurse unboundedly through the MAC.
    TxDropped {
        /// Station whose queue overflowed.
        station: StationId,
        /// The dropped MSDU (arena id, parked on this event).
        frame: FrameId,
    },
}

/// Direct-mapped memo for [`RateStep::success_prob`]. The dominant
/// per-candidate cost in a dense network's `TxEnd` sweep is the `exp`
/// plus `powf` inside the PER model, and in a static topology the
/// same (SINR, frame length, rate threshold) triple recurs for every
/// retransmission over the same link. Keys are the exact `f64` bit
/// patterns of the inputs, so a hit returns bit-for-bit the same
/// probability a direct evaluation would; a slot collision simply
/// recomputes. Slots are allocated lazily on first use, so worlds
/// that never reach a SINR decision pay nothing.
#[derive(Default)]
struct ProbCache {
    keys: Vec<(u64, u64, u64)>,
    vals: Vec<f64>,
}

const PROB_CACHE_SLOTS: usize = 1 << 16;
/// No real key carries `bits == u64::MAX` (frame lengths are a few
/// thousand bits), so this triple marks an empty slot.
const PROB_CACHE_EMPTY: (u64, u64, u64) = (u64::MAX, u64::MAX, u64::MAX);

impl ProbCache {
    #[inline]
    fn success_prob(&mut self, rate: RateStep, sinr_db: f64, bits: u64) -> f64 {
        if self.keys.is_empty() {
            self.keys = vec![PROB_CACHE_EMPTY; PROB_CACHE_SLOTS];
            self.vals = vec![0.0; PROB_CACHE_SLOTS];
        }
        let key = (sinr_db.to_bits(), bits, rate.min_snr_db.to_bits());
        // FNV-1a over the three words.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [key.0, key.1, key.2] {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let i = (h as usize) & (PROB_CACHE_SLOTS - 1);
        if self.keys[i] == key {
            return self.vals[i];
        }
        let p = rate.success_prob(sinr_db, bits);
        self.keys[i] = key;
        self.vals[i] = p;
        p
    }
}

/// The shared-medium world; drive it with [`wn_sim::Simulation`].
pub struct WlanWorld {
    cfg: MacConfig,
    /// Per-station ARF controllers clone this template — a refcount
    /// bump on the shared rate ladder instead of a rebuild per station.
    arf_template: Arf,
    budget: LinkBudget,
    loss: Box<dyn Fn(Point, Point, Hertz, SimTime) -> Db + Send>,
    stations: Vec<Station>,
    /// Per-station DCF state, flattened column-wise ([`DcfState`]).
    dcf: DcfState,
    records: Vec<TxRecord>,
    /// Every frame in flight anywhere in the MAC — queues, attempts,
    /// transmission records, parked injection events — addressed by
    /// copyable [`FrameId`]s instead of `Rc` pointers.
    frames: FrameArena,
    /// Arena references parked on scheduled `Inject`/`TxDropped`
    /// events (a term of the [`frame_ledger`](Self::frame_ledger)).
    staged: u64,
    /// Pairwise rx-power / audibility cache (built lazily at the first
    /// transmission when `neighbor_cache` is on).
    neighbors: NeighborCache,
    /// Whether this world memoizes propagation. Forced off by
    /// [`set_loss_model`](Self::set_loss_model) (time-varying models
    /// cannot be cached).
    neighbor_cache: bool,
    /// The spatial hash grid backing sparse neighbor rows; alive
    /// exactly while the cache is built in sparse mode, kept in sync
    /// with station positions by [`set_position`](Self::set_position).
    grid: Option<SpatialGrid>,
    /// Whether position-driven scans may use the spatial grid (on by
    /// default; engaging additionally requires an isotropic loss model
    /// and a finite probed audible reach).
    grid_index: bool,
    /// Whether the loss closure is a pure monotone function of the
    /// pair's distance — the precondition for probing the audible
    /// reach along a single ray. True for the built-in log-distance
    /// model; cleared by every loss-model replacement except
    /// [`set_loss_model_static_isotropic`](Self::set_loss_model_static_isotropic).
    loss_isotropic: bool,
    /// Reused scratch for grid neighborhood queries during mobility
    /// patches.
    hood_scratch: Vec<StationId>,
    /// Contender wait-list: stations with an armed backoff whose
    /// access timer is not running — the only ones an idle edge can
    /// affect.
    contenders: IdBitSet,
    /// Reused scratch for iterating `contenders` while re-arming.
    rearm_scratch: Vec<StationId>,
    /// Reused scratch for the half-duplex source bitset in
    /// [`handle_tx_end`](Self::handle_tx_end).
    txsrc_scratch: IdBitSet,
    /// Reused scratch for the column-wise interference accumulator in
    /// [`handle_tx_end`](Self::handle_tx_end).
    intf_scratch: Vec<f64>,
    /// Reused scratch for the receivers that decoded the completing
    /// frame in [`handle_tx_end`](Self::handle_tx_end).
    decoded_scratch: Vec<(StationId, Dbm)>,
    /// Reused scratch for the time-overlapping record indices in
    /// [`handle_tx_end`](Self::handle_tx_end).
    overlap_scratch: Vec<usize>,
    /// Reused scratch for upper-layer command batches in
    /// [`with_upper`](Self::with_upper).
    cmd_scratch: Vec<Command>,
    /// `success_prob` memo (see [`ProbCache`]).
    prob_cache: ProbCache,
    next_tx_id: u64,
    rng: Rng,
    /// Protocol trace for tests and debugging.
    pub trace: Trace,
    /// World-level access delay distribution (µs) over completions.
    access_delay_hist: Histogram,
    /// Per-access-category access-delay distributions (µs), recorded
    /// only by EDCA completions; all four stay empty on legacy worlds.
    ac_delay_hist: [Histogram; 4],
    /// MSDUs waiting in transmit queues across all stations.
    queue_gauge: TimeWeighted,
    sifs: SimDuration,
    difs: SimDuration,
    slot: SimDuration,
    /// AIFS per access category (failpoint swap already applied).
    edca_aifs: [SimDuration; 4],
    booted: bool,
}

impl WlanWorld {
    /// Creates a world with the default consumer radio and indoor
    /// log-distance propagation.
    pub fn new(cfg: MacConfig) -> Self {
        let std = cfg.standard;
        let budget = LinkBudget::for_standard(std, Radio::consumer_wifi());
        let model = LogDistance::indoor();
        let rng = Rng::new(cfg.seed);
        let arf_template = Arf::new(
            std,
            if cfg.arf_adaptive {
                ArfParams::aarf()
            } else {
                ArfParams::default()
            },
            cfg.arf,
        );
        WlanWorld {
            arf_template,
            budget,
            loss: Box::new(move |a, b, f, _t| model.loss(a.distance_to(b), f)),
            stations: Vec::new(),
            dcf: DcfState::default(),
            records: Vec::new(),
            frames: FrameArena::new(),
            staged: 0,
            neighbors: NeighborCache::new(),
            neighbor_cache: neighbor_cache_default(),
            grid: None,
            grid_index: true,
            loss_isotropic: true,
            hood_scratch: Vec::new(),
            contenders: IdBitSet::new(),
            rearm_scratch: Vec::new(),
            txsrc_scratch: IdBitSet::new(),
            intf_scratch: Vec::new(),
            decoded_scratch: Vec::new(),
            overlap_scratch: Vec::new(),
            cmd_scratch: Vec::new(),
            prob_cache: ProbCache::default(),
            next_tx_id: 0,
            rng,
            trace: Trace::new(8192),
            access_delay_hist: Histogram::new(),
            ac_delay_hist: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
            queue_gauge: TimeWeighted::new(SimTime::ZERO, 0.0),
            sifs: crate::duration::sifs(std),
            difs: crate::duration::difs(std),
            slot: crate::duration::slot(std),
            edca_aifs: {
                let mut aifs = [SimDuration::ZERO; 4];
                for (i, a) in aifs.iter_mut().enumerate() {
                    let ac = AccessCategory::from_index(i).expect("4 ACs");
                    *a = crate::duration::aifs(std, cfg.edca_params(ac).aifsn);
                }
                aifs
            },
            booted: false,
            cfg,
        }
    }

    /// Replaces the propagation model (position- and time-aware; the
    /// time argument enables fading models). A time-varying loss
    /// cannot be memoized, so this also disables the neighbor cache;
    /// models that ignore the time argument should go through
    /// [`set_loss_model_static`](Self::set_loss_model_static) instead.
    pub fn set_loss_model(&mut self, loss: Box<dyn Fn(Point, Point, Hertz, SimTime) -> Db + Send>) {
        self.loss = loss;
        self.neighbor_cache = false;
        self.loss_isotropic = false;
        self.invalidate_neighbors();
    }

    /// Replaces the propagation model with one the caller guarantees
    /// ignores the time argument (any pure function of geometry), so
    /// the neighbor cache stays eligible. The model may still be
    /// anisotropic (walls, shadowing), so the audible-reach probe —
    /// and with it the spatial grid — is disabled; the cache falls
    /// back to dense rows.
    pub fn set_loss_model_static(
        &mut self,
        loss: Box<dyn Fn(Point, Point, Hertz, SimTime) -> Db + Send>,
    ) {
        self.loss = loss;
        self.loss_isotropic = false;
        self.invalidate_neighbors();
    }

    /// Replaces the propagation model with one the caller guarantees
    /// is a pure **monotone function of the pair's distance** (no time
    /// dependence, no geometry beyond `a.distance_to(b)`): the
    /// strongest contract, keeping both the neighbor cache and the
    /// spatial grid's radial reach probe sound.
    pub fn set_loss_model_static_isotropic(
        &mut self,
        loss: Box<dyn Fn(Point, Point, Hertz, SimTime) -> Db + Send>,
    ) {
        self.loss = loss;
        self.loss_isotropic = true;
        self.invalidate_neighbors();
    }

    /// Enables or disables the propagation neighbor cache for this
    /// world, overriding the process default
    /// ([`set_neighbor_cache_default`]). The cache assumes the loss
    /// model is time-invariant; enabling it under a fading model set
    /// via [`set_loss_model`](Self::set_loss_model) is unsound.
    pub fn set_neighbor_cache(&mut self, on: bool) {
        self.neighbor_cache = on;
        if !on {
            self.invalidate_neighbors();
        }
    }

    /// Enables or disables the spatial grid index for this world's
    /// position-driven scans (sparse neighbor rows, grid-backed shard
    /// planning). On by default; turning it off forces the dense
    /// O(n²) representations — the reference the `fuzz --grid-diff`
    /// differential leg compares against.
    pub fn set_grid_index(&mut self, on: bool) {
        if self.grid_index != on {
            self.grid_index = on;
            self.invalidate_neighbors();
        }
    }

    /// Whether position-driven scans may use the spatial grid.
    pub fn grid_index_enabled(&self) -> bool {
        self.grid_index
    }

    /// The live spatial grid (present only while the neighbor cache is
    /// built in sparse mode). Test and oracle hook.
    pub fn spatial_grid(&self) -> Option<&SpatialGrid> {
        self.grid.as_ref()
    }

    /// Whether this world memoizes propagation.
    pub fn neighbor_cache_enabled(&self) -> bool {
        self.neighbor_cache
    }

    /// The propagation neighbor cache (empty until primed or first
    /// used). Exposed read-only so partition property tests can check
    /// shard assignments against the cached audible-neighbor lists.
    pub fn neighbor_cache(&self) -> &NeighborCache {
        &self.neighbors
    }

    /// Adds a station; returns its id. All stations must be added
    /// before the `Boot` event runs.
    pub fn add_station(
        &mut self,
        addr: MacAddr,
        pos: Point,
        upper: Box<dyn UpperLayer>,
    ) -> StationId {
        self.invalidate_neighbors(); // Stale matrix shape; rebuilt on first tx.
        self.push_station(addr, pos, upper)
    }

    /// Appends one station without touching the neighbor cache; the
    /// caller has already invalidated it (once per batch, not per
    /// station).
    fn push_station(&mut self, addr: MacAddr, pos: Point, upper: Box<dyn UpperLayer>) -> StationId {
        let id = self.stations.len();
        self.stations.push(Station {
            addr,
            pos,
            radio: Radio::consumer_wifi(),
            power_mgmt: false,
            upper: Some(upper),
            queue: VecDeque::new(),
            current: None,
            seq: SequenceCounter::default(),
            dedup: DedupCache::new(),
            arf: self.arf_template.clone(),
            reassembly: HashMap::new(),
            pending: None,
            stats: StationStats::default(),
            edca: self.cfg.edca.then(|| EdcaState::new(&self.cfg)),
        });
        self.dcf.push(self.cfg.cw_min());
        id
    }

    /// Pre-sizes the station table for `additional` more stations.
    pub fn reserve_stations(&mut self, additional: usize) {
        self.stations.reserve(additional);
        self.dcf.reserve(additional);
    }

    /// Bulk station boot fast path: adds `n` stations with the
    /// canonical `MacAddr::station(id)` addressing, positions from
    /// `pos(i)` and upper layers from `upper(i)`; returns their id
    /// range.
    ///
    /// One table reservation up front plus the shared-ladder ARF
    /// template make each added station allocation-free — the setup
    /// cost that dominates a 1000-station SCALE-DCF world otherwise.
    /// The neighbor cache and spatial grid are invalidated **once**
    /// for the whole batch and rebuilt lazily at the first
    /// transmission, so batched adds never pay per-station O(n·k)
    /// rebuild work.
    pub fn add_stations(
        &mut self,
        n: usize,
        mut pos: impl FnMut(usize) -> Point,
        mut upper: impl FnMut(usize) -> Box<dyn UpperLayer>,
    ) -> std::ops::Range<StationId> {
        let start = self.stations.len();
        self.reserve_stations(n);
        self.invalidate_neighbors();
        for i in 0..n {
            let id = start + i;
            self.push_station(MacAddr::station(id as u32), pos(i), upper(i));
        }
        start..self.stations.len()
    }

    /// Station id by MAC address.
    pub fn station_by_addr(&self, addr: MacAddr) -> Option<StationId> {
        self.stations.iter().position(|s| s.addr == addr)
    }

    /// A station's statistics.
    pub fn stats(&self, id: StationId) -> &StationStats {
        &self.stations[id].stats
    }

    /// A station's MAC address.
    pub fn addr(&self, id: StationId) -> MacAddr {
        self.stations[id].addr
    }

    /// A station's current position.
    pub fn position(&self, id: StationId) -> Point {
        self.stations[id].pos
    }

    /// Sets a station's radio parameters (before boot).
    pub fn set_radio(&mut self, id: StationId, radio: Radio) {
        self.stations[id].radio = radio;
        self.invalidate_neighbors();
    }

    /// Sets a station's channel directly (scenario setup).
    pub fn set_channel(&mut self, id: StationId, channel: u8) {
        self.dcf.channel[id] = channel;
    }

    /// Number of stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// The shared MAC configuration (the bounds invariant oracles
    /// check trace events against).
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// MSDUs accepted for `id` but not yet completed: queued plus the
    /// one currently being attempted. Together with [`StationStats`]
    /// this closes the frame-conservation ledger
    /// `queued == tx_completions + tx_failures + queue_drops + pending`.
    pub fn pending_msdus(&self, id: StationId) -> u64 {
        let s = &self.stations[id];
        let edca = s.edca.as_ref().map_or(0, |e| {
            e.acs
                .iter()
                .map(|a| {
                    a.queue.len() as u64 + a.flight.as_ref().map_or(0, |f| f.mpdus.len() as u64)
                })
                .sum::<u64>()
        });
        s.queue.len() as u64 + u64::from(s.current.is_some()) + edca
    }

    /// Stages a frame into the world's arena for a later
    /// [`MacEvent::Inject`] delivery; the returned id is what the
    /// event carries. Traffic generators and scenario set-up go
    /// through this (or the [`inject_at`] convenience wrapper) so a
    /// scheduler entry is a handful of words, not a full frame.
    pub fn stage_frame(&mut self, frame: Frame) -> FrameId {
        self.staged += 1;
        self.frames.insert(frame)
    }

    /// The frame arena (oracle/test hook).
    pub fn frame_arena(&self) -> &FrameArena {
        &self.frames
    }

    /// The frame-conservation ledger: total outstanding arena
    /// references on the left, the sum over every holder the MAC knows
    /// about on the right — references parked on scheduled
    /// `Inject`/`TxDropped` events, queued MSDUs, the in-progress
    /// attempt (its MSDU plus its cached wire frame) and transmission
    /// records. The fuzzer asserts the two sides stay equal between
    /// events; a leaked or double-released frame id shows up as drift.
    pub fn frame_ledger(&self) -> (u64, u64) {
        let held = self.staged
            + self
                .stations
                .iter()
                .map(|s| {
                    s.queue.len() as u64
                        + s.current
                            .as_ref()
                            .map_or(0, |at| 1 + u64::from(at.built.is_some()))
                        + s.edca.as_ref().map_or(0, |e| {
                            e.acs
                                .iter()
                                .map(|a| {
                                    a.queue.len() as u64
                                        + a.flight.as_ref().map_or(0, |f| {
                                            f.mpdus.len() as u64 + u64::from(f.built.is_some())
                                        })
                                })
                                .sum::<u64>()
                        })
                })
                .sum::<u64>()
            + self.records.len() as u64;
        (self.frames.total_refs(), held)
    }

    /// A quantile (e.g. 0.5, 0.99) of the world-level access-delay
    /// distribution, in microseconds; `None` before any completion.
    pub fn access_delay_quantile(&self, q: f64) -> Option<u64> {
        self.access_delay_hist.quantile(q)
    }

    /// A quantile of one access category's access-delay distribution
    /// (µs); `None` before any EDCA completion in that category.
    pub fn ac_delay_quantile(&self, ac: AccessCategory, q: f64) -> Option<u64> {
        self.ac_delay_hist[ac.index()].quantile(q)
    }

    /// Number of completions recorded in one access category's
    /// access-delay distribution (the sample count behind
    /// [`Self::ac_delay_quantile`]).
    pub fn ac_delay_samples(&self, ac: AccessCategory) -> u64 {
        self.ac_delay_hist[ac.index()].count()
    }

    /// Microseconds station `id` has spent transmitting.
    pub fn station_airtime_us(&self, id: StationId) -> u64 {
        self.stations[id].stats.tx_airtime_us
    }

    /// Aggregate delivered payload bytes across all stations.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.stations.iter().map(|s| s.stats.rx_payload_bytes).sum()
    }

    /// Exports the MAC's per-station counters and the world-level
    /// instruments into a named registry and snapshots it at `now`.
    ///
    /// Hot-path accounting stays in plain [`StationStats`] fields; this
    /// names them (`layer="mac"`) only when a snapshot is requested.
    pub fn metrics_snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for (id, s) in self.stations.iter().enumerate() {
            let sid = Some(id as u32);
            reg.counter("mac", "queued", sid).add(s.stats.queued);
            reg.counter("mac", "queue_drops", sid)
                .add(s.stats.queue_drops);
            reg.counter("mac", "tx_frames", sid).add(s.stats.tx_frames);
            reg.counter("mac", "retries", sid).add(s.stats.retries);
            reg.counter("mac", "tx_failures", sid)
                .add(s.stats.tx_failures);
            reg.counter("mac", "tx_completions", sid)
                .add(s.stats.tx_completions);
            reg.counter("mac", "rx_accepted", sid)
                .add(s.stats.rx_accepted);
            reg.counter("mac", "rx_duplicates", sid)
                .add(s.stats.rx_duplicates);
            reg.counter("mac", "rx_errors", sid).add(s.stats.rx_errors);
            reg.counter("mac", "rx_payload_bytes", sid)
                .add(s.stats.rx_payload_bytes);
            *reg.summary("mac", "access_delay_us", sid) = s.stats.access_delay_us.clone();
        }
        *reg.histogram("mac", "access_delay_us_hist", None) = self.access_delay_hist.clone();
        *reg.gauge("mac", "queued_msdus", None, SimTime::ZERO, 0.0) = self.queue_gauge.clone();
        if self.cfg.edca {
            // QoS observables exist only on EDCA worlds, so a legacy
            // world's snapshot (and its digest) is untouched.
            const AC_HIST: [&str; 4] = [
                "access_delay_us_ac_vo",
                "access_delay_us_ac_vi",
                "access_delay_us_ac_be",
                "access_delay_us_ac_bk",
            ];
            for (name, hist) in AC_HIST.iter().zip(self.ac_delay_hist.iter()) {
                *reg.histogram("mac", name, None) = hist.clone();
            }
            for (id, s) in self.stations.iter().enumerate() {
                reg.counter("mac", "tx_airtime_us", Some(id as u32))
                    .add(s.stats.tx_airtime_us);
            }
        }
        reg.snapshot(now)
    }

    // ----- internals -----

    fn rx_power_at(&self, src: StationId, dst: StationId, now: SimTime) -> Dbm {
        let a = &self.stations[src];
        let b = &self.stations[dst];
        let loss = (self.loss)(a.pos, b.pos, self.budget.frequency, now);
        coupled_rx_power(&a.radio, &b.radio, loss)
    }

    /// Drops the neighbor cache and its backing grid together (they
    /// are built as a unit and must die as one).
    fn invalidate_neighbors(&mut self) {
        self.neighbors.clear();
        self.grid = None;
    }

    /// The maximum distance at which any pair of this world's radios
    /// can meet the carrier-sense threshold, probed radially against
    /// the loss closure (exponential search for the first inaudible
    /// distance, then bisection — the same shape as
    /// `LinkBudget::max_range_for_rate`). Uses the worst-case coupling
    /// over the radios actually present: the strongest EIRP paired
    /// with the highest receive gain, so the bound holds for every
    /// pair. `None` when the model is not isotropic (a single ray
    /// would under-estimate reach through wall-free directions) or the
    /// reach exceeds the probe horizon — callers must then fall back
    /// to exhaustive scans.
    pub fn audible_reach_m(&self, now: SimTime) -> Option<f64> {
        if !self.loss_isotropic || self.stations.is_empty() {
            return None;
        }
        let mut eirp = f64::NEG_INFINITY;
        let mut rx_gain = f64::NEG_INFINITY;
        for s in &self.stations {
            eirp = eirp.max(s.radio.tx_power.value() + s.radio.tx_gain.value());
            rx_gain = rx_gain.max(s.radio.rx_gain.value());
        }
        let max_loss = eirp + rx_gain - self.cfg.cs_threshold.value();
        let origin = Point::new(0.0, 0.0);
        let loss_at =
            |d: f64| (self.loss)(origin, Point::new(d, 0.0), self.budget.frequency, now).value();
        // Propagation models clamp below 1 m, and the grid clamps its
        // cell edge to 1 m anyway.
        if loss_at(1.0) > max_loss {
            return Some(1.0);
        }
        const HORIZON_M: f64 = 1.0e7;
        let mut hi = 2.0;
        while loss_at(hi) <= max_loss {
            hi *= 2.0;
            if hi > HORIZON_M {
                return None;
            }
        }
        let mut lo = hi / 2.0;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if loss_at(mid) <= max_loss {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // The upper bisection bound: strictly inaudible, so every
        // audible pair is strictly inside one cell edge.
        Some(hi)
    }

    /// Builds the spatial grid for the current deployment when
    /// eligible: grid indexing on, an isotropic loss model, and a
    /// finite probed audible reach (the cell edge).
    fn build_grid(&self, now: SimTime) -> Option<SpatialGrid> {
        if !self.grid_index {
            return None;
        }
        let reach = self.audible_reach_m(now)?;
        Some(SpatialGrid::build(
            reach,
            self.stations.iter().map(|s| s.pos),
        ))
    }

    /// Builds the neighbor cache if it is not current (the matrix is
    /// otherwise built lazily at the first transmission): sparse
    /// grid-backed rows when the grid is eligible — O(n·k) — dense
    /// O(n²) otherwise.
    fn ensure_neighbors(&mut self, now: SimTime) {
        if self.neighbors.is_built() {
            return;
        }
        let mut cache = std::mem::take(&mut self.neighbors);
        match self.build_grid(now) {
            Some(grid) => {
                cache.build_sparse(
                    self.stations.len(),
                    self.cfg.cs_threshold,
                    |a, b| self.rx_power_at(a, b, now),
                    |src, out| grid.neighborhood_into(grid.cell_of(src), out),
                );
                self.grid = Some(grid);
            }
            None => {
                cache.build(self.stations.len(), self.cfg.cs_threshold, |a, b| {
                    self.rx_power_at(a, b, now)
                });
                self.grid = None;
            }
        }
        self.neighbors = cache;
    }

    /// Forces the lazy neighbor-cache build now; no-op when the cache
    /// is disabled. Test/bench hook.
    pub fn prime_neighbor_cache(&mut self, now: SimTime) {
        if self.neighbor_cache {
            self.ensure_neighbors(now);
        }
    }

    /// `(sparse, stored pair entries)` of the built neighbor cache —
    /// `None` before the lazy build. Entries are n·(n−1) dense; sparse
    /// rows store only grid neighborhoods, and this is the hook the
    /// storage-factor claims and the perfsuite grid section read.
    pub fn neighbor_cache_stats(&self) -> Option<(bool, usize)> {
        self.neighbors
            .is_built()
            .then(|| (self.neighbors.is_sparse(), self.neighbors.stored_entries()))
    }

    /// Compares every cached (src, dst) power and audibility entry
    /// against a fresh link-budget evaluation at `now`; `None` means
    /// coherent (trivially so before the cache is built). The oracle
    /// behind the mobility-invalidation property test.
    pub fn neighbor_cache_incoherence(
        &self,
        now: SimTime,
    ) -> Option<(StationId, StationId, Dbm, Dbm)> {
        self.neighbors
            .find_incoherence(self.cfg.cs_threshold, |a, b| self.rx_power_at(a, b, now))
    }

    /// Grid/world coherence for the `grid-coherence` fuzz oracle:
    /// the spatial grid's structural invariants against the current
    /// positions, plus the sparse rows' stored-vs-fresh check — which
    /// includes the grid-soundness claim that every omitted pair is
    /// below the carrier-sense floor. Empty when coherent, or when no
    /// grid is active (dense worlds have nothing grid-shaped to
    /// contradict).
    pub fn grid_incoherence(&self, now: SimTime) -> Vec<String> {
        let mut out = Vec::new();
        let Some(grid) = &self.grid else {
            return out;
        };
        if let Some(e) = grid.find_incoherence(|id| self.stations[id].pos) {
            out.push(format!("grid structure: {e}"));
        }
        if let Some((src, dst, cached, fresh)) = self.neighbor_cache_incoherence(now) {
            out.push(format!(
                "sparse row {src}->{dst}: cached {cached:?}, fresh {fresh:?}"
            ));
        }
        out
    }

    /// Moves a station (the [`MacEvent::SetPosition`] handler, exposed
    /// for mobility models driving the world directly). With a live
    /// grid the patch is O(k): the mover's cell membership updates,
    /// its sparse row rebuilds over the *new* neighborhood, and only
    /// the rows of stations entering or leaving that neighborhood are
    /// touched — stations two cells away never were and never become
    /// audible, so their rows are correct untouched. Dense caches keep
    /// the O(n) row+column rebuild.
    pub fn set_position(&mut self, station: StationId, pos: Point, now: SimTime) {
        self.stations[station].pos = pos;
        if !(self.neighbor_cache && self.neighbors.is_built()) {
            return;
        }
        // Mobility dirties exactly one row and one column; rows
        // snapshotted by in-flight records keep their start-time
        // values (copy-on-write).
        let mut cache = std::mem::take(&mut self.neighbors);
        match self.grid.take() {
            Some(mut grid) => {
                let mut old_hood = std::mem::take(&mut self.hood_scratch);
                old_hood.clear();
                grid.neighborhood_into(grid.cell_of(station), &mut old_hood);
                grid.move_station(station, pos);
                let mut new_hood = Vec::new();
                grid.neighborhood_into(grid.cell_of(station), &mut new_hood);
                // Stations in the old neighborhood but not the new one
                // fell out of audible reach on both sides of the pair.
                let stale: Vec<StationId> = old_hood
                    .iter()
                    .copied()
                    .filter(|id| new_hood.binary_search(id).is_err())
                    .collect();
                cache.rebuild_station_sparse(
                    station,
                    self.cfg.cs_threshold,
                    |a, b| self.rx_power_at(a, b, now),
                    &new_hood,
                    &stale,
                );
                self.hood_scratch = old_hood;
                self.grid = Some(grid);
            }
            None => {
                cache.rebuild_station(station, self.cfg.cs_threshold, |a, b| {
                    self.rx_power_at(a, b, now)
                });
            }
        }
        self.neighbors = cache;
    }

    /// Computes the interference-shard partition of the current
    /// deployment (DESIGN.md §15): the connected components of the
    /// conflict graph that couples two stations when their channels
    /// spectrally overlap **and** they are within
    /// `max_interference_range_m` of each other or audible in either
    /// direction per the propagation model. Stations in different
    /// components can never exchange MAC-observable energy, so each
    /// component can advance as an independent world.
    ///
    /// `None` for the range couples every overlapping-channel pair
    /// regardless of distance unless neither direction is audible —
    /// the most conservative co-channel split.
    ///
    /// The grid-backed scan is O(n·k): stations pair only against
    /// their 27-cell neighborhood, with the cell edge at
    /// `max(range, audible reach)` so any omitted pair is uncoupled by
    /// construction. An infinite range collapses to channel-class
    /// unions (distance is irrelevant there), and worlds the grid
    /// cannot index (anisotropic loss) fall back to the exhaustive
    /// O(n²) scan, which debug builds also run as a cross-check
    /// asserting the two partitions identical.
    pub fn shard_plan(
        &self,
        now: SimTime,
        max_interference_range_m: Option<f64>,
    ) -> crate::shard::ShardPlan {
        match self.shard_plan_grid(now, max_interference_range_m) {
            Some(plan) => {
                #[cfg(debug_assertions)]
                {
                    let exhaustive = self.shard_plan_exhaustive(now, max_interference_range_m);
                    debug_assert_eq!(
                        plan.shard_of, exhaustive.shard_of,
                        "grid shard plan diverged from the exhaustive scan"
                    );
                    debug_assert_eq!(plan.lookahead, exhaustive.lookahead);
                }
                plan
            }
            None => self.shard_plan_exhaustive(now, max_interference_range_m),
        }
    }

    /// Union-find with path halving; roots are always the smallest
    /// member seen so far, but the canonical numbering in
    /// [`shard_plan_finish`](Self::shard_plan_finish) does not depend
    /// on it.
    fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    fn uf_union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (Self::uf_find(parent, a), Self::uf_find(parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }

    /// The shard-coupling predicate for one pair (spectral overlap
    /// and in-range-or-audible), shared by every planning path.
    fn pair_coupled(&self, i: StationId, j: StationId, range: f64, now: SimTime) -> bool {
        if Self::channel_overlap(self.dcf.channel[i], self.dcf.channel[j]) <= 0.0 {
            return false;
        }
        let d = self.stations[i].pos.distance_to(self.stations[j].pos);
        d <= range
            || self.audible_at(self.rx_power_at(i, j, now))
            || self.audible_at(self.rx_power_at(j, i, now))
    }

    /// Grid-accelerated planner; `None` when the world is not grid
    /// eligible (finite range but no probeable reach).
    fn shard_plan_grid(
        &self,
        now: SimTime,
        max_interference_range_m: Option<f64>,
    ) -> Option<crate::shard::ShardPlan> {
        if !self.grid_index {
            return None;
        }
        let n = self.stations.len();
        let mut parent: Vec<usize> = (0..n).collect();
        match max_interference_range_m {
            None => {
                // Infinite range: `d <= range` holds for every pair,
                // so two stations couple iff their channels spectrally
                // overlap — the components are unions of channel
                // classes, O(n + C²) with no geometry at all.
                let mut first_on: HashMap<u8, usize> = HashMap::new();
                let mut channels: Vec<u8> = Vec::new();
                for i in 0..n {
                    let ch = self.dcf.channel[i];
                    match first_on.get(&ch) {
                        Some(&rep) => Self::uf_union(&mut parent, rep, i),
                        None => {
                            first_on.insert(ch, i);
                            channels.push(ch);
                        }
                    }
                }
                channels.sort_unstable();
                for (ai, &ca) in channels.iter().enumerate() {
                    for &cb in &channels[ai + 1..] {
                        if Self::channel_overlap(ca, cb) > 0.0 {
                            Self::uf_union(&mut parent, first_on[&ca], first_on[&cb]);
                        }
                    }
                }
                Some(self.shard_plan_finish(parent, f64::INFINITY))
            }
            Some(range) => {
                // Coupled ⇒ within max(range, reach) ⇒ cell indices
                // differ by at most one per axis ⇒ the 27-cell
                // neighborhood enumerates every coupled pair.
                let reach = self.audible_reach_m(now)?;
                let cell = range.max(reach);
                let grid = SpatialGrid::build(cell, self.stations.iter().map(|s| s.pos));
                let mut hood = Vec::new();
                for i in 0..n {
                    hood.clear();
                    grid.neighborhood_into(grid.cell_of(i), &mut hood);
                    for &j in &hood {
                        if j <= i {
                            continue;
                        }
                        if Self::uf_find(&mut parent, i) == Self::uf_find(&mut parent, j) {
                            continue;
                        }
                        if self.pair_coupled(i, j, range, now) {
                            Self::uf_union(&mut parent, i, j);
                        }
                    }
                }
                Some(self.shard_plan_finish(parent, range))
            }
        }
    }

    /// The reference O(n²) pair scan (union-find root identity,
    /// memoized spectral overlap, distance before any link-budget
    /// evaluation). Public so the `fuzz --grid-diff` differential leg
    /// can compare it against the grid planner on any world.
    pub fn shard_plan_exhaustive(
        &self,
        now: SimTime,
        max_interference_range_m: Option<f64>,
    ) -> crate::shard::ShardPlan {
        let n = self.stations.len();
        let range = max_interference_range_m.unwrap_or(f64::INFINITY);
        let mut parent: Vec<usize> = (0..n).collect();

        // Spectral overlap memo for the 2.4 GHz channel plan — the
        // pair scan would otherwise re-derive the same channel pair
        // millions of times on city-scale worlds.
        let mut overlap_memo = [[f64::NAN; 16]; 16];
        let mut overlap = |a: u8, b: u8| -> f64 {
            if a == b {
                return 1.0;
            }
            if a < 16 && b < 16 {
                let v = overlap_memo[a as usize][b as usize];
                if !v.is_nan() {
                    return v;
                }
                let v = Self::channel_overlap(a, b);
                overlap_memo[a as usize][b as usize] = v;
                return v;
            }
            Self::channel_overlap(a, b)
        };

        for i in 0..n {
            for j in (i + 1)..n {
                if Self::uf_find(&mut parent, i) == Self::uf_find(&mut parent, j) {
                    continue;
                }
                if overlap(self.dcf.channel[i], self.dcf.channel[j]) <= 0.0 {
                    continue;
                }
                let d = self.stations[i].pos.distance_to(self.stations[j].pos);
                let coupled = d <= range
                    || self.audible_at(self.rx_power_at(i, j, now))
                    || self.audible_at(self.rx_power_at(j, i, now));
                if coupled {
                    Self::uf_union(&mut parent, i, j);
                }
            }
        }
        self.shard_plan_finish(parent, range)
    }

    /// Renumbers a union-find forest into the canonical plan:
    /// components in first-occurrence order (each shard's index is
    /// determined by its smallest member id, so the partition is a
    /// pure function of the deployment), plus the bounding-box
    /// lookahead.
    fn shard_plan_finish(&self, mut parent: Vec<usize>, range: f64) -> crate::shard::ShardPlan {
        use crate::shard::propagation_delay;
        let n = parent.len();
        let mut shard_of = vec![usize::MAX; n];
        let mut shards: Vec<Vec<StationId>> = Vec::new();
        let mut root_shard: HashMap<usize, usize> = HashMap::new();
        for (i, slot) in shard_of.iter_mut().enumerate() {
            let r = Self::uf_find(&mut parent, i);
            let s = *root_shard.entry(r).or_insert_with(|| {
                shards.push(Vec::new());
                shards.len() - 1
            });
            *slot = s;
            shards[s].push(i);
        }

        // Lookahead: a lower bound on the smallest cross-shard
        // distance via per-shard bounding boxes (O(K²) instead of
        // O(n²); a lower bound keeps the propagation-delay claim
        // conservative).
        let mut lookahead = SimDuration::MAX;
        if shards.len() >= 2 {
            let boxes: Vec<([f64; 3], [f64; 3])> = shards
                .iter()
                .map(|members| {
                    let mut lo = [f64::INFINITY; 3];
                    let mut hi = [f64::NEG_INFINITY; 3];
                    for &m in members {
                        let p = self.stations[m].pos;
                        for (k, v) in [p.x, p.y, p.z].into_iter().enumerate() {
                            lo[k] = lo[k].min(v);
                            hi[k] = hi[k].max(v);
                        }
                    }
                    (lo, hi)
                })
                .collect();
            let mut min_d2 = f64::INFINITY;
            for a in 0..boxes.len() {
                for b in (a + 1)..boxes.len() {
                    let mut d2 = 0.0;
                    for k in 0..3 {
                        let gap = (boxes[a].0[k] - boxes[b].1[k])
                            .max(boxes[b].0[k] - boxes[a].1[k])
                            .max(0.0);
                        d2 += gap * gap;
                    }
                    min_d2 = min_d2.min(d2);
                }
            }
            lookahead = propagation_delay(min_d2.sqrt());
        }

        crate::shard::ShardPlan {
            shard_of,
            shards,
            lookahead,
            max_interference_range_m: range,
        }
    }

    /// Incrementally re-plans after one station moved — the handoff
    /// boundary path (DESIGN.md §17). Only edges incident to the
    /// mover changed, so shards not containing it survive as union
    /// seeds; the mover's old shard is re-scanned internally (the
    /// mover may have been its only bridge) and the mover re-couples
    /// against its grid neighborhood. O(|old shard|² + k + K²)
    /// instead of a fresh O(n·k) plan; debug builds assert the result
    /// identical to a full re-plan.
    pub fn shard_replan_station(
        &self,
        plan: &crate::shard::ShardPlan,
        moved: StationId,
        now: SimTime,
    ) -> crate::shard::ShardPlan {
        let n = self.stations.len();
        assert_eq!(
            plan.shard_of.len(),
            n,
            "incremental replan needs a plan for this deployment"
        );
        let range = plan.max_interference_range_m;
        let mut parent: Vec<usize> = (0..n).collect();
        let old = plan.shard_of[moved];
        // Surviving shards: none of their internal edges involved the
        // mover, and no new edge can appear between two stations that
        // did not move, so each collapses to a single seed union.
        for (s, members) in plan.shards.iter().enumerate() {
            if s == old {
                continue;
            }
            for &m in &members[1..] {
                Self::uf_union(&mut parent, members[0], m);
            }
        }
        // The mover's old shard may split without it: re-derive its
        // internal connectivity from scratch.
        let residue: Vec<StationId> = plan.shards[old]
            .iter()
            .copied()
            .filter(|&m| m != moved)
            .collect();
        for (ai, &a) in residue.iter().enumerate() {
            for &b in &residue[ai + 1..] {
                if Self::uf_find(&mut parent, a) != Self::uf_find(&mut parent, b)
                    && self.pair_coupled(a, b, range, now)
                {
                    Self::uf_union(&mut parent, a, b);
                }
            }
        }
        // The mover re-couples against every possible partner: its
        // grid neighborhood when the geometry is indexable, everyone
        // otherwise.
        let candidates: Vec<StationId> = match (range.is_finite(), self.audible_reach_m(now)) {
            (true, Some(reach)) if self.grid_index => {
                let cell = range.max(reach);
                let grid = SpatialGrid::build(cell, self.stations.iter().map(|s| s.pos));
                let mut hood = Vec::new();
                grid.neighborhood_into(grid.cell_of(moved), &mut hood);
                hood
            }
            _ => (0..n).collect(),
        };
        for &c in &candidates {
            if c != moved && self.pair_coupled(moved, c, range, now) {
                Self::uf_union(&mut parent, moved, c);
            }
        }
        let replanned = self.shard_plan_finish(parent, range);
        #[cfg(debug_assertions)]
        {
            let fresh = self.shard_plan(now, if range.is_finite() { Some(range) } else { None });
            debug_assert_eq!(
                replanned.shard_of, fresh.shard_of,
                "incremental replan diverged from a fresh plan"
            );
            debug_assert_eq!(replanned.lookahead, fresh.lookahead);
        }
        replanned
    }

    /// Re-validates a [`ShardPlan`](crate::shard::ShardPlan) against
    /// the world's *current* state: station count unchanged, no
    /// coupled pair straddling shards, and every cross-shard pair's
    /// propagation delay at least the plan's lookahead. `None` means
    /// coherent. The check behind the `shard-coherence` oracle —
    /// mobility patches move stations after the plan is computed, and
    /// a stale plan must be caught, not trusted.
    pub fn shard_plan_incoherence(
        &self,
        plan: &crate::shard::ShardPlan,
        now: SimTime,
    ) -> Option<crate::shard::ShardIncoherence> {
        match self.shard_plan_incoherence_grid(plan, now) {
            Some(verdict) => verdict,
            None => self.shard_plan_incoherence_exhaustive(plan, now),
        }
    }

    /// Grid-accelerated re-validation. Outer `None` means the world is
    /// not grid eligible and the caller must fall back to the
    /// exhaustive scan; `Some(verdict)` is authoritative. Both checks
    /// are distance-bounded — coupling by `max(range, reach)` and the
    /// lookahead claim by `lookahead · c` (`delay(d) < L ⇔ d < L·c`
    /// because delay is a floor to integer nanoseconds) — so a sweep
    /// over the 27-cell neighborhoods of a grid whose edge is the
    /// larger bound enumerates every pair that could violate either.
    /// An infinite interference range needs no geometry at all for
    /// coupling: any spectral overlap couples, so cross-shard
    /// violations reduce to channel classes straddling shards.
    fn shard_plan_incoherence_grid(
        &self,
        plan: &crate::shard::ShardPlan,
        now: SimTime,
    ) -> Option<Option<crate::shard::ShardIncoherence>> {
        use crate::shard::{propagation_delay, ShardIncoherence, METRES_PER_NANOSECOND};
        use std::collections::BTreeMap;
        if !self.grid_index {
            return None;
        }
        let n = self.stations.len();
        if plan.shard_of.len() != n {
            return Some(Some(ShardIncoherence::StationCountChanged {
                planned: plan.shard_of.len(),
                actual: n,
            }));
        }
        let range = plan.max_interference_range_m;
        let coupling_cell = if range.is_finite() {
            match self.audible_reach_m(now) {
                Some(reach) => Some(range.max(reach)),
                None => return None,
            }
        } else {
            // Infinite range: every spectrally overlapping pair is
            // coupled regardless of distance, so a cross-shard
            // violation exists iff some overlapping channel pair
            // straddles shards. BTreeMaps keep the scan — and the
            // reported witness pair — deterministic.
            let mut classes: BTreeMap<u8, BTreeMap<usize, StationId>> = BTreeMap::new();
            for i in 0..n {
                classes
                    .entry(self.dcf.channel[i])
                    .or_default()
                    .entry(plan.shard_of[i])
                    .or_insert(i);
            }
            let chans: Vec<u8> = classes.keys().copied().collect();
            for (ai, &ca) in chans.iter().enumerate() {
                for &cb in &chans[ai..] {
                    if Self::channel_overlap(ca, cb) <= 0.0 {
                        continue;
                    }
                    let witness = if ca == cb {
                        let mut it = classes[&ca].values();
                        it.next().copied().zip(it.next().copied())
                    } else {
                        classes[&ca].iter().find_map(|(&sa, &a)| {
                            classes[&cb]
                                .iter()
                                .find(|&(&sb, _)| sb != sa)
                                .map(|(_, &b)| (a, b))
                        })
                    };
                    if let Some((a, b)) = witness {
                        let (a, b) = (a.min(b), a.max(b));
                        return Some(Some(ShardIncoherence::CoupledAcrossShards {
                            a,
                            b,
                            dist_m: self.stations[a].pos.distance_to(self.stations[b].pos),
                        }));
                    }
                }
            }
            None
        };
        let lookahead_dist = (plan.lookahead != SimDuration::MAX)
            .then(|| plan.lookahead.as_nanos() as f64 * METRES_PER_NANOSECOND);
        let cell = match (coupling_cell, lookahead_dist) {
            (None, None) => return Some(None),
            (a, b) => a.unwrap_or(0.0).max(b.unwrap_or(0.0)),
        };
        let grid = SpatialGrid::build(cell, self.stations.iter().map(|s| s.pos));
        let mut hood = Vec::new();
        for i in 0..n {
            hood.clear();
            grid.neighborhood_into(grid.cell_of(i), &mut hood);
            for &j in &hood {
                if j <= i || plan.shard_of[i] == plan.shard_of[j] {
                    continue;
                }
                let d = self.stations[i].pos.distance_to(self.stations[j].pos);
                if coupling_cell.is_some()
                    && Self::channel_overlap(self.dcf.channel[i], self.dcf.channel[j]) > 0.0
                {
                    let coupled = d <= range
                        || self.audible_at(self.rx_power_at(i, j, now))
                        || self.audible_at(self.rx_power_at(j, i, now));
                    if coupled {
                        return Some(Some(ShardIncoherence::CoupledAcrossShards {
                            a: i,
                            b: j,
                            dist_m: d,
                        }));
                    }
                }
                if plan.lookahead != SimDuration::MAX && propagation_delay(d) < plan.lookahead {
                    return Some(Some(ShardIncoherence::LookaheadExceedsDelay {
                        a: i,
                        b: j,
                        delay: propagation_delay(d),
                    }));
                }
            }
        }
        Some(None)
    }

    /// The reference O(n²) re-validation scan; public so the fuzz
    /// differential legs can compare it against the grid path.
    pub fn shard_plan_incoherence_exhaustive(
        &self,
        plan: &crate::shard::ShardPlan,
        now: SimTime,
    ) -> Option<crate::shard::ShardIncoherence> {
        use crate::shard::{propagation_delay, ShardIncoherence};
        let n = self.stations.len();
        if plan.shard_of.len() != n {
            return Some(ShardIncoherence::StationCountChanged {
                planned: plan.shard_of.len(),
                actual: n,
            });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if plan.shard_of[i] == plan.shard_of[j] {
                    continue;
                }
                let d = self.stations[i].pos.distance_to(self.stations[j].pos);
                if Self::channel_overlap(self.dcf.channel[i], self.dcf.channel[j]) > 0.0 {
                    let coupled = d <= plan.max_interference_range_m
                        || self.audible_at(self.rx_power_at(i, j, now))
                        || self.audible_at(self.rx_power_at(j, i, now));
                    if coupled {
                        return Some(ShardIncoherence::CoupledAcrossShards {
                            a: i,
                            b: j,
                            dist_m: d,
                        });
                    }
                }
                if plan.lookahead != SimDuration::MAX && propagation_delay(d) < plan.lookahead {
                    return Some(ShardIncoherence::LookaheadExceedsDelay {
                        a: i,
                        b: j,
                        delay: propagation_delay(d),
                    });
                }
            }
        }
        None
    }

    /// Start-time received powers and audible-candidate list for a
    /// transmission from `id`: the cached row when the neighbor cache
    /// is on, a fresh O(n) evaluation otherwise. Candidates are the
    /// stations whose *raw* co-channel power meets the CS threshold —
    /// cross-channel leakage is never stronger than raw power, so this
    /// is a superset of anything any receiver configuration can hear,
    /// and the per-member awake/channel/leak checks stay in the MAC.
    fn tx_powers(&mut self, id: StationId, now: SimTime) -> (RxRow, Arc<Vec<StationId>>) {
        if self.neighbor_cache {
            self.ensure_neighbors(now);
            return (self.neighbors.row(id), self.neighbors.audible_list(id));
        }
        let n = self.stations.len();
        let mut row = Vec::with_capacity(n);
        let mut candidates = Vec::new();
        for r in 0..n {
            if r == id {
                row.push(Dbm(f64::INFINITY));
                continue;
            }
            let p = self.rx_power_at(id, r, now);
            if self.audible_at(p) {
                candidates.push(r);
            }
            row.push(p);
        }
        (RxRow::dense(Arc::new(row), None), Arc::new(candidates))
    }

    fn audible_at(&self, power: Dbm) -> bool {
        power.value() >= self.cfg.cs_threshold.value()
    }

    /// Spectral overlap between two 2.4 GHz channels (1.0 co-channel,
    /// 0.0 orthogonal) — adjacent channels leak energy into each other,
    /// the §6 interference mechanism behind the 1/6/11 channel plan.
    pub(crate) fn channel_overlap(a: u8, b: u8) -> f64 {
        if a == b {
            return 1.0;
        }
        match (
            wn_phy::bands::Channel::ism24(a),
            wn_phy::bands::Channel::ism24(b),
        ) {
            (Ok(ca), Ok(cb)) => ca.overlap_with(cb),
            _ => 0.0,
        }
    }

    /// Received power of a cross-channel emission after the spectral
    /// mask discount; `None` when fully orthogonal.
    fn leaked_power(power: Dbm, overlap: f64) -> Option<Dbm> {
        if overlap >= 1.0 {
            Some(power)
        } else if overlap <= 0.0 {
            None
        } else {
            Some(Dbm(power.value() + 10.0 * overlap.log10()))
        }
    }

    fn medium_idle(&self, id: StationId, now: SimTime) -> bool {
        self.dcf.audible[id].is_empty()
            && self.dcf.transmitting[id].is_none()
            && self.dcf.nav_until[id] <= now
    }

    fn with_upper<F>(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>, f: F)
    where
        F: FnOnce(&mut dyn UpperLayer, &mut UpperCtx),
    {
        let Some(mut upper) = self.stations[id].upper.take() else {
            return;
        };
        // Reused batch buffer; `mem::take` leaves an empty Vec behind,
        // so a nested `with_upper` downstream of `apply_command` simply
        // allocates its own batch instead of aliasing this one.
        let mut commands = std::mem::take(&mut self.cmd_scratch);
        {
            let mut ctx = UpperCtx {
                now,
                addr: self.stations[id].addr,
                id,
                commands: &mut commands,
            };
            f(upper.as_mut(), &mut ctx);
        }
        self.stations[id].upper = Some(upper);
        for cmd in commands.drain(..) {
            self.apply_command(id, now, sched, cmd);
        }
        self.cmd_scratch = commands;
    }

    fn apply_command(
        &mut self,
        id: StationId,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
        cmd: Command,
    ) {
        match cmd {
            Command::SendFrame(frame) => self.enqueue(id, frame, now, sched),
            Command::SetTimer { delay, tag } => {
                sched.schedule_in(delay, MacEvent::UpperTimer { station: id, tag });
            }
            Command::SetPowerManagement(on) => self.stations[id].power_mgmt = on,
            Command::SetAwake(awake) => {
                let was = self.dcf.awake[id];
                self.dcf.awake[id] = awake;
                if !awake {
                    // A dozing radio hears nothing.
                    self.dcf.audible[id].clear();
                } else if !was {
                    // Waking mid-frame: re-hear what is still in the
                    // air from the records' start-time power snapshots.
                    // Without this the medium looks spuriously idle and
                    // the station can arm backoff (and collide) under
                    // an ongoing audible transmission.
                    let channel = self.dcf.channel[id];
                    let mut heard_any = false;
                    for i in 0..self.records.len() {
                        let rec = &self.records[i];
                        if rec.done || rec.src == id {
                            continue;
                        }
                        let ov = Self::channel_overlap(rec.channel, channel);
                        let heard = Self::leaked_power(rec.rx_power.get(id), ov)
                            .map(|p| self.audible_at(p))
                            .unwrap_or(false);
                        if heard {
                            let tx_id = rec.id;
                            self.dcf.audible[id].insert(tx_id);
                            heard_any = true;
                        }
                    }
                    if heard_any {
                        self.freeze_access(id, now);
                    }
                }
            }
            Command::SetChannel(ch) => {
                self.dcf.channel[id] = ch;
                self.dcf.audible[id].clear();
                self.dcf.nav_until[id] = now;
            }
            Command::SignalStation {
                station,
                tag,
                delay,
            } => {
                sched.schedule_in(delay, MacEvent::UpperTimer { station, tag });
            }
            Command::Trace { level, event } => self.trace.event(now, level, "net", event),
        }
    }

    /// Queues a frame for transmission from `id`.
    pub fn enqueue(
        &mut self,
        id: StationId,
        frame: Frame,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let fid = self.frames.insert(frame);
        self.enqueue_id(id, fid, now, sched);
    }

    /// Queues an arena-resident frame. The caller's reference on `fid`
    /// transfers to the queue — or back out through a `TxDropped`
    /// event on overflow.
    fn enqueue_id(
        &mut self,
        id: StationId,
        fid: FrameId,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        if self.stations[id].edca.is_some() {
            // EDCA stations route everything through per-AC queues;
            // un-tagged traffic defaults to best effort.
            self.edca_enqueue(id, fid, AccessCategory::Be, now, sched);
            return;
        }
        self.frames.get_mut(fid).fc.power_management = self.stations[id].power_mgmt;
        let s = &mut self.stations[id];
        s.stats.queued += 1;
        if s.queue.len() >= self.cfg.queue_limit {
            s.stats.queue_drops += 1;
            let kind = frame_kind(self.frames.get(fid).fc.subtype);
            self.trace.event(
                now,
                Level::Warn,
                "mac",
                TraceEvent::Drop {
                    station: id as u32,
                    kind,
                    reason: DropReason::QueueFull,
                },
            );
            // The sender must still learn the MSDU's fate: deliver the
            // failure confirmation. Scheduled at `now` instead of
            // calling the upper layer inline so a layer that reacts by
            // immediately re-sending into a still-full queue turns into
            // event-loop iterations, not unbounded recursion.
            self.staged += 1;
            sched.schedule_at(
                now,
                MacEvent::TxDropped {
                    station: id,
                    frame: fid,
                },
            );
            return;
        }
        s.queue.push_back(Msdu {
            frame: fid,
            enqueued: now,
        });
        self.queue_gauge.add(now, 1.0);
        self.maybe_start_next(id, now, sched);
    }

    fn maybe_start_next(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        if self.stations[id].current.is_some() {
            return;
        }
        let Some(msdu) = self.stations[id].queue.pop_front() else {
            return;
        };
        self.queue_gauge.add(now, -1.0);
        // Assign a sequence number and split into fragments. The body is
        // taken out of the queued frame and kept whole in the attempt;
        // fragments are byte ranges into it, sliced out at build time.
        let seq_no = self.stations[id].seq.next();
        let frag_threshold = self.cfg.frag_threshold;
        let frame = self.frames.get_mut(msdu.frame);
        let body = std::mem::take(&mut frame.body);
        let can_fragment =
            frame.fc.subtype.frame_type() == FrameType::Data && !frame.receiver().is_group();
        let mut frag_ranges: VecDeque<(usize, usize)> = VecDeque::new();
        if can_fragment && body.len() > frag_threshold {
            let mut start = 0;
            while body.len() - start > frag_threshold {
                frag_ranges.push_back((start, start + frag_threshold));
                start += frag_threshold;
            }
            frag_ranges.push_back((start, body.len()));
        } else {
            frag_ranges.push_back((0, body.len()));
        }
        frame.seq = Some(SequenceControl {
            fragment: 0,
            sequence: seq_no,
        });
        let peer = frame.receiver();
        let use_rts = !peer.is_group()
            && frag_ranges.front().map_or(0, |&(a, b)| b - a) + 28 >= self.cfg.rts_threshold;
        let rate = if peer.is_group() {
            self.cfg.standard.base_rate()
        } else {
            self.stations[id].arf.current_rate(peer)
        };
        self.stations[id].current = Some(Attempt {
            msdu,
            body,
            frag_ranges,
            frag_number: 0,
            short_retries: 0,
            long_retries: 0,
            use_rts,
            cts_received: false,
            rate,
            is_retry: false,
            built: None,
        });
        self.begin_access(id, now, sched);
    }

    /// Starts (or restarts) the DIFS+backoff procedure.
    fn begin_access(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        let cw = self.dcf.cw[id];
        let slots = self.rng.below(cw as u64 + 1) as u32;
        self.dcf.backoff_slots[id] = Some(slots);
        self.contenders.insert(id);
        self.trace.event(
            now,
            Level::Debug,
            "mac",
            TraceEvent::Backoff {
                station: id as u32,
                slots,
                cw,
            },
        );
        self.try_arm_access(id, now, sched);
    }

    fn try_arm_access(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        if self.stations[id].edca.is_some() {
            self.edca_try_arm(id, now, sched);
            return;
        }
        if self.dcf.backoff_slots[id].is_none() {
            return;
        }
        if !self.medium_idle(id, now) {
            // Will re-arm on the idle edge / NAV expiry.
            if self.dcf.nav_until[id] > now {
                sched.schedule_at(self.dcf.nav_until[id], MacEvent::NavExpired { station: id });
            }
            return;
        }
        if self.dcf.access_armed_at[id].is_some() {
            return;
        }
        self.dcf.timer_gen[id] += 1;
        let gen = self.dcf.timer_gen[id];
        self.dcf.access_armed_at[id] = Some(now);
        let slots = self.dcf.backoff_slots[id].expect("checked above");
        // The timer is counting down; idle edges can't affect it until
        // a busy edge freezes it again.
        self.contenders.remove(id);
        let delay = self.difs + self.slot * slots as u64;
        sched.schedule_in(delay, MacEvent::AccessTimer { station: id, gen });
    }

    /// A busy edge interrupts a counting-down access timer.
    fn freeze_access(&mut self, id: StationId, now: SimTime) {
        if self.stations[id].edca.is_some() {
            self.edca_freeze(id, now);
            return;
        }
        let (difs, slot) = (self.difs, self.slot);
        let d = &mut self.dcf;
        let Some(armed_at) = d.access_armed_at[id] else {
            return;
        };
        if let Some(slots) = d.backoff_slots[id] {
            // CSMA vulnerable window: a station whose backoff expires
            // within the CCA detection time of the busy edge has already
            // committed to transmit and cannot react — so two stations
            // whose counters reach zero in the same slot genuinely
            // collide. The window is ~1 µs (energy-detect turnaround),
            // far below a slot, so sub-slot grid offsets still defer.
            let fire_at = armed_at + difs + slot * slots as u64;
            if fire_at <= now + SimDuration::from_micros(1) {
                return;
            }
            let difs_end = armed_at + difs;
            let consumed = if now <= difs_end {
                0
            } else {
                ((now - difs_end).as_nanos() / slot.as_nanos().max(1)) as u32
            };
            d.backoff_slots[id] = Some(slots.saturating_sub(consumed));
        }
        d.access_armed_at[id] = None;
        d.timer_gen[id] += 1; // Invalidate the pending AccessTimer.
        if d.backoff_slots[id].is_some() {
            // Frozen with slots left: back on the contender wait-list.
            self.contenders.insert(id);
        }
    }

    /// Puts a frame on the air. Consumes one arena reference on
    /// `frame` — it becomes the new [`TxRecord`]'s, released when the
    /// record is pruned.
    fn start_transmission(
        &mut self,
        id: StationId,
        frame: FrameId,
        rate: RateStep,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) -> u64 {
        let timing = self.cfg.standard.mac_timing();
        let (wire_len, kind) = {
            let f = self.frames.get(frame);
            (f.wire_len(), frame_kind(f.fc.subtype))
        };
        let dur = airtime(&timing, rate, wire_len);
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let (rx_power, candidates) = self.tx_powers(id, now);
        let channel = self.dcf.channel[id];
        self.trace.event(
            now,
            Level::Debug,
            "mac",
            TraceEvent::Tx {
                station: id as u32,
                kind,
                len: wire_len as u32,
                rate_mbps: rate.rate.mbps(),
            },
        );
        self.records.push(TxRecord {
            id: tx_id,
            src: id,
            channel,
            frame,
            rate,
            start: now,
            end: now + dur,
            rx_power: rx_power.clone(),
            candidates: Arc::clone(&candidates),
            done: false,
        });
        self.dcf.transmitting[id] = Some(tx_id);
        self.stations[id].stats.tx_frames += 1;
        self.stations[id].stats.tx_airtime_us += dur.as_nanos() / 1_000;
        // Busy edges at every audible same-channel station — only the
        // candidate list can qualify, since leaked cross-channel power
        // never exceeds the raw power the list was thresholded on.
        let mut cur = 0usize;
        for &r in candidates.iter() {
            let power = rx_power.get_seq(r, &mut cur);
            let overlap = Self::channel_overlap(channel, self.dcf.channel[r]);
            let heard = Self::leaked_power(power, overlap)
                .map(|p| self.audible_at(p))
                .unwrap_or(false);
            if self.dcf.awake[r] && heard && self.dcf.audible[r].insert(tx_id) == 1 {
                self.freeze_access(r, now);
            }
        }
        sched.schedule_in(dur, MacEvent::TxEnd { tx_id });
        tx_id
    }

    /// Transmits the next protocol unit of the current attempt (RTS or
    /// the pending fragment).
    fn transmit_current(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        let std = self.cfg.standard;
        let timing = std.mac_timing();
        let addr = self.stations[id].addr;
        let (frame, rate, expect) = {
            let Some(at) = self.stations[id].current.as_mut() else {
                return;
            };
            if at.use_rts && !at.cts_received {
                // RTS first. Its NAV covers the whole exchange.
                let body_len = at.frag_ranges.front().map_or(0, |&(a, b)| b - a);
                let base = self.frames.get(at.msdu.frame);
                let data_len = base.header_len() + body_len + 4;
                let data_air = airtime(&timing, at.rate, data_len);
                let ra = base.receiver();
                let rts = Frame::rts(ra, addr, rts_duration(std, data_air));
                // The fresh reference goes straight to the record.
                (
                    self.frames.insert(rts),
                    std.base_rate(),
                    Some(Expecting::Cts),
                )
            } else {
                // Reuse the cached wire frame on retries of the same
                // fragment; rebuild only when the inputs changed.
                let fid = match at.built {
                    Some(fid) => fid,
                    None => {
                        let base = self.frames.get(at.msdu.frame);
                        let mut f = base.clone();
                        let header_len = base.header_len();
                        f.body = at
                            .frag_ranges
                            .front()
                            .map(|&(a, b)| at.body[a..b].to_vec())
                            .unwrap_or_default();
                        let more = at.frag_ranges.len() > 1;
                        f.fc.more_fragments = more;
                        f.fc.retry = at.is_retry;
                        let sequence = f.seq.expect("assigned at queue").sequence;
                        f.seq = Some(SequenceControl {
                            fragment: at.frag_number,
                            sequence,
                        });
                        let next_air = at
                            .frag_ranges
                            .get(1)
                            .map(|&(a, b)| airtime(&timing, at.rate, header_len + (b - a) + 4));
                        f.duration_id = if f.receiver().is_group() {
                            0
                        } else {
                            data_duration(std, more, next_air)
                        };
                        let fid = self.frames.insert(f);
                        at.built = Some(fid);
                        fid
                    }
                };
                // One reference for the record on top of the attempt's
                // cached one.
                self.frames.retain(fid);
                let expect =
                    (!self.frames.get(fid).receiver().is_group()).then_some(Expecting::Ack);
                (fid, at.rate, expect)
            }
        };
        self.start_transmission(id, frame, rate, now, sched);
        // The response timeout is armed when our transmission *ends*
        // (handled in TxEnd for the source); remember what we expect.
        if let Some(e) = expect {
            self.dcf.timer_gen[id] += 1;
            self.dcf.expecting[id] = Some((e, self.dcf.timer_gen[id]));
        } else {
            self.dcf.expecting[id] = None;
        }
    }

    fn schedule_sifs(&mut self, id: StationId, action: PendingTx, sched: &mut Scheduler<MacEvent>) {
        self.dcf.timer_gen[id] += 1;
        let gen = self.dcf.timer_gen[id];
        self.stations[id].pending = Some((action, gen));
        sched.schedule_in(self.sifs, MacEvent::SifsAction { station: id, gen });
    }

    fn handle_tx_end(&mut self, tx_id: u64, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        // Records are pushed with ascending ids and pruned in place, so
        // the lookup can bisect instead of scanning.
        let Ok(idx) = self.records.binary_search_by_key(&tx_id, |r| r.id) else {
            return;
        };
        self.records[idx].done = true;
        let src = self.records[idx].src;
        let channel = self.records[idx].channel;
        let frame_id = self.records[idx].frame;
        let rate = self.records[idx].rate;
        self.dcf.transmitting[src] = None;
        let (subtype, is_group, wire_bits) = {
            let f = self.frames.get(frame_id);
            (
                f.fc.subtype,
                f.receiver().is_group(),
                f.wire_len() as u64 * 8,
            )
        };

        // Decide reception — only at the start-time audible candidates.
        // Everyone else had raw power below the CS threshold, was never
        // put on an audible set, and would fall straight through the
        // `!audible_at && !was_audible` skip below with no side effect.
        let mut decoded = std::mem::take(&mut self.decoded_scratch);
        decoded.clear();
        // Only records overlapping this frame in time can trip the
        // half-duplex or interference checks — pre-filter them once
        // instead of rescanning the whole retention horizon for every
        // station (O(records·n) → O(records + n·concurrent)). Indices
        // stay ascending so the linear-domain interference sum keeps
        // its float accumulation order.
        let (rec_start, rec_end) = (self.records[idx].start, self.records[idx].end);
        let mut overlapping = std::mem::take(&mut self.overlap_scratch);
        overlapping.clear();
        overlapping.extend(
            (0..self.records.len())
                .filter(|&o| self.records[o].start < rec_end && self.records[o].end > rec_start),
        );
        let rx_power = self.records[idx].rx_power.clone();
        let candidates = Arc::clone(&self.records[idx].candidates);
        // Half-duplex sources among the overlapping records, collected
        // once into a bitset so the per-receiver check is O(1) instead
        // of a rescan of the overlap list.
        let mut tx_srcs = std::mem::take(&mut self.txsrc_scratch);
        tx_srcs.clear();
        for &o in &overlapping {
            tx_srcs.insert(self.records[o].src);
        }
        // The noise floor is a pure function of the link budget; one
        // evaluation per frame serves every receiver bit-identically —
        // as does its milliwatt image, hoisted here so the SINR loop
        // below pays one `powf` fewer per candidate.
        let noise = self.budget.noise_floor();
        let noise_mw = noise.to_milliwatts();
        // Interference sums, precomputed column-wise. Every receiver
        // that reaches the SINR decision shares the same interferer
        // set — the overlapping records minus the completing frame;
        // the per-receiver `src == r` exclusion is vacuous because
        // those receivers already failed the half-duplex check. So one
        // pass per record accumulates its milliwatt row into a single
        // per-station vector, in the same ascending record order (and
        // therefore the same float rounding) as a per-receiver scalar
        // sum. Records that carry a cached milliwatt row contribute a
        // straight slice add; the rest convert dB→mW per entry exactly
        // as the scalar path always did.
        let n = self.stations.len();
        let mut intf_acc = std::mem::take(&mut self.intf_scratch);
        intf_acc.clear();
        let mut intf_count = 0usize;
        for &o in &overlapping {
            let rec_o = &self.records[o];
            if rec_o.id == tx_id {
                continue;
            }
            let ov = Self::channel_overlap(rec_o.channel, channel);
            if ov <= 0.0 {
                continue;
            }
            if intf_count == 0 {
                // Zero the accumulator lazily: the common uncontended
                // frame has no interferers and skips the O(n) clear.
                intf_acc.resize(n, 0.0);
            }
            intf_count += 1;
            if ov >= 1.0 {
                rec_o.rx_power.accumulate_mw(&mut intf_acc);
            } else {
                // Same per-entry expression as `leaked_power` followed
                // by `to_milliwatts`; the dB shift is a pure function
                // of the overlap, hoisted out of the row loop.
                let shift = 10.0 * ov.log10();
                rec_o.rx_power.accumulate_shifted_mw(shift, &mut intf_acc);
            }
        }
        let mut cur = 0usize;
        for &r in candidates.iter() {
            let power = rx_power.get_seq(r, &mut cur);
            let was_audible = self.dcf.audible[r].remove(tx_id);
            if !self.dcf.awake[r] || self.dcf.channel[r] != channel {
                continue;
            }
            if !self.audible_at(power) && !was_audible {
                continue;
            }
            // Half-duplex: a station that transmitted during any part
            // of the frame cannot receive it.
            if tx_srcs.contains(r) {
                self.stations[r].stats.rx_errors += 1;
                continue;
            }
            let success = if !self.cfg.capture && intf_count > 0 {
                false
            } else {
                let denom = if intf_count == 0 {
                    noise
                } else {
                    // Inlined two-term `sum_powers(&[noise, from_mw(intf)])`
                    // with the noise conversion hoisted: the addend order
                    // and the dB↔mW round trip on the interference sum are
                    // byte-for-byte what the helper computes.
                    Dbm::from_milliwatts(
                        noise_mw + Dbm::from_milliwatts(intf_acc[r]).to_milliwatts(),
                    )
                };
                let sinr = power - denom;
                let p_ok = self.prob_cache.success_prob(rate, sinr.value(), wire_bits);
                self.rng.chance(p_ok)
            };
            if success {
                decoded.push((r, power));
            } else {
                self.stations[r].stats.rx_errors += 1;
            }
        }
        self.txsrc_scratch = tx_srcs;
        self.intf_scratch = intf_acc;
        self.overlap_scratch = overlapping;

        // Source-side continuation: arm response timeout or complete.
        self.continue_after_own_tx(src, subtype, is_group, now, sched);

        // Receiver-side processing. The wire frame is checked out of
        // its slot for the duration — delivery needs `&Frame` alongside
        // arbitrary `&mut` world mutation, and every receiver shares
        // the same wire image. Nothing below can release the record's
        // reference (pruning runs at the end of this function), so the
        // slot stays allocated throughout.
        if !decoded.is_empty() {
            let frame = self.frames.take(frame_id);
            for &(r, power) in &decoded {
                self.process_decoded(r, &frame, power, now, sched);
            }
            self.frames.restore(frame_id, frame);
        }
        self.decoded_scratch = decoded;

        // Idle edges: resume frozen access procedures. Only contenders
        // (armed backoff, timer not counting) can react; the wait-list
        // yields them in the ascending order the old full-table scan
        // visited them in. Stations whose timer is already counting
        // were no-ops in that scan, and they are exactly the ones the
        // wait-list omits.
        let mut scratch = std::mem::take(&mut self.rearm_scratch);
        scratch.clear();
        self.contenders.collect_into(&mut scratch);
        for &r in &scratch {
            if self.medium_idle(r, now) && self.dcf.backoff_slots[r].is_some() {
                self.try_arm_access(r, now, sched);
            }
        }
        self.rearm_scratch = scratch;

        // Prune stale records (keep a 50 ms interference horizon),
        // returning each pruned record's frame reference to the arena.
        let horizon = now.saturating_duration_since(SimTime::ZERO);
        if horizon.as_nanos() > 50_000_000 {
            let cutoff = now - SimDuration::from_millis(50);
            let frames = &mut self.frames;
            self.records.retain(|rec| {
                let keep = !rec.done || rec.end > cutoff;
                if !keep {
                    frames.release(rec.frame);
                }
                keep
            });
        }
    }

    fn continue_after_own_tx(
        &mut self,
        src: StationId,
        subtype: Subtype,
        is_group: bool,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        match subtype {
            Subtype::Ack | Subtype::Cts | Subtype::BlockAck | Subtype::BlockAckReq => {
                // Control responses need no follow-up from us.
            }
            Subtype::QosData => {
                if is_group {
                    // Group-addressed aggregate: no block ack comes.
                    self.qos_resolve_flight(src, BaResult::Broadcast, now, sched);
                } else if let Some((Expecting::BlockAck, gen)) = self.dcf.expecting[src] {
                    let resp_air = crate::duration::block_ack_airtime(self.cfg.standard);
                    let timeout = self.sifs + resp_air + self.slot * 2;
                    sched.schedule_in(timeout, MacEvent::ResponseTimeout { station: src, gen });
                }
            }
            _ => {
                if self.stations[src].current.is_some() {
                    if is_group {
                        // Broadcast: complete immediately, no ACK.
                        self.complete_attempt(src, true, now, sched);
                    } else if let Some((exp, gen)) = self.dcf.expecting[src] {
                        // Arm the CTS/ACK timeout.
                        let resp_air = match exp {
                            Expecting::Cts => cts_airtime(self.cfg.standard),
                            Expecting::Ack => ack_airtime(self.cfg.standard),
                            Expecting::BlockAck => {
                                crate::duration::block_ack_airtime(self.cfg.standard)
                            }
                        };
                        let timeout = self.sifs + resp_air + self.slot * 2;
                        sched.schedule_in(timeout, MacEvent::ResponseTimeout { station: src, gen });
                    }
                }
            }
        }
    }

    fn process_decoded(
        &mut self,
        r: StationId,
        frame: &Frame,
        rssi: Dbm,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let my_addr = self.stations[r].addr;
        let for_me = frame.receiver() == my_addr || frame.receiver().is_group();
        if !for_me {
            // Virtual carrier sense: honour the Duration field (§4.2).
            if frame.duration_id & 0x8000 == 0 && frame.duration_id > 0 {
                let nav = now + SimDuration::from_micros(frame.duration_id as u64);
                if nav > self.dcf.nav_until[r] {
                    self.dcf.nav_until[r] = nav;
                    self.trace.event(
                        now,
                        Level::Debug,
                        "mac",
                        TraceEvent::Nav {
                            station: r as u32,
                            until_us: nav.as_nanos() / 1_000,
                        },
                    );
                    self.freeze_access(r, now);
                    sched.schedule_at(nav, MacEvent::NavExpired { station: r });
                }
            }
            return;
        }
        match frame.fc.subtype {
            Subtype::Ack => self.on_ack(r, now, sched),
            Subtype::Cts => self.on_cts(r, now, sched),
            Subtype::QosData => self.on_qos_data(r, frame, rssi, now, sched),
            Subtype::BlockAck => self.on_block_ack(r, frame, now, sched),
            Subtype::BlockAckReq => {
                // This model uses implicit block-ack requests — the
                // aggregate itself solicits the BA (DESIGN.md §16); an
                // explicit BAR on the air is codec-exercised only.
            }
            Subtype::Rts => {
                // Respond with CTS after SIFS if our NAV permits.
                if self.dcf.nav_until[r] <= now {
                    let std = self.cfg.standard;
                    let cts = Frame::cts(
                        frame.transmitter().expect("RTS carries TA"),
                        crate::duration::cts_duration(std, frame.duration_id),
                    );
                    self.schedule_sifs(r, PendingTx::Control(cts), sched);
                }
            }
            Subtype::PsPoll => {
                self.stations[r].stats.rx_accepted += 1;
                self.with_upper(r, now, sched, |u, ctx| u.on_frame(ctx, frame, rssi));
            }
            _ => {
                // Data / management.
                let unicast = !frame.receiver().is_group();
                if unicast {
                    // ACK after SIFS — even for duplicates (the original
                    // ACK may be the thing that got lost).
                    let ack = Frame::ack(frame.transmitter().expect("data carries TA"));
                    self.schedule_sifs(r, PendingTx::Control(ack), sched);
                }
                let tx = frame.transmitter().expect("data carries TA");
                let seq = frame.seq.expect("data carries sequence control");
                if unicast && self.stations[r].dedup.check(tx, seq, frame.fc.retry) {
                    self.stations[r].stats.rx_duplicates += 1;
                    return;
                }
                // Fragment reassembly (§4.2 More Fragments).
                if frame.fc.more_fragments || seq.fragment > 0 {
                    let key = (tx, seq.sequence);
                    let buf = self.stations[r].reassembly.entry(key).or_default();
                    buf.extend_from_slice(&frame.body);
                    if frame.fc.more_fragments {
                        return;
                    }
                    let full = self.stations[r].reassembly.remove(&key).unwrap_or_default();
                    // Rare path: reassembly genuinely needs its own copy
                    // to splice the rebuilt body in.
                    let mut complete = frame.clone();
                    complete.body = full;
                    complete.fc.more_fragments = false;
                    self.deliver(r, &complete, rssi, now, sched);
                } else {
                    self.deliver(r, frame, rssi, now, sched);
                }
            }
        }
    }

    fn deliver(
        &mut self,
        r: StationId,
        frame: &Frame,
        rssi: Dbm,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let s = &mut self.stations[r];
        s.stats.rx_accepted += 1;
        s.stats.rx_payload_bytes += frame.body.len() as u64;
        self.trace.event(
            now,
            Level::Debug,
            "mac",
            TraceEvent::Rx {
                station: r as u32,
                kind: frame_kind(frame.fc.subtype),
                len: frame.body.len() as u32,
                rssi_dbm: rssi.value(),
            },
        );
        self.with_upper(r, now, sched, |u, ctx| u.on_frame(ctx, frame, rssi));
    }

    fn on_ack(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        let Some((Expecting::Ack, _)) = self.dcf.expecting[id] else {
            return;
        };
        self.dcf.expecting[id] = None;
        self.dcf.timer_gen[id] += 1; // Cancel the timeout.
        let peer = self.stations[id]
            .current
            .as_ref()
            .map(|a| self.frames.get(a.msdu.frame).receiver());
        if let Some(p) = peer {
            self.stations[id].arf.on_success(p);
        }
        let more = {
            let at = self.stations[id]
                .current
                .as_mut()
                .expect("ACK implies attempt");
            at.frag_ranges.pop_front();
            at.short_retries = 0;
            at.long_retries = 0;
            at.is_retry = false;
            if let Some(b) = at.built.take() {
                // The acknowledged fragment's wire frame is done; only
                // the in-flight record still references it.
                self.frames.release(b);
            }
            if !at.frag_ranges.is_empty() {
                at.frag_number += 1;
                true
            } else {
                false
            }
        };
        if more {
            // Continue the burst SIFS-spaced without re-contending.
            self.schedule_sifs(id, PendingTx::NextFragment, sched);
        } else {
            self.complete_attempt(id, true, now, sched);
        }
    }

    fn on_cts(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        let _ = now;
        let Some((Expecting::Cts, _)) = self.dcf.expecting[id] else {
            return;
        };
        self.dcf.expecting[id] = None;
        self.dcf.timer_gen[id] += 1;
        if let Some(at) = self.stations[id].current.as_mut() {
            at.cts_received = true;
        }
        self.schedule_sifs(id, PendingTx::DataAfterCts, sched);
    }

    fn complete_attempt(
        &mut self,
        id: StationId,
        success: bool,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let cw_min = self.cfg.cw_min();
        let Some(at) = self.stations[id].current.take() else {
            return;
        };
        self.dcf.expecting[id] = None;
        self.dcf.cw[id] = cw_min;
        if success {
            let s = &mut self.stations[id];
            s.stats.tx_completions += 1;
            let delay_us = now
                .saturating_duration_since(at.msdu.enqueued)
                .as_micros_f64();
            s.stats.access_delay_us.record(delay_us);
            self.access_delay_hist.record(delay_us as u64);
        } else {
            self.stations[id].stats.tx_failures += 1;
        }
        // Hand the upper layer the MSDU as it queued it: moved out of
        // the arena with the original body restored (it was taken into
        // the attempt at queue time) and the More Fragments bit clear —
        // fragmentation is a MAC transfer detail, finished either way
        // by now.
        let mut frame = self.frames.remove(at.msdu.frame);
        frame.body = at.body;
        frame.fc.more_fragments = false;
        if let Some(b) = at.built {
            // A failed attempt can still hold a cached wire frame.
            self.frames.release(b);
        }
        self.trace.event(
            now,
            Level::Debug,
            "mac",
            TraceEvent::TxOutcome {
                station: id as u32,
                ok: success,
            },
        );
        if !success {
            self.trace.event(
                now,
                Level::Warn,
                "mac",
                TraceEvent::Drop {
                    station: id as u32,
                    kind: frame_kind(frame.fc.subtype),
                    reason: DropReason::RetryLimit,
                },
            );
        }
        self.with_upper(id, now, sched, |u, ctx| {
            u.on_tx_result(ctx, &frame, success)
        });
        // Post-transmission backoff, then next MSDU.
        self.maybe_start_next(id, now, sched);
    }

    fn handle_response_timeout(
        &mut self,
        id: StationId,
        gen: u64,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let Some((exp, g)) = self.dcf.expecting[id] else {
            return;
        };
        if g != gen {
            return;
        }
        if exp == Expecting::BlockAck {
            // The block ack never came: every MPDU of the aggregate
            // missed this round.
            self.dcf.expecting[id] = None;
            self.qos_resolve_flight(id, BaResult::Timeout, now, sched);
            return;
        }
        self.dcf.expecting[id] = None;

        let peer = self.stations[id]
            .current
            .as_ref()
            .map(|a| self.frames.get(a.msdu.frame).receiver());
        if let Some(p) = peer {
            self.stations[id].arf.on_failure(p);
        }
        let overrun = u32::from(self.cfg.failpoint_retry_overrun);
        let cfg_short = self.cfg.retry_limit_short + overrun;
        let cfg_long = self.cfg.retry_limit_long + overrun;
        let (exceeded, short, long) = {
            let Some(at) = self.stations[id].current.as_mut() else {
                return;
            };
            if !at.is_retry {
                // The retry bit flips into the wire image; release the
                // cached frame so the next transmit rebuilds it. Later
                // retries of the same fragment reuse that rebuild.
                at.is_retry = true;
                if let Some(b) = at.built.take() {
                    self.frames.release(b);
                }
            }
            let exceeded = match exp {
                Expecting::Cts => {
                    at.short_retries += 1;
                    at.cts_received = false;
                    at.short_retries > cfg_short
                }
                Expecting::Ack => {
                    if at.use_rts {
                        at.long_retries += 1;
                        at.cts_received = false;
                        at.long_retries > cfg_long
                    } else {
                        at.short_retries += 1;
                        at.short_retries > cfg_short
                    }
                }
                Expecting::BlockAck => unreachable!("handled by qos_resolve_flight above"),
            };
            (exceeded, at.short_retries, at.long_retries)
        };
        if exceeded {
            self.complete_attempt(id, false, now, sched);
        } else {
            self.stations[id].stats.retries += 1;
            self.trace.event(
                now,
                Level::Debug,
                "mac",
                TraceEvent::Retry {
                    station: id as u32,
                    short,
                    long,
                },
            );
            // Double the contention window and re-contend (BEB).
            let cw = &mut self.dcf.cw[id];
            *cw = ((*cw + 1) * 2 - 1).min(self.cfg.cw_max());
            self.begin_access(id, now, sched);
        }
    }

    fn handle_sifs_action(
        &mut self,
        id: StationId,
        gen: u64,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let Some((action, g)) = self.stations[id].pending.take() else {
            return;
        };
        if g != gen {
            return;
        }
        if self.dcf.transmitting[id].is_some() {
            return; // Half-duplex guard.
        }
        match action {
            PendingTx::Control(frame) => {
                let rate = self.cfg.standard.base_rate();
                let fid = self.frames.insert(frame);
                self.start_transmission(id, fid, rate, now, sched);
            }
            PendingTx::NextFragment | PendingTx::DataAfterCts => {
                self.transmit_current(id, now, sched);
            }
        }
    }

    // ----- EDCA / A-MPDU (802.11e; DESIGN.md §16) -----
    //
    // QoS stations never touch the legacy `Attempt` machinery: each
    // access category owns a queue, a contention window and at most one
    // in-flight `AmpduFlight`, and a single shared access timer fires
    // at the earliest AC's AIFS+backoff expiry. Everything below is
    // reached only through `station.edca.is_some()` branches, so a
    // world with `cfg.edca` off executes byte-identically to the
    // pre-EDCA MAC.

    /// Queues an arena-resident frame into one AC queue (the EDCA
    /// sibling of [`enqueue_id`](Self::enqueue_id)).
    fn edca_enqueue(
        &mut self,
        id: StationId,
        fid: FrameId,
        ac: AccessCategory,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        self.frames.get_mut(fid).fc.power_management = self.stations[id].power_mgmt;
        let aci = ac.index();
        let s = &mut self.stations[id];
        s.stats.queued += 1;
        let e = s.edca.as_mut().expect("EDCA station");
        if e.acs[aci].queue.len() >= self.cfg.queue_limit {
            s.stats.queue_drops += 1;
            let kind = frame_kind(self.frames.get(fid).fc.subtype);
            self.trace.event(
                now,
                Level::Warn,
                "mac",
                TraceEvent::Drop {
                    station: id as u32,
                    kind,
                    reason: DropReason::QueueFull,
                },
            );
            self.staged += 1;
            sched.schedule_at(
                now,
                MacEvent::TxDropped {
                    station: id,
                    frame: fid,
                },
            );
            return;
        }
        e.acs[aci].queue.push_back(Msdu {
            frame: fid,
            enqueued: now,
        });
        let idle_ac = e.acs[aci].flight.is_none() && e.acs[aci].slots.is_none();
        self.queue_gauge.add(now, 1.0);
        if idle_ac {
            self.edca_begin_access(id, aci, now, sched);
        }
    }

    /// Draws a fresh backoff for one AC and joins contention.
    fn edca_begin_access(
        &mut self,
        id: StationId,
        aci: usize,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let cw = self.stations[id].edca.as_ref().expect("EDCA station").acs[aci].cw;
        let slots = self.rng.below(cw as u64 + 1) as u32;
        self.stations[id].edca.as_mut().expect("EDCA station").acs[aci].slots = Some(slots);
        self.trace.event(
            now,
            Level::Debug,
            "mac",
            TraceEvent::EdcaBackoff {
                station: id as u32,
                ac: aci as u8,
                slots,
                cw,
            },
        );
        self.dcf.backoff_slots[id] = Some(0); // Sentinel: some AC contends.
        self.contenders.insert(id);
        if self.dcf.access_armed_at[id].is_some() {
            // The running timer was armed for the previously-backlogged
            // ACs; this AC may fire earlier. Freeze (preserving their
            // consumed slots) and re-arm over all four.
            self.edca_freeze(id, now);
        }
        self.edca_try_arm(id, now, sched);
    }

    /// Earliest pending fire delay across the ACs, measured from the
    /// arming instant.
    fn edca_min_delay(&self, id: StationId) -> Option<SimDuration> {
        let e = self.stations[id].edca.as_ref()?;
        let mut best: Option<SimDuration> = None;
        for (i, a) in e.acs.iter().enumerate() {
            if let Some(s) = a.slots {
                let d = self.edca_aifs[i] + self.slot * s as u64;
                if best.is_none_or(|b| d < b) {
                    best = Some(d);
                }
            }
        }
        best
    }

    /// EDCA sibling of [`try_arm_access`](Self::try_arm_access): arms
    /// the shared access timer at the earliest AC's expiry.
    fn edca_try_arm(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        let Some(delay) = self.edca_min_delay(id) else {
            self.dcf.backoff_slots[id] = None;
            self.contenders.remove(id);
            return;
        };
        self.dcf.backoff_slots[id] = Some(0);
        if !self.medium_idle(id, now) {
            if self.dcf.nav_until[id] > now {
                sched.schedule_at(self.dcf.nav_until[id], MacEvent::NavExpired { station: id });
            }
            return;
        }
        if self.dcf.access_armed_at[id].is_some() {
            return;
        }
        self.dcf.timer_gen[id] += 1;
        let gen = self.dcf.timer_gen[id];
        self.dcf.access_armed_at[id] = Some(now);
        self.contenders.remove(id);
        sched.schedule_in(delay, MacEvent::AccessTimer { station: id, gen });
    }

    /// EDCA sibling of [`freeze_access`](Self::freeze_access): a busy
    /// edge stops the countdown; each AC keeps the slots it already
    /// burned past its *own* AIFS boundary.
    fn edca_freeze(&mut self, id: StationId, now: SimTime) {
        let Some(armed_at) = self.dcf.access_armed_at[id] else {
            return;
        };
        if let Some(d) = self.edca_min_delay(id) {
            // Same CSMA vulnerable window as the legacy path: an
            // expiry within ~1 µs of the busy edge has committed.
            if armed_at + d <= now + SimDuration::from_micros(1) {
                return;
            }
        }
        let slot = self.slot;
        let aifs = self.edca_aifs;
        let e = self.stations[id].edca.as_mut().expect("EDCA station");
        for (i, a) in e.acs.iter_mut().enumerate() {
            if let Some(s) = a.slots {
                let aifs_end = armed_at + aifs[i];
                let consumed = if now <= aifs_end {
                    0
                } else {
                    ((now - aifs_end).as_nanos() / slot.as_nanos().max(1)) as u32
                };
                a.slots = Some(s.saturating_sub(consumed));
            }
        }
        self.dcf.access_armed_at[id] = None;
        self.dcf.timer_gen[id] += 1;
        if e.any_slots() {
            self.contenders.insert(id);
        }
    }

    /// The shared access timer fired: the earliest AC transmits;
    /// same-instant ACs lose the internal collision to the higher
    /// priority and double their CW like an external collision.
    fn edca_access_fire(&mut self, id: StationId, now: SimTime, sched: &mut Scheduler<MacEvent>) {
        let Some(armed_at) = self.dcf.access_armed_at[id] else {
            return;
        };
        self.dcf.access_armed_at[id] = None;
        let elapsed = now.saturating_duration_since(armed_at);
        let slot = self.slot;
        let aifs = self.edca_aifs;
        let mut winner: Option<usize> = None;
        let mut redrawn = [false; 4];
        {
            let e = self.stations[id].edca.as_ref().expect("EDCA station");
            for (i, a) in e.acs.iter().enumerate() {
                if let Some(s) = a.slots {
                    if aifs[i] + slot * s as u64 <= elapsed {
                        // Priority order: the first expired AC wins.
                        if winner.is_none() {
                            winner = Some(i);
                        } else {
                            redrawn[i] = true;
                        }
                    }
                }
            }
        }
        let Some(win) = winner else {
            // Stale fire (should be generation-guarded); re-contend.
            self.contenders.insert(id);
            return;
        };
        for (l, redraw) in redrawn.iter().enumerate() {
            if !*redraw {
                continue;
            }
            // Internal collision: the loser behaves as if the medium
            // ate its frame — CW doubles, backoff redraws.
            let cw_max = self
                .cfg
                .edca_params(AccessCategory::from_index(l).expect("4 ACs"))
                .cw_max;
            let a = &mut self.stations[id].edca.as_mut().expect("EDCA station").acs[l];
            a.cw = ((a.cw + 1) * 2 - 1).min(cw_max);
            let cw = a.cw;
            let slots = self.rng.below(cw as u64 + 1) as u32;
            self.stations[id].edca.as_mut().expect("EDCA station").acs[l].slots = Some(slots);
            self.trace.event(
                now,
                Level::Debug,
                "mac",
                TraceEvent::EdcaBackoff {
                    station: id as u32,
                    ac: l as u8,
                    slots,
                    cw,
                },
            );
        }
        {
            // Non-firing ACs burned idle slots past their own AIFS
            // while the winner counted down.
            let e = self.stations[id].edca.as_mut().expect("EDCA station");
            for (i, a) in e.acs.iter_mut().enumerate() {
                if i == win || redrawn[i] {
                    continue;
                }
                if let Some(s) = a.slots {
                    let past_aifs = elapsed.saturating_sub(aifs[i]);
                    let consumed = (past_aifs.as_nanos() / slot.as_nanos().max(1)) as u32;
                    a.slots = Some(s.saturating_sub(consumed));
                }
            }
            e.acs[win].slots = None;
            if e.any_slots() {
                self.dcf.backoff_slots[id] = Some(0);
                self.contenders.insert(id);
            } else {
                self.dcf.backoff_slots[id] = None;
                self.contenders.remove(id);
            }
        }
        self.edca_transmit(id, win, now, sched);
    }

    /// Builds a fresh [`AmpduFlight`] for one AC from its queue head:
    /// a same-receiver run of MSDUs capped by the aggregation limits,
    /// the AC's TXOP budget and the 64-wide block-ack window.
    fn edca_build_flight(&mut self, id: StationId, aci: usize, now: SimTime) -> bool {
        let std = self.cfg.standard;
        let max_bytes = self.cfg.ampdu_max_bytes;
        let txop_us = self
            .cfg
            .edca_params(AccessCategory::from_index(aci).expect("4 ACs"))
            .txop_us;
        let (peer, head_wire) = {
            let e = self.stations[id].edca.as_ref().expect("EDCA station");
            let Some(head) = e.acs[aci].queue.front() else {
                return false;
            };
            let f = self.frames.get(head.frame);
            (
                f.receiver(),
                f.header_len() + f.body.len() + 4 + crate::duration::AMPDU_DELIMITER_LEN,
            )
        };
        let rate = if peer.is_group() {
            std.base_rate()
        } else {
            self.stations[id].arf.current_rate(peer)
        };
        let budget = crate::duration::txop_mpdu_budget(std, rate, txop_us, head_wire);
        let n_cap = self.cfg.ampdu_max_mpdus.clamp(1, 64).min(budget);
        let mut mpdus: Vec<AmpduMpdu> = Vec::new();
        let mut bytes = 0usize;
        while mpdus.len() < n_cap {
            let take = {
                let e = self.stations[id].edca.as_ref().expect("EDCA station");
                match e.acs[aci].queue.front() {
                    None => false,
                    Some(m) => {
                        let f = self.frames.get(m.frame);
                        f.receiver() == peer
                            && (mpdus.is_empty() || bytes + f.body.len() <= max_bytes)
                    }
                }
            };
            if !take {
                break;
            }
            let m = self.stations[id].edca.as_mut().expect("EDCA station").acs[aci]
                .queue
                .pop_front()
                .expect("peeked above");
            bytes += self.frames.get(m.frame).body.len();
            self.queue_gauge.add(now, -1.0);
            let seq = self.stations[id].seq.next();
            mpdus.push(AmpduMpdu {
                msdu: m,
                seq,
                retries: 0,
            });
        }
        if mpdus.is_empty() {
            return false;
        }
        let ssn = mpdus[0].seq;
        self.stations[id].edca.as_mut().expect("EDCA station").acs[aci].flight =
            Some(AmpduFlight {
                mpdus,
                rate,
                ssn,
                built: None,
            });
        true
    }

    /// Puts the AC's aggregate on the air and arms the block-ack wait.
    fn edca_transmit(
        &mut self,
        id: StationId,
        aci: usize,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let have_flight = self.stations[id].edca.as_ref().expect("EDCA station").acs[aci]
            .flight
            .is_some()
            || self.edca_build_flight(id, aci, now);
        if !have_flight {
            return; // Queue drained underneath the access win.
        }
        let std = self.cfg.standard;
        // Build (or reuse after a lost BA) the aggregate wire frame:
        // one QosData whose body is a [seq, len, payload] run.
        let (fid, rate, ssn, bits) = {
            let flight = self.stations[id].edca.as_mut().expect("EDCA station").acs[aci]
                .flight
                .as_mut()
                .expect("checked above");
            let ssn = flight.ssn;
            let mut bits = 0u64;
            for m in &flight.mpdus {
                let off = m.seq.wrapping_sub(ssn) & 0x0FFF;
                debug_assert!((off as usize) < 64, "aggregate exceeds BA window");
                bits |= 1 << (off & 63);
            }
            let fid = match flight.built {
                Some(f) => f,
                None => {
                    let base = self.frames.get(flight.mpdus[0].msdu.frame);
                    let mut f = base.clone();
                    f.fc.subtype = Subtype::QosData;
                    f.fc.retry = flight.mpdus.iter().any(|m| m.retries > 0);
                    f.fc.more_fragments = false;
                    f.seq = Some(SequenceControl {
                        fragment: 0,
                        sequence: ssn,
                    });
                    f.duration_id = if f.receiver().is_group() {
                        0
                    } else {
                        crate::duration::ampdu_duration(std)
                    };
                    let mut body = Vec::new();
                    for m in &flight.mpdus {
                        let mb = &self.frames.get(m.msdu.frame).body;
                        body.extend_from_slice(&m.seq.to_le_bytes());
                        body.extend_from_slice(&(mb.len() as u16).to_le_bytes());
                        body.extend_from_slice(mb);
                    }
                    f.body = body;
                    let fid = self.frames.insert(f);
                    flight.built = Some(fid);
                    fid
                }
            };
            (fid, flight.rate, ssn, bits)
        };
        self.trace.event(
            now,
            Level::Debug,
            "mac",
            TraceEvent::AmpduTx {
                station: id as u32,
                ac: aci as u8,
                ssn,
                bitmap: bits,
            },
        );
        let is_group = self.frames.get(fid).receiver().is_group();
        self.frames.retain(fid); // The record's reference.
        self.stations[id].edca.as_mut().expect("EDCA station").tx_ac = Some(aci);
        self.start_transmission(id, fid, rate, now, sched);
        if is_group {
            self.dcf.expecting[id] = None;
        } else {
            self.dcf.timer_gen[id] += 1;
            self.dcf.expecting[id] = Some((Expecting::BlockAck, self.dcf.timer_gen[id]));
        }
    }

    /// Receiver side of a QoS aggregate: per-MPDU loss draws, dedup,
    /// delivery, and the SIFS-spaced compressed block ack.
    fn on_qos_data(
        &mut self,
        r: StationId,
        frame: &Frame,
        rssi: Dbm,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let Some(tx) = frame.transmitter() else {
            return;
        };
        let ssn = frame.seq.map_or(0, |s| s.sequence);
        let unicast = !frame.receiver().is_group();
        let loss = self.cfg.ampdu_per_mpdu_loss;
        // Per-MPDU header template (cheap: no aggregate body copy).
        let mut header = frame.clone();
        header.body = Vec::new();
        header.fc.more_fragments = false;
        let mut bitmap = 0u64;
        let body = &frame.body;
        let mut off = 0usize;
        while off + 4 <= body.len() {
            let seq = u16::from_le_bytes([body[off], body[off + 1]]);
            let len = u16::from_le_bytes([body[off + 2], body[off + 3]]) as usize;
            off += 4;
            if off + len > body.len() {
                break; // Truncated delimiter run; stop parsing.
            }
            let payload = &body[off..off + len];
            off += len;
            if loss > 0.0 && self.rng.chance(loss) {
                // The delimiter/CRC of this subframe failed even though
                // the PPDU decoded: the BA simply omits its bit.
                self.stations[r].stats.rx_errors += 1;
                continue;
            }
            let bit = seq.wrapping_sub(ssn) & 0x0FFF;
            if (bit as usize) < 64 {
                bitmap |= 1 << bit;
            }
            let sc = SequenceControl {
                fragment: 0,
                sequence: seq,
            };
            // Duplicates still get their BA bit (the lost thing may
            // have been the previous BA), but are not re-delivered.
            if unicast && self.stations[r].dedup.check(tx, sc, frame.fc.retry) {
                self.stations[r].stats.rx_duplicates += 1;
                continue;
            }
            let mut one = header.clone();
            one.body = payload.to_vec();
            one.seq = Some(sc);
            self.deliver(r, &one, rssi, now, sched);
        }
        if unicast {
            let my = self.stations[r].addr;
            let ba = Frame::block_ack(tx, my, ssn, bitmap);
            self.schedule_sifs(r, PendingTx::Control(ba), sched);
        }
    }

    /// Sender side of a received block ack.
    fn on_block_ack(
        &mut self,
        id: StationId,
        frame: &Frame,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let Some((Expecting::BlockAck, _)) = self.dcf.expecting[id] else {
            return;
        };
        let (Some(ssn), Some(bitmap)) = (frame.ba_ssn(), frame.ba_bitmap()) else {
            return;
        };
        self.dcf.expecting[id] = None;
        self.dcf.timer_gen[id] += 1; // Cancel the BA timeout.
        self.qos_resolve_flight(id, BaResult::Ba(ssn, bitmap), now, sched);
    }

    /// Settles the in-flight aggregate against a block ack (or its
    /// absence): acked MPDUs complete, the rest retry until the limit,
    /// and the flight either re-contends with the survivors or ends.
    fn qos_resolve_flight(
        &mut self,
        id: StationId,
        ba: BaResult,
        now: SimTime,
        sched: &mut Scheduler<MacEvent>,
    ) {
        let Some(aci) = self.stations[id].edca.as_mut().and_then(|e| e.tx_ac.take()) else {
            return;
        };
        let Some(mut flight) = self.stations[id].edca.as_mut().expect("EDCA station").acs[aci]
            .flight
            .take()
        else {
            return;
        };
        if let Some(b) = flight.built.take() {
            self.frames.release(b);
        }
        let params = self
            .cfg
            .edca_params(AccessCategory::from_index(aci).expect("4 ACs"));
        let limit = self.cfg.retry_limit_short + u32::from(self.cfg.failpoint_retry_overrun);
        let peer = self.frames.get(flight.mpdus[0].msdu.frame).receiver();
        let flight_ssn = flight.ssn;
        let mut acked_bits = 0u64;
        let mut any_acked = false;
        let mut remaining: Vec<AmpduMpdu> = Vec::new();
        let mut outcomes: Vec<(Frame, bool)> = Vec::new();
        for mut m in flight.mpdus.drain(..) {
            let acked = match ba {
                BaResult::Ba(ssn, bm) => {
                    let o = m.seq.wrapping_sub(ssn) & 0x0FFF;
                    (o as usize) < 64 && (bm >> o) & 1 == 1
                }
                BaResult::Timeout => false,
                BaResult::Broadcast => true,
            };
            if acked {
                any_acked = true;
                let off = m.seq.wrapping_sub(flight_ssn) & 0x0FFF;
                if (off as usize) < 64 {
                    acked_bits |= 1 << off;
                }
                let delay_us = now
                    .saturating_duration_since(m.msdu.enqueued)
                    .as_micros_f64();
                let s = &mut self.stations[id];
                s.stats.tx_completions += 1;
                s.stats.access_delay_us.record(delay_us);
                self.access_delay_hist.record(delay_us as u64);
                self.ac_delay_hist[aci].record(delay_us as u64);
                self.trace.event(
                    now,
                    Level::Debug,
                    "mac",
                    TraceEvent::TxOutcome {
                        station: id as u32,
                        ok: true,
                    },
                );
                outcomes.push((self.frames.remove(m.msdu.frame), true));
            } else {
                m.retries += 1;
                if m.retries > limit {
                    self.stations[id].stats.tx_failures += 1;
                    self.trace.event(
                        now,
                        Level::Warn,
                        "mac",
                        TraceEvent::MpduDrop {
                            station: id as u32,
                            ac: aci as u8,
                            seq: m.seq,
                        },
                    );
                    self.trace.event(
                        now,
                        Level::Debug,
                        "mac",
                        TraceEvent::TxOutcome {
                            station: id as u32,
                            ok: false,
                        },
                    );
                    outcomes.push((self.frames.remove(m.msdu.frame), false));
                } else {
                    self.stations[id].stats.retries += 1;
                    // Same shape as the legacy retry ladder so the
                    // retry-bound and trace-metrics oracles cover the
                    // QoS path too: `retries` is this MPDU's attempt
                    // counter, bounded by the short limit.
                    self.trace.event(
                        now,
                        Level::Debug,
                        "mac",
                        TraceEvent::Retry {
                            station: id as u32,
                            short: m.retries,
                            long: 0,
                        },
                    );
                    remaining.push(m);
                }
            }
        }
        if any_acked {
            // The *effective* completion set: bits are relative to the
            // transmitted aggregate's SSN, and an MPDU leaves the
            // flight the moment it completes, so no seq can ever
            // appear in two BlockAckRx events.
            self.trace.event(
                now,
                Level::Debug,
                "mac",
                TraceEvent::BlockAckRx {
                    station: id as u32,
                    ac: aci as u8,
                    ssn: flight_ssn,
                    bitmap: acked_bits,
                },
            );
            self.stations[id].arf.on_success(peer);
        } else if !matches!(ba, BaResult::Broadcast) {
            self.stations[id].arf.on_failure(peer);
        }
        if remaining.is_empty() {
            let e = self.stations[id].edca.as_mut().expect("EDCA station");
            e.acs[aci].cw = params.cw_min;
            let backlogged = !e.acs[aci].queue.is_empty();
            if backlogged {
                // Post-transmission backoff before the next aggregate.
                self.edca_begin_access(id, aci, now, sched);
            }
        } else {
            flight.ssn = remaining[0].seq;
            flight.mpdus = remaining;
            let e = self.stations[id].edca.as_mut().expect("EDCA station");
            let a = &mut e.acs[aci];
            a.flight = Some(flight);
            a.cw = ((a.cw + 1) * 2 - 1).min(params.cw_max);
            self.edca_begin_access(id, aci, now, sched);
        }
        for (fr, ok) in outcomes {
            self.with_upper(id, now, sched, |u, ctx| u.on_tx_result(ctx, &fr, ok));
        }
    }
}

impl World for WlanWorld {
    type Event = MacEvent;

    fn handle(&mut self, now: SimTime, event: MacEvent, sched: &mut Scheduler<MacEvent>) {
        match event {
            MacEvent::Boot => {
                if !self.booted {
                    self.booted = true;
                    for id in 0..self.stations.len() {
                        self.with_upper(id, now, sched, |u, ctx| u.on_start(ctx));
                    }
                }
            }
            MacEvent::TxEnd { tx_id } => self.handle_tx_end(tx_id, now, sched),
            MacEvent::AccessTimer { station, gen } => {
                if self.dcf.timer_gen[station] != gen {
                    return;
                }
                if self.stations[station].edca.is_some() {
                    self.edca_access_fire(station, now, sched);
                    return;
                }
                self.dcf.access_armed_at[station] = None;
                self.dcf.backoff_slots[station] = None;
                self.contenders.remove(station);
                if self.stations[station].current.is_some() {
                    self.transmit_current(station, now, sched);
                }
            }
            MacEvent::ResponseTimeout { station, gen } => {
                self.handle_response_timeout(station, gen, now, sched);
            }
            MacEvent::SifsAction { station, gen } => {
                self.handle_sifs_action(station, gen, now, sched);
            }
            MacEvent::NavExpired { station } => {
                if self.dcf.backoff_slots[station].is_some() && self.medium_idle(station, now) {
                    self.try_arm_access(station, now, sched);
                }
            }
            MacEvent::UpperTimer { station, tag } => {
                self.with_upper(station, now, sched, |u, ctx| u.on_timer(ctx, tag));
            }
            MacEvent::SetPosition { station, pos } => {
                self.set_position(station, pos, now);
            }
            MacEvent::Inject { station, frame } => {
                self.staged -= 1;
                self.enqueue_id(station, frame, now, sched);
            }
            MacEvent::InjectQos { station, frame, ac } => {
                self.staged -= 1;
                if self.stations[station].edca.is_some() {
                    self.edca_enqueue(station, frame, ac, now, sched);
                } else {
                    self.enqueue_id(station, frame, now, sched);
                }
            }
            MacEvent::TxDropped { station, frame } => {
                self.staged -= 1;
                let frame = self.frames.remove(frame);
                self.with_upper(station, now, sched, |u, ctx| {
                    u.on_tx_result(ctx, &frame, false)
                });
            }
        }
    }
}

/// Schedules the boot event; call once after building the world.
pub fn boot(sim: &mut wn_sim::Simulation<WlanWorld>) {
    sim.scheduler_mut()
        .schedule_at(SimTime::ZERO, MacEvent::Boot);
}

/// Stages `frame` into the world's arena and schedules its injection
/// into `station`'s transmit queue at `at` — the one-call form of
/// [`WlanWorld::stage_frame`] plus a [`MacEvent::Inject`], used by
/// traffic generators and scenario set-up.
pub fn inject_at(
    sim: &mut wn_sim::Simulation<WlanWorld>,
    at: SimTime,
    station: StationId,
    frame: Frame,
) {
    let frame = sim.world_mut().stage_frame(frame);
    sim.scheduler_mut()
        .schedule_at(at, MacEvent::Inject { station, frame });
}

/// [`inject_at`] with an explicit access category: the frame lands in
/// that AC's EDCA queue (AC_BE when the station is not QoS-enabled).
pub fn qos_inject_at(
    sim: &mut wn_sim::Simulation<WlanWorld>,
    at: SimTime,
    station: StationId,
    frame: Frame,
    ac: AccessCategory,
) {
    let frame = sim.world_mut().stage_frame(frame);
    sim.scheduler_mut()
        .schedule_at(at, MacEvent::InjectQos { station, frame, ac });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::DsBits;
    use wn_sim::Simulation;

    /// Predicate for a transmission of the given frame kind — the typed
    /// replacement for substring-matching the trace.
    fn tx_of(kind: FrameKind) -> impl Fn(&TraceEvent) -> bool {
        move |e| matches!(e, TraceEvent::Tx { kind: k, .. } if *k == kind)
    }

    fn world(n: usize, spacing_m: f64) -> Simulation<WlanWorld> {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 7;
        let mut w = WlanWorld::new(cfg);
        for i in 0..n {
            w.add_station(
                MacAddr::station(i as u32),
                Point::new(spacing_m * i as f64, 0.0),
                Box::new(NullUpper),
            );
        }
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        sim
    }

    fn data_frame(from: u32, to: u32, len: usize) -> Frame {
        Frame::data(
            DsBits::Ibss,
            MacAddr::station(to),
            MacAddr::station(from),
            MacAddr::random_ibss_bssid(1),
            SequenceControl::default(),
            vec![0xAA; len],
        )
    }

    fn inject(sim: &mut Simulation<WlanWorld>, at_ms: u64, station: StationId, frame: Frame) {
        inject_at(sim, SimTime::from_millis(at_ms), station, frame);
    }

    #[test]
    fn single_frame_delivered_and_acked() {
        let mut sim = world(2, 10.0);
        inject(&mut sim, 1, 0, data_frame(0, 1, 500));
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 1);
        assert_eq!(w.stats(0).tx_failures, 0);
        assert_eq!(w.stats(1).rx_accepted, 1);
        assert_eq!(w.stats(1).rx_payload_bytes, 500);
        // Two frames on the air: data + ACK.
        assert_eq!(w.stats(0).tx_frames, 1);
        assert_eq!(w.stats(1).tx_frames, 1);
    }

    #[test]
    fn broadcast_needs_no_ack() {
        let mut sim = world(3, 10.0);
        let f = Frame::data(
            DsBits::Ibss,
            MacAddr::BROADCAST,
            MacAddr::station(0),
            MacAddr::random_ibss_bssid(1),
            SequenceControl::default(),
            vec![1; 100],
        );
        inject(&mut sim, 1, 0, f);
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 1);
        assert_eq!(w.stats(1).rx_accepted, 1);
        assert_eq!(w.stats(2).rx_accepted, 1);
        // No ACK came back.
        assert_eq!(w.stats(1).tx_frames, 0);
        assert_eq!(w.stats(2).tx_frames, 0);
    }

    #[test]
    fn out_of_range_peer_fails_after_retries() {
        let mut sim = world(2, 50_000.0);
        inject(&mut sim, 1, 0, data_frame(0, 1, 500));
        sim.run_until(SimTime::from_secs(2));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 0);
        assert_eq!(w.stats(0).tx_failures, 1);
        // Initial + 7 short retries.
        assert_eq!(w.stats(0).tx_frames, 8);
        assert_eq!(w.stats(1).rx_accepted, 0);
    }

    #[test]
    fn many_frames_all_delivered() {
        let mut sim = world(2, 10.0);
        for i in 0..50 {
            inject(&mut sim, 1 + i, 0, data_frame(0, 1, 1000));
        }
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 50);
        assert_eq!(w.stats(1).rx_accepted, 50);
        assert_eq!(w.stats(1).rx_payload_bytes, 50_000);
    }

    #[test]
    fn two_contending_senders_both_finish() {
        let mut sim = world(3, 10.0);
        // Stations 0 and 2 both flood station 1 starting simultaneously.
        for i in 0..30 {
            inject(&mut sim, 1 + i, 0, data_frame(0, 1, 800));
            inject(&mut sim, 1 + i, 2, data_frame(2, 1, 800));
        }
        sim.run_until(SimTime::from_secs(10));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions + w.stats(0).tx_failures, 30);
        assert_eq!(w.stats(2).tx_completions + w.stats(2).tx_failures, 30);
        assert_eq!(
            w.stats(0).tx_completions,
            30,
            "close range: all should succeed"
        );
        assert_eq!(w.stats(2).tx_completions, 30);
        assert_eq!(w.stats(1).rx_accepted, 60);
    }

    #[test]
    fn fragmentation_reassembles() {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.frag_threshold = 400;
        cfg.seed = 3;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, 0, data_frame(0, 1, 1000));
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        // 1000 B splits into 400+400+200: three fragments, three ACKs.
        assert_eq!(w.stats(0).tx_frames, 3);
        assert_eq!(w.stats(1).tx_frames, 3);
        assert_eq!(w.stats(0).tx_completions, 1);
        // Receiver sees ONE reassembled MSDU of the full kilobyte.
        assert_eq!(w.stats(1).rx_accepted, 1);
        assert_eq!(w.stats(1).rx_payload_bytes, 1000);
    }

    #[test]
    fn rts_cts_exchange_happens_below_threshold() {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.rts_threshold = 100;
        cfg.seed = 5;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, 0, data_frame(0, 1, 600));
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 1);
        // Sender: RTS + DATA; receiver: CTS + ACK.
        assert_eq!(w.stats(0).tx_frames, 2);
        assert_eq!(w.stats(1).tx_frames, 2);
        // Protocol order asserted on typed event variants, not substrings.
        assert!(w
            .trace
            .happened_before_events(tx_of(FrameKind::Rts), tx_of(FrameKind::Cts)));
        assert!(w
            .trace
            .happened_before_events(tx_of(FrameKind::Cts), tx_of(FrameKind::Data)));
    }

    #[test]
    fn hidden_terminal_collisions_without_rts() {
        // A --- R --- B: A and B hear R but not each other.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 11;
        cfg.capture = false;
        let mut w = WlanWorld::new(cfg);
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let r = w.add_station(
            MacAddr::station(1),
            Point::new(120.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(2),
            Point::new(240.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..40 {
            inject(&mut sim, 1 + i * 3, a, data_frame(0, 1, 1400));
            inject(&mut sim, 1 + i * 3, b, data_frame(2, 1, 1400));
        }
        sim.run_until(SimTime::from_secs(20));
        let w = sim.world();
        let retries = w.stats(a).retries + w.stats(b).retries;
        assert!(
            retries > 10,
            "hidden terminals should collide repeatedly, got {retries} retries"
        );
        let _ = r;
    }

    #[test]
    fn rts_cts_rescues_hidden_terminals() {
        let run = |rts: usize| -> (u64, u64) {
            let mut cfg = MacConfig::new(PhyStandard::Dot11g);
            cfg.seed = 11;
            cfg.capture = false;
            cfg.rts_threshold = rts;
            let mut w = WlanWorld::new(cfg);
            let a = w.add_station(
                MacAddr::station(0),
                Point::new(0.0, 0.0),
                Box::new(NullUpper),
            );
            let _r = w.add_station(
                MacAddr::station(1),
                Point::new(120.0, 0.0),
                Box::new(NullUpper),
            );
            let b = w.add_station(
                MacAddr::station(2),
                Point::new(240.0, 0.0),
                Box::new(NullUpper),
            );
            let mut sim = Simulation::new(w);
            boot(&mut sim);
            for i in 0..40 {
                inject(&mut sim, 1 + i * 3, a, data_frame(0, 1, 1400));
                inject(&mut sim, 1 + i * 3, b, data_frame(2, 1, 1400));
            }
            sim.run_until(SimTime::from_secs(30));
            let w = sim.world();
            (
                w.stats(a).tx_completions + w.stats(b).tx_completions,
                w.stats(a).tx_failures + w.stats(b).tx_failures,
            )
        };
        let (no_rts_ok, no_rts_fail) = run(usize::MAX);
        let (rts_ok, rts_fail) = run(0);
        // With RTS/CTS the exchange is protected; deliveries rise and/or
        // failures fall versus the unprotected run.
        assert!(
            rts_ok > no_rts_ok || rts_fail < no_rts_fail,
            "rts: ok={rts_ok} fail={rts_fail}; bare: ok={no_rts_ok} fail={no_rts_fail}"
        );
        assert_eq!(rts_ok + rts_fail, 80);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = world(3, 20.0);
            for i in 0..20 {
                inject(&mut sim, 1 + i, 0, data_frame(0, 1, 700));
                inject(&mut sim, 1 + i, 2, data_frame(2, 1, 700));
            }
            sim.run_until(SimTime::from_secs(5));
            let w = sim.world();
            (
                w.stats(0).tx_frames,
                w.stats(2).tx_frames,
                w.stats(1).rx_accepted,
                w.stats(0).retries,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_overflow_drops() {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.queue_limit = 4;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        // All at the same instant: 1 goes in-flight, 4 queue, rest drop.
        for _ in 0..10 {
            inject(&mut sim, 1, 0, data_frame(0, 1, 8000));
        }
        sim.run_until(SimTime::from_secs(2));
        let w = sim.world();
        assert!(
            w.stats(0).queue_drops >= 5,
            "drops = {}",
            w.stats(0).queue_drops
        );
        assert_eq!(w.stats(0).tx_completions + w.stats(0).queue_drops, 10);
    }

    #[test]
    fn channels_isolate_traffic() {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 13;
        let mut w = WlanWorld::new(cfg);
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        w.set_channel(a, 1);
        w.set_channel(b, 6);
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, a, data_frame(0, 1, 500));
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        // Different channels: B never hears A.
        assert_eq!(w.stats(b).rx_accepted, 0);
        assert_eq!(w.stats(a).tx_failures, 1);
    }

    #[test]
    fn retry_bit_set_on_retransmission() {
        // Receiver exists but is just out of decodable range often
        // enough to force retries — instead, force it determinstically:
        // the peer is on another channel so nothing is ever ACKed.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 17;
        let mut w = WlanWorld::new(cfg);
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        w.set_channel(b, 6);
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, a, data_frame(0, 1, 300));
        sim.run_until(SimTime::from_secs(2));
        let w = sim.world();
        assert_eq!(w.stats(a).retries, 7);
        assert_eq!(w.stats(a).tx_failures, 1);
    }

    #[test]
    fn power_save_station_misses_frames_while_dozing() {
        struct Doze;
        impl UpperLayer for Doze {
            fn on_start(&mut self, ctx: &mut UpperCtx) {
                ctx.command(Command::SetAwake(false));
            }
        }
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        let mut w = WlanWorld::new(cfg.clone());
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(MacAddr::station(1), Point::new(5.0, 0.0), Box::new(Doze));
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, a, data_frame(0, 1, 300));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            sim.world().stats(b).rx_accepted,
            0,
            "dozing STA must not receive"
        );
        assert_eq!(sim.world().stats(a).tx_failures, 1);
        let _ = &mut cfg;
    }

    #[test]
    fn wake_during_audible_tx_defers_backoff() {
        // Regression: a station that dozes, then wakes in the middle of
        // an audible transmission, must re-hear it and defer — not see
        // a spuriously idle medium, arm DIFS+backoff early and collide
        // with the ongoing frame.
        struct DozeWindow;
        impl UpperLayer for DozeWindow {
            fn on_start(&mut self, ctx: &mut UpperCtx) {
                ctx.set_timer(SimDuration::from_micros(500), 1);
                ctx.set_timer(SimDuration::from_millis(2), 2);
            }
            fn on_timer(&mut self, ctx: &mut UpperCtx, tag: u64) {
                ctx.command(Command::SetAwake(tag == 2));
            }
        }
        // 11b timing: a 4000 B frame at 11 Mb/s is ~3 ms of air —
        // station A (injected at 1 ms) is guaranteed to still be on the
        // air when B wakes at 2 ms and queues its own frame. No capture:
        // any overlap at the sink destroys both, so an early B shows up
        // as retries/errors.
        let mut cfg = MacConfig::new(PhyStandard::Dot11b);
        cfg.seed = 9;
        cfg.capture = false;
        cfg.arf = false;
        let mut w = WlanWorld::new(cfg);
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(DozeWindow),
        );
        let sink = w.add_station(
            MacAddr::station(2),
            Point::new(10.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, a, data_frame(0, 2, 4000));
        inject_at(
            &mut sim,
            SimTime::from_micros(2_100),
            b,
            data_frame(1, 2, 400),
        );
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert_eq!(w.stats(a).tx_completions, 1, "A's frame must survive");
        assert_eq!(w.stats(b).tx_completions, 1, "B's frame must survive");
        assert_eq!(
            w.stats(a).retries + w.stats(b).retries,
            0,
            "waking mid-frame must defer, not collide"
        );
        assert_eq!(w.stats(sink).rx_errors, 0);
        assert_eq!(w.stats(sink).rx_accepted, 2);
    }

    #[test]
    fn overlapping_transmissions_clean_up_audible_sets() {
        // Hidden terminals A and B overlap on the air at the middle
        // station; each tx-end must remove exactly its own id from the
        // audible bookkeeping, leaving every set empty at quiescence.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 11;
        cfg.capture = false;
        let mut w = WlanWorld::new(cfg);
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let r = w.add_station(
            MacAddr::station(1),
            Point::new(120.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(2),
            Point::new(240.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..20 {
            inject(&mut sim, 1 + i * 3, a, data_frame(0, 1, 1400));
            inject(&mut sim, 1 + i * 3, b, data_frame(2, 1, 1400));
        }
        sim.run_until(SimTime::from_secs(30));
        let w = sim.world();
        assert!(
            w.stats(a).retries + w.stats(b).retries > 0,
            "hidden terminals should have overlapped at least once"
        );
        for id in [a, r, b] {
            assert!(
                w.dcf.audible[id].is_empty(),
                "station {id} still hears a finished transmission"
            );
            assert!(w.dcf.transmitting[id].is_none());
        }
    }

    #[test]
    fn nav_defers_third_station() {
        // With RTS/CTS on, a third station in range must not transmit
        // during the protected exchange; its access is NAV-deferred.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.rts_threshold = 0;
        cfg.seed = 23;
        let mut w = WlanWorld::new(cfg);
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(1),
            Point::new(10.0, 0.0),
            Box::new(NullUpper),
        );
        let c = w.add_station(
            MacAddr::station(2),
            Point::new(5.0, 5.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..10 {
            inject(&mut sim, 1 + i * 2, a, data_frame(0, 1, 1200));
            inject(&mut sim, 1 + i * 2, c, data_frame(2, 1, 1200));
        }
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        // Everyone close together + NAV ⇒ essentially no losses.
        assert_eq!(w.stats(a).tx_completions, 10);
        assert_eq!(w.stats(c).tx_completions, 10);
        assert_eq!(w.stats(b).rx_accepted, 20);
    }

    #[test]
    fn upper_layer_timer_and_tx_result_callbacks() {
        use std::sync::Arc;
        use std::sync::Mutex;

        #[derive(Default)]
        struct Log {
            timers: u32,
            results: Vec<bool>,
        }
        struct App(Arc<Mutex<Log>>);
        impl UpperLayer for App {
            fn on_start(&mut self, ctx: &mut UpperCtx) {
                ctx.set_timer(SimDuration::from_millis(5), 42);
            }
            fn on_timer(&mut self, ctx: &mut UpperCtx, tag: u64) {
                assert_eq!(tag, 42);
                self.0.lock().unwrap().timers += 1;
                let f = Frame::data(
                    DsBits::Ibss,
                    MacAddr::station(1),
                    ctx.addr,
                    MacAddr::random_ibss_bssid(1),
                    SequenceControl::default(),
                    vec![7; 128],
                );
                ctx.send(f);
            }
            fn on_tx_result(&mut self, _ctx: &mut UpperCtx, _f: &Frame, ok: bool) {
                self.0.lock().unwrap().results.push(ok);
            }
        }
        let log = Arc::new(Mutex::new(Log::default()));
        let mut w = WlanWorld::new(MacConfig::new(PhyStandard::Dot11g));
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(App(log.clone())),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.lock().unwrap().timers, 1);
        assert_eq!(log.lock().unwrap().results, vec![true]);
    }

    #[test]
    fn rts_and_fragmentation_combine() {
        // A large MSDU still RTS-protects the burst start, then
        // SIFS-chains the fragments.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.rts_threshold = 100;
        cfg.frag_threshold = 500;
        cfg.seed = 41;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, 0, data_frame(0, 1, 1200));
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 1);
        // RTS + 3 fragments from the sender; CTS + 3 ACKs back.
        assert_eq!(w.stats(0).tx_frames, 4);
        assert_eq!(w.stats(1).tx_frames, 4);
        assert_eq!(w.stats(1).rx_payload_bytes, 1200);
        assert!(w
            .trace
            .happened_before_events(tx_of(FrameKind::Rts), tx_of(FrameKind::Cts)));
        assert!(w
            .trace
            .happened_before_events(tx_of(FrameKind::Cts), tx_of(FrameKind::Data)));
    }

    #[test]
    fn arf_falls_back_on_marginal_link() {
        // At ~72 m the 54 Mbps rung is marginal; ARF must settle lower
        // and keep the link productive.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 43;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(72.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..100 {
            inject(&mut sim, 1 + i * 5, 0, data_frame(0, 1, 1000));
        }
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        assert!(
            w.stats(0).tx_completions >= 95,
            "ARF should keep the marginal link productive: {} done, {} failed",
            w.stats(0).tx_completions,
            w.stats(0).tx_failures
        );
        // The trace shows data transmissions below the top rate.
        let fallback_txs = w.trace.count_events(|e| {
            matches!(
                e,
                TraceEvent::Tx {
                    kind: FrameKind::Data,
                    rate_mbps,
                    ..
                } if *rate_mbps < 54.0
            )
        });
        assert!(fallback_txs > 0, "no fallback rates ever used");
    }

    #[test]
    fn signal_station_crosses_the_backbone() {
        use std::sync::Arc;
        use std::sync::Mutex;

        // Station 0 signals station 1 out-of-band (the DS mechanism).
        struct Sender;
        impl UpperLayer for Sender {
            fn on_start(&mut self, ctx: &mut UpperCtx) {
                ctx.command(Command::SignalStation {
                    station: 1,
                    tag: 99,
                    delay: SimDuration::from_micros(150),
                });
            }
        }
        #[derive(Default)]
        struct Receiver(Arc<Mutex<Vec<(u64, SimTime)>>>);
        impl UpperLayer for Receiver {
            fn on_timer(&mut self, ctx: &mut UpperCtx, tag: u64) {
                self.0.lock().unwrap().push((tag, ctx.now));
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut w = WlanWorld::new(MacConfig::new(PhyStandard::Dot11g));
        w.add_station(MacAddr::station(0), Point::new(0.0, 0.0), Box::new(Sender));
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(Receiver(log.clone())),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(1));
        let got = log.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 99);
        assert_eq!(got[0].1, SimTime::from_micros(150), "wire latency honoured");
    }

    #[test]
    fn same_slot_commitment_collides() {
        // Two stations arming at the same idle edge with CW 0 must both
        // transmit (the CSMA vulnerable window) and collide.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 47;
        cfg.capture = false;
        cfg.cw_min_override = Some(0);
        cfg.cw_max_override = Some(0);
        cfg.retry_limit_short = 1;
        let mut w = WlanWorld::new(cfg);
        let rx = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let a = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(2),
            Point::new(0.0, 5.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        // Same instant, same CW=0: same fire time, guaranteed collision.
        inject(&mut sim, 5, a, data_frame(1, 0, 800));
        inject(&mut sim, 5, b, data_frame(2, 0, 800));
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert!(
            w.stats(rx).rx_errors >= 2,
            "collisions expected: {}",
            w.stats(rx).rx_errors
        );
        // With CW pinned to 0, retries collide again: both MSDUs die.
        assert_eq!(w.stats(a).tx_failures + w.stats(b).tx_failures, 2);
    }

    /// Regression: `complete_attempt` used to hand `on_tx_result` a
    /// frame whose body had been emptied by `mem::take` in
    /// `maybe_start_next` and whose More Fragments bit was forced to
    /// `total_frags > 1` — upper layers saw a zero-length MSDU flagged
    /// as fragmented. The callback frame must carry the original body
    /// with MF clear.
    #[test]
    fn tx_result_preserves_body_and_clears_mf_bit() {
        use std::sync::Arc;
        use std::sync::Mutex;

        #[derive(Default)]
        struct Seen(Arc<Mutex<Vec<(usize, bool, bool)>>>);
        impl UpperLayer for Seen {
            fn on_tx_result(&mut self, _ctx: &mut UpperCtx, f: &Frame, ok: bool) {
                self.0
                    .lock()
                    .unwrap()
                    .push((f.body.len(), f.fc.more_fragments, ok));
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.frag_threshold = 400; // 1000 B -> 3 fragments.
        cfg.seed = 3;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(Seen(seen.clone())),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        inject(&mut sim, 1, 0, data_frame(0, 1, 1000));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(1000, false, true)],
            "callback frame must carry the full original body, MF clear"
        );
    }

    /// Regression: `enqueue` used to drop an MSDU on queue overflow
    /// without ever invoking `on_tx_result(..., false)`, so upper-layer
    /// state machines waited forever on a confirmation that could not
    /// arrive. Every queued MSDU must get exactly one outcome callback.
    #[test]
    fn queue_overflow_reports_failure_to_upper_layer() {
        use std::sync::Arc;
        use std::sync::Mutex;

        #[derive(Default)]
        struct Outcomes(Arc<Mutex<Vec<bool>>>);
        impl UpperLayer for Outcomes {
            fn on_tx_result(&mut self, _ctx: &mut UpperCtx, _f: &Frame, ok: bool) {
                self.0.lock().unwrap().push(ok);
            }
        }
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.queue_limit = 4;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(Outcomes(outcomes.clone())),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        // All at the same instant: 1 goes in-flight, 4 queue, 5 drop.
        for _ in 0..10 {
            inject(&mut sim, 1, 0, data_frame(0, 1, 8000));
        }
        sim.run_until(SimTime::from_secs(2));
        let w = sim.world();
        let got = outcomes.lock().unwrap();
        assert_eq!(
            got.len(),
            10,
            "every queued MSDU needs exactly one outcome callback"
        );
        let failures = got.iter().filter(|ok| !**ok).count() as u64;
        assert_eq!(failures, w.stats(0).queue_drops);
        assert!(failures >= 5, "failures = {failures}");
        // The drop is also visible as a Warn trace event.
        assert_eq!(
            w.trace.count_events(|e| matches!(
                e,
                TraceEvent::Drop {
                    reason: DropReason::QueueFull,
                    ..
                }
            )) as u64,
            w.stats(0).queue_drops
        );
    }

    #[test]
    fn saturation_throughput_in_plausible_band() {
        // One saturated 802.11g sender, 1500-B MSDUs: theory (no RTS,
        // ideal channel) gives ~25-30 Mbps MAC throughput at 54 Mbps PHY.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 31;
        let mut w = WlanWorld::new(cfg);
        let a = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..2000u64 {
            // Keep the queue fed.
            inject_at(
                &mut sim,
                SimTime::from_micros(i * 400),
                a,
                data_frame(0, 1, 1500),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let bytes = sim.world().stats(b).rx_payload_bytes;
        let elapsed = 1.0;
        let mbps = bytes as f64 * 8.0 / elapsed / 1e6;
        assert!(
            (15.0..40.0).contains(&mbps),
            "802.11g saturation throughput {mbps} Mbps outside plausible band"
        );
    }

    // ----- EDCA / A-MPDU -----

    fn qos_world(n: usize, spacing_m: f64) -> Simulation<WlanWorld> {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 7;
        cfg.edca = true;
        let mut w = WlanWorld::new(cfg);
        for i in 0..n {
            w.add_station(
                MacAddr::station(i as u32),
                Point::new(spacing_m * i as f64, 0.0),
                Box::new(NullUpper),
            );
        }
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        sim
    }

    fn qinject(
        sim: &mut Simulation<WlanWorld>,
        at_us: u64,
        station: StationId,
        frame: Frame,
        ac: AccessCategory,
    ) {
        qos_inject_at(sim, SimTime::from_micros(at_us), station, frame, ac);
    }

    #[test]
    fn edca_single_frame_rides_qos_data_and_block_ack() {
        let mut sim = qos_world(2, 10.0);
        qinject(
            &mut sim,
            1_000,
            0,
            data_frame(0, 1, 500),
            AccessCategory::Be,
        );
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 1);
        assert_eq!(w.stats(0).tx_failures, 0);
        assert_eq!(w.stats(1).rx_accepted, 1);
        assert_eq!(w.stats(1).rx_payload_bytes, 500);
        assert_eq!(w.trace.count_events(tx_of(FrameKind::QosData)), 1);
        assert_eq!(w.trace.count_events(tx_of(FrameKind::BlockAck)), 1);
        assert_eq!(w.trace.count_events(tx_of(FrameKind::Ack)), 0);
        assert!(w
            .trace
            .happened_before_events(tx_of(FrameKind::QosData), tx_of(FrameKind::BlockAck)));
    }

    #[test]
    fn ampdu_aggregates_a_backlog_into_few_ppdus() {
        let mut sim = qos_world(2, 10.0);
        // 32 MSDUs land before the first access completes: with
        // ampdu_max_mpdus = 16 they must ride at most a handful of
        // PPDUs, not 32.
        for i in 0..32u64 {
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 1, 300),
                AccessCategory::Be,
            );
        }
        sim.run_until(SimTime::from_secs(2));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 32);
        assert_eq!(w.stats(1).rx_accepted, 32);
        let ppdus = w.trace.count_events(tx_of(FrameKind::QosData));
        assert!(
            (2..=6).contains(&ppdus),
            "32 MSDUs should aggregate into a few PPDUs, saw {ppdus}"
        );
        // Conservation: every A-MPDU got a matching BA.
        assert_eq!(
            w.trace.count_events(tx_of(FrameKind::BlockAck)),
            ppdus,
            "one BA per aggregate"
        );
    }

    #[test]
    fn ampdu_partial_loss_retries_only_missing_mpdus() {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 11;
        cfg.edca = true;
        cfg.ampdu_per_mpdu_loss = 0.3;
        let mut w = WlanWorld::new(cfg);
        for i in 0..2 {
            w.add_station(
                MacAddr::station(i),
                Point::new(10.0 * i as f64, 0.0),
                Box::new(NullUpper),
            );
        }
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..40u64 {
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 1, 300),
                AccessCategory::Vi,
            );
        }
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        // 30% per-MPDU loss is far below the retry budget: everything
        // completes, but only after per-MPDU retries.
        assert_eq!(w.stats(0).tx_completions, 40);
        assert_eq!(w.stats(0).tx_failures, 0);
        assert!(w.stats(0).retries > 0, "partial BAs must trigger retries");
        assert_eq!(w.stats(1).rx_accepted, 40);
        assert!(w.stats(1).rx_errors > 0);
        // No MPDU resolved twice: BlockAckRx acked-bit total == 40.
        let mut acked = 0u32;
        for (_, e) in w.trace.events() {
            if let TraceEvent::BlockAckRx { bitmap, .. } = e {
                acked += bitmap.count_ones();
            }
        }
        assert_eq!(acked, 40, "each MPDU acked exactly once across BAs");
    }

    #[test]
    fn ampdu_retry_exhaustion_drops_each_mpdu_once() {
        let mut sim = qos_world(2, 50_000.0); // peer far out of range
        for i in 0..8u64 {
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 1, 200),
                AccessCategory::Be,
            );
        }
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 0);
        assert_eq!(w.stats(0).tx_failures, 8);
        let drops = w
            .trace
            .count_events(|e| matches!(e, TraceEvent::MpduDrop { .. }));
        assert_eq!(drops, 8, "one MpduDrop per exhausted MPDU");
        assert_eq!(w.pending_msdus(0), 0);
    }

    #[test]
    fn qos_broadcast_completes_without_block_ack() {
        let mut sim = qos_world(3, 10.0);
        let f = Frame::data(
            DsBits::Ibss,
            MacAddr::BROADCAST,
            MacAddr::station(0),
            MacAddr::random_ibss_bssid(1),
            SequenceControl::default(),
            vec![1; 100],
        );
        qinject(&mut sim, 1_000, 0, f, AccessCategory::Vo);
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 1);
        assert_eq!(w.stats(1).rx_accepted, 1);
        assert_eq!(w.stats(2).rx_accepted, 1);
        assert_eq!(w.trace.count_events(tx_of(FrameKind::BlockAck)), 0);
    }

    #[test]
    fn edca_vo_median_beats_bk_under_saturation() {
        let mut sim = qos_world(2, 10.0);
        for i in 0..60u64 {
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 1, 400),
                AccessCategory::Vo,
            );
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 1, 400),
                AccessCategory::Bk,
            );
        }
        sim.run_until(SimTime::from_secs(10));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 120);
        let vo = w.ac_delay_quantile(AccessCategory::Vo, 0.5).unwrap();
        let bk = w.ac_delay_quantile(AccessCategory::Bk, 0.5).unwrap();
        assert!(
            vo < bk,
            "AC_VO p50 ({vo} µs) must beat AC_BK p50 ({bk} µs) under saturation"
        );
        // Internal collisions surfaced as EDCA backoff redraws.
        assert!(
            w.trace
                .count_events(|e| matches!(e, TraceEvent::EdcaBackoff { .. }))
                > 0
        );
    }

    #[test]
    fn aifsn_swap_failpoint_inverts_priority() {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 7;
        cfg.edca = true;
        cfg.failpoint_aifsn_swap = true;
        let mut w = WlanWorld::new(cfg);
        for i in 0..2 {
            w.add_station(
                MacAddr::station(i),
                Point::new(10.0 * i as f64, 0.0),
                Box::new(NullUpper),
            );
        }
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..60u64 {
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 1, 400),
                AccessCategory::Vo,
            );
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 1, 400),
                AccessCategory::Bk,
            );
        }
        sim.run_until(SimTime::from_secs(10));
        let w = sim.world();
        let vo = w.ac_delay_quantile(AccessCategory::Vo, 0.5).unwrap();
        let bk = w.ac_delay_quantile(AccessCategory::Bk, 0.5).unwrap();
        assert!(
            bk < vo,
            "with swapped AIFSN sets BK ({bk} µs) must beat VO ({vo} µs)"
        );
    }

    #[test]
    fn qos_ampdu_to_distinct_receivers_does_not_merge() {
        let mut sim = qos_world(3, 10.0);
        // Alternating receivers: the same-receiver head-run rule must
        // split the backlog instead of aggregating across peers.
        for i in 0..10u64 {
            let to = 1 + (i % 2) as u32;
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, to, 300),
                AccessCategory::Be,
            );
        }
        sim.run_until(SimTime::from_secs(2));
        let w = sim.world();
        assert_eq!(w.stats(0).tx_completions, 10);
        assert_eq!(w.stats(1).rx_accepted, 5);
        assert_eq!(w.stats(2).rx_accepted, 5);
        // Alternation forces 10 singleton aggregates.
        assert_eq!(w.trace.count_events(tx_of(FrameKind::QosData)), 10);
    }

    #[test]
    fn edca_and_legacy_stations_interoperate() {
        // A QoS sender talking to a legacy receiver: the BA response
        // path uses the plain control-frame scheduler, so mixed worlds
        // must still converse.
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = 5;
        cfg.edca = true;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 0..5u64 {
            qinject(
                &mut sim,
                1_000 + i,
                0,
                data_frame(0, 0, 100),
                AccessCategory::Vi,
            );
        }
        sim.run_until(SimTime::from_secs(1));
        // Self-addressed traffic never completes, but must not wedge
        // or panic the EDCA machinery either.
        let _ = sim.world().stats(0);
    }

    #[test]
    fn qos_off_worlds_have_no_edca_state() {
        let sim = world(2, 10.0);
        assert_eq!(sim.world().station_airtime_us(0), 0);
        assert!(sim
            .world()
            .ac_delay_quantile(AccessCategory::Vo, 0.5)
            .is_none());
    }
}
