//! Satellite links (§2.4, Fig. 1.8).
//!
//! "Each satellite is equipped with various transponders consisting of
//! a transceiver and an antenna. The incoming signal is amplified and
//! then rebroadcast on a different frequency." The model covers GEO
//! geometry (slant range and the famous quarter-second bent-pipe
//! round trip), transponder frequency translation, a Ku-band link
//! budget, and DVB-S2-class throughput (the comparison table's
//! 60 Mbps).

use wn_phy::propagation::{FreeSpace, PathLoss};
use wn_phy::units::{thermal_noise, DataRate, Db, Dbm, Hertz};

/// Speed of light, m/s.
pub const C: f64 = 299_792_458.0;

/// GEO altitude above the equator, metres.
pub const GEO_ALTITUDE_M: f64 = 35_786_000.0;

/// Earth radius, metres.
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A geostationary satellite seen from a ground station at the given
/// elevation angle.
#[derive(Clone, Copy, Debug)]
pub struct GeoSatellite {
    /// Ground-station elevation angle toward the satellite, degrees.
    pub elevation_deg: f64,
}

impl GeoSatellite {
    /// Slant range from ground station to satellite, metres (law of
    /// cosines on the Earth-centre triangle).
    pub fn slant_range_m(&self) -> f64 {
        let e = self.elevation_deg.to_radians();
        let r = EARTH_RADIUS_M;
        let h = GEO_ALTITUDE_M;
        // d = sqrt(r² sin²e + h² + 2rh) − r sin e.
        ((r * e.sin()).powi(2) + h * h + 2.0 * r * h).sqrt() - r * e.sin()
    }

    /// One-way ground→satellite propagation delay, seconds.
    pub fn one_way_delay_s(&self) -> f64 {
        self.slant_range_m() / C
    }

    /// Bent-pipe end-to-end delay (up + down), seconds.
    pub fn bent_pipe_delay_s(&self, other_ground: &GeoSatellite) -> f64 {
        self.one_way_delay_s() + other_ground.one_way_delay_s()
    }

    /// Round-trip time for a request/response over the bent pipe.
    pub fn round_trip_s(&self, other_ground: &GeoSatellite) -> f64 {
        2.0 * self.bent_pipe_delay_s(other_ground)
    }
}

/// A bent-pipe transponder: receives on the uplink band, amplifies,
/// "rebroadcast on a different frequency".
#[derive(Clone, Copy, Debug)]
pub struct Transponder {
    /// Uplink carrier (e.g. 14 GHz Ku).
    pub uplink: Hertz,
    /// Downlink carrier (e.g. 12 GHz Ku (§2.4: "rebroadcast on a
    /// different frequency")).
    pub downlink: Hertz,
    /// Usable bandwidth (classically 36 MHz).
    pub bandwidth: Hertz,
    /// Amplifier gain.
    pub gain: Db,
    /// Saturated output power.
    pub saturated_output: Dbm,
}

impl Transponder {
    /// A classic Ku-band 36 MHz transponder.
    pub fn ku_band() -> Self {
        Transponder {
            uplink: Hertz::from_ghz(14.0),
            downlink: Hertz::from_ghz(12.0),
            bandwidth: Hertz::from_mhz(36.0),
            // End-to-end receiver + HPA chain gain; real transponders
            // run 100–150 dB so typical uplinks drive near saturation.
            gain: Db(145.0),
            saturated_output: Dbm(50.0), // 100 W TWTA.
        }
    }

    /// Output power for a given input, clamped at saturation.
    pub fn relay(&self, input: Dbm) -> Dbm {
        let amplified = input + self.gain;
        if amplified.value() > self.saturated_output.value() {
            self.saturated_output
        } else {
            amplified
        }
    }

    /// Frequency translation: the downlink is a different carrier.
    pub fn translates_frequency(&self) -> bool {
        (self.uplink.hz() - self.downlink.hz()).abs() > 1e6
    }
}

/// A complete two-hop link budget through a transponder.
#[derive(Clone, Copy, Debug)]
pub struct SatLink {
    /// The satellite geometry (uplink ground station).
    pub up_geom: GeoSatellite,
    /// The downlink ground-station geometry.
    pub down_geom: GeoSatellite,
    /// The transponder.
    pub transponder: Transponder,
    /// Uplink EIRP (big dish + HPA), dBm.
    pub uplink_eirp: Dbm,
    /// Ground receive antenna gain (dish), dB.
    pub rx_dish_gain: Db,
    /// Satellite antenna gain (each direction), dB.
    pub sat_antenna_gain: Db,
    /// Receiver noise figure.
    pub noise_figure: Db,
}

impl SatLink {
    /// A typical VSAT-class Ku link.
    pub fn typical() -> Self {
        SatLink {
            up_geom: GeoSatellite {
                elevation_deg: 35.0,
            },
            down_geom: GeoSatellite {
                elevation_deg: 35.0,
            },
            transponder: Transponder::ku_band(),
            uplink_eirp: Dbm(80.0), // 50 dBW hub.
            rx_dish_gain: Db(48.0), // ~2.4 m dish at 12 GHz.
            sat_antenna_gain: Db(30.0),
            noise_figure: Db(2.0),
        }
    }

    /// Downlink SNR at the receiving ground station.
    pub fn downlink_snr(&self) -> Db {
        let up_loss = FreeSpace.loss(self.up_geom.slant_range_m(), self.transponder.uplink);
        let at_satellite = self.uplink_eirp + self.sat_antenna_gain - up_loss;
        let retransmit = self.transponder.relay(at_satellite) + self.sat_antenna_gain;
        let down_loss = FreeSpace.loss(self.down_geom.slant_range_m(), self.transponder.downlink);
        let at_ground = retransmit - down_loss + self.rx_dish_gain;
        let noise = thermal_noise(self.transponder.bandwidth, self.noise_figure);
        at_ground - noise
    }

    /// DVB-S2-style achievable rate: spectral efficiency by SNR, capped
    /// at 32APSK-ish 1.9 b/s/Hz usable on consumer links — yielding the
    /// comparison table's ~60 Mbps on a 36 MHz transponder.
    pub fn achievable_rate(&self) -> DataRate {
        let snr = self.downlink_snr().value();
        let eff = if snr >= 16.0 {
            1.9
        } else if snr >= 12.0 {
            1.5
        } else if snr >= 8.0 {
            1.0
        } else if snr >= 4.0 {
            0.6
        } else if snr >= 1.0 {
            0.3
        } else {
            0.0
        };
        DataRate(eff * self.transponder.bandwidth.hz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slant_range_bounds() {
        // Directly underneath (90° elevation) the range equals altitude.
        let overhead = GeoSatellite {
            elevation_deg: 90.0,
        };
        assert!((overhead.slant_range_m() - GEO_ALTITUDE_M).abs() < 1_000.0);
        // At the horizon it stretches to ~41 700 km.
        let horizon = GeoSatellite { elevation_deg: 0.0 };
        assert!((horizon.slant_range_m() - 41_679_000.0).abs() < 50_000.0);
        assert!(horizon.slant_range_m() > overhead.slant_range_m());
    }

    #[test]
    fn famous_quarter_second_rtt() {
        // Two ground stations at moderate elevation: bent-pipe one-way
        // ≈ 250 ms, RTT ≈ 500 ms; minimum (both overhead) ≈ 239 ms.
        let a = GeoSatellite {
            elevation_deg: 90.0,
        };
        let b = GeoSatellite {
            elevation_deg: 90.0,
        };
        let one_way = a.bent_pipe_delay_s(&b);
        assert!((one_way - 0.2387).abs() < 0.002, "{one_way}");
        let rtt = a.round_trip_s(&b);
        assert!((0.47..0.52).contains(&rtt), "{rtt}");
    }

    #[test]
    fn lower_elevation_longer_delay() {
        let hi = GeoSatellite {
            elevation_deg: 80.0,
        };
        let lo = GeoSatellite {
            elevation_deg: 10.0,
        };
        assert!(lo.one_way_delay_s() > hi.one_way_delay_s());
    }

    #[test]
    fn transponder_translates_and_saturates() {
        let t = Transponder::ku_band();
        assert!(t.translates_frequency());
        // Small signal: linear gain.
        let out = t.relay(Dbm(-120.0));
        assert!((out.value() - 25.0).abs() < 1e-9);
        // Hot signal: clamped at saturation.
        let sat = t.relay(Dbm(0.0));
        assert_eq!(sat.value(), 50.0);
    }

    #[test]
    fn typical_link_hits_60_mbps() {
        let l = SatLink::typical();
        let snr = l.downlink_snr().value();
        assert!(
            snr > 16.0,
            "typical Ku link should close with margin: {snr} dB"
        );
        let rate = l.achievable_rate();
        assert!((rate.mbps() - 68.4).abs() < 1.0, "{}", rate.mbps());
        assert!(
            rate.mbps() >= 60.0,
            "comparison-table 60 Mbps: {}",
            rate.mbps()
        );
    }

    #[test]
    fn small_dish_degrades_rate() {
        let mut l = SatLink::typical();
        l.rx_dish_gain = Db(20.0); // A far smaller dish.
        let small = l.achievable_rate().mbps();
        let big = SatLink::typical().achievable_rate().mbps();
        assert!(small < big, "small dish {small} vs {big}");
    }

    #[test]
    fn satellite_vs_cellular_latency_shape() {
        // Fig. 1.8's implicit trade-off: satellite covers remote areas
        // but at ~1000× the propagation delay of a 4G cell.
        let sat = GeoSatellite {
            elevation_deg: 35.0,
        };
        let sat_delay = sat.bent_pipe_delay_s(&sat);
        let cell_delay = 3_000.0 / C; // 3 km cell radius.
        assert!(sat_delay / cell_delay > 10_000.0);
    }
}
