//! Warehouse asset tracking (§7: "Mobile applications, such as asset
//! tracking"): fixed asset tags report periodic telemetry over the
//! WLAN while a forklift-mounted station wanders the floor under
//! random-waypoint mobility, roaming between the two APs that cover
//! the warehouse.
//!
//! Run with: `cargo run --example warehouse_tracking`

use wireless_networks::core::traffic::{telemetry, Flow};
use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::sim::{boot, MacConfig, NullUpper, WlanWorld};
use wireless_networks::net80211::builder::{schedule_random_waypoint, send_app_data, EssBuilder};
use wireless_networks::net80211::ssid::Ssid;
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::sim::{SimDuration, SimTime, Simulation};

fn main() {
    println!("== warehouse asset tracking (§7 M2M) ==\n");

    // --- Part 1: raw-MAC telemetry fabric — 6 asset tags report to a
    // gateway every 2 s with jitter.
    let mut cfg = MacConfig::new(PhyStandard::Dot11b); // Cheap 2.4 GHz radios.
    cfg.seed = 321;
    let mut w = WlanWorld::new(cfg);
    let gateway = w.add_station(
        MacAddr::station(0),
        Point::new(0.0, 0.0),
        Box::new(NullUpper),
    );
    let mut tags = Vec::new();
    for i in 1..=6u32 {
        let a = i as f64 / 6.0 * std::f64::consts::TAU;
        tags.push(w.add_station(
            MacAddr::station(i),
            Point::new(30.0 * a.cos(), 30.0 * a.sin()),
            Box::new(NullUpper),
        ));
    }
    let mut sim = Simulation::new(w);
    boot(&mut sim);
    let mut scheduled = 0;
    for &tag in &tags {
        let flow = Flow::direct(sim.world(), tag, gateway, 48);
        scheduled += telemetry(
            &mut sim,
            &flow,
            SimDuration::from_secs(2),
            SimDuration::from_millis(300),
            tag as u64,
            SimTime::ZERO,
            SimTime::from_secs(60),
        );
    }
    sim.run_until(SimTime::from_secs(61));
    let got = sim.world().stats(gateway).rx_accepted;
    println!("telemetry: {got}/{scheduled} tag reports reached the gateway over 802.11b");
    assert_eq!(got, scheduled);

    // --- Part 2: the forklift roams the warehouse ESS.
    let ssid = Ssid::new("Warehouse").expect("valid");
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = 654;
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(0.0, 0.0), 1)
        .ap(Point::new(180.0, 0.0), 6)
        .sta(Point::new(20.0, 5.0)) // The forklift terminal.
        .sta(Point::new(170.0, -5.0)) // The dispatch console near AP1.
        .build();
    ess.sim.run_until(SimTime::from_secs(2));
    let forklift = ess.sta_ids[0];
    schedule_random_waypoint(
        &mut ess.sim,
        forklift,
        Point::new(0.0, -30.0),
        Point::new(180.0, 30.0),
        2.0,
        6.0,
        2024,
        SimTime::from_secs(2),
        SimTime::from_secs(120),
    );
    // Dispatch pings the forklift once a second throughout.
    let dispatch = ess.sta_ids[1];
    let dsh = ess.sta_shared[1].clone();
    let pings = 115u64;
    for k in 0..pings {
        send_app_data(
            &mut ess.sim,
            dispatch,
            &dsh,
            MacAddr::station(0),
            format!("pick-order-{k}").into_bytes(),
            SimTime::from_millis(2500 + k * 1000),
        );
    }
    ess.sim.run_until(SimTime::from_secs(125));
    let sh = ess.sta_shared[0].lock().expect("shared state lock");
    println!(
        "forklift: {} pick orders of {} received while wandering; association history:",
        sh.delivered.len(),
        pings
    );
    for (t, bssid) in &sh.assoc_events {
        println!("  {t} -> {bssid}");
    }
    let ratio = sh.delivered.len() as f64 / pings as f64;
    println!("delivery through mobility + roaming: {:.0}%", ratio * 100.0);
    assert!(
        ratio > 0.5,
        "the warehouse network should keep the forklift mostly reachable"
    );
}
