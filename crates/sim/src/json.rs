//! Minimal hand-rolled JSON emission helpers.
//!
//! The workspace is std-only, so the JSONL exporters in [`crate::trace`]
//! and [`crate::metrics`] build their output with these few functions
//! instead of a serialisation crate. Output is deterministic: fixed key
//! order is the caller's job; this module guarantees stable escaping and
//! number formatting.

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number.
///
/// Uses Rust's shortest round-trip `Display` for `f64`, which is
/// deterministic across platforms. Non-finite values (not representable
/// in JSON) are emitted as `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `,"name":"value"` with escaping.
pub(crate) fn push_str_field(out: &mut String, name: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    push_str(out, value);
}

/// Appends `,"name":value` for an unsigned integer.
pub(crate) fn push_u64_field(out: &mut String, name: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Appends `,"name":value` for a float (see [`push_f64`]).
pub(crate) fn push_f64_field(out: &mut String, name: &str, value: f64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    push_f64(out, value);
}

/// Appends `,"name":true|false`.
pub(crate) fn push_bool_field(out: &mut String, name: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_are_shortest_round_trip_and_finite_only() {
        let mut out = String::new();
        push_f64(&mut out, 54.0);
        out.push(' ');
        push_f64(&mut out, 0.1);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "54 0.1 null");
    }
}
