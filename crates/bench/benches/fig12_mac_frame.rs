//! FIG-1.11/1.12 — regenerates the MAC frame anatomy/overhead data and
//! times the bit-exact codec (serialise + FCS + parse).

use criterion::{black_box, Criterion};
use wn_bench::{criterion_fast, print_figure, print_report};
use wn_core::scenarios::fig_1_12_frame_overhead;
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl};

fn bench(c: &mut Criterion) {
    let (fig, report) = fig_1_12_frame_overhead();
    print_figure(&fig);
    print_report(&report);

    let frame = Frame::data(
        DsBits::ToAp,
        MacAddr::station(2),
        MacAddr::station(1),
        MacAddr::access_point(0),
        SequenceControl {
            fragment: 0,
            sequence: 1234,
        },
        vec![0xAB; 1500],
    );
    c.bench_function("fig12/serialize_1500B", |b| {
        b.iter(|| black_box(frame.to_bytes()))
    });
    let wire = frame.to_bytes();
    c.bench_function("fig12/parse_and_verify_fcs_1500B", |b| {
        b.iter(|| black_box(Frame::from_bytes(&wire).expect("valid frame")))
    });
    c.bench_function("fig12/roundtrip_ack", |b| {
        let ack = Frame::ack(MacAddr::station(7));
        b.iter(|| black_box(Frame::from_bytes(&ack.to_bytes()).expect("valid ack")))
    });
}

fn main() {
    let mut c = criterion_fast();
    bench(&mut c);
    c.final_summary();
}
