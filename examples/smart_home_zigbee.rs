//! Smart home (Fig. 1.4 + §7): a ZigBee sensor mesh reports to a hub,
//! a Bluetooth piconet streams audio, and an IrDA link beams a photo —
//! the three WPAN technologies side by side, as §2.1 positions them.
//!
//! Run with: `cargo run --example smart_home_zigbee`

use wireless_networks::phy::geom::Point;
use wireless_networks::sim::{SimTime, Simulation};
use wireless_networks::wpan::bluetooth::{boot as bt_boot, BtNetwork, DeviceClass};
use wireless_networks::wpan::irda::{negotiate, transfer_time_s, IrPort};
use wireless_networks::wpan::zigbee::{NodeRole, Topology, ZigbeeEvent, ZigbeeNetwork};

fn main() {
    println!("== smart home WPAN tour (§2.1) ==\n");

    // --- ZigBee: "reliable wirelessly networked monitoring and control".
    // A mesh across the house: hub in the hall, sensors in every room.
    let mut net = ZigbeeNetwork::new(Topology::Mesh, 99);
    net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd)
        .expect("hub");
    let rooms = [
        ("kitchen", Point::new(8.0, 0.0), NodeRole::Ffd),
        ("living room", Point::new(8.0, 8.0), NodeRole::Ffd),
        ("bedroom", Point::new(0.0, 8.0), NodeRole::Ffd),
        ("garage", Point::new(16.0, 0.0), NodeRole::Ffd),
        ("attic light switch", Point::new(16.0, 8.0), NodeRole::Rfd),
    ];
    for (name, pos, role) in rooms {
        let id = net.add_node(pos, role).expect("node");
        println!("zigbee node {id}: {name} ({role:?})");
    }
    let mut sim = Simulation::new(net);
    // Every sensor reports temperature every 500 ms for 20 s.
    for round in 0..40u64 {
        for src in 1..=5usize {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(round * 500 + src as u64 * 7),
                ZigbeeEvent::Send {
                    src,
                    dst: 0,
                    bytes: 24,
                },
            );
        }
    }
    sim.run_until(SimTime::from_secs(25));
    let z = sim.into_world();
    println!(
        "zigbee: {}/{} reports delivered (mean {:.1} hops, {:.1} ms latency)\n",
        z.stats.delivered,
        z.offered(),
        z.stats.mean_hops(),
        z.stats.mean_latency_s() * 1e3
    );
    assert!(z.stats.delivery_ratio(z.offered()) > 0.95);

    // --- Bluetooth: "cordless mouse, keyboard, and hands-free headset".
    let mut bt = BtNetwork::new();
    let phone = bt.add_device(Point::new(4.0, 4.0), DeviceClass::Class2);
    let piconet = bt.form_piconet(phone).expect("fresh master");
    let headset = bt.add_device(Point::new(4.5, 4.0), DeviceClass::Class2);
    let speaker = bt.add_device(Point::new(7.0, 4.0), DeviceClass::Class2);
    bt.join(piconet, headset).expect("in range");
    bt.join(piconet, speaker).expect("in range");
    // Stream 10 seconds of 320 kbps audio to each sink.
    bt.send(phone, headset, 400_000);
    bt.send(phone, speaker, 400_000);
    let mut sim = Simulation::new(bt);
    bt_boot(&mut sim);
    sim.run_until(SimTime::from_secs(10));
    for (name, id) in [("headset", headset), ("speaker", speaker)] {
        let kbps = sim.world().delivered_bytes(id) as f64 * 8.0 / 10.0 / 1e3;
        println!("bluetooth {name}: {kbps:.0} kbps sustained");
        assert!(kbps > 300.0, "audio stream must fit in the piconet share");
    }

    // --- IrDA: "point-to-point links … for simple data transfers".
    let camera = IrPort::aimed_at(Point::new(1.0, 1.0), Point::new(1.3, 1.0));
    let printer = Point::new(1.3, 1.0);
    let rate = negotiate(&camera, printer).expect("aligned and close");
    let photo_bytes = 3_000_000;
    println!(
        "\nirda: camera->printer negotiated {rate}, a {:.1}-MB photo takes {:.1} s",
        photo_bytes as f64 / 1e6,
        transfer_time_s(rate, photo_bytes)
    );

    // Misaim the camera and the link is gone — the <30° cone at work.
    let misaimed = IrPort::aimed_at(Point::new(1.0, 1.0), Point::new(1.0, 2.0));
    println!(
        "irda misaimed: {:?}",
        negotiate(&misaimed, printer).unwrap_err()
    );
}
