//! perfsuite — times the full experiment campaign serial vs parallel
//! and records throughput to `BENCH_campaign.json`.
//!
//! Run with: `cargo run --release -p wn-bench --bin perfsuite`
//!
//! The serial pass runs the campaign on one worker; the parallel pass
//! uses `--threads N` (default: detected parallelism / `WN_THREADS`).
//! Both passes produce byte-identical reports — the suite asserts this
//! — so the speedup is measured on genuinely equivalent work. Events
//! per second comes from the simulation kernel's global processed-event
//! counter, not wall-clock guesswork.
//!
//! A third pass re-runs the parallel campaign with the observability
//! kill switch off ([`wn_sim::set_observability`]) to measure what the
//! typed trace/metrics layer costs; figures never read the trace, so
//! this pass must also render byte-identically.

use std::time::Instant;

use wn_core::runner;
use wn_sim::{global_events_processed, set_observability, worker_count};

struct Pass {
    threads: usize,
    wall_s: f64,
    events: u64,
    markdown: String,
}

fn run_pass(threads: usize) -> Pass {
    let ev0 = global_events_processed();
    let t0 = Instant::now();
    let markdown = runner::campaign_markdown(threads);
    let wall_s = t0.elapsed().as_secs_f64();
    Pass {
        threads,
        wall_s,
        events: global_events_processed() - ev0,
        markdown,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parallel_threads: Option<usize> = None;
    let mut out_path = String::from("BENCH_campaign.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                parallel_threads = args.get(i).and_then(|v| v.parse().ok()).filter(|&n| n >= 1);
                if parallel_threads.is_none() {
                    eprintln!("--threads needs a count >= 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag '{other}' (supported: --threads N, --out PATH)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let parallel_threads = parallel_threads.unwrap_or_else(worker_count).max(1);

    eprintln!("perfsuite: serial pass (1 thread)…");
    let serial = run_pass(1);
    eprintln!(
        "perfsuite: serial {:.2} s, {} events ({:.0} ev/s)",
        serial.wall_s,
        serial.events,
        serial.events as f64 / serial.wall_s
    );
    eprintln!("perfsuite: parallel pass ({parallel_threads} threads)…");
    let parallel = run_pass(parallel_threads);
    eprintln!(
        "perfsuite: parallel {:.2} s, {} events ({:.0} ev/s)",
        parallel.wall_s,
        parallel.events,
        parallel.events as f64 / parallel.wall_s
    );

    assert_eq!(
        serial.markdown, parallel.markdown,
        "campaign output must be byte-identical across thread counts"
    );
    assert_eq!(
        serial.events, parallel.events,
        "both passes must process the same simulated events"
    );

    eprintln!("perfsuite: tracing-off pass ({parallel_threads} threads)…");
    set_observability(false);
    let untraced = run_pass(parallel_threads);
    set_observability(true);
    eprintln!(
        "perfsuite: tracing-off {:.2} s, {} events ({:.0} ev/s)",
        untraced.wall_s,
        untraced.events,
        untraced.events as f64 / untraced.wall_s
    );
    assert_eq!(
        parallel.markdown, untraced.markdown,
        "figures must not depend on the trace (kill switch changed the output)"
    );
    // Overhead of the observability layer: >0 means tracing costs time.
    let tracing_overhead = parallel.wall_s / untraced.wall_s - 1.0;

    let speedup = serial.wall_s / parallel.wall_s;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"campaign\": \"EXPERIMENTS.md full regeneration\",\n  \"host_cores\": {cores},\n  \"identical_output\": true,\n  \"serial\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"parallel\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"tracing_off\": {{\n    \"threads\": {},\n    \"wall_s\": {:.3},\n    \"events\": {},\n    \"events_per_s\": {:.0}\n  }},\n  \"tracing_overhead\": {:.3},\n  \"speedup\": {:.2}\n}}\n",
        serial.threads,
        serial.wall_s,
        serial.events,
        serial.events as f64 / serial.wall_s,
        parallel.threads,
        parallel.wall_s,
        parallel.events,
        parallel.events as f64 / parallel.wall_s,
        untraced.threads,
        untraced.wall_s,
        untraced.events,
        untraced.events as f64 / untraced.wall_s,
        tracing_overhead,
        speedup
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perfsuite: cannot write '{out_path}': {e}");
        std::process::exit(2);
    }
    eprintln!("perfsuite: speedup {speedup:.2}x on {cores} core(s) -> {out_path}");
    print!("{json}");
}
