//! Neighbor-cache equivalence properties (DESIGN.md §13): the pairwise
//! rx-power cache must stay coherent through arbitrary mobility, and
//! the cached hot path must be trace- and metrics-identical to the
//! direct O(n) propagation fan-out it replaces.

use wireless_networks::check::check_seed_opts;
use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::frame::{DsBits, Frame, SequenceControl};
use wireless_networks::mac80211::sim::{
    boot, inject_at, MacConfig, MacEvent, NullUpper, WlanWorld,
};
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::sim::{Rng, SchedulerKind, SimTime, Simulation};

fn data_to_sink(src: usize) -> Frame {
    Frame::data(
        DsBits::Ibss,
        MacAddr::station(0),
        MacAddr::station(src as u32),
        MacAddr::random_ibss_bssid(1),
        SequenceControl::default(),
        vec![0x5A; 600],
    )
}

/// After any seeded sequence of `SetPosition` teleports — landing
/// before, between and inside transmissions — every cached (src, dst)
/// rx power and every audible-neighbor list must equal a fresh
/// link-budget evaluation. The invalidation protocol (moved station's
/// row rebuilt, its column patched through everyone else's rows) has
/// no stale corner.
#[test]
fn cache_stays_coherent_under_random_mobility() {
    for seed in 0..12u64 {
        let mut rng = Rng::new(0xC0FFEE ^ seed);
        let n = 4 + rng.below(9) as usize;
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        let mut world = WlanWorld::new(cfg);
        let pos: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.f64_range(-60.0, 60.0), rng.f64_range(-60.0, 60.0)))
            .collect();
        world.add_stations(n, |i| pos[i], |_| Box::new(NullUpper));
        assert!(world.neighbor_cache_enabled());
        world.prime_neighbor_cache(SimTime::ZERO);
        assert!(world.neighbor_cache_incoherence(SimTime::ZERO).is_none());

        let mut sim = Simulation::new(world);
        boot(&mut sim);
        // Steady traffic keeps transmissions in flight while stations
        // teleport, so cache rebuilds land mid-record too.
        for k in 0..40u64 {
            let src = 1 + (k as usize % (n - 1));
            inject_at(
                &mut sim,
                SimTime::from_micros(50 + k * 400),
                src,
                data_to_sink(src),
            );
        }
        let horizon_us = 30_000u64;
        for _ in 0..30 + rng.below(40) {
            let station = rng.below(n as u64) as usize;
            let to = Point::new(rng.f64_range(-80.0, 80.0), rng.f64_range(-80.0, 80.0));
            let at = SimTime::from_micros(rng.below(horizon_us));
            sim.scheduler_mut()
                .schedule_at(at, MacEvent::SetPosition { station, pos: to });
        }
        // Coherence is checked at several cuts, not just at the end —
        // a transient stale entry must not be healed by a later move.
        for cut_us in [horizon_us / 4, horizon_us / 2, horizon_us + 5_000] {
            let now = SimTime::from_micros(cut_us);
            sim.run_until(now);
            assert_eq!(
                sim.world().neighbor_cache_incoherence(now),
                None,
                "seed {seed}: cache incoherent at t={cut_us}us"
            );
        }
    }
}

/// A handful of generated fuzz scenarios (ESS roaming, mobility,
/// fragmentation, faults — whatever the seeds draw) through the full
/// cached and direct propagation paths: identical event counts and
/// trace/metrics fingerprints, and a clean oracle slate. The 200-seed
/// sweep runs in release CI as `fuzz --cache-diff`.
#[test]
fn cached_and_direct_paths_fingerprint_identically() {
    for seed in 0..6u64 {
        let cached = check_seed_opts(seed, SchedulerKind::BinaryHeap, true);
        let direct = check_seed_opts(seed, SchedulerKind::BinaryHeap, false);
        assert_eq!(
            (cached.events, cached.trace_fnv, cached.metrics_fnv),
            (direct.events, direct.trace_fnv, direct.metrics_fnv),
            "seed {seed}: cached path diverged from direct ({})",
            cached.summary
        );
        assert!(
            cached.violations.is_empty(),
            "seed {seed}: oracle violations on the cached path: {:?}",
            cached.violations
        );
    }
}
