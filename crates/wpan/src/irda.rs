//! IrDA point-to-point infrared links (§2.1, Fig. 2).
//!
//! "IrDA is a low-power, low-cost, unidirectional (point to point),
//! narrow angle (< 30º) cone, ad hoc data transmission standard
//! designed to operate over a distance of up to 1 meter and at speeds
//! of 9600 bps to 4 Mbps (currently), 16 Mbps (under development)."
//!
//! The model is geometric: a link closes only when the receiver sits
//! inside the emitter's 30° half-angle cone and within 1 m; the
//! negotiated rate steps down with distance (IR irradiance falls with
//! d², and the standard's higher rates need more signal).

use wn_phy::geom::Point;
use wn_phy::units::DataRate;

/// The IrDA cone half-angle (the text's "< 30º" narrow angle).
pub const CONE_HALF_ANGLE_DEG: f64 = 15.0;

/// Maximum operating distance, metres.
pub const MAX_DISTANCE_M: f64 = 1.0;

/// The IrDA rate ladder, slowest first (SIR → FIR → VFIR).
pub const RATES_BPS: [f64; 7] = [
    9_600.0,
    115_200.0,
    576_000.0,
    1_152_000.0,
    4_000_000.0,
    // "16 Mbps (under development)" — the VFIR extension.
    10_000_000.0,
    16_000_000.0,
];

/// An infrared transceiver port: position plus pointing direction.
#[derive(Clone, Copy, Debug)]
pub struct IrPort {
    /// Physical position.
    pub pos: Point,
    /// Unit-ish pointing direction (normalised internally).
    pub facing: Point,
}

impl IrPort {
    /// Creates a port at `pos` pointing toward `target`.
    pub fn aimed_at(pos: Point, target: Point) -> Self {
        let facing = pos.direction_to(target).unwrap_or(Point::new(1.0, 0.0));
        IrPort { pos, facing }
    }

    /// The off-axis angle (radians) from this port's boresight to `p`.
    pub fn off_axis_angle_to(&self, p: Point) -> f64 {
        let boresight = self.pos + self.facing;
        self.pos.angle_between(boresight, p)
    }
}

/// Why an IrDA link cannot close.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IrdaLinkError {
    /// Beyond the 1 m operating range.
    TooFar {
        /// Actual separation, metres.
        distance_m: f64,
    },
    /// Receiver outside the emitter's cone.
    OutsideCone {
        /// Off-axis angle, degrees.
        angle_deg: f64,
    },
}

impl std::fmt::Display for IrdaLinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrdaLinkError::TooFar { distance_m } => {
                write!(f, "IrDA link fails: {distance_m:.2} m exceeds 1 m")
            }
            IrdaLinkError::OutsideCone { angle_deg } => {
                write!(
                    f,
                    "IrDA link fails: {angle_deg:.1}° outside the 15° half-angle cone"
                )
            }
        }
    }
}

/// Evaluates an IrDA link from `tx` to the receiver at `rx_pos`.
///
/// Returns the negotiated rate, or why the link cannot close. Rate
/// negotiation: the full 16 Mbps inside 0.2 m, stepping down the ladder
/// as irradiance falls, with at least 9.6 kbps anywhere inside spec.
pub fn negotiate(tx: &IrPort, rx_pos: Point) -> Result<DataRate, IrdaLinkError> {
    let d = tx.pos.distance_to(rx_pos);
    if d > MAX_DISTANCE_M {
        return Err(IrdaLinkError::TooFar { distance_m: d });
    }
    let angle = tx.off_axis_angle_to(rx_pos).to_degrees();
    if angle > CONE_HALF_ANGLE_DEG {
        return Err(IrdaLinkError::OutsideCone { angle_deg: angle });
    }
    // Irradiance ∝ 1/d²; map distance bands onto the ladder (top rate
    // needs the most signal). Bands: each step of the ladder loses
    // ~0.13 m of reach below the previous.
    let idx = if d <= 0.2 {
        RATES_BPS.len() - 1
    } else {
        // 0.2..1.0 m → ladder positions len-2 .. 0.
        let frac = (MAX_DISTANCE_M - d) / (MAX_DISTANCE_M - 0.2);
        ((RATES_BPS.len() - 1) as f64 * frac).floor() as usize
    };
    Ok(DataRate(RATES_BPS[idx]))
}

/// Time (seconds) to transfer `bytes` over a closed link, including a
/// 10% IrLAP framing overhead.
pub fn transfer_time_s(rate: DataRate, bytes: usize) -> f64 {
    bytes as f64 * 8.0 * 1.1 / rate.bps()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn printer_at(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn aligned_close_link_gets_top_rate() {
        // Fig. 2: PDA pointing straight at a printer 15 cm away.
        let pda = IrPort::aimed_at(Point::new(0.0, 0.0), printer_at(0.15, 0.0));
        let rate = negotiate(&pda, printer_at(0.15, 0.0)).unwrap();
        assert_eq!(rate.bps(), 16_000_000.0);
    }

    #[test]
    fn rate_steps_down_with_distance() {
        let target = printer_at(1.0, 0.0);
        let pda = IrPort::aimed_at(Point::new(0.0, 0.0), target);
        let mut last = f64::INFINITY;
        for d in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let r = negotiate(&pda, printer_at(d, 0.0)).unwrap().bps();
            assert!(r <= last, "rate must not rise with distance (d={d})");
            last = r;
        }
        // At the full metre only the lowest rungs remain.
        let edge = negotiate(&pda, printer_at(1.0, 0.0)).unwrap().bps();
        assert!(edge <= 115_200.0, "edge rate {edge}");
    }

    #[test]
    fn beyond_one_metre_fails() {
        let pda = IrPort::aimed_at(Point::new(0.0, 0.0), printer_at(2.0, 0.0));
        assert!(matches!(
            negotiate(&pda, printer_at(1.01, 0.0)),
            Err(IrdaLinkError::TooFar { .. })
        ));
    }

    #[test]
    fn outside_cone_fails() {
        // Pointing along +x; receiver 30° off axis at 0.5 m.
        let pda = IrPort::aimed_at(Point::new(0.0, 0.0), printer_at(1.0, 0.0));
        let off = printer_at(0.5 * 0.866, 0.5 * 0.5); // 30° off.
        match negotiate(&pda, off) {
            Err(IrdaLinkError::OutsideCone { angle_deg }) => {
                assert!((angle_deg - 30.0).abs() < 0.5, "{angle_deg}");
            }
            other => panic!("expected cone failure, got {other:?}"),
        }
        // 10° off axis still works.
        let ok = printer_at(0.5 * 0.985, 0.5 * 0.174);
        assert!(negotiate(&pda, ok).is_ok());
    }

    #[test]
    fn misaimed_port_cannot_link_even_when_close() {
        // Unidirectionality: pointing away breaks the link (unlike the
        // omni-directional Bluetooth the text contrasts it with).
        let pda = IrPort::aimed_at(Point::new(0.0, 0.0), printer_at(-1.0, 0.0));
        assert!(matches!(
            negotiate(&pda, printer_at(0.3, 0.0)),
            Err(IrdaLinkError::OutsideCone { .. })
        ));
    }

    #[test]
    fn transfer_time_scales() {
        let fast = transfer_time_s(DataRate(4_000_000.0), 1_000_000);
        let slow = transfer_time_s(DataRate(9_600.0), 1_000_000);
        assert!((fast - 2.2).abs() < 0.01, "{fast}");
        assert!(slow / fast > 400.0);
    }
}
