//! AES block cipher (FIPS-197), the mandatory cipher of WPA2 (§5.2).
//!
//! Supports 128-, 192- and 256-bit keys. The S-box is *derived* at
//! construction time from its mathematical definition (GF(2⁸) inversion
//! followed by the affine transform) rather than pasted as a table —
//! fewer opportunities for a silent typo, and the derivation itself is
//! unit-tested against the FIPS-197 table entries.

/// Number of 32-bit words in an AES state/block.
const NB: usize = 4;

/// Multiplies two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
pub(crate) fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Computes the multiplicative inverse in GF(2⁸) (0 maps to 0).
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8): square-and-multiply over the exponent 254.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// Public re-export of GF(2⁸) multiplication for sibling modules (TKIP
/// derives its 16-bit S-box from the AES S-box).
pub fn gf_mul_pub(a: u8, b: u8) -> u8 {
    gf_mul(a, b)
}

/// Returns the AES S-box table (derived, not pasted).
pub fn sbox_table() -> [u8; 256] {
    build_sbox()
}

/// Builds the AES S-box from first principles.
fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    for (i, slot) in sbox.iter_mut().enumerate() {
        let inv = gf_inv(i as u8);
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
        let mut x = inv;
        let mut acc = inv;
        for _ in 0..4 {
            x = x.rotate_left(1);
            acc ^= x;
        }
        *slot = acc ^ 0x63;
    }
    sbox
}

fn invert_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in sbox.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// An expanded-key AES instance.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes")
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

impl Aes {
    /// Creates an AES instance from a 16-, 24- or 32-byte key.
    ///
    /// # Panics
    ///
    /// Panics on any other key length.
    pub fn new(key: &[u8]) -> Self {
        let nk = match key.len() {
            16 => 4,
            24 => 6,
            32 => 8,
            n => panic!("AES key must be 16/24/32 bytes, got {n}"),
        };
        let rounds = nk + 6;
        let sbox = build_sbox();
        let inv_sbox = invert_sbox(&sbox);

        // Key expansion (FIPS-197 §5.2).
        let total_words = NB * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon: u8 = 1;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys: Vec<[u8; 16]> = w
            .chunks(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes {
            round_keys,
            sbox,
            inv_sbox,
            rounds,
        }
    }

    /// Number of rounds (10/12/14 for AES-128/192/256).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State layout: column-major — state[r + 4c] is row r, column c,
    /// i.e. the block byte order used directly.
    fn shift_rows(state: &mut [u8; 16]) {
        // Row r is bytes state[r], state[r+4], state[r+8], state[r+12].
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + r) % 4];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + 4 - r) % 4];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[4 * c + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[4 * c + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[4 * c + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            self.sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        self.sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[self.rounds]);
        for round in (1..self.rounds).rev() {
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts a copy of `block`.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn derived_sbox_matches_fips_entries() {
        let sbox = build_sbox();
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7C);
        assert_eq!(sbox[0x53], 0xED);
        assert_eq!(sbox[0xFF], 0x16);
        assert_eq!(sbox[0x9A], 0xB8);
        let inv = invert_sbox(&sbox);
        for i in 0..256 {
            assert_eq!(inv[sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn gf_arithmetic() {
        // FIPS-197 example: {57} · {83} = {c1}.
        assert_eq!(gf_mul(0x57, 0x83), 0xC1);
        assert_eq!(gf_mul(0x57, 0x13), 0xFE);
        // Every nonzero element times its inverse is 1.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn fips197_aes128_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn fips197_aes192_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new(&key);
        assert_eq!(aes.rounds(), 12);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "dda97ca4864cdfe06eaf70a0ec0d7191");
    }

    #[test]
    fn fips197_aes256_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new(&key);
        assert_eq!(aes.rounds(), 14);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "8ea2b7ca516745bfeafc49904b496089");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn nist_sp800_38a_ecb_vector() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let mut block: [u8; 16] = from_hex("6bc1bee22e409f96e93d7e117393172a")
            .try_into()
            .unwrap();
        Aes::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "3ad77bb40d7a3660a89ecaf32466ef97");
    }

    #[test]
    fn roundtrip_random_blocks() {
        let aes = Aes::new(b"0123456789abcdef");
        let mut seed = 0x1234_5678_9abc_def0u64;
        for _ in 0..100 {
            let mut block = [0u8; 16];
            for b in block.iter_mut() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (seed >> 56) as u8;
            }
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original);
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    #[should_panic(expected = "AES key must be")]
    fn bad_key_length_panics() {
        let _ = Aes::new(b"short");
    }
}
