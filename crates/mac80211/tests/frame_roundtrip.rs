//! Property tests for the bit-level frame codec: every valid frame
//! survives `Frame -> bytes -> Frame` unchanged, and malformed bytes
//! come back as errors — never panics, never garbage frames.

use wn_crypto::crc32;
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{Frame, FrameControl, FrameError, SequenceControl, Subtype};
use wn_sim::Rng;

const ALL_SUBTYPES: [Subtype; 17] = [
    Subtype::AssocReq,
    Subtype::AssocResp,
    Subtype::ReassocReq,
    Subtype::ReassocResp,
    Subtype::ProbeReq,
    Subtype::ProbeResp,
    Subtype::Beacon,
    Subtype::Atim,
    Subtype::Disassoc,
    Subtype::Auth,
    Subtype::Deauth,
    Subtype::PsPoll,
    Subtype::Rts,
    Subtype::Cts,
    Subtype::Ack,
    Subtype::Data,
    Subtype::NullData,
];

fn random_addr(rng: &mut Rng) -> MacAddr {
    let mut a = [0u8; 6];
    for b in &mut a {
        *b = rng.below(256) as u8;
    }
    MacAddr(a)
}

/// Draws a random frame whose fields are consistent with its subtype —
/// i.e. one the serialiser can represent losslessly on the air.
fn random_valid_frame(rng: &mut Rng) -> Frame {
    let subtype = *rng.choose(&ALL_SUBTYPES);
    let mut fc = FrameControl::new(subtype);
    fc.more_fragments = rng.chance(0.3);
    fc.retry = rng.chance(0.3);
    fc.power_management = rng.chance(0.2);
    fc.more_data = rng.chance(0.2);
    fc.protected = rng.chance(0.2);
    fc.order = rng.chance(0.1);

    let control = matches!(
        subtype,
        Subtype::Rts | Subtype::Cts | Subtype::Ack | Subtype::PsPoll
    );
    if !control {
        fc.to_ds = rng.chance(0.4);
        fc.from_ds = rng.chance(0.4);
    }

    let duration_id = rng.below(0x10000) as u16;
    let addr1 = random_addr(rng);
    match subtype {
        Subtype::Cts | Subtype::Ack => Frame {
            fc,
            duration_id,
            addr1,
            addr2: None,
            addr3: None,
            seq: None,
            addr4: None,
            body: Vec::new(),
        },
        Subtype::Rts | Subtype::PsPoll => Frame {
            fc,
            duration_id,
            addr1,
            addr2: Some(random_addr(rng)),
            addr3: None,
            seq: None,
            addr4: None,
            body: Vec::new(),
        },
        _ => {
            let body_len = rng.below(512) as usize;
            let mut body = vec![0u8; body_len];
            for b in &mut body {
                *b = rng.below(256) as u8;
            }
            Frame {
                fc,
                duration_id,
                addr1,
                addr2: Some(random_addr(rng)),
                addr3: Some(random_addr(rng)),
                seq: Some(SequenceControl {
                    fragment: rng.below(16) as u8,
                    sequence: rng.below(4096) as u16,
                }),
                // The wireless-DS address appears exactly when both DS
                // bits are set.
                addr4: (fc.to_ds && fc.from_ds).then(|| random_addr(rng)),
                body,
            }
        }
    }
}

#[test]
fn random_valid_frames_roundtrip_identically() {
    let mut rng = Rng::new(0x5EED_F8A3);
    for i in 0..2_000 {
        let frame = random_valid_frame(&mut rng);
        let bytes = frame.to_bytes();
        assert_eq!(bytes.len(), frame.wire_len(), "iteration {i}");
        let back = Frame::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!("iteration {i}: {e} for {frame:?}");
        });
        assert_eq!(back, frame, "iteration {i}");
    }
}

#[test]
fn truncated_bytes_error_instead_of_panicking() {
    let mut rng = Rng::new(0xDEAD_0001);
    for _ in 0..300 {
        let bytes = random_valid_frame(&mut rng).to_bytes();
        for cut in 0..bytes.len() {
            let err = Frame::from_bytes(&bytes[..cut]).expect_err("truncated frame must fail");
            if cut < 14 {
                assert!(
                    matches!(err, FrameError::TooShort { .. }),
                    "cut {cut}: {err}"
                );
            }
        }
    }
}

#[test]
fn corrupted_bits_are_rejected_by_the_fcs() {
    let mut rng = Rng::new(0xDEAD_0002);
    for _ in 0..300 {
        let bytes = random_valid_frame(&mut rng).to_bytes();
        let mut corrupted = bytes.clone();
        let byte = rng.below(bytes.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        corrupted[byte] ^= 1 << bit;
        assert!(
            matches!(
                Frame::from_bytes(&corrupted),
                Err(FrameError::BadFcs { .. })
            ),
            "flipping byte {byte} bit {bit} went undetected"
        );
    }
}

/// Appends a correct FCS, producing bytes that pass the CRC check and
/// exercise the structural validation behind it.
fn with_fcs(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

#[test]
fn structurally_invalid_frames_with_good_fcs_are_rejected() {
    // Protocol version 1.
    let mut fc_v1 = Frame::ack(MacAddr::station(1)).to_bytes();
    fc_v1.truncate(fc_v1.len() - 4);
    fc_v1[0] |= 0b01;
    assert_eq!(
        Frame::from_bytes(&with_fcs(&fc_v1)),
        Err(FrameError::UnsupportedVersion(1))
    );

    // Reserved (type, subtype): control type with subtype 0.
    let mut reserved = Frame::ack(MacAddr::station(1)).to_bytes();
    reserved.truncate(reserved.len() - 4);
    reserved[0] &= 0b0000_1111; // clear the subtype nibble → (1, 0)
    assert_eq!(
        Frame::from_bytes(&with_fcs(&reserved)),
        Err(FrameError::ReservedType { ty: 1, sub: 0 })
    );

    // A data header cut off after addr1 (valid FCS, too few fields).
    let data = Frame::data(
        wn_mac80211::frame::DsBits::Ibss,
        MacAddr::station(1),
        MacAddr::station(2),
        MacAddr::station(3),
        SequenceControl::default(),
        vec![0xAB; 32],
    )
    .to_bytes();
    let short = with_fcs(&data[..12]);
    assert!(matches!(
        Frame::from_bytes(&short),
        Err(FrameError::TooShort { .. })
    ));
}
