//! Known-answer tests against published vectors: AES from FIPS-197's
//! appendices, HMAC-SHA1 from RFC 2202, PBKDF2-HMAC-SHA1 from
//! RFC 6070, CRC-32 check values, and the Michael MIC chain from the
//! 802.11i annex. These pin the primitives to the real algorithms, not
//! just to themselves.

use wn_crypto::hmac::hmac_sha1;
use wn_crypto::michael::michael;
use wn_crypto::pbkdf2::pbkdf2_hmac_sha1;
use wn_crypto::{crc32, Aes, Rc4, Sha1};

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0);
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn aes128_fips197_appendix_b() {
    let aes = Aes::new(&unhex("2b7e151628aed2a6abf7158809cf4f3c"));
    let mut block = [0u8; 16];
    block.copy_from_slice(&unhex("3243f6a8885a308d313198a2e0370734"));
    let ct = aes.encrypt(&block);
    assert_eq!(hex(&ct), "3925841d02dc09fbdc118597196a0b32");
    let mut back = ct;
    aes.decrypt_block(&mut back);
    assert_eq!(back, block);
}

#[test]
fn aes_fips197_appendix_c_all_key_sizes() {
    let pt = unhex("00112233445566778899aabbccddeeff");
    let cases = [
        (
            "000102030405060708090a0b0c0d0e0f",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        ),
        (
            "000102030405060708090a0b0c0d0e0f1011121314151617",
            "dda97ca4864cdfe06eaf70a0ec0d7191",
        ),
        (
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "8ea2b7ca516745bfeafc49904b496089",
        ),
    ];
    for (key, want) in cases {
        let aes = Aes::new(&unhex(key));
        let mut block = [0u8; 16];
        block.copy_from_slice(&pt);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), want, "key {key}");
        aes.decrypt_block(&mut block);
        assert_eq!(block.as_slice(), pt.as_slice(), "key {key}");
    }
}

#[test]
fn hmac_sha1_rfc2202_all_cases() {
    let cases: [(Vec<u8>, Vec<u8>, &str); 7] = [
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b617318655057264e28bc0b6fb378c8ef146be00",
        ),
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
        ),
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
        ),
        (
            unhex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
            vec![0xcd; 50],
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
        ),
        (
            vec![0x0c; 20],
            b"Test With Truncation".to_vec(),
            "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
        ),
        (
            vec![0xaa; 80],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112",
        ),
        (
            vec![0xaa; 80],
            b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data".to_vec(),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91",
        ),
    ];
    for (i, (key, msg, want)) in cases.iter().enumerate() {
        assert_eq!(hex(&hmac_sha1(key, msg)), *want, "RFC 2202 case {}", i + 1);
    }
}

#[test]
fn pbkdf2_rfc6070_vectors() {
    // Cases 1–3, 5 and 6 of RFC 6070 (case 4 is the 16M-iteration one,
    // skipped for test-suite runtime).
    let cases: [(&[u8], &[u8], u32, &str); 5] = [
        (
            b"password",
            b"salt",
            1,
            "0c60c80f961f0e71f3a9b524af6012062fe037a6",
        ),
        (
            b"password",
            b"salt",
            2,
            "ea6c014dc72d6f8ccd1ed92ace1d41f0d8de8957",
        ),
        (
            b"password",
            b"salt",
            4096,
            "4b007901b765489abead49d926f721d065a429c1",
        ),
        (
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            "3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038",
        ),
        (
            b"pass\0word",
            b"sa\0lt",
            4096,
            "56fa6aa75548099dcc37d7f03425e0c3",
        ),
    ];
    for (pw, salt, iters, want) in cases {
        let dk = pbkdf2_hmac_sha1(pw, salt, iters, want.len() / 2);
        assert_eq!(hex(&dk), want, "pw {:?} iters {iters}", pw);
    }
}

#[test]
fn crc32_check_values() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
    assert_eq!(crc32(b"a"), 0xE8B7_BE43);
}

#[test]
fn michael_mic_test_chain() {
    // The 802.11i Michael annex chains each case's MIC into the next
    // case's key: key_0 = 0, key_{n+1} = michael(key_n, msg_n).
    let msgs: [&[u8]; 6] = [b"", b"M", b"Mi", b"Mic", b"Mich", b"Michael"];
    let want = [
        "82925c1ca1d130b8",
        "434721ca40639b3f",
        "e8f9becae97e5d29",
        "90038fc6cf13c1db",
        "d55e100510128986",
        "0a942b124ecaa546",
    ];
    let mut key = [0u8; 8];
    for (msg, want) in msgs.iter().zip(want) {
        let mic = michael(&key, msg);
        assert_eq!(hex(&mic), want, "msg {:?}", msg);
        key = mic;
    }
}

#[test]
fn rc4_and_sha1_spot_checks() {
    assert_eq!(
        hex(&Rc4::cipher(b"Key", b"Plaintext")),
        "bbf316e8d940af0ad3"
    );
    assert_eq!(
        hex(&Sha1::digest(b"abc")),
        "a9993e364706816aba3e25717850c26c9cd0d89d"
    );
}
