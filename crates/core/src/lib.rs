//! `wn-core` — the unified wireless-networks API.
//!
//! This crate is the text's primary contribution made executable: a
//! complete, coherent model of the four wireless network classes and
//! their technologies, backed by the substrate crates
//! (`wn-sim`/`wn-phy`/`wn-mac80211`/`wn-net80211`/`wn-wpan`/`wn-wman`/
//! `wn-wwan`/`wn-security`).
//!
//! - [`taxonomy`] — the Fig. 1.1 classification: WPAN / WLAN / WMAN /
//!   WWAN, short-range vs long-range, licensing.
//! - [`registry`] — the closing comparison table as data *and* as
//!   simulation: every row carries the text's claimed numbers and a
//!   `measure()` that reproduces them from the simulators.
//! - [`scenarios`] — one function per figure of the text, returning
//!   [`wn_sim::stats::Figure`] data the benches print.
//! - [`experiment`] — paper-vs-measured reporting for EXPERIMENTS.md.
//! - [`runner`] — the campaign registry: every experiment behind a
//!   stable id, fanned across the `wn-sim` worker pool with
//!   byte-identical output for any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod experiment;
pub mod registry;
pub mod runner;
pub mod scenarios;
pub mod taxonomy;
pub mod traffic;

pub use registry::{Technology, TechnologyRow};
pub use taxonomy::NetworkClass;
