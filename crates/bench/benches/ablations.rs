//! The DESIGN.md §6 ablations: contention-window sweep, capture effect,
//! and ARF rate adaptation (including its collision pathology).

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::{ablation_arf, ablation_capture, ablation_cw_sweep, fading_link};

fn main() {
    let (fig, report) = ablation_cw_sweep(17);
    print_figure(&fig);
    print_report(&report);

    let (fig, report) = ablation_capture(19);
    print_figure(&fig);
    print_report(&report);

    let (fig, report) = ablation_arf(23);
    print_figure(&fig);
    print_report(&report);

    let (fig, report) = fading_link(37);
    print_figure(&fig);
    print_report(&report);

    bench("ablations/arf_weak_link_1s", || {
        black_box(ablation_arf(23).0.series[0].points[1].1)
    });
}
